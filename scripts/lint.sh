#!/usr/bin/env bash
# clang-tidy gate over the library sources (.clang-tidy holds the check set).
#
# Usage:
#   scripts/lint.sh [build-dir]
#
# The build dir must have a compile_commands.json; if it does not exist the
# script configures one (tests/bench/examples off — lint targets src/ only).
# Coverage is every .cpp under src/, discovered by find — new subsystems
# (e.g. src/service/) are linted without touching this script.
# Environment:
#   CLANG_TIDY=<binary>       override the clang-tidy executable
#   PLFOC_LINT_STRICT=1       fail (exit 2) when clang-tidy is not installed,
#                             instead of skipping with a warning. CI sets this.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-lint}"

# An explicit CLANG_TIDY override that does not resolve is an error, never a
# silent fallback to whatever clang-tidy happens to be on PATH. Checked here
# (not in find_clang_tidy, which runs in a command-substitution subshell where
# `exit` would only leave the subshell).
if [[ -n "${CLANG_TIDY:-}" ]] && ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "lint.sh: CLANG_TIDY='${CLANG_TIDY}' is not an executable" >&2
  exit 2
fi

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! tidy="$(find_clang_tidy)"; then
  if [[ "${PLFOC_LINT_STRICT:-0}" == "1" ]]; then
    echo "lint.sh: clang-tidy not found and PLFOC_LINT_STRICT=1" >&2
    exit 2
  fi
  echo "lint.sh: clang-tidy not found; skipping lint gate" \
       "(install clang-tidy, or set PLFOC_LINT_STRICT=1 to make this fatal)" >&2
  exit 0
fi
echo "lint.sh: using ${tidy} ($("${tidy}" --version | head -n1))"

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: configuring ${build_dir} for compile_commands.json"
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPLFOC_BUILD_TESTS=OFF -DPLFOC_BUILD_BENCH=OFF \
    -DPLFOC_BUILD_EXAMPLES=OFF >/dev/null
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "lint.sh: linting ${#sources[@]} translation units"

status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy}" -p "${build_dir}" -quiet \
    "${repo_root}/src/.*\.cpp$" || status=$?
else
  for source in "${sources[@]}"; do
    "${tidy}" -p "${build_dir}" --quiet "${source}" || status=$?
  done
fi

if [[ ${status} -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings (exit ${status})" >&2
  exit 1
fi
echo "lint.sh: clean"
