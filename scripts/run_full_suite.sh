#!/bin/bash
# Runs the complete test suite and the paper-scale benchmark sweep,
# writing test_output.txt and bench_output.txt at the repository root.
cd "$(dirname "$0")/.."
ctest --test-dir build 2>&1 | tee test_output.txt > /dev/null
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=== $b ==="
  PLFOC_BENCH_SCALE=paper timeout 1200 "$b"
  echo "exit=$?"
done 2>&1 | tee bench_output.txt > /dev/null

