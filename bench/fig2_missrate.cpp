// Figure 2 reproduction: ancestral-vector miss rates of the four replacement
// strategies (Random, LRU, LFU, Topological) at f = 0.25 / 0.50 / 0.75 on a
// 1288-taxon, 1200-site DNA dataset under GTR+Γ4, measured over a tree-search
// workload from a fixed starting tree.
//
// Paper result to reproduce (shape): all strategies except LFU stay below a
// 10% miss rate even at f = 0.25; Random ~ LRU ~ Topological; rates fall
// towards 0 as f grows.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 200 : 1288;
  const std::size_t sites = scale == Scale::kQuick ? 300 : 1200;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 20110516);
  print_header("Figure 2: miss rate by replacement strategy and RAM fraction f",
               dataset, scale);

  const SearchWorkloadOptions workload = workload_for(scale);
  const double fractions[] = {0.25, 0.50, 0.75};
  const ReplacementPolicy policies[] = {
      ReplacementPolicy::kTopological, ReplacementPolicy::kLfu,
      ReplacementPolicy::kRandom, ReplacementPolicy::kLru};

  std::printf("%-12s %6s %12s %12s %14s %10s %12s\n", "strategy", "f",
              "accesses", "misses", "miss_rate_%", "logL", "seconds");
  double reference_ll = 0.0;
  bool have_reference = false;
  for (ReplacementPolicy policy : policies) {
    for (double f : fractions) {
      SessionOptions options;
      options.backend = Backend::kOutOfCore;
      options.policy = policy;
      options.ram_fraction = f;
      options.seed = 7;
      const WorkloadResult result =
          run_search_workload(dataset, options, workload);
      std::printf("%-12s %6.2f %12llu %12llu %14.3f %10.1f %12.1f\n",
                  policy_name(policy), f,
                  static_cast<unsigned long long>(result.stats.accesses),
                  static_cast<unsigned long long>(result.stats.misses),
                  100.0 * result.stats.miss_rate(),
                  result.final_log_likelihood, result.wall_seconds);
      std::fflush(stdout);
      // Correctness criterion (Sec. 4.1): identical final scores across all
      // strategies and fractions.
      if (!have_reference) {
        reference_ll = result.final_log_likelihood;
        have_reference = true;
      } else if (result.final_log_likelihood != reference_ll) {
        std::printf("# WARNING: logL deviates from the first configuration!\n");
        return 1;
      }
    }
  }
  std::printf("# all configurations produced the identical final logL %.6f\n",
              reference_ll);
  return 0;
}
