// Figure 5 reproduction: execution time of 5 full tree traversals (the
// paper's -f z worst case: every ancestral vector recomputed, minimal
// locality) on simulated DNA datasets whose ancestral-vector footprint sweeps
// past the RAM budget, comparing
//   standard  — the unmodified implementation relying on (simulated) OS
//               paging: 4 KiB-page LRU over the same backing file;
//   ooc-lru / ooc-rand — the out-of-core slot manager with the -L byte budget.
//
// The paper ran on a 2 GB-RAM machine with 1-32 GB datasets against real
// swap. A large-RAM host page-caches the whole file, so wall clock alone no
// longer shows the disk-bound regime; every backing-file operation therefore
// also accrues *modeled device time* (2010-era HDD: 8 ms seek + 100 MB/s) and
// the projected total (compute wall time + modeled device time) is the
// figure's series. Shape to reproduce: standard wins while the data fits the
// budget; beyond it the out-of-core version wins by a widening factor
// (> 5x at the top size in the paper).
#include "bench_common.hpp"

#include "likelihood/memory_model.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct Variant {
  const char* name;
  Backend backend;
  ReplacementPolicy policy;
};

struct RunResult {
  double wall = 0.0;
  double device = 0.0;
  double loglik = 0.0;
  std::uint64_t io_ops = 0;
  std::uint64_t faults_or_misses = 0;
};

RunResult run_traversals(const PlannedDataset& data, const Variant& variant,
                         std::uint64_t budget_bytes, int traversals) {
  SessionOptions options;
  options.backend = variant.backend;
  options.policy = variant.policy;
  options.ram_budget_bytes = budget_bytes;
  options.compress_patterns = false;  // keep the exact planned footprint
  options.device = DeviceModel::hdd_2010();
  options.seed = 3;
  Session session(data.alignment, data.tree, benchmark_gtr(), options);

  Timer timer;
  RunResult result;
  for (int i = 0; i < traversals; ++i)
    result.loglik = session.engine().full_traversal_log_likelihood();
  result.wall = timer.seconds();
  if (OutOfCoreStore* ooc = session.out_of_core()) {
    result.device = ooc->file().modeled_device_seconds();
    result.io_ops = ooc->file().io_operations();
  } else if (PagedStore* paged = session.paged()) {
    result.device = paged->file().modeled_device_seconds();
    result.io_ops = paged->file().io_operations();
    result.faults_or_misses = paged->page_faults();
  }
  if (session.out_of_core() != nullptr)
    result.faults_or_misses = session.stats().misses;
  return result;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  std::size_t taxa = 1024;
  std::uint64_t budget = 64ull << 20;
  std::vector<std::uint64_t> sizes;
  switch (scale) {
    case Scale::kQuick:
      taxa = 128;
      budget = 4ull << 20;
      sizes = {2ull << 20, 4ull << 20, 8ull << 20, 16ull << 20};
      break;
    case Scale::kPaper:
      sizes = {32ull << 20, 64ull << 20, 128ull << 20, 256ull << 20,
               512ull << 20};
      break;
    case Scale::kFull:
      taxa = 8192;
      budget = 1ull << 30;
      sizes = {512ull << 20, 1ull << 30, 2ull << 30, 4ull << 30, 8ull << 30};
      break;
  }
  const int traversals = 5;

  std::printf("# Figure 5: 5 full tree traversals, %zu taxa, RAM budget "
              "%.0f MiB, scale=%s\n",
              taxa, static_cast<double>(budget) / 1048576.0,
              scale_name(scale));
  std::printf("# device model: 8 ms seek + 100 MB/s (2010 HDD); projected = "
              "compute wall + modeled device time\n");
  std::printf("%10s %-10s %10s %12s %12s %12s %14s\n", "size_MiB", "variant",
              "wall_s", "device_s", "projected_s", "io_ops",
              "faults/misses");

  const Variant variants[] = {
      {"standard", Backend::kPaged, ReplacementPolicy::kRandom},
      {"ooc-lru", Backend::kOutOfCore, ReplacementPolicy::kLru},
      {"ooc-rand", Backend::kOutOfCore, ReplacementPolicy::kRandom},
  };

  for (std::uint64_t size : sizes) {
    DatasetPlan plan;
    plan.num_taxa = taxa;
    plan.target_ancestral_bytes = size;
    plan.seed = 99;
    const PlannedDataset data = make_dna_dataset(plan);
    double reference_ll = 0.0;
    bool have_reference = false;
    for (const Variant& variant : variants) {
      const RunResult result =
          run_traversals(data, variant, budget, traversals);
      std::printf("%10.0f %-10s %10.1f %12.1f %12.1f %12llu %14llu\n",
                  static_cast<double>(size) / 1048576.0, variant.name,
                  result.wall, result.device, result.wall + result.device,
                  static_cast<unsigned long long>(result.io_ops),
                  static_cast<unsigned long long>(result.faults_or_misses));
      std::fflush(stdout);
      if (!have_reference) {
        reference_ll = result.loglik;
        have_reference = true;
      } else if (result.loglik != reference_ll) {
        std::printf("# WARNING: logL mismatch across variants (%f vs %f)\n",
                    result.loglik, reference_ll);
        return 1;
      }
    }
  }
  return 0;
}
