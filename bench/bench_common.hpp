// Shared infrastructure for the experiment harnesses (one binary per figure
// or table of the paper; see DESIGN.md's experiment index).
//
// Scale control: PLFOC_BENCH_SCALE = quick | paper | full.
//   quick — small datasets for smoke-testing the harnesses (~seconds each);
//   paper — the paper's dataset *dimensions* with subsampled prune candidates
//           (default; minutes per binary on one core);
//   full  — paper dimensions, denser scans (long).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "search/search.hpp"
#include "search/stepwise.hpp"
#include "session.hpp"
#include "sim/dataset_planner.hpp"
#include "util/timer.hpp"

namespace plfoc::bench {

enum class Scale { kQuick, kPaper, kFull };

inline Scale scale_from_env() {
  const char* env = std::getenv("PLFOC_BENCH_SCALE");
  if (env == nullptr) return Scale::kPaper;
  const std::string value = env;
  if (value == "quick") return Scale::kQuick;
  if (value == "full") return Scale::kFull;
  if (value == "paper") return Scale::kPaper;
  std::fprintf(stderr, "unknown PLFOC_BENCH_SCALE '%s', using 'paper'\n",
               env);
  return Scale::kPaper;
}

inline const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kQuick: return "quick";
    case Scale::kPaper: return "paper";
    case Scale::kFull: return "full";
  }
  return "?";
}

/// One miss-rate experiment dataset: simulated alignment of the paper's
/// dimensions plus the fixed starting tree shared by every configuration
/// ("Given a fixed starting tree, RAxML is deterministic", Sec. 4.1).
struct SearchDataset {
  Alignment alignment;
  Tree start_tree;
  std::size_t taxa;
  std::size_t sites;
};

inline SearchDataset make_search_dataset(std::size_t taxa, std::size_t sites,
                                         std::uint64_t seed) {
  DatasetPlan plan;
  plan.num_taxa = taxa;
  plan.num_sites = sites;
  plan.seed = seed;
  plan.alpha = 0.6;
  PlannedDataset data = make_dna_dataset(plan);
  Rng rng(seed + 1);
  StepwiseOptions stepwise;
  stepwise.max_candidates = 64;
  Timer timer;
  Tree start = stepwise_addition_tree(data.alignment, rng, stepwise);
  std::fprintf(stderr, "# starting tree built in %.1fs\n", timer.seconds());
  return {std::move(data.alignment), std::move(start), taxa, sites};
}

/// The search workload whose vector accesses the paper measures: one branch
/// smoothing pass, Γ-shape optimisation (full traversals), one lazy-SPR round.
struct SearchWorkloadOptions {
  std::size_t prune_stride = 16;
  unsigned radius_max = 5;
  bool optimize_model = true;
};

inline SearchWorkloadOptions workload_for(Scale scale) {
  SearchWorkloadOptions options;
  switch (scale) {
    case Scale::kQuick: options.prune_stride = 4; break;
    case Scale::kPaper: options.prune_stride = 16; break;
    case Scale::kFull: options.prune_stride = 4; break;
  }
  return options;
}

struct WorkloadResult {
  double final_log_likelihood = 0.0;
  OocStats stats;
  double wall_seconds = 0.0;
};

/// Run the search workload on a fresh Session over the dataset. The stats are
/// reset after construction so cold population is included exactly as in the
/// paper (every swap-in counts).
inline WorkloadResult run_search_workload(const SearchDataset& dataset,
                                          SessionOptions session_options,
                                          const SearchWorkloadOptions& workload) {
  Session session(dataset.alignment, dataset.start_tree, benchmark_gtr(),
                  std::move(session_options));
  Timer timer;
  SearchOptions search;
  search.initial_smoothing_passes = 1;
  search.optimize_model = workload.optimize_model;
  search.model.tolerance = 1e-2;
  search.spr.rounds = 1;
  search.spr.radius_max = workload.radius_max;
  search.spr.prune_stride = workload.prune_stride;
  search.final_smoothing_passes = 0;
  const SearchResult result = run_search(session.engine(), search);
  WorkloadResult out;
  out.final_log_likelihood = result.final_log_likelihood;
  out.stats = session.stats();
  out.wall_seconds = timer.seconds();
  return out;
}

inline void print_header(const char* title, const SearchDataset& dataset,
                         Scale scale) {
  std::printf("# %s\n", title);
  std::printf("# dataset: %zu taxa x %zu sites (%zu patterns after "
              "compression computed per run), scale=%s\n",
              dataset.taxa, dataset.sites, dataset.alignment.num_sites(),
              scale_name(scale));
}

}  // namespace plfoc::bench
