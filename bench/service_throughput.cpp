// Batch-service throughput: jobs/sec and aggregate miss rate as a function
// of worker count and the global slot-memory budget (docs/service.md), plus
// the serving tier on top of it (docs/serving.md):
//
//   phase 1 — the in-process worker x budget sweep. Expected shape:
//     job-level speedup > 1 at 4 workers vs 1 worker under an unlimited
//     budget; tightening the budget degrades jobs to smaller stores while
//     peak charged slot memory stays within it; log likelihoods are
//     bit-identical across every cell (the determinism contract).
//   phase 2 — a networked many-tenant zipfian-repeat workload through a
//     loopback Server, cache-off vs cache-on. Expected shape: the repeat
//     mass turns into cache hits (>50% hit rate), collapsing p50/p99
//     latency and raising jobs/sec.
//   phase 3 — weighted fairness: two tenants at 3:1 weights through one
//     worker; the deficit-round-robin completed ratio tracks 3:1 within
//     10% at any aligned cut.
//   phase 4 — overload: offered load far above one worker's capacity, with
//     and without deadlines + queue-wait shedding (docs/robustness.md).
//     Expected shape: unprotected, every job runs and the accepted p99
//     (queue + evaluation) grows linearly with the backlog; protected, the
//     late arrivals are shed / expired and the p99 of the jobs that DO run
//     is bounded by the shed budget — the report asserts
//     p99(protected) <= p99(unprotected).
//
// `--json <path>` additionally writes all phases as a machine-readable
// report for CI artifacts and trend tracking.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "likelihood/memory_model.hpp"
#include "msa/fasta.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#include "tree/phylo2vec.hpp"
#include "tree/random_tree.hpp"
#include "util/mutex.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct SweepCell {
  std::size_t workers;
  std::uint64_t budget;
  double jobs_per_second = 0.0;
  double miss_rate = 0.0;
  std::uint64_t peak_bytes = 0;
  std::size_t degraded = 0;
};

JobSpec make_job(const SearchDataset& dataset, std::size_t index) {
  JobSpec spec{"job-" + std::to_string(index + 1), dataset.alignment,
               dataset.start_tree, benchmark_gtr(), SessionOptions{}, ""};
  spec.session.backend = Backend::kOutOfCore;
  spec.session.ram_fraction = 0.25;
  spec.session.policy = ReplacementPolicy::kLru;
  spec.session.seed = index + 1;
  return spec;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[index];
}

struct NetworkCell {
  std::size_t cache_entries = 0;
  std::size_t jobs = 0;
  double jobs_per_second = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double hit_rate = 0.0;
};

/// Phase 2: N jobs over the wire, tree picked zipfian from a fixed pool so
/// a heavy head repeats while a long tail stays cold; tenants round-robin.
NetworkCell run_network_phase(const std::string& fasta_path,
                              const std::vector<Phylo2Vec>& pool,
                              const std::vector<std::size_t>& picks,
                              std::size_t cache_entries) {
  ServerOptions options = loopback_server_options(2, picks.size());
  options.service.result_cache_entries = cache_entries;
  Server server(std::move(options));
  server.start();

  const char* tenants[] = {"ants", "bees", "crows", "deer"};
  BlockingClient client("127.0.0.1", server.port());
  Timer timer;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const Phylo2Vec& tree = pool[picks[i]];
    SubmitRequest request;
    request.request_id = i + 1;
    request.tenant = tenants[i % (sizeof tenants / sizeof *tenants)];
    char name[24];
    std::snprintf(name, sizeof name, "z%zu", i + 1);
    request.name = name;
    request.msa_path = fasta_path;
    request.tree_kind = WireTreeKind::kPhylo2Vec;
    request.tree_v = tree.v;
    request.tree_lengths = tree.lengths;
    request.taxa_digest = phylo2vec_taxa_digest(tree.taxa);
    client.submit(request);
  }
  std::vector<double> latencies;
  latencies.reserve(picks.size());
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const ClientResponse response = client.wait(i + 1);
    if (!response.result ||
        response.result->status != static_cast<std::uint8_t>(JobStatus::kDone))
      std::fprintf(stderr, "networked job %zu failed\n", i + 1);
    else
      latencies.push_back(response.result->queue_seconds +
                          response.result->wall_seconds);
  }
  const double wall = timer.seconds();
  const StatsResponse stats = client.stats();
  server.stop();

  NetworkCell cell;
  cell.cache_entries = cache_entries;
  cell.jobs = picks.size();
  cell.jobs_per_second =
      wall > 0.0 ? static_cast<double>(latencies.size()) / wall : 0.0;
  cell.p50_latency_s = percentile(latencies, 0.50);
  cell.p99_latency_s = percentile(latencies, 0.99);
  cell.hit_rate = stats.cache_lookups > 0
                      ? static_cast<double>(stats.cache_hits) /
                            static_cast<double>(stats.cache_lookups)
                      : 0.0;
  return cell;
}

struct FairnessResult {
  std::uint64_t completed_heavy = 0;
  std::uint64_t completed_light = 0;
  double ratio = 0.0;
};

/// Phase 3: a saturated single worker splits completions 3:1 between the
/// tenants. The completion ORDER is recorded and the ratio measured over a
/// fixed prefix (`window`, a whole number of deficit rounds), so the
/// measurement sees steady-state scheduling, not the backlog tails.
FairnessResult run_fairness_phase(std::size_t window) {
  std::vector<std::string> completion_order;
  Mutex order_mutex;
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 256;
  options.tenants["heavy"] = {.weight = 3,
                              .max_in_flight = 0,
                              .ram_share_bytes = 0};
  options.tenants["light"] = {.weight = 1,
                              .max_in_flight = 0,
                              .ram_share_bytes = 0};
  options.on_complete = [&](const JobResult& result) {
    MutexLock lock(order_mutex);
    completion_order.push_back(result.tenant);
  };
  Service service(options);

  DatasetPlan plan;
  plan.num_taxa = 24;
  plan.num_sites = 120;
  plan.seed = 77;
  const PlannedDataset data = make_dna_dataset(plan);
  const auto submit = [&](const char* tenant, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      JobSpec spec{"", data.alignment, data.tree, benchmark_gtr(),
                   SessionOptions{}, tenant};
      spec.session.backend = Backend::kInRam;
      service.submit(std::move(spec));
    }
  };
  // Backlogs sized so neither tenant runs dry inside the window: the
  // window's worst case takes 3/4 of it from heavy and 1/4 from light.
  submit("heavy", window);
  submit("light", window / 2);
  service.drain();

  FairnessResult result;
  const std::size_t cut = std::min(window, completion_order.size());
  for (std::size_t i = 0; i < cut; ++i) {
    if (completion_order[i] == "heavy")
      ++result.completed_heavy;
    else
      ++result.completed_light;
  }
  result.ratio = result.completed_light > 0
                     ? static_cast<double>(result.completed_heavy) /
                           static_cast<double>(result.completed_light)
                     : 0.0;
  return result;
}

struct OverloadCell {
  bool protected_run = false;  ///< deadlines + shedding on
  std::size_t offered = 0;
  std::size_t accepted = 0;   ///< kDone
  std::size_t shed = 0;       ///< kOverloaded
  std::size_t expired = 0;    ///< kDeadlineExceeded
  double shed_rate = 0.0;     ///< (shed + expired) / offered
  double p99_accepted_s = 0.0;  ///< queue + evaluation, accepted jobs only
};

/// Phase 4: `offered` cheap in-RAM jobs dumped on one worker at once — a
/// backlog many times deeper than capacity. The protected run arms a queue-
/// wait shed budget of ~8 jobs' service time and a per-job deadline at 2x
/// that; the unprotected run takes the full latency hit.
OverloadCell run_overload_phase(const PlannedDataset& data,
                                std::size_t offered, double per_job_s,
                                bool protect) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = offered;
  const double shed_budget = 8.0 * per_job_s;
  if (protect) options.shed_queue_seconds = shed_budget;
  Service service(options);
  for (std::size_t i = 0; i < offered; ++i) {
    JobSpec spec{"", data.alignment, data.tree, benchmark_gtr(),
                 SessionOptions{}, ""};
    spec.session.backend = Backend::kInRam;
    if (protect) spec.deadline_seconds = 2.0 * shed_budget;
    service.submit(std::move(spec));
  }
  const std::vector<JobResult> results = service.drain();

  OverloadCell cell;
  cell.protected_run = protect;
  cell.offered = offered;
  std::vector<double> accepted_latencies;
  for (const JobResult& result : results) {
    switch (result.status) {
      case JobStatus::kDone:
        ++cell.accepted;
        accepted_latencies.push_back(result.queue_seconds +
                                     result.wall_seconds);
        break;
      case JobStatus::kOverloaded:
        ++cell.shed;
        break;
      case JobStatus::kDeadlineExceeded:
        ++cell.expired;
        break;
      default:
        std::fprintf(stderr, "overload job unexpectedly %s\n",
                     job_status_name(result.status));
        break;
    }
  }
  cell.shed_rate = offered > 0
                       ? static_cast<double>(cell.shed + cell.expired) /
                             static_cast<double>(offered)
                       : 0.0;
  cell.p99_accepted_s = percentile(accepted_latencies, 0.99);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 48 : 128;
  const std::size_t sites = scale == Scale::kQuick ? 240 : 600;
  const std::size_t jobs = scale == Scale::kFull ? 32 : 16;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 20110516);
  print_header("Service throughput: workers x global RAM budget", dataset,
               scale);

  // Price one job with the same conservative model the scheduler uses.
  const JobSpec probe = make_job(dataset, 0);
  const JobDemand demand = JobDemand::from_spec(probe);
  const std::uint64_t desired = demand.desired_bytes();
  std::printf("# %zu jobs, per-job demand %llu B (min %llu B)\n", jobs,
              static_cast<unsigned long long>(desired),
              static_cast<unsigned long long>(demand.minimum_bytes()));

  const std::size_t worker_counts[] = {1, 2, 4};
  // 0 = unlimited; 1.5x one job leaves a half-desired remainder that forces
  // a concurrent peer into a degraded (smaller-store) admission; 1x
  // serialises peers entirely.
  const std::uint64_t budgets[] = {0, desired + desired / 2, desired};

  std::vector<double> reference;  // logLs of the first cell, by job index
  bool deterministic = true;
  std::vector<SweepCell> cells;
  for (const std::size_t workers : worker_counts) {
    for (const std::uint64_t budget : budgets) {
      ServiceOptions options;
      options.workers = workers;
      options.queue_capacity = jobs;
      options.ram_budget_bytes = budget;
      Service service(options);
      Timer timer;
      for (std::size_t j = 0; j < jobs; ++j)
        service.submit(make_job(dataset, j));
      const std::vector<JobResult> results = service.drain();
      const double wall = timer.seconds();

      SweepCell cell{workers, budget};
      cell.jobs_per_second = wall > 0.0 ? results.size() / wall : 0.0;
      cell.miss_rate = service.merged_stats().miss_rate();
      cell.peak_bytes = service.peak_charged_bytes();
      if (reference.empty()) {
        for (const JobResult& r : results)
          reference.push_back(r.log_likelihood);
      }
      for (std::size_t j = 0; j < results.size(); ++j) {
        if (results[j].status != JobStatus::kDone ||
            results[j].log_likelihood != reference[j])
          deterministic = false;
        if (results[j].degraded) ++cell.degraded;
      }
      cells.push_back(cell);
      std::fflush(stdout);
    }
  }

  const double base = cells.front().jobs_per_second;  // 1 worker, unlimited
  std::printf("%8s %14s %10s %10s %12s %14s %9s\n", "workers", "budget_B",
              "jobs_s", "speedup", "miss_rate_%", "peak_B", "degraded");
  for (const SweepCell& cell : cells) {
    char budget_text[32];
    if (cell.budget == 0)
      std::snprintf(budget_text, sizeof budget_text, "%s", "unlimited");
    else
      std::snprintf(budget_text, sizeof budget_text, "%llu",
                    static_cast<unsigned long long>(cell.budget));
    std::printf("%8zu %14s %10.2f %10.2f %12.3f %14llu %9zu\n", cell.workers,
                budget_text, cell.jobs_per_second,
                base > 0.0 ? cell.jobs_per_second / base : 0.0,
                100.0 * cell.miss_rate,
                static_cast<unsigned long long>(cell.peak_bytes),
                cell.degraded);
  }
  std::printf("# deterministic across all cells: %s\n",
              deterministic ? "yes" : "NO");

  // ---- phase 2: networked zipfian-repeat workload, cache-off vs cache-on.
  const std::size_t zipf_taxa = scale == Scale::kQuick ? 24 : 32;
  const std::size_t zipf_sites = scale == Scale::kQuick ? 120 : 160;
  const std::size_t zipf_jobs =
      scale == Scale::kQuick ? 32 : (scale == Scale::kFull ? 96 : 48);
  DatasetPlan zipf_plan;
  zipf_plan.num_taxa = zipf_taxa;
  zipf_plan.num_sites = zipf_sites;
  zipf_plan.seed = 20260808;
  const PlannedDataset zipf_data = make_dna_dataset(zipf_plan);
  const std::string fasta_path =
      "/tmp/plfoc_bench_" + std::to_string(::getpid()) + "_zipf.fasta";
  write_fasta_file(fasta_path, zipf_data.alignment);

  std::vector<std::string> taxa_names;
  for (std::size_t i = 0; i < zipf_data.alignment.num_taxa(); ++i)
    taxa_names.push_back(zipf_data.alignment.name(i));
  constexpr std::size_t kPoolSize = 8;
  std::vector<Phylo2Vec> pool;
  Rng pool_rng(99);
  for (std::size_t k = 0; k < kPoolSize; ++k)
    pool.push_back(phylo2vec_encode(random_tree(taxa_names, pool_rng)));

  // Zipf(1.2) over the pool: the head tree dominates, the tail stays cold.
  std::vector<double> cdf(kPoolSize);
  double mass = 0.0;
  for (std::size_t k = 0; k < kPoolSize; ++k) {
    mass += 1.0 / std::pow(static_cast<double>(k + 1), 1.2);
    cdf[k] = mass;
  }
  Rng pick_rng(7);
  std::vector<std::size_t> picks(zipf_jobs);
  for (std::size_t i = 0; i < zipf_jobs; ++i) {
    const double u = pick_rng.uniform() * mass;
    picks[i] = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }

  std::vector<NetworkCell> network;
  network.push_back(run_network_phase(fasta_path, pool, picks, 0));
  network.push_back(run_network_phase(fasta_path, pool, picks, 256));
  std::remove(fasta_path.c_str());

  std::printf("\n# networked zipfian repeat (%zu jobs, pool %zu, 4 tenants)\n",
              zipf_jobs, kPoolSize);
  std::printf("%8s %10s %14s %14s %10s\n", "cache", "jobs_s", "p50_latency_s",
              "p99_latency_s", "hit_rate");
  for (const NetworkCell& cell : network)
    std::printf("%8zu %10.2f %14.6f %14.6f %10.3f\n", cell.cache_entries,
                cell.jobs_per_second, cell.p50_latency_s, cell.p99_latency_s,
                cell.hit_rate);
  const bool cache_helped =
      network[1].hit_rate > 0.5 &&
      network[1].p99_latency_s <= network[0].p99_latency_s;
  std::printf("# cache-on beats cache-off (hit rate > 0.5, p99 <=): %s\n",
              cache_helped ? "yes" : "NO");

  // ---- phase 3: 3:1 weighted fairness through one worker.
  const FairnessResult fairness =
      run_fairness_phase(scale == Scale::kQuick ? 24 : 40);
  std::printf("\n# weighted fairness: heavy=%llu light=%llu ratio=%.3f "
              "(target 3.0 +/- 10%%)\n",
              static_cast<unsigned long long>(fairness.completed_heavy),
              static_cast<unsigned long long>(fairness.completed_light),
              fairness.ratio);
  const bool fair = fairness.ratio >= 2.7 && fairness.ratio <= 3.3;
  if (!fair) std::printf("# FAIRNESS OUT OF TOLERANCE\n");

  // ---- phase 4: overload, with and without deadlines + shedding.
  DatasetPlan overload_plan;
  overload_plan.num_taxa = 24;
  overload_plan.num_sites = 120;
  overload_plan.seed = 4242;
  const PlannedDataset overload_data = make_dna_dataset(overload_plan);
  // Price one job empirically; the shed budget is phrased in multiples of
  // this, so the phase self-scales to the host (and to sanitizer slowdown).
  double per_job_s;
  {
    Timer probe_timer;
    Session probe_session(Alignment(overload_data.alignment),
                          Tree(overload_data.tree), benchmark_gtr(),
                          SessionOptions{});
    probe_session.evaluate();
    per_job_s = std::max(probe_timer.seconds(), 1e-4);
  }
  const std::size_t offered =
      scale == Scale::kQuick ? 48 : (scale == Scale::kFull ? 128 : 64);
  const OverloadCell unprotected =
      run_overload_phase(overload_data, offered, per_job_s, false);
  const OverloadCell protected_cell =
      run_overload_phase(overload_data, offered, per_job_s, true);
  std::printf("\n# overload: %zu jobs on 1 worker (~%.4fs each, shed budget "
              "8x, deadline 16x)\n",
              offered, per_job_s);
  std::printf("%12s %9s %9s %6s %8s %10s %16s\n", "config", "offered",
              "accepted", "shed", "expired", "shed_rate", "p99_accepted_s");
  for (const OverloadCell* cell : {&unprotected, &protected_cell})
    std::printf("%12s %9zu %9zu %6zu %8zu %10.3f %16.6f\n",
                cell->protected_run ? "protected" : "unprotected",
                cell->offered, cell->accepted, cell->shed, cell->expired,
                cell->shed_rate, cell->p99_accepted_s);
  const bool overload_bounded =
      protected_cell.p99_accepted_s <= unprotected.p99_accepted_s &&
      protected_cell.accepted > 0;
  std::printf("# shedding bounds accepted p99 (protected <= unprotected): "
              "%s\n",
              overload_bounded ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"service_throughput\",\n");
    std::fprintf(out, "  \"scale\": \"%s\",\n  \"jobs\": %zu,\n",
                 scale_name(scale), jobs);
    std::fprintf(out, "  \"deterministic\": %s,\n  \"sweep\": [\n",
                 deterministic ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const SweepCell& cell = cells[i];
      std::fprintf(out,
                   "    {\"workers\": %zu, \"ram_budget_bytes\": %llu, "
                   "\"jobs_per_second\": %.4f, \"speedup_vs_serial\": %.4f, "
                   "\"miss_rate\": %.6f, \"peak_charged_bytes\": %llu, "
                   "\"degraded_jobs\": %zu}%s\n",
                   cell.workers,
                   static_cast<unsigned long long>(cell.budget),
                   cell.jobs_per_second,
                   base > 0.0 ? cell.jobs_per_second / base : 0.0,
                   cell.miss_rate,
                   static_cast<unsigned long long>(cell.peak_bytes),
                   cell.degraded, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"network\": [\n");
    for (std::size_t i = 0; i < network.size(); ++i) {
      const NetworkCell& cell = network[i];
      std::fprintf(out,
                   "    {\"cache_entries\": %zu, \"jobs\": %zu, "
                   "\"jobs_per_second\": %.4f, \"p50_latency_s\": %.6f, "
                   "\"p99_latency_s\": %.6f, \"cache_hit_rate\": %.4f}%s\n",
                   cell.cache_entries, cell.jobs, cell.jobs_per_second,
                   cell.p50_latency_s, cell.p99_latency_s, cell.hit_rate,
                   i + 1 < network.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"fairness\": {\"weights\": \"3:1\", "
                 "\"completed_heavy\": %llu, \"completed_light\": %llu, "
                 "\"ratio\": %.4f, \"within_tolerance\": %s},\n",
                 static_cast<unsigned long long>(fairness.completed_heavy),
                 static_cast<unsigned long long>(fairness.completed_light),
                 fairness.ratio, fair ? "true" : "false");
    std::fprintf(out, "  \"overload\": [\n");
    const OverloadCell* overload_cells[] = {&unprotected, &protected_cell};
    for (std::size_t i = 0; i < 2; ++i) {
      const OverloadCell& cell = *overload_cells[i];
      std::fprintf(out,
                   "    {\"protected\": %s, \"offered\": %zu, "
                   "\"accepted\": %zu, \"shed\": %zu, \"expired\": %zu, "
                   "\"shed_rate\": %.4f, \"p99_accepted_s\": %.6f}%s\n",
                   cell.protected_run ? "true" : "false", cell.offered,
                   cell.accepted, cell.shed, cell.expired, cell.shed_rate,
                   cell.p99_accepted_s, i == 0 ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"overload_p99_bounded\": %s\n",
                 overload_bounded ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
  }
  return deterministic && fair && overload_bounded ? 0 : 1;
}
