// Batch-service throughput: jobs/sec and aggregate miss rate as a function
// of worker count and the global slot-memory budget (docs/service.md).
//
// Expected shape: job-level speedup > 1 at 4 workers vs 1 worker under an
// unlimited budget; tightening --ram-budget degrades jobs to smaller
// out-of-core stores (higher miss rate) while peak charged slot memory stays
// within the budget; log likelihoods are bit-identical across every cell of
// the sweep (the service's determinism contract).
//
// `--json <path>` additionally writes the sweep as a machine-readable report
// (one object per cell) for CI artifacts and trend tracking.
#include <cmath>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "likelihood/memory_model.hpp"
#include "service/service.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct SweepCell {
  std::size_t workers;
  std::uint64_t budget;
  double jobs_per_second = 0.0;
  double miss_rate = 0.0;
  std::uint64_t peak_bytes = 0;
  std::size_t degraded = 0;
};

JobSpec make_job(const SearchDataset& dataset, std::size_t index) {
  JobSpec spec{"job-" + std::to_string(index + 1), dataset.alignment,
               dataset.start_tree, benchmark_gtr(), SessionOptions{}};
  spec.session.backend = Backend::kOutOfCore;
  spec.session.ram_fraction = 0.25;
  spec.session.policy = ReplacementPolicy::kLru;
  spec.session.seed = index + 1;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 48 : 128;
  const std::size_t sites = scale == Scale::kQuick ? 240 : 600;
  const std::size_t jobs = scale == Scale::kFull ? 32 : 16;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 20110516);
  print_header("Service throughput: workers x global RAM budget", dataset,
               scale);

  // Price one job with the same conservative model the scheduler uses.
  const JobSpec probe = make_job(dataset, 0);
  const JobDemand demand = JobDemand::from_spec(probe);
  const std::uint64_t desired = demand.desired_bytes();
  std::printf("# %zu jobs, per-job demand %llu B (min %llu B)\n", jobs,
              static_cast<unsigned long long>(desired),
              static_cast<unsigned long long>(demand.minimum_bytes()));

  const std::size_t worker_counts[] = {1, 2, 4};
  // 0 = unlimited; 1.5x one job leaves a half-desired remainder that forces
  // a concurrent peer into a degraded (smaller-store) admission; 1x
  // serialises peers entirely.
  const std::uint64_t budgets[] = {0, desired + desired / 2, desired};

  std::vector<double> reference;  // logLs of the first cell, by job index
  bool deterministic = true;
  std::vector<SweepCell> cells;
  for (const std::size_t workers : worker_counts) {
    for (const std::uint64_t budget : budgets) {
      ServiceOptions options;
      options.workers = workers;
      options.queue_capacity = jobs;
      options.ram_budget_bytes = budget;
      Service service(options);
      Timer timer;
      for (std::size_t j = 0; j < jobs; ++j)
        service.submit(make_job(dataset, j));
      const std::vector<JobResult> results = service.drain();
      const double wall = timer.seconds();

      SweepCell cell{workers, budget};
      cell.jobs_per_second = wall > 0.0 ? results.size() / wall : 0.0;
      cell.miss_rate = service.merged_stats().miss_rate();
      cell.peak_bytes = service.peak_charged_bytes();
      if (reference.empty()) {
        for (const JobResult& r : results)
          reference.push_back(r.log_likelihood);
      }
      for (std::size_t j = 0; j < results.size(); ++j) {
        if (results[j].status != JobStatus::kDone ||
            results[j].log_likelihood != reference[j])
          deterministic = false;
        if (results[j].degraded) ++cell.degraded;
      }
      cells.push_back(cell);
      std::fflush(stdout);
    }
  }

  const double base = cells.front().jobs_per_second;  // 1 worker, unlimited
  std::printf("%8s %14s %10s %10s %12s %14s %9s\n", "workers", "budget_B",
              "jobs_s", "speedup", "miss_rate_%", "peak_B", "degraded");
  for (const SweepCell& cell : cells) {
    char budget_text[32];
    if (cell.budget == 0)
      std::snprintf(budget_text, sizeof budget_text, "%s", "unlimited");
    else
      std::snprintf(budget_text, sizeof budget_text, "%llu",
                    static_cast<unsigned long long>(cell.budget));
    std::printf("%8zu %14s %10.2f %10.2f %12.3f %14llu %9zu\n", cell.workers,
                budget_text, cell.jobs_per_second,
                base > 0.0 ? cell.jobs_per_second / base : 0.0,
                100.0 * cell.miss_rate,
                static_cast<unsigned long long>(cell.peak_bytes),
                cell.degraded);
  }
  std::printf("# deterministic across all cells: %s\n",
              deterministic ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"service_throughput\",\n");
    std::fprintf(out, "  \"scale\": \"%s\",\n  \"jobs\": %zu,\n",
                 scale_name(scale), jobs);
    std::fprintf(out, "  \"deterministic\": %s,\n  \"sweep\": [\n",
                 deterministic ? "true" : "false");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const SweepCell& cell = cells[i];
      std::fprintf(out,
                   "    {\"workers\": %zu, \"ram_budget_bytes\": %llu, "
                   "\"jobs_per_second\": %.4f, \"speedup_vs_serial\": %.4f, "
                   "\"miss_rate\": %.6f, \"peak_charged_bytes\": %llu, "
                   "\"degraded_jobs\": %zu}%s\n",
                   cell.workers,
                   static_cast<unsigned long long>(cell.budget),
                   cell.jobs_per_second,
                   base > 0.0 ? cell.jobs_per_second / base : 0.0,
                   cell.miss_rate,
                   static_cast<unsigned long long>(cell.peak_bytes),
                   cell.degraded, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  return deterministic ? 0 : 1;
}
