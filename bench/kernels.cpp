// Microbenchmarks of the PLF inner loops (google-benchmark): newview and
// branch evaluation across state counts, child kinds and Γ settings. These
// support the experiment harnesses by quantifying the pure compute cost per
// ancestral-vector element, independent of storage.
#include <benchmark/benchmark.h>

#include <vector>

#include "likelihood/kernels.hpp"
#include "model/eigen.hpp"
#include "model/gamma.hpp"
#include "model/protein_matrices.hpp"
#include "model/transition.hpp"
#include "util/rng.hpp"

namespace plfoc {
namespace {

struct KernelFixture {
  KernelDims dims;
  std::vector<double> left;
  std::vector<double> right;
  std::vector<double> parent;
  std::vector<std::int32_t> lscale;
  std::vector<std::int32_t> rscale;
  std::vector<std::int32_t> pscale;
  std::vector<double> pmat_left;
  std::vector<double> pmat_right;
  std::vector<std::uint8_t> codes;
  std::vector<double> lookup;
  std::vector<double> freqs;
  std::vector<double> weights;
  EigenSystem eigen;

  KernelFixture(std::size_t patterns, unsigned categories, unsigned states)
      : dims{patterns, categories, states} {
    const std::size_t width =
        patterns * categories * states;
    Rng rng(7);
    left.resize(width);
    right.resize(width);
    parent.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      left[i] = rng.uniform(0.01, 1.0);
      right[i] = rng.uniform(0.01, 1.0);
    }
    lscale.assign(patterns, 0);
    rscale.assign(patterns, 0);
    pscale.assign(patterns, 0);
    eigen = (states == 4) ? decompose(jc69())
                          : decompose(synthetic_protein_model(3));
    const std::vector<double> rates =
        discrete_gamma_rates(0.6, categories);
    category_transition_matrices(eigen, 0.13, rates, pmat_left);
    category_transition_matrices(eigen, 0.29, rates, pmat_right);
    codes.resize(patterns);
    const unsigned ncodes = states == 4 ? 16 : 24;
    for (std::size_t p = 0; p < patterns; ++p)
      codes[p] = static_cast<std::uint8_t>(
          states == 4 ? 1u << rng.below(4) : rng.below(20));
    lookup.assign(static_cast<std::size_t>(ncodes) * categories * states, 0.3);
    freqs.assign(states, 1.0 / states);
    weights.assign(patterns, 1.0);
  }

  NewviewChild inner_left() const {
    return {left.data(), lscale.data(), pmat_left.data(), nullptr, nullptr};
  }
  NewviewChild inner_right() const {
    return {right.data(), rscale.data(), pmat_right.data(), nullptr, nullptr};
  }
  NewviewChild tip_child() const {
    return {nullptr, nullptr, nullptr, codes.data(), lookup.data()};
  }
};

void BM_NewviewInnerInner(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)),
                   static_cast<unsigned>(state.range(1)),
                   static_cast<unsigned>(state.range(2)));
  for (auto _ : state) {
    newview(fx.dims, fx.inner_left(), fx.inner_right(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewInnerInner)
    ->Args({1200, 4, 4})
    ->Args({1200, 1, 4})
    ->Args({1200, 4, 20})
    ->Args({10000, 4, 4});

void BM_NewviewTipTip(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  for (auto _ : state) {
    newview(fx.dims, fx.tip_child(), fx.tip_child(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewTipTip)->Arg(1200)->Arg(10000);

void BM_NewviewTipInner(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  for (auto _ : state) {
    newview(fx.dims, fx.tip_child(), fx.inner_right(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewTipInner)->Arg(1200)->Arg(10000);

void BM_EvaluateBranch(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)),
                   static_cast<unsigned>(state.range(1)),
                   static_cast<unsigned>(state.range(2)));
  EvalSide near_side{fx.left.data(), fx.lscale.data(), nullptr,
                     nullptr,        nullptr,          nullptr, nullptr};
  EvalSide far_side{fx.right.data(), fx.rscale.data(), nullptr,
                    nullptr,         nullptr,          nullptr, nullptr};
  for (auto _ : state) {
    const BranchValue value =
        evaluate_branch(fx.dims, fx.freqs.data(), fx.weights.data(), near_side,
                        far_side, fx.pmat_left.data(), nullptr, nullptr,
                        false);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_EvaluateBranch)
    ->Args({1200, 4, 4})
    ->Args({1200, 4, 20})
    ->Args({10000, 4, 4});

void BM_EvaluateWithDerivatives(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  std::vector<double> dmat(fx.pmat_left.size());
  std::vector<double> d2mat(fx.pmat_left.size());
  for (unsigned c = 0; c < 4; ++c)
    transition_derivatives(fx.eigen, 0.13, nullptr, dmat.data() + c * 16,
                           d2mat.data() + c * 16);
  EvalSide near_side{fx.left.data(), fx.lscale.data(), nullptr,
                     nullptr,        nullptr,          nullptr, nullptr};
  EvalSide far_side{fx.right.data(), fx.rscale.data(), nullptr,
                    nullptr,         nullptr,          nullptr, nullptr};
  for (auto _ : state) {
    const BranchValue value = evaluate_branch(
        fx.dims, fx.freqs.data(), fx.weights.data(), near_side, far_side,
        fx.pmat_left.data(), dmat.data(), d2mat.data(), true);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_EvaluateWithDerivatives)->Arg(1200);

void BM_TransitionMatrix(benchmark::State& state) {
  const EigenSystem eigen = state.range(0) == 4
                                ? decompose(jc69())
                                : decompose(synthetic_protein_model(3));
  const std::vector<double> rates = discrete_gamma_rates(0.6, 4);
  std::vector<double> pmats;
  for (auto _ : state) {
    category_transition_matrices(eigen, 0.2, rates, pmats);
    benchmark::DoNotOptimize(pmats.data());
  }
}
BENCHMARK(BM_TransitionMatrix)->Arg(4)->Arg(20);

}  // namespace
}  // namespace plfoc

BENCHMARK_MAIN();
