// Microbenchmarks of the PLF inner loops (google-benchmark): newview and
// branch evaluation across state counts, child kinds and Γ settings. These
// support the experiment harnesses by quantifying the pure compute cost per
// ancestral-vector element, independent of storage.
//
// Thread-scaling mode (docs/parallelism.md): `kernels --json <path>
// [--threads 1,2,4]` skips google-benchmark and instead sweeps the
// block-parallel kernels over patterns x categories x threads, writing a
// machine-readable JSON report with per-cell throughput and speedup_vs_1.
// CI's bench smoke runs this at --threads 1,2 and uploads the artifact.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "likelihood/kernel_pool.hpp"
#include "likelihood/kernels.hpp"
#include "model/eigen.hpp"
#include "model/gamma.hpp"
#include "model/protein_matrices.hpp"
#include "model/transition.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace plfoc {
namespace {

struct KernelFixture {
  KernelDims dims;
  std::vector<double> left;
  std::vector<double> right;
  std::vector<double> parent;
  std::vector<std::int32_t> lscale;
  std::vector<std::int32_t> rscale;
  std::vector<std::int32_t> pscale;
  std::vector<double> pmat_left;
  std::vector<double> pmat_right;
  std::vector<std::uint8_t> codes;
  std::vector<double> lookup;
  std::vector<double> freqs;
  std::vector<double> weights;
  EigenSystem eigen;

  KernelFixture(std::size_t patterns, unsigned categories, unsigned states)
      : dims{patterns, categories, states} {
    const std::size_t width =
        patterns * categories * states;
    Rng rng(7);
    left.resize(width);
    right.resize(width);
    parent.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      left[i] = rng.uniform(0.01, 1.0);
      right[i] = rng.uniform(0.01, 1.0);
    }
    lscale.assign(patterns, 0);
    rscale.assign(patterns, 0);
    pscale.assign(patterns, 0);
    eigen = (states == 4) ? decompose(jc69())
                          : decompose(synthetic_protein_model(3));
    const std::vector<double> rates =
        discrete_gamma_rates(0.6, categories);
    category_transition_matrices(eigen, 0.13, rates, pmat_left);
    category_transition_matrices(eigen, 0.29, rates, pmat_right);
    codes.resize(patterns);
    const unsigned ncodes = states == 4 ? 16 : 24;
    for (std::size_t p = 0; p < patterns; ++p)
      codes[p] = static_cast<std::uint8_t>(
          states == 4 ? 1u << rng.below(4) : rng.below(20));
    lookup.assign(static_cast<std::size_t>(ncodes) * categories * states, 0.3);
    freqs.assign(states, 1.0 / states);
    weights.assign(patterns, 1.0);
  }

  NewviewChild inner_left() const {
    return {left.data(), lscale.data(), pmat_left.data(), nullptr, nullptr};
  }
  NewviewChild inner_right() const {
    return {right.data(), rscale.data(), pmat_right.data(), nullptr, nullptr};
  }
  NewviewChild tip_child() const {
    return {nullptr, nullptr, nullptr, codes.data(), lookup.data()};
  }
};

void BM_NewviewInnerInner(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)),
                   static_cast<unsigned>(state.range(1)),
                   static_cast<unsigned>(state.range(2)));
  for (auto _ : state) {
    newview(fx.dims, fx.inner_left(), fx.inner_right(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewInnerInner)
    ->Args({1200, 4, 4})
    ->Args({1200, 1, 4})
    ->Args({1200, 4, 20})
    ->Args({10000, 4, 4});

void BM_NewviewTipTip(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  for (auto _ : state) {
    newview(fx.dims, fx.tip_child(), fx.tip_child(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewTipTip)->Arg(1200)->Arg(10000);

void BM_NewviewTipInner(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  for (auto _ : state) {
    newview(fx.dims, fx.tip_child(), fx.inner_right(), fx.parent.data(),
            fx.pscale.data());
    benchmark::DoNotOptimize(fx.parent.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_NewviewTipInner)->Arg(1200)->Arg(10000);

void BM_EvaluateBranch(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)),
                   static_cast<unsigned>(state.range(1)),
                   static_cast<unsigned>(state.range(2)));
  EvalSide near_side{fx.left.data(), fx.lscale.data(), nullptr,
                     nullptr,        nullptr,          nullptr, nullptr};
  EvalSide far_side{fx.right.data(), fx.rscale.data(), nullptr,
                    nullptr,         nullptr,          nullptr, nullptr};
  for (auto _ : state) {
    const BranchValue value =
        evaluate_branch(fx.dims, fx.freqs.data(), fx.weights.data(), near_side,
                        far_side, fx.pmat_left.data(), nullptr, nullptr,
                        false);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_EvaluateBranch)
    ->Args({1200, 4, 4})
    ->Args({1200, 4, 20})
    ->Args({10000, 4, 4});

void BM_EvaluateWithDerivatives(benchmark::State& state) {
  KernelFixture fx(static_cast<std::size_t>(state.range(0)), 4, 4);
  std::vector<double> dmat(fx.pmat_left.size());
  std::vector<double> d2mat(fx.pmat_left.size());
  for (unsigned c = 0; c < 4; ++c)
    transition_derivatives(fx.eigen, 0.13, nullptr, dmat.data() + c * 16,
                           d2mat.data() + c * 16);
  EvalSide near_side{fx.left.data(), fx.lscale.data(), nullptr,
                     nullptr,        nullptr,          nullptr, nullptr};
  EvalSide far_side{fx.right.data(), fx.rscale.data(), nullptr,
                    nullptr,         nullptr,          nullptr, nullptr};
  for (auto _ : state) {
    const BranchValue value = evaluate_branch(
        fx.dims, fx.freqs.data(), fx.weights.data(), near_side, far_side,
        fx.pmat_left.data(), dmat.data(), d2mat.data(), true);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.dims.patterns));
}
BENCHMARK(BM_EvaluateWithDerivatives)->Arg(1200);

void BM_TransitionMatrix(benchmark::State& state) {
  const EigenSystem eigen = state.range(0) == 4
                                ? decompose(jc69())
                                : decompose(synthetic_protein_model(3));
  const std::vector<double> rates = discrete_gamma_rates(0.6, 4);
  std::vector<double> pmats;
  for (auto _ : state) {
    category_transition_matrices(eigen, 0.2, rates, pmats);
    benchmark::DoNotOptimize(pmats.data());
  }
}
BENCHMARK(BM_TransitionMatrix)->Arg(4)->Arg(20);

// ---------------------------------------------------------------------------
// --json mode: thread-scaling sweep with a machine-readable report.

struct SweepRow {
  const char* kernel;
  std::size_t patterns;
  unsigned categories;
  unsigned threads;
  double seconds_per_call = 0.0;
  double patterns_per_second = 0.0;
  double speedup_vs_1 = 1.0;
};

/// Wall-time one kernel invocation, auto-scaling repetitions until the
/// measurement window is long enough to trust on a noisy CI host.
template <typename Fn>
double time_per_call(const Fn& fn) {
  fn();  // warm-up (page-in, pool wake-up)
  std::size_t reps = 1;
  for (;;) {
    Timer timer;
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double elapsed = timer.seconds();
    if (elapsed >= 0.05 || reps >= (1u << 20))
      return elapsed / static_cast<double>(reps);
    reps *= 4;
  }
}

int run_json_sweep(const std::string& json_path,
                   const std::vector<unsigned>& thread_counts) {
  const std::size_t pattern_counts[] = {1024, 8192};
  const unsigned category_counts[] = {1, 4};
  std::vector<SweepRow> rows;

  for (const std::size_t patterns : pattern_counts) {
    for (const unsigned categories : category_counts) {
      KernelFixture fx(patterns, categories, 4);
      EvalSide near_side{fx.left.data(), fx.lscale.data(), nullptr,
                         nullptr,        nullptr,          nullptr, nullptr};
      EvalSide far_side{fx.right.data(), fx.rscale.data(), nullptr,
                        nullptr,         nullptr,          nullptr, nullptr};
      double newview_base = 0.0;
      double evaluate_base = 0.0;
      for (const unsigned threads : thread_counts) {
        KernelPool pool(threads);
        KernelPool* handle = threads > 1 ? &pool : nullptr;

        SweepRow nv{"newview", patterns, categories, threads};
        nv.seconds_per_call = time_per_call([&] {
          newview(fx.dims, fx.inner_left(), fx.inner_right(),
                  fx.parent.data(), fx.pscale.data(), handle);
          benchmark::DoNotOptimize(fx.parent.data());
        });
        nv.patterns_per_second =
            static_cast<double>(patterns) / nv.seconds_per_call;
        if (newview_base == 0.0) newview_base = nv.seconds_per_call;
        nv.speedup_vs_1 = newview_base / nv.seconds_per_call;
        rows.push_back(nv);

        SweepRow ev{"evaluate_branch", patterns, categories, threads};
        ev.seconds_per_call = time_per_call([&] {
          const BranchValue value = evaluate_branch(
              fx.dims, fx.freqs.data(), fx.weights.data(), near_side,
              far_side, fx.pmat_left.data(), nullptr, nullptr, false, handle);
          benchmark::DoNotOptimize(value);
        });
        ev.patterns_per_second =
            static_cast<double>(patterns) / ev.seconds_per_call;
        if (evaluate_base == 0.0) evaluate_base = ev.seconds_per_call;
        ev.speedup_vs_1 = evaluate_base / ev.seconds_per_call;
        rows.push_back(ev);
      }
    }
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"kernels\",\n");
  std::fprintf(out, "  \"pattern_block\": %zu,\n", kPatternBlock);
  std::fprintf(out, "  \"states\": 4,\n  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"patterns\": %zu, "
                 "\"categories\": %u, \"threads\": %u, "
                 "\"seconds_per_call\": %.9e, \"patterns_per_second\": %.6e, "
                 "\"speedup_vs_1\": %.4f}%s\n",
                 row.kernel, row.patterns, row.categories, row.threads,
                 row.seconds_per_call, row.patterns_per_second,
                 row.speedup_vs_1, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %zu sweep rows to %s\n", rows.size(), json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace plfoc

int main(int argc, char** argv) {
  // --json <path> switches to the thread-scaling sweep; anything else is
  // handed to google-benchmark untouched.
  std::string json_path;
  std::vector<unsigned> thread_counts = {1, 2, 4};
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      const std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const unsigned long value = std::strtoul(item.c_str(), nullptr, 10);
        if (value > 0) thread_counts.push_back(static_cast<unsigned>(value));
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
      if (thread_counts.empty()) thread_counts = {1};
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty())
    return plfoc::run_json_sweep(json_path, thread_counts);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
