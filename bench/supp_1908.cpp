// Online-supplement reproduction: the 1908-taxon x 1424-site analogue of
// Figures 2 and 3 (the paper reports "analogous plots with slightly better
// miss rates" for this larger dataset). One grid, both metrics.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 250 : 1908;
  const std::size_t sites = scale == Scale::kQuick ? 350 : 1424;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 19081424);
  print_header(
      "Supplement: miss & read rates, 1908-taxon dataset (Figs. 2-3 analogue)",
      dataset, scale);

  SearchWorkloadOptions workload = workload_for(scale);
  // Keep the harness's total cost comparable to fig2 despite the larger n.
  workload.prune_stride *= 2;

  const double fractions[] = {0.25, 0.50, 0.75};
  const ReplacementPolicy policies[] = {
      ReplacementPolicy::kTopological, ReplacementPolicy::kLfu,
      ReplacementPolicy::kRandom, ReplacementPolicy::kLru};

  std::printf("%-12s %6s %14s %14s %14s\n", "strategy", "f", "miss_rate_%",
              "read_rate_%", "reads_elided_%");
  for (ReplacementPolicy policy : policies) {
    for (double f : fractions) {
      SessionOptions options;
      options.backend = Backend::kOutOfCore;
      options.policy = policy;
      options.ram_fraction = f;
      options.seed = 7;
      const WorkloadResult result =
          run_search_workload(dataset, options, workload);
      const OocStats& stats = result.stats;
      const double elided =
          stats.misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats.skipped_reads) /
                    static_cast<double>(stats.misses);
      std::printf("%-12s %6.2f %14.3f %14.3f %14.1f\n", policy_name(policy), f,
                  100.0 * stats.miss_rate(), 100.0 * stats.read_rate(),
                  elided);
      std::fflush(stdout);
    }
  }
  return 0;
}
