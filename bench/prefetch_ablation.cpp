// Section 5 extension ablation: the paper lists a prefetch thread as future
// work ("we will assess if pre-fetching can be deployed by means of a
// prefetch thread"). We implement it (ooc/prefetch.hpp): the engine submits
// each traversal descriptor's read-set before computing, and a background
// thread swaps the upcoming vectors in while the kernels run. This harness
// compares full-traversal workloads with and without the prefetcher.
#include "bench_common.hpp"

#include "ooc/prefetch.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct AblationResult {
  double wall = 0.0;
  std::uint64_t engine_misses = 0;
  std::uint64_t engine_reads = 0;
  std::uint64_t prefetch_reads = 0;
  double loglik = 0.0;
};

AblationResult run(const PlannedDataset& data, bool with_prefetch,
                   std::uint64_t budget, int traversals) {
  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.policy = ReplacementPolicy::kLru;
  options.ram_budget_bytes = budget;
  options.compress_patterns = false;
  options.seed = 5;
  Session session(data.alignment, data.tree, benchmark_gtr(), options);
  std::unique_ptr<Prefetcher> prefetcher;
  if (with_prefetch) {
    prefetcher = std::make_unique<Prefetcher>(*session.out_of_core());
    session.engine().attach_prefetcher(prefetcher.get());
  }
  // Warm-up traversal populates the file; the measured part starts clean.
  session.engine().full_traversal_log_likelihood();
  session.reset_stats();
  Timer timer;
  AblationResult result;
  for (int i = 0; i < traversals; ++i)
    result.loglik = session.engine().full_traversal_log_likelihood();
  result.wall = timer.seconds();
  result.engine_misses = session.stats().misses;
  result.engine_reads = session.stats().file_reads;
  result.prefetch_reads = session.stats().prefetch_reads;
  return result;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  DatasetPlan plan;
  plan.num_taxa = scale == Scale::kQuick ? 128 : 512;
  plan.target_ancestral_bytes =
      scale == Scale::kQuick ? (16ull << 20) : (256ull << 20);
  plan.seed = 77;
  const PlannedDataset data = make_dna_dataset(plan);
  const std::uint64_t budget = plan.target_ancestral_bytes / 8;
  const int traversals = 3;

  std::printf("# Prefetch-thread ablation: %d full traversals, %zu taxa, "
              "%.0f MiB vectors, %.0f MiB budget, scale=%s\n",
              traversals, plan.num_taxa,
              static_cast<double>(plan.target_ancestral_bytes) / 1048576.0,
              static_cast<double>(budget) / 1048576.0, scale_name(scale));
  std::printf("%-12s %10s %14s %14s %16s\n", "variant", "wall_s",
              "engine_misses", "engine_reads", "prefetch_reads");

  const AblationResult off = run(data, false, budget, traversals);
  std::printf("%-12s %10.1f %14llu %14llu %16llu\n", "baseline", off.wall,
              static_cast<unsigned long long>(off.engine_misses),
              static_cast<unsigned long long>(off.engine_reads),
              static_cast<unsigned long long>(off.prefetch_reads));
  const AblationResult on = run(data, true, budget, traversals);
  std::printf("%-12s %10.1f %14llu %14llu %16llu\n", "prefetch", on.wall,
              static_cast<unsigned long long>(on.engine_misses),
              static_cast<unsigned long long>(on.engine_reads),
              static_cast<unsigned long long>(on.prefetch_reads));

  std::printf("# prefetch moved %.1f%% of swap-in reads off the engine's "
              "critical path\n",
              off.engine_reads == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(off.engine_reads -
                                            on.engine_reads) /
                        static_cast<double>(off.engine_reads));
  if (on.loglik != off.loglik) {
    std::printf("# WARNING: logL mismatch between variants\n");
    return 1;
  }
  return 0;
}
