// Section 3.1 reproduction: the memory-requirement arithmetic of the PLF,
// printed as a table, plus a cross-check of the formulas against the actual
// allocation the library performs for a small live engine.
#include <cstdio>

#include "likelihood/engine.hpp"
#include "likelihood/memory_model.hpp"
#include "ooc/inram_store.hpp"
#include "sim/dataset_planner.hpp"

using namespace plfoc;

namespace {

void print_row(const char* label, const MemoryModel& m) {
  std::printf("%-28s %8zu %9zu %6u %5u %14.3f %16.3f\n", label, m.num_taxa,
              m.num_sites, m.states, m.categories,
              static_cast<double>(m.vector_bytes()) / 1048576.0,
              static_cast<double>(m.ancestral_bytes()) / 1073741824.0);
}

}  // namespace

int main() {
  std::printf("# Section 3.1: ancestral probability vector memory = "
              "(n-2) * 8 * states * categories * s bytes\n");
  std::printf("%-28s %8s %9s %6s %5s %14s %16s\n", "case", "taxa", "sites",
              "states", "cats", "vector_MiB", "ancestral_GiB");

  // The paper's worked example: 10,000 x 10,000 DNA under Γ4 -> 1.28 MB
  // vectors, ~12 GB of ancestral vectors.
  print_row("paper example DNA G4", MemoryModel::dna(10000, 10000, 4));
  print_row("DNA simplest (no rate het.)", MemoryModel::dna(10000, 10000, 1));
  print_row("protein G4", MemoryModel::protein(10000, 10000, 4));
  // The paper's evaluation datasets.
  print_row("eval dataset 1288x1200", MemoryModel::dna(1288, 1200, 4));
  print_row("eval dataset 1908x1424", MemoryModel::dna(1908, 1424, 4));
  // Fig. 5 extremes (8192 taxa; s chosen for 1 GB and 32 GB).
  print_row("fig5 low (1 GB)",
            MemoryModel::dna(8192, sites_for_ancestral_bytes(
                                       8192, 4, 4, 1ull << 30), 4));
  print_row("fig5 high (32 GB)",
            MemoryModel::dna(8192, sites_for_ancestral_bytes(
                                       8192, 4, 4, 32ull << 30), 4));

  // Cross-check the formula against a live engine's store dimensions.
  DatasetPlan plan;
  plan.num_taxa = 64;
  plan.num_sites = 500;
  PlannedDataset data = make_dna_dataset(plan);
  const MemoryModel model = MemoryModel::dna(64, 500, 4);
  InRamStore store(data.tree.num_inner(),
                   LikelihoodEngine::vector_width(data.alignment, 4));
  const std::uint64_t actual =
      static_cast<std::uint64_t>(store.count()) * store.width() * 8;
  std::printf("\n# live cross-check (64 x 500, uncompressed): formula %llu B, "
              "store allocates %llu B -> %s\n",
              static_cast<unsigned long long>(model.ancestral_bytes()),
              static_cast<unsigned long long>(actual),
              model.ancestral_bytes() == actual ? "MATCH" : "MISMATCH");
  return model.ancestral_bytes() == actual ? 0 : 1;
}
