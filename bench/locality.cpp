// Section 4.2 reproduction: where does the PLF's access locality come from?
//
// The paper attributes the low miss rates to (a) branch-length optimisation
// — a Newton-Raphson loop that touches only the two vectors at the ends of
// one branch, accounting for 20-30% of execution time — and (b) lazy SPR
// re-optimising only three branches per move. This harness measures, per
// workload phase, the miss rate at a harsh memory limit (f = 0.05) and the
// share of vector accesses each phase generates.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct PhaseRow {
  const char* phase;
  OocStats stats;
  double seconds;
};

void print_row(const PhaseRow& row, std::uint64_t total_accesses) {
  std::printf("%-24s %12llu %10.1f %14.3f %12.1f\n", row.phase,
              static_cast<unsigned long long>(row.stats.accesses),
              100.0 * static_cast<double>(row.stats.accesses) /
                  static_cast<double>(total_accesses),
              100.0 * row.stats.miss_rate(), row.seconds);
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 128 : 512;
  const std::size_t sites = scale == Scale::kQuick ? 200 : 600;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 452);

  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.policy = ReplacementPolicy::kLru;
  options.ram_fraction = 0.05;
  options.seed = 11;
  Session session(dataset.alignment, dataset.start_tree, benchmark_gtr(),
                  options);
  LikelihoodEngine& engine = session.engine();

  print_header("Section 4.2: access locality by workload phase (f = 0.05)",
               dataset, scale);

  std::vector<PhaseRow> rows;
  const auto run_phase = [&](const char* name, auto&& body) {
    session.reset_stats();
    Timer timer;
    body();
    rows.push_back({name, session.stats(), timer.seconds()});
  };

  run_phase("full traversal (worst)", [&] {
    engine.orientation().invalidate_all();
    engine.full_traversal_log_likelihood();
  });
  run_phase("branch smoothing pass", [&] { engine.optimize_all_branches(1); });
  run_phase("alpha optimisation", [&] { optimize_alpha(engine, 0.05, 20.0, 1e-2); });
  run_phase("lazy SPR round", [&] {
    SprOptions spr;
    spr.rounds = 1;
    spr.prune_stride = scale == Scale::kQuick ? 4 : 8;
    spr_search(engine, spr);
  });

  std::uint64_t total = 0;
  for (const PhaseRow& row : rows) total += row.stats.accesses;

  std::printf("%-24s %12s %10s %14s %12s\n", "phase", "accesses", "share_%",
              "miss_rate_%", "seconds");
  for (const PhaseRow& row : rows) print_row(row, total);

  // The paper's qualitative claims, checked mechanically:
  const double full_miss = rows[0].stats.miss_rate();
  const double smooth_miss = rows[1].stats.miss_rate();
  const double spr_miss = rows[3].stats.miss_rate();
  std::printf("\n# branch smoothing miss rate %.3f%% vs full traversal "
              "%.3f%% -> locality factor %.1fx\n",
              100.0 * smooth_miss, 100.0 * full_miss,
              smooth_miss > 0 ? full_miss / smooth_miss : 0.0);
  std::printf("# lazy SPR miss rate %.3f%%\n", 100.0 * spr_miss);
  return (smooth_miss < full_miss && spr_miss < full_miss) ? 0 : 1;
}
