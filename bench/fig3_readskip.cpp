// Figure 3 reproduction: the effect of read skipping. Same grid as Figure 2,
// but reporting the *read rate* — the fraction of vector accesses that issue
// an actual file read. Without read skipping the read rate equals the miss
// rate; with it, more than half of all reads (> 25% of all I/O operations)
// are elided because a vector whose first access is write-only need not be
// swapped in from disk (Sec. 3.4).
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 200 : 1288;
  const std::size_t sites = scale == Scale::kQuick ? 300 : 1200;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 20110516);
  print_header("Figure 3: read rate with read skipping", dataset, scale);

  const SearchWorkloadOptions workload = workload_for(scale);
  const double fractions[] = {0.25, 0.50, 0.75};
  const ReplacementPolicy policies[] = {
      ReplacementPolicy::kTopological, ReplacementPolicy::kLfu,
      ReplacementPolicy::kRandom, ReplacementPolicy::kLru};

  std::printf("%-12s %6s %14s %14s %14s %16s\n", "strategy", "f",
              "miss_rate_%", "read_rate_%", "reads_elided_%",
              "io_ops_saved_%");
  for (ReplacementPolicy policy : policies) {
    for (double f : fractions) {
      SessionOptions options;
      options.backend = Backend::kOutOfCore;
      options.policy = policy;
      options.ram_fraction = f;
      options.read_skipping = true;
      options.seed = 7;
      const WorkloadResult result =
          run_search_workload(dataset, options, workload);
      const OocStats& stats = result.stats;
      // Without read skipping every miss would read: reads-elided is the
      // fraction of would-be reads that were skipped, and the total I/O
      // saving counts writes too (Sec. 4.1: >50% of reads, >25% of all I/O).
      const double elided =
          stats.misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats.skipped_reads) /
                    static_cast<double>(stats.misses);
      const std::uint64_t io_with_skip = stats.file_reads + stats.file_writes;
      const std::uint64_t io_without = stats.misses + stats.file_writes;
      const double io_saved =
          io_without == 0
              ? 0.0
              : 100.0 * static_cast<double>(io_without - io_with_skip) /
                    static_cast<double>(io_without);
      std::printf("%-12s %6.2f %14.3f %14.3f %14.1f %16.1f\n",
                  policy_name(policy), f, 100.0 * stats.miss_rate(),
                  100.0 * stats.read_rate(), elided, io_saved);
      std::fflush(stdout);
    }
  }
  return 0;
}
