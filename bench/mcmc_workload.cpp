// Bayesian-workload experiment: the paper's claim that the out-of-core
// concepts "can be applied to all PLF-based programs (ML and Bayesian)".
//
// Runs a Metropolis-Hastings chain (branch multipliers + NNI) on the
// out-of-core store at several RAM fractions and reports the miss rate —
// MCMC touches two vectors per branch proposal and a small neighbourhood per
// NNI, so its locality should be at least as good as the lazy-SPR search's.
#include "bench_common.hpp"

#include "search/mcmc.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 128 : 512;
  const std::size_t sites = scale == Scale::kQuick ? 200 : 600;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 6120);
  print_header("Bayesian workload: MCMC miss rates out-of-core", dataset,
               scale);
  const std::uint64_t iterations = scale == Scale::kQuick ? 2000 : 10000;

  std::printf("%10s %8s %14s %14s %12s %14s\n", "f", "slots", "accesses",
              "miss_rate_%", "accept_%", "logpost_ok");
  double reference = 0.0;
  bool have_reference = false;
  for (double f : {0.25, 0.10, 0.05, 0.02}) {
    SessionOptions options;
    options.backend = Backend::kOutOfCore;
    options.policy = ReplacementPolicy::kLru;
    options.ram_fraction = f;
    options.seed = 7;
    Session session(dataset.alignment, dataset.start_tree, benchmark_gtr(),
                    options);
    // Burn the cold population into the stats just like the other harnesses.
    Rng rng(4242);
    McmcOptions mcmc;
    mcmc.iterations = iterations;
    const McmcResult result = run_mcmc(session.engine(), rng, mcmc);
    const OocStats& stats = session.stats();
    if (!have_reference) {
      reference = result.final_log_posterior;
      have_reference = true;
    }
    std::printf("%10.3f %8zu %14llu %14.3f %12.1f %14s\n", f,
                session.out_of_core()->num_slots(),
                static_cast<unsigned long long>(stats.accesses),
                100.0 * stats.miss_rate(),
                100.0 * result.branch_acceptance(),
                result.final_log_posterior == reference ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
