// Section 5 extension experiment: the three-layer hierarchy.
//
// "They can also be deployed for exchanging vectors between the relatively
//  small memory of an accelerator card [...] and the main memory [...]. One
//  may also envision a three-layer architecture."
//
// Sweeps the split between (small) accelerator-memory slots and host-RAM
// slots at a fixed total budget and reports how host<->device transfers and
// disk I/O trade off under the search workload.
#include "bench_common.hpp"

#include "ooc/tiered_store.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 128 : 512;
  const std::size_t sites = scale == Scale::kQuick ? 200 : 600;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 7321);
  print_header("Three-layer hierarchy: accelerator/RAM split sweep", dataset,
               scale);
  SearchWorkloadOptions workload = workload_for(scale);

  const std::size_t vectors = dataset.start_tree.num_inner();
  const std::size_t total_slots = std::max<std::size_t>(vectors / 5, 16);
  std::printf("# %zu vectors, %zu total slots split fast/ram\n", vectors,
              total_slots);
  std::printf("%8s %8s %14s %14s %14s %14s %10s\n", "fast", "ram",
              "miss_rate_%", "promotions", "demotions", "disk_reads",
              "logL_ok");

  double reference_ll = 0.0;
  bool have_reference = false;
  for (double fast_share : {0.1, 0.25, 0.5, 0.75}) {
    const std::size_t fast =
        std::max<std::size_t>(3, static_cast<std::size_t>(
                                     fast_share * static_cast<double>(total_slots)));
    const std::size_t ram = std::max<std::size_t>(1, total_slots - fast);
    SessionOptions options;
    options.backend = Backend::kTiered;
    options.tiered_fast_slots = fast;
    options.tiered_ram_slots = ram;
    options.seed = 7;

    Session session(dataset.alignment, dataset.start_tree, benchmark_gtr(),
                    options);
    SearchOptions search;
    search.spr.rounds = 1;
    search.spr.prune_stride = workload.prune_stride;
    const SearchResult result = run_search(session.engine(), search);
    const TierStats& tier = session.tiered()->tier_stats();
    const OocStats& stats = session.stats();
    if (!have_reference) {
      reference_ll = result.final_log_likelihood;
      have_reference = true;
    }
    std::printf("%8zu %8zu %14.3f %14llu %14llu %14llu %10s\n", fast, ram,
                100.0 * stats.miss_rate(),
                static_cast<unsigned long long>(tier.promotions),
                static_cast<unsigned long long>(tier.demotions),
                static_cast<unsigned long long>(stats.file_reads),
                result.final_log_likelihood == reference_ll ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
