// Design-choice ablations called out in DESIGN.md:
//
//  A. File striping (Sec. 3.2): the paper stored vectors in a single binary
//     file and reports that splitting across several files made a "minimal"
//     difference. Reproduced: identical miss/read statistics, comparable
//     wall time for 1/2/4/8 stripes.
//  B. Victim write-back policy: the paper's swap always writes the victim
//     back; dirty tracking (an extension) skips clean write-backs. Measures
//     the saved write operations.
//  C. Read skipping on/off (complements Fig. 3 with total-I/O effect).
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 150 : 640;
  const std::size_t sites = scale == Scale::kQuick ? 250 : 800;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 8844);
  print_header("Ablations: striping, write-back policy, read skipping",
               dataset, scale);
  SearchWorkloadOptions workload = workload_for(scale);

  const auto run = [&](SessionOptions options) {
    options.backend = Backend::kOutOfCore;
    options.policy = ReplacementPolicy::kLru;
    options.seed = 7;
    if (options.ram_fraction == 0.0) options.ram_fraction = 0.25;
    return run_search_workload(dataset, options, workload);
  };

  std::printf("\n[A] file striping (paper: minimal difference)\n");
  std::printf("%8s %12s %12s %12s %10s %10s\n", "files", "misses", "reads",
              "writes", "logL_ok", "seconds");
  double reference_ll = 0.0;
  for (unsigned files : {1u, 2u, 4u, 8u}) {
    SessionOptions options;
    options.num_files = files;
    const WorkloadResult result = run(options);
    if (files == 1) reference_ll = result.final_log_likelihood;
    std::printf("%8u %12llu %12llu %12llu %10s %10.1f\n", files,
                static_cast<unsigned long long>(result.stats.misses),
                static_cast<unsigned long long>(result.stats.file_reads),
                static_cast<unsigned long long>(result.stats.file_writes),
                result.final_log_likelihood == reference_ll ? "yes" : "NO",
                result.wall_seconds);
    std::fflush(stdout);
  }

  std::printf("\n[B] victim write-back policy\n");
  std::printf("%-22s %12s %14s\n", "policy", "writes", "MB_written");
  for (bool always : {true, false}) {
    SessionOptions options;
    options.write_back_clean = always;
    const WorkloadResult result = run(options);
    std::printf("%-22s %12llu %14.1f\n",
                always ? "always (paper)" : "dirty-tracking",
                static_cast<unsigned long long>(result.stats.file_writes),
                static_cast<double>(result.stats.bytes_written) / 1048576.0);
    std::fflush(stdout);
  }

  std::printf("\n[D] on-disk precision (paper ref. [1]: SP halves memory)\n");
  // Measured on a FIXED workload (repeated full traversals), not the search:
  // under a search the ~1e-7 relative perturbations flip accept/stop
  // decisions and the runs diverge to different optima, which says nothing
  // about evaluation accuracy.
  std::printf("%-12s %14s %14s %18s\n", "precision", "MB_read", "MB_written",
              "logL");
  double double_ll = 0.0;
  for (bool single : {false, true}) {
    SessionOptions options;
    options.backend = Backend::kOutOfCore;
    options.policy = ReplacementPolicy::kLru;
    options.ram_fraction = 0.1;
    options.seed = 7;
    options.single_precision_disk = single;
    Session session(dataset.alignment, dataset.start_tree, benchmark_gtr(),
                    options);
    double ll = 0.0;
    for (int i = 0; i < 3; ++i)
      ll = session.engine().full_traversal_log_likelihood();
    if (!single) double_ll = ll;
    std::printf("%-12s %14.1f %14.1f %18.6f\n", single ? "single" : "double",
                static_cast<double>(session.stats().bytes_read) / 1048576.0,
                static_cast<double>(session.stats().bytes_written) / 1048576.0,
                ll);
    if (single)
      std::printf("# logL deviation from double-precision disk: %.2e "
                  "(relative %.2e)\n",
                  ll - double_ll,
                  std::abs(ll - double_ll) / std::abs(double_ll));
    std::fflush(stdout);
  }

  std::printf("\n[C] read skipping\n");
  std::printf("%-12s %12s %12s %14s\n", "skipping", "reads", "writes",
              "total_io_ops");
  for (bool skipping : {false, true}) {
    SessionOptions options;
    options.read_skipping = skipping;
    const WorkloadResult result = run(options);
    std::printf("%-12s %12llu %12llu %14llu\n", skipping ? "on" : "off",
                static_cast<unsigned long long>(result.stats.file_reads),
                static_cast<unsigned long long>(result.stats.file_writes),
                static_cast<unsigned long long>(result.stats.file_reads +
                                                result.stats.file_writes));
    std::fflush(stdout);
  }
  return 0;
}
