// Figure 4 reproduction: miss rate as a function of f under the Random
// strategy, halving f per run down to the 5-slot minimum (Sec. 4.2).
//
// Paper result to reproduce (shape): monotone increase as f shrinks, yet even
// the most extreme case (five RAM slots for ~1286 vectors) stays at a
// comparatively low miss rate (~20%) thanks to the access locality of branch
// -length optimisation and lazy SPR.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  const std::size_t taxa = scale == Scale::kQuick ? 200 : 1288;
  const std::size_t sites = scale == Scale::kQuick ? 300 : 1200;
  const SearchDataset dataset = make_search_dataset(taxa, sites, 20110516);
  print_header("Figure 4: miss rate vs RAM fraction f (Random strategy)",
               dataset, scale);

  const SearchWorkloadOptions workload = workload_for(scale);
  const std::size_t vectors = dataset.start_tree.num_inner();

  std::printf("%10s %8s %12s %12s %14s %12s\n", "f", "slots", "accesses",
              "misses", "miss_rate_%", "seconds");
  double f = 0.5;
  for (;;) {
    const std::size_t slots = OocStoreOptions::slots_from_fraction(f, vectors);
    SessionOptions options;
    options.backend = Backend::kOutOfCore;
    options.policy = ReplacementPolicy::kRandom;
    options.ram_fraction = f;
    options.seed = 7;
    const WorkloadResult result =
        run_search_workload(dataset, options, workload);
    std::printf("%10.5f %8zu %12llu %12llu %14.3f %12.1f\n", f, slots,
                static_cast<unsigned long long>(result.stats.accesses),
                static_cast<unsigned long long>(result.stats.misses),
                100.0 * result.stats.miss_rate(), result.wall_seconds);
    std::fflush(stdout);
    if (slots <= 5) break;  // the paper's most extreme case: 5 slots
    f /= 2.0;
    // Clamp the final step to exactly five slots, as in the paper.
    if (OocStoreOptions::slots_from_fraction(f, vectors) < 5)
      f = 5.0 / static_cast<double>(vectors);
  }
  return 0;
}
