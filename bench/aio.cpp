// Async-I/O engine sweep (docs/async-io.md): the Fig. 5 disk-bound traversal
// workload re-run under --io-engine sync | threads | uring across a queue-
// depth sweep, with a Prefetcher attached so the batched lookahead path is
// what fills the queue.
//
// A large-RAM host page-caches the whole vector file, so an unadorned run
// cannot show what overlapped submission buys on the paper's 2 GB machine.
// An injected per-transfer latency spike (FaultConfig kLatency, rate 1) is
// the stand-in disk: a REAL sleep inside every payload transfer, which
// concurrent engine workers overlap but the sequential path serialises.
// Wall time under that latency is the headline; the fig5 modeled HDD time
// is reported alongside (it charges per device operation, so coalesced
// ranged reads show up there, but the model has no concurrency and cannot
// see overlap).
//
// Read skipping is disabled: the sweep measures the engine on the *full*
// swap path — victim write-back plus demand read, the pair the stores
// overlap — rather than the write-only regime skipping reduces Fig. 5's
// traversals to. Log likelihoods must stay bit-identical across every
// engine and depth (the run exits nonzero otherwise).
//
// JSON: one row per (engine, depth) with wall/device/projected seconds and
// the io_batches / io_coalesced counters; written to the --json path (CI
// uploads it as BENCH_aio.json) and echoed to stdout.
//
// Second wave (prefetch-aware LRU + write coalescing): a second, write-heavy
// phase re-runs the sweep under the LRU policy, where every miss evicts a
// dirty victim. Its rows report the eviction-write coalescing ratio
// (io_write_coalesced / file_writes — ranged victim write-backs out of
// prefetch_batch) and prefetch_wasted (lookahead installs evicted unread,
// the signature of the pre-fix LRU lookahead collapse). The headline checks
// that the deep-queue LRU hit rate beats the depth-1 run.
#include "bench_common.hpp"

#include <cstring>

#include "ooc/prefetch.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct RunResult {
  double wall = 0.0;
  double device = 0.0;
  double loglik = 0.0;
  OocStats stats;
  const char* engine = "?";  ///< resolved name (uring may degrade to threads)
  unsigned depth = 1;
};

RunResult run(const PlannedDataset& data, AioEngineKind engine,
              unsigned depth, std::uint64_t budget, int traversals,
              std::uint64_t latency_ns, ReplacementPolicy policy) {
  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.policy = policy;
  // Full swap path: every miss pays victim write-back + demand read, the
  // pair the stores hand to the engine as one overlapped batch. Skipping
  // would reduce -f z traversals to almost pure writes and starve the sweep.
  options.read_skipping = false;
  options.ram_budget_bytes = budget;
  options.compress_patterns = false;
  options.device = DeviceModel::hdd_2010();
  options.seed = 9;
  options.io_engine = engine;
  options.io_depth = depth;
  // The stand-in disk: every payload transfer stalls latency_ns once.
  FaultConfig spindle;
  spindle.seed = 20260808;
  spindle.rate = 1.0;
  spindle.burst = 1;
  spindle.kinds = kFaultLatency;
  spindle.latency_ns = latency_ns;
  options.faults = spindle;
  options.io_retry.backoff_initial_us = 0;
  Session session(data.alignment, data.tree, benchmark_gtr(), options);
  OutOfCoreStore* store = session.out_of_core();

  RunResult result;
  result.depth = depth;
  {
    // Lookahead tracks queue depth: the prefetch worker stages up to io_depth
    // misses per batch, and running further ahead than that just evicts the
    // traversal's working set out of the tiny fig5 cache.
    Prefetcher prefetcher(*store, /*lookahead=*/depth);
    session.engine().attach_prefetcher(&prefetcher);
    // Warm-up traversal populates the file; the measured part starts cold in
    // RAM but with every vector on disk, exactly the fig5 -f z regime.
    session.engine().full_traversal_log_likelihood();
    session.reset_stats();
    store->file().reset_device_accounting();
    Timer timer;
    for (int i = 0; i < traversals; ++i)
      result.loglik = session.engine().full_traversal_log_likelihood();
    result.wall = timer.seconds();
    prefetcher.drain();
    session.engine().attach_prefetcher(nullptr);
    prefetcher.stop();
  }
  result.device = store->file().modeled_device_seconds();
  result.stats = session.store().stats_snapshot();
  result.engine = store->file().io_engine_name();
  return result;
}

double hit_rate(const RunResult& r) {
  return r.stats.accesses == 0
             ? 0.0
             : static_cast<double>(r.stats.hits) /
                   static_cast<double>(r.stats.accesses);
}

/// Eviction-write coalescing: fraction of file writes that rode a merged
/// ranged transfer (victim write-backs batched by prefetch_batch / flush).
double write_coalescing_ratio(const RunResult& r) {
  return r.stats.file_writes == 0
             ? 0.0
             : static_cast<double>(r.stats.io_write_coalesced) /
                   static_cast<double>(r.stats.file_writes);
}

void print_row(const RunResult& r) {
  std::printf("%-8s %5u %8.2f %8.2f %9.2f %10llu %10llu %10llu %7llu %6.2f "
              "%6llu\n",
              r.engine, r.depth, r.wall, r.device, r.wall + r.device,
              static_cast<unsigned long long>(r.stats.file_reads +
                                              r.stats.file_writes),
              static_cast<unsigned long long>(r.stats.io_batches),
              static_cast<unsigned long long>(r.stats.io_coalesced),
              static_cast<unsigned long long>(r.stats.io_write_coalesced),
              hit_rate(r),
              static_cast<unsigned long long>(r.stats.prefetch_wasted));
}

void append_json_row(std::string& json, const RunResult& r, bool first) {
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "%s{\"engine\":\"%s\",\"depth\":%u,\"wall_s\":%.4f,\"device_s\":%.4f,"
      "\"projected_s\":%.4f,\"file_reads\":%llu,\"file_writes\":%llu,"
      "\"io_batches\":%llu,\"io_coalesced\":%llu,\"io_write_coalesced\":%llu,"
      "\"write_coalescing_ratio\":%.4f,\"hit_rate\":%.4f,"
      "\"prefetch_wasted\":%llu}",
      first ? "" : ",", r.engine, r.depth, r.wall, r.device,
      r.wall + r.device, static_cast<unsigned long long>(r.stats.file_reads),
      static_cast<unsigned long long>(r.stats.file_writes),
      static_cast<unsigned long long>(r.stats.io_batches),
      static_cast<unsigned long long>(r.stats.io_coalesced),
      static_cast<unsigned long long>(r.stats.io_write_coalesced),
      write_coalescing_ratio(r), hit_rate(r),
      static_cast<unsigned long long>(r.stats.prefetch_wasted));
  json += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const Scale scale = scale_from_env();
  DatasetPlan plan;
  plan.num_taxa = scale == Scale::kQuick ? 48 : 128;
  plan.target_ancestral_bytes =
      scale == Scale::kQuick ? (4ull << 20) : (16ull << 20);
  plan.seed = 41;
  const PlannedDataset data = make_dna_dataset(plan);
  // Disk-bound but with enough slots that a depth-16 prefetch batch does not
  // evict the traversal's own working set (fig5 keeps ~1/4 of the vectors).
  const std::uint64_t budget = plan.target_ancestral_bytes / 4;
  const int traversals = scale == Scale::kQuick ? 2 : 3;
  const std::uint64_t latency_ns =
      scale == Scale::kQuick ? 1'000'000 : 2'000'000;

  std::printf("# Async-I/O engine sweep: %d full traversals, %zu taxa, "
              "%.0f MiB vectors, %.0f MiB budget, %.2f ms/transfer stand-in "
              "latency, scale=%s\n",
              traversals, plan.num_taxa,
              static_cast<double>(plan.target_ancestral_bytes) / 1048576.0,
              static_cast<double>(budget) / 1048576.0,
              static_cast<double>(latency_ns) / 1e6, scale_name(scale));
  std::printf("# uring rows silently degrade to the thread pool when the "
              "host refuses io_uring (engine column shows the resolved "
              "backend)\n");
  std::printf("%-8s %5s %8s %8s %9s %10s %10s %10s %7s %6s %6s\n", "engine",
              "depth", "wall_s", "device_s", "proj_s", "transfers", "batches",
              "coalesced", "w_coal", "hit", "wasted");

  const unsigned depths[] = {1, 2, 4, 8, 16};
  std::vector<RunResult> rows;
  rows.push_back(run(data, AioEngineKind::kSync, 1, budget, traversals,
                     latency_ns, ReplacementPolicy::kTopological));
  print_row(rows.back());
  for (const AioEngineKind engine :
       {AioEngineKind::kThreads, AioEngineKind::kUring}) {
    for (const unsigned depth : depths) {
      rows.push_back(run(data, engine, depth, budget, traversals,
                         latency_ns, ReplacementPolicy::kTopological));
      print_row(rows.back());
    }
  }

  // Write-heavy second phase: LRU under the same disk-bound traversals. The
  // tiny budget means every prefetch install evicts a dirty resident, so
  // pass-B victim write-backs dominate the batches — the regime where both
  // the prefetch-aware aging fix and eviction-write coalescing must show.
  std::printf("# write-heavy LRU phase (prefetch-aware replacement + "
              "eviction-write coalescing)\n");
  const unsigned lru_depths[] = {1, 8, 16};
  std::vector<RunResult> lru_rows;
  for (const unsigned depth : lru_depths) {
    lru_rows.push_back(run(data, AioEngineKind::kThreads, depth, budget,
                           traversals, latency_ns, ReplacementPolicy::kLru));
    print_row(lru_rows.back());
  }

  const RunResult& sync = rows.front();
  bool identical = true;
  double best_async = -1.0;
  const char* best_label = "?";
  for (const RunResult& r : rows) {
    if (r.loglik != sync.loglik) identical = false;
    if (&r == &sync || r.depth < 8) continue;
    if (best_async < 0.0 || r.wall < best_async) {
      best_async = r.wall;
      best_label = r.engine;
    }
  }
  std::printf("# best async engine at depth >= 8: %s, wall %.2fs vs sync "
              "%.2fs (%.2fx speedup under the stand-in disk)\n",
              best_label, best_async, sync.wall,
              best_async > 0.0 ? sync.wall / best_async : 0.0);

  // LRU phase headline: the prefetch-aware fix is visible as hit rate rising
  // (and wall time falling) with queue depth; pre-fix, deep lookahead only
  // raised prefetch_wasted. Coalescing ratio > 0 means ranged victim writes.
  const RunResult& lru_shallow = lru_rows.front();
  double lru_best_hit = hit_rate(lru_shallow);
  double lru_deep_wcoal = 0.0;
  for (const RunResult& r : lru_rows) {
    if (r.loglik != sync.loglik) identical = false;
    if (r.depth < 8) continue;
    if (hit_rate(r) > lru_best_hit) lru_best_hit = hit_rate(r);
    if (write_coalescing_ratio(r) > lru_deep_wcoal)
      lru_deep_wcoal = write_coalescing_ratio(r);
  }
  const bool lru_prefetch_improves = lru_best_hit > hit_rate(lru_shallow);
  std::printf("# LRU hit rate: %.3f at depth 1 -> %.3f at depth >= 8 "
              "(%s), eviction-write coalescing ratio %.3f\n",
              hit_rate(lru_shallow), lru_best_hit,
              lru_prefetch_improves ? "prefetch-aware aging pays off"
                                    : "WARNING: no lookahead gain",
              lru_deep_wcoal);
  std::printf(identical
                  ? "# logL bit-identical across all engines, depths, and "
                    "policies\n"
                  : "# WARNING: logL mismatch across engines\n");

  std::string json = "{\"bench\":\"aio\",\"scale\":\"";
  json += scale_name(scale);
  json += "\",\"traversals\":" + std::to_string(traversals);
  json += ",\"latency_ns\":" + std::to_string(latency_ns);
  json += ",\"sync_wall_s\":";
  char head[80];
  std::snprintf(head, sizeof(head), "%.4f", sync.wall);
  json += head;
  std::snprintf(head, sizeof(head), ",\"best_async_wall_s\":%.4f",
                best_async);
  json += head;
  json += ",\"async_beats_sync\":";
  json += (best_async > 0.0 && best_async < sync.wall) ? "true" : "false";
  json += ",\"logl_bit_identical\":";
  json += identical ? "true" : "false";
  std::snprintf(head, sizeof(head),
                ",\"lru_depth1_hit_rate\":%.4f,\"lru_deep_hit_rate\":%.4f",
                hit_rate(lru_shallow), lru_best_hit);
  json += head;
  json += ",\"lru_prefetch_improves\":";
  json += lru_prefetch_improves ? "true" : "false";
  std::snprintf(head, sizeof(head), ",\"write_coalescing_ratio\":%.4f",
                lru_deep_wcoal);
  json += head;
  json += ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i)
    append_json_row(json, rows[i], i == 0);
  json += "],\"lru_rows\":[";
  for (std::size_t i = 0; i < lru_rows.size(); ++i)
    append_json_row(json, lru_rows[i], i == 0);
  json += "]}";
  std::printf("%s\n", json.c_str());
  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
  }
  return identical ? 0 : 1;
}
