// Robustness-layer overhead: what does the fault-injection / retry
// machinery cost when it is (a) compiled in but disabled, and (b) armed at
// the ISSUE's 10% ceiling with a retry budget absorbing every fault? The
// interesting numbers are the wall-time ratio against the pre-existing I/O
// loop and the injected/retried counter totals — results must stay
// bit-identical throughout (docs/robustness.md).
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct OverheadResult {
  double wall = 0.0;
  double loglik = 0.0;
  OocStats stats;
};

OverheadResult run(const PlannedDataset& data, const FaultConfig& faults,
                   std::uint64_t budget, int traversals) {
  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.policy = ReplacementPolicy::kLru;
  options.ram_budget_bytes = budget;
  options.compress_patterns = false;
  options.seed = 5;
  options.faults = faults;
  options.io_retry.backoff_initial_us = 0;  // measure the loop, not sleeps
  Session session(data.alignment, data.tree, benchmark_gtr(), options);
  // Warm-up traversal populates the file; the measured part starts clean.
  session.engine().full_traversal_log_likelihood();
  session.reset_stats();
  Timer timer;
  OverheadResult result;
  for (int i = 0; i < traversals; ++i)
    result.loglik = session.engine().full_traversal_log_likelihood();
  result.wall = timer.seconds();
  result.stats = session.store().stats_snapshot();
  return result;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  DatasetPlan plan;
  plan.num_taxa = scale == Scale::kQuick ? 128 : 512;
  plan.target_ancestral_bytes =
      scale == Scale::kQuick ? (16ull << 20) : (256ull << 20);
  plan.seed = 77;
  const PlannedDataset data = make_dna_dataset(plan);
  const std::uint64_t budget = plan.target_ancestral_bytes / 8;
  const int traversals = 3;

  std::printf("# Fault-injection overhead: %d full traversals, %zu taxa, "
              "%.0f MiB vectors, %.0f MiB budget, scale=%s\n",
              traversals, plan.num_taxa,
              static_cast<double>(plan.target_ancestral_bytes) / 1048576.0,
              static_cast<double>(budget) / 1048576.0, scale_name(scale));
  std::printf("%-14s %10s %10s %10s %10s\n", "variant", "wall_s", "faults",
              "retried", "exhausted");

  FaultConfig off;  // rate 0: the injector is never constructed
  const OverheadResult baseline = run(data, off, budget, traversals);
  std::printf("%-14s %10.2f %10llu %10llu %10llu\n", "disabled",
              baseline.wall,
              static_cast<unsigned long long>(baseline.stats.faults_injected),
              static_cast<unsigned long long>(baseline.stats.io_retries),
              static_cast<unsigned long long>(baseline.stats.io_exhausted));

  FaultConfig armed;
  armed.seed = 20260805;
  armed.rate = 0.10;  // the acceptance ceiling
  armed.burst = 2;    // fits inside the default retry budget of 4
  const OverheadResult faulty = run(data, armed, budget, traversals);
  std::printf("%-14s %10.2f %10llu %10llu %10llu\n", "rate=0.10",
              faulty.wall,
              static_cast<unsigned long long>(faulty.stats.faults_injected),
              static_cast<unsigned long long>(faulty.stats.io_retries),
              static_cast<unsigned long long>(faulty.stats.io_exhausted));

  std::printf("# armed/disabled wall ratio: %.2fx\n",
              baseline.wall == 0.0 ? 0.0 : faulty.wall / baseline.wall);
  if (faulty.loglik != baseline.loglik) {
    std::printf("# WARNING: logL mismatch between variants\n");
    return 1;
  }
  std::printf("# logL bit-identical across variants: %.6f\n",
              baseline.loglik);
  return 0;
}
