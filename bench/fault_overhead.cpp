// Robustness-layer overhead: what do the fault-injection / retry machinery
// and the per-vector checksum layer cost on the clean path? Variants:
//
//   no-integrity  legacy raw layout, no injector — the pre-robustness I/O loop
//   integrity     checksums verified at swap-in / updated at write-back
//                 (the default configuration; no faults armed)
//   rate=0.10     integrity plus a fault schedule at the ISSUE's 10% ceiling
//                 with a retry budget absorbing every fault
//
// The interesting numbers are the integrity/no-integrity wall ratio (the
// clean-path checksum verify/update overhead) and the armed/integrity ratio
// (the injection machinery itself) — results must stay bit-identical
// throughout (docs/robustness.md). The final stdout line is a JSON object
// with every variant's numbers for dashboards and CI scraping.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

namespace {

struct OverheadResult {
  double wall = 0.0;
  double loglik = 0.0;
  OocStats stats;
};

OverheadResult run(const PlannedDataset& data, const FaultConfig& faults,
                   bool integrity, std::uint64_t budget, int traversals) {
  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.policy = ReplacementPolicy::kLru;
  options.ram_budget_bytes = budget;
  options.compress_patterns = false;
  options.seed = 5;
  options.faults = faults;
  options.integrity = integrity;
  options.io_retry.backoff_initial_us = 0;  // measure the loop, not sleeps
  Session session(data.alignment, data.tree, benchmark_gtr(), options);
  // Warm-up traversal populates the file; the measured part starts clean.
  session.engine().full_traversal_log_likelihood();
  session.reset_stats();
  Timer timer;
  OverheadResult result;
  for (int i = 0; i < traversals; ++i)
    result.loglik = session.engine().full_traversal_log_likelihood();
  result.wall = timer.seconds();
  result.stats = session.store().stats_snapshot();
  return result;
}

void print_row(const char* name, const OverheadResult& r) {
  std::printf("%-14s %10.2f %10llu %10llu %10llu\n", name, r.wall,
              static_cast<unsigned long long>(r.stats.faults_injected),
              static_cast<unsigned long long>(r.stats.io_retries),
              static_cast<unsigned long long>(r.stats.io_exhausted));
}

void print_json_variant(const char* name, const OverheadResult& r,
                        const char* trailer) {
  std::printf("\"%s\":{\"wall_s\":%.4f,\"file_reads\":%llu,\"file_writes\":"
              "%llu,\"faults\":%llu,\"retried\":%llu,\"exhausted\":%llu}%s",
              name, r.wall,
              static_cast<unsigned long long>(r.stats.file_reads),
              static_cast<unsigned long long>(r.stats.file_writes),
              static_cast<unsigned long long>(r.stats.faults_injected),
              static_cast<unsigned long long>(r.stats.io_retries),
              static_cast<unsigned long long>(r.stats.io_exhausted), trailer);
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  DatasetPlan plan;
  plan.num_taxa = scale == Scale::kQuick ? 128 : 512;
  plan.target_ancestral_bytes =
      scale == Scale::kQuick ? (16ull << 20) : (256ull << 20);
  plan.seed = 77;
  const PlannedDataset data = make_dna_dataset(plan);
  const std::uint64_t budget = plan.target_ancestral_bytes / 8;
  const int traversals = 3;

  std::printf("# Robustness-layer overhead: %d full traversals, %zu taxa, "
              "%.0f MiB vectors, %.0f MiB budget, scale=%s\n",
              traversals, plan.num_taxa,
              static_cast<double>(plan.target_ancestral_bytes) / 1048576.0,
              static_cast<double>(budget) / 1048576.0, scale_name(scale));
  std::printf("%-14s %10s %10s %10s %10s\n", "variant", "wall_s", "faults",
              "retried", "exhausted");

  const FaultConfig off;  // rate 0: the injector is never constructed
  const OverheadResult raw = run(data, off, false, budget, traversals);
  print_row("no-integrity", raw);

  const OverheadResult checked = run(data, off, true, budget, traversals);
  print_row("integrity", checked);

  FaultConfig armed;
  armed.seed = 20260805;
  armed.rate = 0.10;  // the acceptance ceiling
  armed.burst = 2;    // fits inside the default retry budget of 4
  const OverheadResult faulty = run(data, armed, true, budget, traversals);
  print_row("rate=0.10", faulty);

  const double integrity_overhead =
      raw.wall == 0.0 ? 0.0 : checked.wall / raw.wall;
  const double armed_overhead =
      checked.wall == 0.0 ? 0.0 : faulty.wall / checked.wall;
  std::printf("# integrity/no-integrity wall ratio (clean-path checksum "
              "verify+update): %.2fx\n", integrity_overhead);
  std::printf("# armed/integrity wall ratio: %.2fx\n", armed_overhead);

  const bool identical =
      raw.loglik == checked.loglik && checked.loglik == faulty.loglik;
  if (!identical) std::printf("# WARNING: logL mismatch between variants\n");
  else std::printf("# logL bit-identical across variants: %.6f\n", raw.loglik);

  // Machine-readable summary (one line, scraped by dashboards / CI).
  std::printf("{\"bench\":\"fault_overhead\",\"scale\":\"%s\",\"traversals\""
              ":%d,", scale_name(scale), traversals);
  print_json_variant("no_integrity", raw, ",");
  print_json_variant("integrity", checked, ",");
  print_json_variant("faulty", faulty, ",");
  std::printf("\"integrity_clean_path_overhead\":%.4f,"
              "\"armed_overhead\":%.4f,\"logl_bit_identical\":%s}\n",
              integrity_overhead, armed_overhead,
              identical ? "true" : "false");
  return identical ? 0 : 1;
}
