// Transfer-granularity ablation: WHY the application-level layer wins.
//
// Sec. 3.1 argues that an ancestral probability vector is the natural
// logical block — far larger than the 512 B / 8 KiB hardware blocks — so
// every transfer is one large contiguous I/O. This harness holds the memory
// budget fixed and sweeps the paged baseline's page size from 4 KiB towards
// vector size; the out-of-core store (vector granularity + pinning + read
// skipping) is the limit case and still wins even against huge pages
// because generic paging cannot skip reads or pin the working triple.
#include "bench_common.hpp"

using namespace plfoc;
using namespace plfoc::bench;

int main() {
  const Scale scale = scale_from_env();
  DatasetPlan plan;
  plan.num_taxa = scale == Scale::kQuick ? 128 : 512;
  plan.target_ancestral_bytes =
      scale == Scale::kQuick ? (16ull << 20) : (256ull << 20);
  plan.seed = 31;
  const PlannedDataset data = make_dna_dataset(plan);
  const std::uint64_t budget = plan.target_ancestral_bytes / 4;
  const int traversals = 3;
  const std::uint64_t vector_bytes = data.memory.vector_bytes();

  std::printf("# Granularity ablation: %d full traversals, %.0f MiB vectors "
              "(%.0f KiB each), %.0f MiB budget\n",
              traversals,
              static_cast<double>(plan.target_ancestral_bytes) / 1048576.0,
              static_cast<double>(vector_bytes) / 1024.0,
              static_cast<double>(budget) / 1048576.0);
  std::printf("%-22s %12s %12s %12s %14s\n", "configuration", "io_ops",
              "MB_read", "MB_written", "device_s");

  const auto report = [&](const char* label, const OocStats& stats,
                          std::uint64_t ops, double device_s) {
    std::printf("%-22s %12llu %12.1f %12.1f %14.1f\n", label,
                static_cast<unsigned long long>(ops),
                static_cast<double>(stats.bytes_read) / 1048576.0,
                static_cast<double>(stats.bytes_written) / 1048576.0,
                device_s);
    std::fflush(stdout);
  };

  for (std::size_t page : {4096u, 16384u, 65536u, 262144u}) {
    SessionOptions options;
    options.backend = Backend::kPaged;
    options.ram_budget_bytes = budget;
    options.page_bytes = page;
    options.compress_patterns = false;
    options.device = DeviceModel::hdd_2010();
    Session session(data.alignment, data.tree, benchmark_gtr(), options);
    for (int i = 0; i < traversals; ++i)
      session.engine().full_traversal_log_likelihood();
    char label[64];
    std::snprintf(label, sizeof(label), "paged %zu KiB pages", page / 1024);
    report(label, session.stats(), session.paged()->file().io_operations(),
           session.paged()->file().modeled_device_seconds());
  }

  SessionOptions ooc;
  ooc.backend = Backend::kOutOfCore;
  ooc.ram_budget_bytes = budget;
  ooc.policy = ReplacementPolicy::kLru;
  ooc.compress_patterns = false;
  ooc.device = DeviceModel::hdd_2010();
  Session session(data.alignment, data.tree, benchmark_gtr(), ooc);
  for (int i = 0; i < traversals; ++i)
    session.engine().full_traversal_log_likelihood();
  report("ooc (vector blocks)", session.stats(),
         session.out_of_core()->file().io_operations(),
         session.out_of_core()->file().modeled_device_seconds());
  return 0;
}
