// Quickstart: compute and optimise a phylogenetic likelihood in ~40 lines.
//
//   1. build (or read) an alignment,
//   2. build (or read) a tree,
//   3. open a Session (in-RAM backend),
//   4. evaluate, optimise branch lengths and the Γ shape.
//
// Usage: quickstart [alignment.fasta tree.nwk]
// Without arguments a built-in toy dataset is used.
#include <cstdio>

#include "plfoc.hpp"

using namespace plfoc;

int main(int argc, char** argv) {
  Alignment alignment = [&] {
    if (argc >= 2) return read_fasta_file(argv[1], DataType::kDna);
    Alignment toy(DataType::kDna, 12);
    toy.add_sequence("human", "ACGTACGTTGCA");
    toy.add_sequence("chimp", "ACGTACGATGCA");
    toy.add_sequence("gorilla", "ACGAACGATGCA");
    toy.add_sequence("orang", "ACTAACGATGAA");
    toy.add_sequence("gibbon", "CCTAACGTTGAA");
    return toy;
  }();
  Tree tree = [&] {
    if (argc >= 3) return read_newick_file(argv[2]);
    return parse_newick(
        "(human:0.05,chimp:0.05,(gorilla:0.08,(orang:0.1,gibbon:0.15):0.05)"
        ":0.03);");
  }();

  std::printf("alignment: %zu taxa x %zu sites\n", alignment.num_taxa(),
              alignment.num_sites());

  // GTR+Γ4 with empirical base frequencies.
  SubstitutionModel model =
      gtr({1.0, 2.0, 1.0, 1.0, 2.0, 1.0}, alignment.empirical_frequencies());

  SessionOptions options;           // defaults: in-RAM backend, Γ4
  Session session(std::move(alignment), std::move(tree), std::move(model),
                  options);

  std::printf("initial    logL = %.4f\n", session.engine().log_likelihood());
  const double after_branches = session.engine().optimize_all_branches(2);
  std::printf("branches   logL = %.4f\n", after_branches);
  const double after_model = optimize_alpha(session.engine());
  std::printf("alpha opt  logL = %.4f (alpha = %.3f)\n", after_model,
              session.engine().config().alpha);
  std::printf("tree: %s\n", to_newick(session.tree()).c_str());
  return 0;
}
