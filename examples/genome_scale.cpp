// Genome-scale scenario: likelihood evaluation on a dataset whose ancestral
// vectors exceed a hard RAM budget — the situation the paper's introduction
// motivates (phylogenomic alignments outgrowing RAM). Demonstrates the
// RAxML "-L"-style byte budget, the 5-slot extreme, and the paged baseline.
//
// Usage: genome_scale [taxa footprint_mib budget_mib]
#include <cstdio>
#include <cstdlib>

#include "plfoc.hpp"

using namespace plfoc;

int main(int argc, char** argv) {
  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const std::uint64_t footprint_mib =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::uint64_t budget_mib =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;

  DatasetPlan plan;
  plan.num_taxa = taxa;
  plan.target_ancestral_bytes = footprint_mib << 20;
  plan.seed = 2024;
  const PlannedDataset data = make_dna_dataset(plan);
  std::printf("dataset: %zu taxa x %zu sites -> %.1f MiB of ancestral "
              "vectors; RAM budget %.1f MiB\n",
              taxa, data.alignment.num_sites(),
              static_cast<double>(data.memory.ancestral_bytes()) / 1048576.0,
              static_cast<double>(budget_mib << 20) / 1048576.0);

  const auto evaluate = [&](SessionOptions options, const char* label) {
    options.compress_patterns = false;
    Session session(data.alignment, data.tree, benchmark_gtr(),
                    std::move(options));
    Timer timer;
    const double ll = session.engine().full_traversal_log_likelihood();
    const double seconds = timer.seconds();
    std::printf("%-22s logL %.4f in %6.2fs  (reads %llu, writes %llu)\n",
                label, ll, seconds,
                static_cast<unsigned long long>(session.stats().file_reads),
                static_cast<unsigned long long>(session.stats().file_writes));
    return ll;
  };

  SessionOptions budget;
  budget.backend = Backend::kOutOfCore;
  budget.ram_budget_bytes = budget_mib << 20;
  budget.policy = ReplacementPolicy::kLru;
  const double a = evaluate(budget, "ooc (-L budget, LRU)");

  SessionOptions five_slots;
  five_slots.backend = Backend::kOutOfCore;
  five_slots.ram_fraction = 5.0 / static_cast<double>(taxa - 2);
  five_slots.policy = ReplacementPolicy::kRandom;
  const double b = evaluate(five_slots, "ooc (5 slots, Random)");

  SessionOptions paged;
  paged.backend = Backend::kPaged;
  paged.ram_budget_bytes = budget_mib << 20;
  const double c = evaluate(paged, "paged (OS baseline)");

  std::printf("\nall equal: %s\n", (a == b && b == c) ? "yes" : "NO (bug!)");
  return (a == b && b == c) ? 0 : 1;
}
