// Bayesian sampling out-of-core: run a Metropolis-Hastings chain (branch
// multipliers + NNI) with the ancestral vectors under a hard memory budget,
// and show the chain is bit-identical to an in-RAM run — the paper's claim
// that its concepts "can be applied to all PLF-based programs (ML and
// Bayesian)", demonstrated end to end.
//
// Usage: bayesian_mcmc [taxa sites iterations ram_fraction]
#include <cstdio>
#include <cstdlib>

#include "plfoc.hpp"

using namespace plfoc;

int main(int argc, char** argv) {
  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::size_t sites = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const std::uint64_t iterations =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4000;
  const double fraction = argc > 4 ? std::strtod(argv[4], nullptr) : 0.1;

  DatasetPlan plan;
  plan.num_taxa = taxa;
  plan.num_sites = sites;
  plan.seed = 20110516;
  const PlannedDataset data = make_dna_dataset(plan);
  std::printf("dataset: %zu taxa x %zu sites; %llu iterations; f = %.3f\n\n",
              taxa, sites, static_cast<unsigned long long>(iterations),
              fraction);

  const auto run_chain = [&](SessionOptions options, const char* label) {
    Session session(data.alignment, data.tree, benchmark_gtr(),
                    std::move(options));
    Rng rng(7);
    McmcOptions mcmc;
    mcmc.iterations = iterations;
    mcmc.sample_every = iterations / 10;
    Timer timer;
    const McmcResult result = run_mcmc(session.engine(), rng, mcmc);
    std::printf("%-12s log posterior %.4f -> %.4f (best %.4f) in %.1fs\n",
                label, result.initial_log_posterior,
                result.final_log_posterior, result.best_log_posterior,
                timer.seconds());
    std::printf("             acceptance: branch %.1f%%, NNI %.1f%%\n",
                100.0 * result.branch_acceptance(),
                100.0 * result.nni_acceptance());
    if (session.out_of_core() != nullptr)
      std::printf("             storage: %s\n",
                  session.stats().summary().c_str());
    std::printf("             trace:");
    for (double sample : result.trace) std::printf(" %.1f", sample);
    std::printf("\n\n");
    return result;
  };

  const McmcResult in_ram = run_chain(SessionOptions{}, "in-RAM");

  SessionOptions ooc;
  ooc.backend = Backend::kOutOfCore;
  ooc.ram_fraction = fraction;
  ooc.policy = ReplacementPolicy::kLru;
  const McmcResult out_of_core = run_chain(ooc, "out-of-core");

  const bool identical =
      in_ram.final_log_posterior == out_of_core.final_log_posterior &&
      in_ram.trace == out_of_core.trace;
  std::printf("chains are %s\n",
              identical ? "bit-identical (the paper's correctness criterion, "
                          "Bayesian edition)"
                        : "DIFFERENT - this is a bug");
  return identical ? 0 : 1;
}
