// End-to-end pipeline: simulate sequences on a known tree (the INDELible
// substitute), write/read them through the PHYLIP format, build a parsimony
// stepwise-addition starting tree, run the full ML search out-of-core, and
// compare the inferred tree's likelihood against the true tree's.
//
// Usage: simulate_and_search [taxa sites seed]
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "plfoc.hpp"

using namespace plfoc;

int main(int argc, char** argv) {
  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const std::size_t sites = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // 1. Simulate on a random "true" tree under GTR+Γ4.
  Rng rng(seed);
  RandomTreeOptions tree_options;
  tree_options.mean_branch_length = 0.12;
  const Tree truth = random_tree(taxa, rng, tree_options);
  SimulationOptions sim;
  sim.alpha = 0.7;
  const Alignment simulated =
      simulate_alignment(truth, benchmark_gtr(), sites, rng, sim);

  // 2. Round-trip through PHYLIP, as a real pipeline would.
  std::stringstream io;
  write_phylip(io, simulated);
  const Alignment alignment = read_phylip(io, DataType::kDna);
  std::printf("simulated %zu taxa x %zu sites (PHYLIP round-trip ok)\n",
              alignment.num_taxa(), alignment.num_sites());

  // 3. Parsimony stepwise-addition starting tree.
  Rng start_rng(seed + 1);
  Tree start = stepwise_addition_tree(alignment, start_rng);
  std::printf("starting tree parsimony score: %.0f (true tree: %.0f)\n",
              parsimony_score(start, alignment),
              parsimony_score(truth, alignment));

  // 4. Full ML search, out-of-core at 25%% of the required vector memory.
  SessionOptions options;
  options.backend = Backend::kOutOfCore;
  options.ram_fraction = 0.25;
  options.policy = ReplacementPolicy::kLru;
  Session session(alignment, std::move(start), benchmark_gtr(), options);
  SearchOptions search;
  search.spr.rounds = 5;  // stops early once a round accepts no move
  search.spr.radius_max = 10;
  const SearchResult result = run_search(session.engine(), search);
  std::printf("search: %.4f -> %.4f (alpha = %.3f, %llu SPR moves)\n",
              result.starting_log_likelihood, result.final_log_likelihood,
              session.engine().config().alpha,
              static_cast<unsigned long long>(result.spr.moves_accepted));
  std::printf("out-of-core miss rate: %.2f%%\n",
              100.0 * session.stats().miss_rate());

  // 5. Compare against the likelihood of the true tree (branch lengths
  //    re-optimised under the same model on a fresh session).
  Session truth_session(alignment, truth, benchmark_gtr(), SessionOptions{});
  truth_session.engine().set_alpha(session.engine().config().alpha);
  truth_session.engine().optimize_all_branches(3);
  const double truth_ll = truth_session.engine().log_likelihood();
  std::printf("true tree logL after branch opt: %.4f (inferred %s it)\n",
              truth_ll,
              result.final_log_likelihood >= truth_ll - 1e-6 ? "matches/beats"
                                                             : "trails");
  // Topological accuracy: Robinson-Foulds distance to the generating tree.
  std::printf("Robinson-Foulds distance to the true tree: %u (normalised "
              "%.3f)\n",
              robinson_foulds(session.tree(), truth),
              normalized_robinson_foulds(session.tree(), truth));
  std::printf("inferred tree: %s\n", to_newick(session.tree()).c_str());
  return 0;
}
