// Out-of-core inference: the paper's headline use case as an application.
//
// Runs the same ML analysis twice — once with everything in RAM, once with
// the out-of-core store limited to a fraction of the required memory — and
// shows that (a) the results are bit-identical and (b) the miss rate stays
// low (the paper's Figs. 2-4 in miniature).
//
// Usage: ooc_inference [num_taxa sites ram_fraction strategy]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "plfoc.hpp"

using namespace plfoc;

namespace {

double run_analysis(const Alignment& alignment, const Tree& start,
                    SessionOptions options, const char* label) {
  Session session(alignment, start, benchmark_gtr(), std::move(options));
  SearchOptions search;
  search.spr.rounds = 1;
  search.spr.prune_stride = 4;
  const SearchResult result = run_search(session.engine(), search);
  std::printf("%-12s logL %.6f", label, result.final_log_likelihood);
  if (session.out_of_core() != nullptr) {
    const OocStats& stats = session.stats();
    std::printf("  [slots %zu, miss rate %.2f%%, read rate %.2f%%, %s]",
                session.out_of_core()->num_slots(),
                100.0 * stats.miss_rate(), 100.0 * stats.read_rate(),
                session.out_of_core()->strategy_name());
  }
  std::printf("\n");
  return result.final_log_likelihood;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t sites = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 300;
  const double fraction = argc > 3 ? std::strtod(argv[3], nullptr) : 0.1;
  const ReplacementPolicy policy =
      argc > 4 ? parse_policy(argv[4]) : ReplacementPolicy::kLru;

  // Simulated dataset + a parsimony stepwise-addition starting tree.
  DatasetPlan plan;
  plan.num_taxa = taxa;
  plan.num_sites = sites;
  plan.seed = 1234;
  PlannedDataset data = make_dna_dataset(plan);
  Rng rng(99);
  const Tree start = stepwise_addition_tree(data.alignment, rng);

  std::printf("dataset: %zu taxa x %zu sites; out-of-core f = %.3f (%s)\n\n",
              taxa, sites, fraction, policy_name(policy));

  SessionOptions in_ram;  // defaults
  const double reference = run_analysis(data.alignment, start, in_ram,
                                        "in-RAM");

  SessionOptions ooc;
  ooc.backend = Backend::kOutOfCore;
  ooc.ram_fraction = fraction;
  ooc.policy = policy;
  const double out_of_core = run_analysis(data.alignment, start, ooc,
                                          "out-of-core");

  std::printf("\nresults %s\n",
              reference == out_of_core
                  ? "are bit-identical (the paper's correctness criterion)"
                  : "DIFFER - this is a bug");
  return reference == out_of_core ? 0 : 1;
}
