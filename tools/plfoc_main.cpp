// The plfoc command-line tool. All logic lives in src/cli/driver.cpp so it
// is unit-testable; this translation unit only maps argv and exceptions to
// process-level behaviour.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "cli/driver.hpp"
#include "util/checks.hpp"

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::strcmp(argv[1], "batch") == 0) {
      const plfoc::BatchConfig config =
          plfoc::parse_batch_cli(argc - 2, argv + 2);
      return plfoc::run_batch_cli(config, std::cout);
    }
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
      const plfoc::ServeConfig config =
          plfoc::parse_serve_cli(argc - 2, argv + 2);
      return plfoc::run_serve_cli(config, std::cin, std::cout);
    }
    if (argc > 1 && std::strcmp(argv[1], "fsck") == 0) {
      const plfoc::FsckConfig config =
          plfoc::parse_fsck_cli(argc - 2, argv + 2);
      return plfoc::run_fsck_cli(config, std::cout);
    }
    const plfoc::CliConfig config = plfoc::parse_cli(argc - 1, argv + 1);
    return plfoc::run_cli(config, std::cout);
  } catch (const plfoc::Error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "plfoc: unexpected error: %s\n", error.what());
    return 3;
  }
}
