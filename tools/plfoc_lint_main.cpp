// plfoc-lint — the project-rule linter (docs/static-analysis.md).
//
// Enforces the identifier-level contracts declared in tools/plfoc-lint.rules
// over the tree: raw POSIX I/O stays inside the FileBackend, kernel TUs stay
// deterministic, thread-unsafe libc calls stay out, annotated subsystems use
// the util/mutex.hpp wrappers, and every OocStats counter has auditor
// coverage. CI runs it as a merge gate; run it locally with
//
//   ./build/tools/plfoc-lint            # from the repo root
//
// Exit codes: 0 clean, 1 findings, 2 bad invocation/manifest.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: plfoc-lint [--root <dir>] [--rules <manifest>]"
         " [--list-rules]\n"
         "  --root   lint root (default: current directory)\n"
         "  --rules  rule manifest (default: <root>/tools/plfoc-lint.rules)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string rules_path;
  bool list_rules = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--rules" && i + 1 < args.size()) {
      rules_path = args[++i];
    } else if (args[i] == "--list-rules") {
      list_rules = true;
    } else if (args[i] == "--help" || args[i] == "-h") {
      return Usage(std::cout, 0);
    } else {
      std::cerr << "plfoc-lint: unknown argument '" << args[i] << "'\n";
      return Usage(std::cerr, 2);
    }
  }
  if (rules_path.empty()) rules_path = root + "/tools/plfoc-lint.rules";

  std::ifstream stream(rules_path);
  if (!stream) {
    std::cerr << "plfoc-lint: cannot read manifest '" << rules_path << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();

  plfoc::lint::Manifest manifest;
  std::string error;
  if (!plfoc::lint::ParseManifest(buffer.str(), &manifest, &error)) {
    std::cerr << "plfoc-lint: " << rules_path << ": " << error << "\n";
    return 2;
  }

  if (list_rules) {
    for (const auto& rule : manifest.identifier_rules)
      std::cout << rule.id << " (identifier): " << rule.message << "\n";
    for (const auto& rule : manifest.stats_rules)
      std::cout << rule.id << " (stats-audit): " << rule.message << "\n";
    return 0;
  }

  const std::vector<plfoc::lint::Finding> findings =
      plfoc::lint::LintTree(manifest, root);
  for (const plfoc::lint::Finding& finding : findings)
    std::cout << plfoc::lint::FormatFinding(finding) << "\n";
  if (!findings.empty()) {
    std::cerr << "plfoc-lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "plfoc-lint: clean\n";
  return 0;
}
