// Token-level C++ lexer for plfoc-lint.
//
// Deliberately not a compiler frontend: the project rules it feeds
// (tools/lint/rules.hpp) are identifier-level contracts — "no raw pread()
// outside the FileBackend", "no std::mutex in annotated subsystems" — so a
// faithful tokenizer that understands comments, string/char literals, raw
// strings and preprocessor lines is sufficient, and it keeps the linter
// dependency-free (the build image has no libclang). What it guarantees:
//
//  * identifiers inside comments, string literals (including raw strings)
//    and preprocessor directives are never reported;
//  * `::` and `->` are single punctuation tokens, so rules can distinguish
//    `std::mutex` from a member named `mutex` and `file.read(` from a bare
//    `read(`;
//  * suppression comments (`// plfoc-lint: allow(<rule>): <justification>`)
//    are parsed here, with their line numbers, for the driver to apply.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace plfoc::lint {

struct Token {
  enum class Kind { kIdentifier, kPunct };
  Kind kind;
  std::string text;
  int line = 0;
};

/// One `// plfoc-lint: allow(<rule>): <justification>` comment. It silences
/// findings of <rule> on the comment's own line and on the next line (so it
/// works both trailing the offending code and on the line above it).
/// A suppression without a non-empty justification is itself reported by the
/// driver, as is one whose `allow(...)` clause does not parse (`malformed`).
struct Suppression {
  int line = 0;
  std::string rule;
  bool justified = false;
  bool malformed = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Tokenize one translation unit. Never fails: unterminated constructs are
/// consumed to end-of-input (the compiler, not the linter, owns rejecting
/// such code).
LexedFile Lex(std::string_view source);

}  // namespace plfoc::lint
