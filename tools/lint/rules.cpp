#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace plfoc::lint {
namespace {

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitList(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    item = Trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true") {
    *out = true;
    return true;
  }
  if (value == "false") {
    *out = false;
    return true;
  }
  return false;
}

std::string AtLine(int line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

}  // namespace

bool Manifest::HasRule(const std::string& id) const {
  const auto ident = std::find_if(
      identifier_rules.begin(), identifier_rules.end(),
      [&](const IdentifierRule& rule) { return rule.id == id; });
  if (ident != identifier_rules.end()) return true;
  const auto stats =
      std::find_if(stats_rules.begin(), stats_rules.end(),
                   [&](const StatsAuditRule& rule) { return rule.id == id; });
  return stats != stats_rules.end();
}

bool ParseManifest(const std::string& text, Manifest* out,
                   std::string* error) {
  // Accumulate each [rule <id>] section generically, then materialize it as
  // the declared kind once the section ends.
  struct Section {
    std::string id;
    std::string kind = "identifier";
    int line = 0;
    std::vector<std::pair<std::string, std::string>> entries;
  };
  std::vector<Section> sections;

  std::stringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.compare(0, 6, "[rule ") != 0) {
        *error = AtLine(line_no, "expected '[rule <id>]' section header");
        return false;
      }
      Section section;
      section.id = Trim(line.substr(6, line.size() - 7));
      section.line = line_no;
      if (section.id.empty()) {
        *error = AtLine(line_no, "empty rule id");
        return false;
      }
      sections.push_back(std::move(section));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // Continuation line: extends the previous entry's value (long
      // identifier lists and messages wrap in the manifest).
      if (!sections.empty() && !sections.back().entries.empty()) {
        sections.back().entries.back().second += " " + line;
        continue;
      }
      *error = AtLine(line_no, "expected 'key = value' inside a rule section");
      return false;
    }
    if (sections.empty()) {
      *error = AtLine(line_no, "'key = value' before any [rule ...] section");
      return false;
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key == "kind")
      sections.back().kind = value;
    else
      sections.back().entries.emplace_back(key, value);
  }

  for (const Section& section : sections) {
    if (out->HasRule(section.id)) {
      *error = AtLine(section.line, "duplicate rule id '" + section.id + "'");
      return false;
    }
    if (section.kind == "identifier") {
      IdentifierRule rule;
      rule.id = section.id;
      for (const auto& [key, value] : section.entries) {
        if (key == "message") {
          rule.message = value;
        } else if (key == "call-only") {
          if (!ParseBool(value, &rule.call_only)) {
            *error = AtLine(section.line, "call-only must be true or false");
            return false;
          }
        } else if (key == "identifiers") {
          // `std::name` entries match only when std-qualified; bare entries
          // match any occurrence of the identifier token.
          for (std::string& ident : SplitList(value)) {
            if (ident.compare(0, 5, "std::") == 0)
              rule.std_identifiers.push_back(ident.substr(5));
            else
              rule.bare_identifiers.push_back(std::move(ident));
          }
        } else if (key == "paths") {
          rule.paths = SplitList(value);
        } else if (key == "allow") {
          rule.allow_files = SplitList(value);
        } else {
          *error = AtLine(section.line, "unknown key '" + key + "' in rule '" +
                                            section.id + "'");
          return false;
        }
      }
      if (rule.message.empty() || rule.paths.empty() ||
          (rule.bare_identifiers.empty() && rule.std_identifiers.empty())) {
        *error = AtLine(section.line, "rule '" + section.id +
                                          "' needs message, identifiers "
                                          "and paths");
        return false;
      }
      out->identifier_rules.push_back(std::move(rule));
    } else if (section.kind == "stats-audit") {
      StatsAuditRule rule;
      rule.id = section.id;
      for (const auto& [key, value] : section.entries) {
        if (key == "message")
          rule.message = value;
        else if (key == "stats-header")
          rule.stats_header = value;
        else if (key == "audit-source")
          rule.audit_source = value;
        else if (key == "struct")
          rule.struct_name = value;
        else {
          *error = AtLine(section.line, "unknown key '" + key + "' in rule '" +
                                            section.id + "'");
          return false;
        }
      }
      if (rule.message.empty() || rule.stats_header.empty() ||
          rule.audit_source.empty() || rule.struct_name.empty()) {
        *error = AtLine(section.line,
                        "rule '" + section.id +
                            "' needs message, stats-header, audit-source "
                            "and struct");
        return false;
      }
      out->stats_rules.push_back(std::move(rule));
    } else {
      *error = AtLine(section.line, "unknown rule kind '" + section.kind +
                                        "' (identifier | stats-audit)");
      return false;
    }
  }
  return true;
}

}  // namespace plfoc::lint
