// plfoc-lint driver: file discovery, rule application, suppression handling.
//
// The library half of the linter (the CLI in tools/plfoc_lint_main.cpp is a
// thin wrapper) so tests/test_lint.cpp can run rules over fixture snippets
// and over the real tree in-process.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace plfoc::lint {

/// Apply every matching identifier rule plus suppression hygiene to one
/// file. `relative_path` decides rule scope; `source` is the file content.
/// Cross-file rules (stats-audit) are not applied here.
std::vector<Finding> LintSource(const Manifest& manifest,
                                const std::string& relative_path,
                                std::string_view source);

/// Run every rule, including cross-file ones, over the tree rooted at
/// `root`. Scanned files are the union of the manifest's rule paths
/// (.cpp/.hpp/.cc/.h, sorted for deterministic output). Files that fail to
/// read are reported as findings under the reserved rule id "io-error".
std::vector<Finding> LintTree(const Manifest& manifest,
                              const std::string& root);

/// Format one finding the way compilers do, so editors can jump to it:
/// `path:line: error: message [rule-id]`.
std::string FormatFinding(const Finding& finding);

}  // namespace plfoc::lint
