#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace plfoc::lint {
namespace {

namespace fs = std::filesystem;

bool HasPrefix(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool InScope(const IdentifierRule& rule, const std::string& relative_path) {
  const bool covered =
      std::any_of(rule.paths.begin(), rule.paths.end(),
                  [&](const std::string& p) {
                    return HasPrefix(relative_path, p);
                  });
  if (!covered) return false;
  return std::none_of(rule.allow_files.begin(), rule.allow_files.end(),
                      [&](const std::string& f) { return relative_path == f; });
}

bool IsPunct(const std::vector<Token>& tokens, std::size_t index,
             const char* text) {
  return index < tokens.size() && tokens[index].kind == Token::Kind::kPunct &&
         tokens[index].text == text;
}

bool IsIdentifier(const std::vector<Token>& tokens, std::size_t index) {
  return index < tokens.size() &&
         tokens[index].kind == Token::Kind::kIdentifier;
}

/// The call-position test for call-only rules: the matched name (whose
/// leftmost token sits at `start`) must be followed by `(` (token index
/// `after`) and must not be a member access or a qualified name on some
/// class — `x.read(`, `x->read(` and `Reader::read(` never match, while
/// `read(` and the explicit global-scope `::read(` do.
bool IsFreeCall(const std::vector<Token>& tokens, std::size_t start,
                std::size_t after) {
  if (!IsPunct(tokens, after, "(")) return false;
  if (start == 0) return true;
  if (IsPunct(tokens, start - 1, ".") || IsPunct(tokens, start - 1, "->"))
    return false;
  if (IsPunct(tokens, start - 1, "::"))
    return start < 2 || !IsIdentifier(tokens, start - 2);
  return true;
}

void ApplyIdentifierRule(const IdentifierRule& rule,
                         const std::string& relative_path,
                         const std::vector<Token>& tokens,
                         std::vector<Finding>* findings) {
  const auto contains = [](const std::vector<std::string>& list,
                           const std::string& text) {
    return std::find(list.begin(), list.end(), text) != list.end();
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier) continue;
    const bool std_qualified = i >= 2 && IsPunct(tokens, i - 1, "::") &&
                               IsIdentifier(tokens, i - 2) &&
                               tokens[i - 2].text == "std";
    std::string spelled;
    std::size_t start = i;
    if (std_qualified && contains(rule.std_identifiers, tokens[i].text)) {
      spelled = "std::" + tokens[i].text;
      start = i - 2;
    } else if (!std_qualified && contains(rule.bare_identifiers,
                                          tokens[i].text)) {
      spelled = tokens[i].text;
    } else {
      continue;
    }
    if (rule.call_only && !IsFreeCall(tokens, start, i + 1)) continue;
    findings->push_back({relative_path, tokens[i].line, rule.id,
                         rule.message + ": '" + spelled + "'"});
  }
}

/// Suppression hygiene findings plus the line->rules map used to filter.
/// An unjustified suppression still silences its rule (the justification
/// defect is reported once, not duplicated as the original finding too);
/// malformed or unknown-rule suppressions silence nothing.
std::map<int, std::set<std::string>> CollectSuppressions(
    const Manifest& manifest, const std::string& relative_path,
    const std::vector<Suppression>& suppressions,
    std::vector<Finding>* findings) {
  std::map<int, std::set<std::string>> by_line;
  for (const Suppression& s : suppressions) {
    if (s.malformed) {
      findings->push_back(
          {relative_path, s.line, kSuppressionSyntaxRule,
           "malformed suppression; use "
           "'// plfoc-lint: allow(<rule>): <justification>'"});
      continue;
    }
    if (!manifest.HasRule(s.rule)) {
      findings->push_back({relative_path, s.line, kSuppressionUnknownRule,
                           "suppression names unknown rule '" + s.rule + "'"});
      continue;
    }
    if (!s.justified) {
      findings->push_back(
          {relative_path, s.line, kSuppressionJustificationRule,
           "suppression of '" + s.rule +
               "' lacks a justification ('... allow(" + s.rule +
               "): <why>')"});
    }
    by_line[s.line].insert(s.rule);
    by_line[s.line + 1].insert(s.rule);
  }
  return by_line;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) return false;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  *out = buffer.str();
  return true;
}

bool LintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Extract the std::uint64_t *data members* of `struct_name` (member
/// functions that merely return std::uint64_t are skipped by requiring the
/// name not be followed by `(`). Returns name -> declaration line.
std::map<std::string, int> StatsMembers(const std::vector<Token>& tokens,
                                        const std::string& struct_name) {
  std::map<std::string, int> members;
  std::size_t i = 0;
  for (; i + 2 < tokens.size(); ++i) {
    if (IsIdentifier(tokens, i) && tokens[i].text == "struct" &&
        IsIdentifier(tokens, i + 1) && tokens[i + 1].text == struct_name &&
        IsPunct(tokens, i + 2, "{")) {
      i += 3;
      break;
    }
  }
  int depth = 1;
  for (; i < tokens.size() && depth > 0; ++i) {
    if (IsPunct(tokens, i, "{")) ++depth;
    if (IsPunct(tokens, i, "}")) --depth;
    if (depth != 1) continue;
    if (IsIdentifier(tokens, i) && tokens[i].text == "uint64_t" &&
        IsIdentifier(tokens, i + 1) && !IsPunct(tokens, i + 2, "(")) {
      members.emplace(tokens[i + 1].text, tokens[i + 1].line);
    }
  }
  return members;
}

void ApplyStatsAuditRule(const StatsAuditRule& rule, const std::string& root,
                         std::vector<Finding>* findings) {
  std::string stats_text;
  std::string audit_text;
  if (!ReadFile(fs::path(root) / rule.stats_header, &stats_text)) {
    findings->push_back({rule.stats_header, 0, "io-error",
                         "cannot read stats header for rule '" + rule.id +
                             "'"});
    return;
  }
  if (!ReadFile(fs::path(root) / rule.audit_source, &audit_text)) {
    findings->push_back({rule.audit_source, 0, "io-error",
                         "cannot read audit source for rule '" + rule.id +
                             "'"});
    return;
  }
  const std::map<std::string, int> members =
      StatsMembers(Lex(stats_text).tokens, rule.struct_name);
  if (members.empty()) {
    findings->push_back({rule.stats_header, 0, rule.id,
                         "found no std::uint64_t members of '" +
                             rule.struct_name +
                             "' — rule misconfigured or struct moved"});
    return;
  }
  std::set<std::string> audited;
  for (const Token& token : Lex(audit_text).tokens)
    if (token.kind == Token::Kind::kIdentifier) audited.insert(token.text);
  for (const auto& [name, line] : members) {
    if (audited.count(name) != 0) continue;
    findings->push_back({rule.stats_header, line, rule.id,
                         rule.message + ": '" + name + "' (extend " +
                             rule.audit_source + ")"});
  }
}

}  // namespace

std::vector<Finding> LintSource(const Manifest& manifest,
                                const std::string& relative_path,
                                std::string_view source) {
  std::vector<Finding> findings;
  const LexedFile lexed = Lex(source);
  const auto suppressed = CollectSuppressions(manifest, relative_path,
                                              lexed.suppressions, &findings);
  std::vector<Finding> raw;
  for (const IdentifierRule& rule : manifest.identifier_rules) {
    if (!InScope(rule, relative_path)) continue;
    ApplyIdentifierRule(rule, relative_path, lexed.tokens, &raw);
  }
  for (Finding& finding : raw) {
    const auto it = suppressed.find(finding.line);
    if (it != suppressed.end() && it->second.count(finding.rule) != 0)
      continue;
    findings.push_back(std::move(finding));
  }
  return findings;
}

std::vector<Finding> LintTree(const Manifest& manifest,
                              const std::string& root) {
  std::vector<Finding> findings;

  std::set<std::string> prefixes;
  for (const IdentifierRule& rule : manifest.identifier_rules)
    prefixes.insert(rule.paths.begin(), rule.paths.end());

  std::set<std::string> files;
  for (const std::string& prefix : prefixes) {
    const fs::path base = fs::path(root) / prefix;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.insert(prefix);
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      findings.push_back({prefix, 0, "io-error",
                          "rule path does not exist under the lint root"});
      continue;
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file() || !LintableExtension(it->path())) continue;
      files.insert(
          fs::relative(it->path(), root).generic_string());
    }
  }

  for (const std::string& relative_path : files) {
    std::string source;
    if (!ReadFile(fs::path(root) / relative_path, &source)) {
      findings.push_back({relative_path, 0, "io-error", "cannot read file"});
      continue;
    }
    std::vector<Finding> file_findings =
        LintSource(manifest, relative_path, source);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  for (const StatsAuditRule& rule : manifest.stats_rules)
    ApplyStatsAuditRule(rule, root, &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": error: " +
         finding.message + " [" + finding.rule + "]";
}

}  // namespace plfoc::lint
