// Rule manifest for plfoc-lint.
//
// The rules are data, not code: tools/plfoc-lint.rules (checked in, INI-ish)
// declares what each rule forbids and where it applies, so tightening a
// project contract is a manifest edit reviewed like any other change — the
// linter binary only knows the two rule *kinds*:
//
//  * `identifier` — forbid a set of identifiers (bare, or std::-qualified)
//    in every .cpp/.hpp under the rule's path prefixes, minus an allow-list
//    of files that implement the boundary the rule protects. With
//    `call-only = true` the identifier must syntactically be a call
//    (followed by `(`) that is not a member access (`x.read(...)` and
//    `x->read(...)` never match; `read(...)` and `::read(...)` do).
//  * `stats-audit` — cross-file completeness check: every std::uint64_t
//    member of the stats struct must appear in the auditor source, so a new
//    OocStats counter cannot land without monotonicity coverage in
//    StoreAuditor::check_stats (src/ooc/audit.cpp).
//
// Findings can be silenced per line with
//     // plfoc-lint: allow(<rule-id>): <justification>
// where the justification is mandatory — an unjustified or malformed
// suppression is reported through the reserved rule ids below.
#pragma once

#include <string>
#include <vector>

namespace plfoc::lint {

/// Reserved rule ids for defects in suppression comments themselves. They
/// are not declared in the manifest and cannot be suppressed.
inline constexpr char kSuppressionSyntaxRule[] = "suppression-syntax";
inline constexpr char kSuppressionJustificationRule[] =
    "suppression-justification";
inline constexpr char kSuppressionUnknownRule[] = "suppression-unknown-rule";

struct Finding {
  std::string file;  ///< path relative to the lint root
  int line = 0;
  std::string rule;
  std::string message;
};

struct IdentifierRule {
  std::string id;
  std::string message;
  bool call_only = false;
  std::vector<std::string> bare_identifiers;
  std::vector<std::string> std_identifiers;  ///< match only as std::<name>
  std::vector<std::string> paths;            ///< relative prefixes in scope
  std::vector<std::string> allow_files;      ///< exact relative paths exempt
};

struct StatsAuditRule {
  std::string id;
  std::string message;
  std::string stats_header;  ///< file declaring the counter struct
  std::string audit_source;  ///< file that must reference every counter
  std::string struct_name;
};

struct Manifest {
  std::vector<IdentifierRule> identifier_rules;
  std::vector<StatsAuditRule> stats_rules;

  bool HasRule(const std::string& id) const;
};

/// Parse the manifest text. On a malformed manifest, returns false and sets
/// `*error` to a "line N: ..." description; the manifest is the linter's own
/// configuration, so errors are fatal, never findings.
bool ParseManifest(const std::string& text, Manifest* out, std::string* error);

}  // namespace plfoc::lint
