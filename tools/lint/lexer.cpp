#include "lint/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace plfoc::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Parse a `plfoc-lint:` marker inside a line comment. `comment` is the text
/// after `//`. Returns false when the comment carries no marker at all.
bool ParseSuppression(std::string_view comment, int line, Suppression* out) {
  const std::size_t marker = comment.find("plfoc-lint:");
  if (marker == std::string_view::npos) return false;
  out->line = line;
  std::string_view rest = Trim(comment.substr(marker + 11));
  constexpr std::string_view kAllow = "allow(";
  if (rest.substr(0, kAllow.size()) != kAllow) {
    out->malformed = true;
    return true;
  }
  rest.remove_prefix(kAllow.size());
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    out->malformed = true;
    return true;
  }
  out->rule = std::string(Trim(rest.substr(0, close)));
  if (out->rule.empty()) {
    out->malformed = true;
    return true;
  }
  std::string_view tail = Trim(rest.substr(close + 1));
  if (!tail.empty() && tail.front() == ':')
    out->justified = !Trim(tail.substr(1)).empty();
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile Run() {
    while (pos_ < src_.size()) Step();
    return std::move(result_);
  }

 private:
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') ++line_;
    ++pos_;
  }

  void Step() {
    const char c = Peek();
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      at_line_start_ = at_line_start_ || c == '\n';
      Advance();
      return;
    }
    if (c == '#' && at_line_start_) {
      SkipPreprocessorLine();
      return;
    }
    at_line_start_ = false;
    if (c == '/' && Peek(1) == '/') {
      SkipLineComment();
      return;
    }
    if (c == '/' && Peek(1) == '*') {
      SkipBlockComment();
      return;
    }
    if (c == '"') {
      SkipQuoted('"');
      return;
    }
    if (c == '\'') {
      SkipQuoted('\'');
      return;
    }
    if (IsIdentStart(c)) {
      LexIdentifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      SkipNumber();
      return;
    }
    LexPunct();
  }

  void SkipPreprocessorLine() {
    // Directives never produce tokens; honour backslash continuations.
    while (pos_ < src_.size()) {
      if (Peek() == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();
        continue;
      }
      if (Peek() == '\n') return;  // newline handled by Step (line start)
      Advance();
    }
  }

  void SkipLineComment() {
    const int line = line_;
    const std::size_t start = pos_ + 2;
    while (pos_ < src_.size() && Peek() != '\n') Advance();
    Suppression s;
    if (ParseSuppression(src_.substr(start, pos_ - start), line, &s))
      result_.suppressions.push_back(std::move(s));
  }

  void SkipBlockComment() {
    Advance();
    Advance();
    while (pos_ < src_.size()) {
      if (Peek() == '*' && Peek(1) == '/') {
        Advance();
        Advance();
        return;
      }
      Advance();
    }
  }

  void SkipQuoted(char delim) {
    Advance();
    while (pos_ < src_.size()) {
      if (Peek() == '\\') {
        Advance();
        if (pos_ < src_.size()) Advance();
        continue;
      }
      if (Peek() == delim) {
        Advance();
        return;
      }
      Advance();
    }
  }

  void SkipRawString() {
    // At the opening quote of R"delim( ... )delim".
    Advance();
    std::string delim;
    while (pos_ < src_.size() && Peek() != '(') {
      delim += Peek();
      Advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, close.size(), close) == 0) {
        for (std::size_t i = 0; i < close.size(); ++i) Advance();
        return;
      }
      Advance();
    }
  }

  void LexIdentifier() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(Peek())) {
      text += Peek();
      Advance();
    }
    // Raw-string prefix (R"..., u8R"..., LR"...): the content must not leak
    // identifier tokens, so consume the whole literal here.
    if (!text.empty() && text.back() == 'R' && Peek() == '"') {
      SkipRawString();
      return;
    }
    // Other literal prefixes (u8"...", L'x'): the literal is skipped by the
    // quote handler on the next Step; still suppress the prefix token.
    if ((text == "u8" || text == "u" || text == "U" || text == "L") &&
        (Peek() == '"' || Peek() == '\'')) {
      return;
    }
    result_.tokens.push_back({Token::Kind::kIdentifier, std::move(text), line});
  }

  void SkipNumber() {
    // Coarse pp-number scan: good enough to keep 1e5, 0x1Fu and digit
    // separators from being misread as identifiers.
    while (pos_ < src_.size() &&
           (IsIdentChar(Peek()) || Peek() == '\'' || Peek() == '.')) {
      if ((Peek() == 'e' || Peek() == 'E' || Peek() == 'p' || Peek() == 'P') &&
          (Peek(1) == '+' || Peek(1) == '-')) {
        Advance();
      }
      Advance();
    }
  }

  void LexPunct() {
    const int line = line_;
    if (Peek() == ':' && Peek(1) == ':') {
      Advance();
      Advance();
      result_.tokens.push_back({Token::Kind::kPunct, "::", line});
      return;
    }
    if (Peek() == '-' && Peek(1) == '>') {
      Advance();
      Advance();
      result_.tokens.push_back({Token::Kind::kPunct, "->", line});
      return;
    }
    result_.tokens.push_back(
        {Token::Kind::kPunct, std::string(1, Peek()), line});
    Advance();
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile result_;
};

}  // namespace

LexedFile Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace plfoc::lint
