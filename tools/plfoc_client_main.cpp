// The plfoc-client command-line tool: submit a jobfile to a running
// `plfoc serve` over the wire protocol (docs/serving.md) and print per-job
// results. All logic lives in src/cli/driver.cpp (run_client_cli) so it is
// unit-testable; this translation unit only maps argv and exceptions to
// process-level behaviour.
#include <cstdio>
#include <iostream>

#include "cli/driver.hpp"
#include "util/checks.hpp"

int main(int argc, char** argv) {
  try {
    const plfoc::ClientConfig config =
        plfoc::parse_client_cli(argc - 1, argv + 1);
    return plfoc::run_client_cli(config, std::cout);
  } catch (const plfoc::Error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "plfoc-client: unexpected error: %s\n", error.what());
    return 3;
  }
}
