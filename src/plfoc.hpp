// plfoc — computing the phylogenetic likelihood function out-of-core.
//
// Umbrella header for the public API. Include individual headers for faster
// builds; this pulls in everything.
//
// Layering (bottom to top):
//   util/        RNG, aligned buffers, timers, logging, checks
//   msa/         alignments, FASTA/PHYLIP, encodings, pattern compression
//   tree/        unrooted binary trees, Newick, traversal descriptors, moves
//   model/       reversible models, eigendecomposition, P(t), discrete Γ
//   ooc/         the storage seam: in-RAM / out-of-core / paged backends,
//                replacement strategies, prefetching, I/O statistics
//   likelihood/  the PLF engine (kernels, scaling, branch & model opt)
//   search/      parsimony, stepwise addition, lazy SPR, orchestration
//   sim/         sequence simulation and dataset planning
//   session.hpp  one-stop construction of a full analysis
//   service/     concurrent batch evaluation under a global memory budget
#pragma once

#include "likelihood/engine.hpp"       // IWYU pragma: export
#include "likelihood/checkpoint.hpp"   // IWYU pragma: export
#include "likelihood/memory_model.hpp" // IWYU pragma: export
#include "likelihood/model_opt.hpp"    // IWYU pragma: export
#include "model/eigen.hpp"             // IWYU pragma: export
#include "model/gamma.hpp"             // IWYU pragma: export
#include "model/protein_matrices.hpp"  // IWYU pragma: export
#include "model/rate_matrix.hpp"       // IWYU pragma: export
#include "model/transition.hpp"        // IWYU pragma: export
#include "msa/alignment.hpp"           // IWYU pragma: export
#include "msa/datatype.hpp"            // IWYU pragma: export
#include "msa/fasta.hpp"               // IWYU pragma: export
#include "msa/patterns.hpp"            // IWYU pragma: export
#include "msa/phylip.hpp"              // IWYU pragma: export
#include "ooc/inram_store.hpp"         // IWYU pragma: export
#include "ooc/mmap_store.hpp"            // IWYU pragma: export
#include "ooc/ooc_store.hpp"           // IWYU pragma: export
#include "ooc/paged_store.hpp"         // IWYU pragma: export
#include "ooc/prefetch.hpp"            // IWYU pragma: export
#include "ooc/replacement.hpp"         // IWYU pragma: export
#include "ooc/stats.hpp"               // IWYU pragma: export
#include "ooc/storage.hpp"             // IWYU pragma: export
#include "ooc/tiered_store.hpp"        // IWYU pragma: export
#include "search/bootstrap.hpp"        // IWYU pragma: export
#include "search/mcmc.hpp"             // IWYU pragma: export
#include "search/nni.hpp"              // IWYU pragma: export
#include "search/parsimony.hpp"        // IWYU pragma: export
#include "search/search.hpp"           // IWYU pragma: export
#include "search/spr.hpp"              // IWYU pragma: export
#include "search/stepwise.hpp"         // IWYU pragma: export
#include "service/job.hpp"             // IWYU pragma: export
#include "service/job_queue.hpp"       // IWYU pragma: export
#include "service/jobfile.hpp"         // IWYU pragma: export
#include "service/scheduler.hpp"       // IWYU pragma: export
#include "service/service.hpp"         // IWYU pragma: export
#include "service/worker_pool.hpp"     // IWYU pragma: export
#include "session.hpp"                 // IWYU pragma: export
#include "sim/dataset_planner.hpp"     // IWYU pragma: export
#include "sim/simulate.hpp"            // IWYU pragma: export
#include "tree/compare.hpp"            // IWYU pragma: export
#include "tree/distances.hpp"          // IWYU pragma: export
#include "tree/newick.hpp"             // IWYU pragma: export
#include "tree/random_tree.hpp"        // IWYU pragma: export
#include "tree/topology_moves.hpp"     // IWYU pragma: export
#include "tree/traversal.hpp"          // IWYU pragma: export
#include "tree/tree.hpp"               // IWYU pragma: export
#include "util/rng.hpp"                // IWYU pragma: export
#include "util/timer.hpp"              // IWYU pragma: export
