#include "ooc/tiered_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace plfoc {

TieredStore::TieredStore(std::size_t count, std::size_t width,
                         TieredStoreOptions options)
    : AncestralStore(count, width),
      options_(std::move(options)),
      fast_arena_(std::min(options_.fast_slots, count) * width),
      ram_arena_(std::min(options_.ram_slots, count) * width),
      bounce_(width),
      fast_(std::min(options_.fast_slots, count)),
      ram_(std::min(options_.ram_slots, count)),
      where_(count, Location::kDisk),
      slot_of_(count, kNone),
      touched_(count, false),
      prefetched_unread_(count, false),
      file_(count, width * sizeof(double), options_.file),
      fast_strategy_(make_strategy(StrategyConfig{
          options_.fast_policy, count, options_.seed, options_.tree})),
      ram_strategy_(make_strategy(StrategyConfig{
          options_.ram_policy, count, options_.seed + 1, options_.tree})) {
  PLFOC_REQUIRE(options_.fast_slots >= 3,
                "the fast tier needs at least 3 slots (working triple)");
  PLFOC_REQUIRE(options_.ram_slots >= 1, "the RAM tier needs at least 1 slot");
  PLFOC_LOG(kInfo) << "tiered store: " << count << " vectors, fast="
                   << fast_.size() << " ram=" << ram_.size() << " slots";
}

std::size_t TieredStore::fast_slots() const {
  MutexLock lock(mutex_);
  return fast_.size();
}

std::size_t TieredStore::ram_slots() const {
  MutexLock lock(mutex_);
  return ram_.size();
}

TierStats TieredStore::tier_stats() const {
  MutexLock lock(mutex_);
  return tier_stats_;
}

void TieredStore::demote(std::uint32_t slot) {
  Slot& fast_slot = fast_[slot];
  PLFOC_CHECK(fast_slot.vector != kNone && fast_slot.pins == 0);
  const std::uint32_t vector = fast_slot.vector;
  const std::uint32_t ram_slot = obtain_ram_slot(vector);
  std::memcpy(ram_data(ram_slot), fast_data(slot), width_ * sizeof(double));
  ++tier_stats_.demotions;
  tier_stats_.bytes_transferred += width_ * sizeof(double);
  ram_[ram_slot].vector = vector;
  ram_[ram_slot].dirty = fast_slot.dirty;
  ram_strategy_->on_load(vector);
  ram_strategy_->on_access(vector);
  where_[vector] = Location::kRam;
  slot_of_[vector] = ram_slot;
  fast_strategy_->on_evict(vector);
  fast_slot.vector = kNone;
  fast_slot.dirty = false;
}

std::uint32_t TieredStore::obtain_fast_slot(std::uint32_t incoming) {
  for (std::uint32_t s = 0; s < fast_.size(); ++s)
    if (fast_[s].vector == kNone) return s;
  std::vector<std::uint32_t> candidates;
  candidates.reserve(fast_.size());
  for (const Slot& slot : fast_)
    if (slot.pins == 0) candidates.push_back(slot.vector);
  PLFOC_REQUIRE(!candidates.empty(),
                "all fast-tier slots are pinned; increase fast_slots");
  const std::uint32_t victim = fast_strategy_->choose_victim(
      {candidates.data(), candidates.size()}, incoming);
  const std::uint32_t slot = slot_of_[victim];
  PLFOC_CHECK(fast_[slot].vector == victim);
  demote(slot);
  return slot;
}

std::uint32_t TieredStore::obtain_ram_slot(std::uint32_t incoming) {
  for (std::uint32_t s = 0; s < ram_.size(); ++s)
    if (ram_[s].vector == kNone) return s;
  // RAM-tier occupants are never pinned (pins live at the fast tier), so any
  // resident vector is a candidate.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(ram_.size());
  for (const Slot& slot : ram_) candidates.push_back(slot.vector);
  const std::uint32_t victim = ram_strategy_->choose_victim(
      {candidates.data(), candidates.size()}, incoming);
  const std::uint32_t slot = slot_of_[victim];
  PLFOC_CHECK(ram_[slot].vector == victim);
  // Spill to disk (the paper's slot manager always writes the victim back;
  // we keep dirty tracking here since the tiers multiply traffic).
  if (ram_[slot].dirty) {
    file_.write_vector(victim, ram_data(slot));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
  }
  ++stats_locked().evictions;
  if (prefetched_unread_[victim]) {
    prefetched_unread_[victim] = false;
    ++stats_locked().prefetch_wasted;
  }
  ram_strategy_->on_evict(victim);
  where_[victim] = Location::kDisk;
  slot_of_[victim] = kNone;
  ram_[slot].vector = kNone;
  ram_[slot].dirty = false;
  return slot;
}

// Async-engine disk-miss path. The only real write in the fast-miss cascade
// is the dirty RAM victim's spill; when it occurs, it and the demand read
// become one engine batch so the device overlaps them. Every other shape of
// the cascade (free slots, clean victims) is delegated to the sequential
// helpers — crucially without pre-consulting the replacement strategies,
// whose draws (Random consumes RNG state) must happen exactly once and in
// the sequential order.
std::uint32_t TieredStore::swap_in_overlapped(std::uint32_t index,
                                              bool verified,
                                              VerifyResult* out_verify) {
  const auto read_into = [&](std::uint32_t fslot)
                             PLFOC_REQUIRES(mutex_) {
    if (verified)
      *out_verify = file_.read_vector_verified(index, fast_data(fslot));
    else
      file_.read_vector(index, fast_data(fslot));
    ++stats_locked().file_reads;
    stats_locked().bytes_read += width_ * sizeof(double);
  };

  // A free fast slot leaves nothing to overlap.
  for (std::uint32_t s = 0; s < fast_.size(); ++s) {
    if (fast_[s].vector != kNone) continue;
    read_into(s);
    return s;
  }

  std::vector<std::uint32_t> candidates;
  candidates.reserve(fast_.size());
  for (const Slot& slot : fast_)
    if (slot.pins == 0) candidates.push_back(slot.vector);
  PLFOC_REQUIRE(!candidates.empty(),
                "all fast-tier slots are pinned; increase fast_slots");
  const std::uint32_t fast_victim = fast_strategy_->choose_victim(
      {candidates.data(), candidates.size()}, index);
  const std::uint32_t fslot = slot_of_[fast_victim];
  PLFOC_CHECK(fast_[fslot].vector == fast_victim && fast_[fslot].pins == 0);

  // A free RAM slot means the demotion spills nothing: pure sequential.
  for (std::uint32_t s = 0; s < ram_.size(); ++s) {
    if (ram_[s].vector != kNone) continue;
    demote(fslot);
    read_into(fslot);
    return fslot;
  }

  // RAM full: choose the victim once (the sequential obtain_ram_slot order).
  std::vector<std::uint32_t> ram_candidates;
  ram_candidates.reserve(ram_.size());
  for (const Slot& slot : ram_) ram_candidates.push_back(slot.vector);
  const std::uint32_t ram_victim = ram_strategy_->choose_victim(
      {ram_candidates.data(), ram_candidates.size()}, fast_victim);
  const std::uint32_t rslot = slot_of_[ram_victim];
  PLFOC_CHECK(ram_[rslot].vector == ram_victim);

  if (ram_[rslot].dirty) {
    // Overlap: the spill write sources the RAM slot directly (its content is
    // not touched until the demotion lands below); the demand read reuses
    // the fast victim's slot, so that content moves to scratch first.
    if (demote_scratch_.size() != width_) demote_scratch_.resize(width_);
    std::memcpy(demote_scratch_.data(), fast_data(fslot),
                width_ * sizeof(double));
    FileBackend::VectorOp ops[2];
    ops[0].is_write = true;
    ops[0].index = ram_victim;
    ops[0].buffer = ram_data(rslot);
    ops[1].is_write = false;
    ops[1].index = index;
    ops[1].verify = verified;
    ops[1].buffer = fast_data(fslot);
    file_.submit_vector_ops(ops, 2);

    if (!ops[0].ok()) {
      // The sequential spill throw leaves both tiers fully intact: restore
      // the fast victim's content (the read clobbered its slot) and unwind.
      std::memcpy(fast_data(fslot), demote_scratch_.data(),
                  width_ * sizeof(double));
      throw IoError("pwrite", ops[0].error, ops[0].fail_offset,
                    ops[0].attempts, ops[0].injected);
    }
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
    ++stats_locked().evictions;
    if (prefetched_unread_[ram_victim]) {
      prefetched_unread_[ram_victim] = false;
      ++stats_locked().prefetch_wasted;
    }
    ram_strategy_->on_evict(ram_victim);
    where_[ram_victim] = Location::kDisk;
    slot_of_[ram_victim] = kNone;
    ram_[rslot].vector = kNone;
    ram_[rslot].dirty = false;
    // The demotion itself, from the scratch image.
    std::memcpy(ram_data(rslot), demote_scratch_.data(),
                width_ * sizeof(double));
    ++tier_stats_.demotions;
    tier_stats_.bytes_transferred += width_ * sizeof(double);
    ram_[rslot].vector = fast_victim;
    ram_[rslot].dirty = fast_[fslot].dirty;
    ram_strategy_->on_load(fast_victim);
    ram_strategy_->on_access(fast_victim);
    where_[fast_victim] = Location::kRam;
    slot_of_[fast_victim] = rslot;
    fast_strategy_->on_evict(fast_victim);
    fast_[fslot].vector = kNone;
    fast_[fslot].dirty = false;

    if (!ops[1].ok())
      throw IoError("pread", ops[1].error, ops[1].fail_offset,
                    ops[1].attempts, ops[1].injected);
    ++stats_locked().file_reads;
    stats_locked().bytes_read += width_ * sizeof(double);
    *out_verify = ops[1].verify_result;
    return fslot;
  }

  // Clean RAM victim: no spill write — inline the sequential bookkeeping
  // (the victim draw above already happened, so demote() must not redraw).
  ++stats_locked().evictions;
  if (prefetched_unread_[ram_victim]) {
    prefetched_unread_[ram_victim] = false;
    ++stats_locked().prefetch_wasted;
  }
  ram_strategy_->on_evict(ram_victim);
  where_[ram_victim] = Location::kDisk;
  slot_of_[ram_victim] = kNone;
  ram_[rslot].vector = kNone;
  ram_[rslot].dirty = false;
  std::memcpy(ram_data(rslot), fast_data(fslot), width_ * sizeof(double));
  ++tier_stats_.demotions;
  tier_stats_.bytes_transferred += width_ * sizeof(double);
  ram_[rslot].vector = fast_victim;
  ram_[rslot].dirty = fast_[fslot].dirty;
  ram_strategy_->on_load(fast_victim);
  ram_strategy_->on_access(fast_victim);
  where_[fast_victim] = Location::kRam;
  slot_of_[fast_victim] = rslot;
  fast_strategy_->on_evict(fast_victim);
  fast_[fslot].vector = kNone;
  fast_[fslot].dirty = false;
  read_into(fslot);
  return fslot;
}

double* TieredStore::do_acquire(std::uint32_t index, AccessMode mode) {
  PLFOC_CHECK(index < count_);
  // MutexLock (not lock_guard semantics): a failed disk-read verification
  // releases the lock around the recovery hook, whose child acquires
  // re-enter this method.
  MutexLock lock(mutex_);
  ++stats_locked().accesses;

  if (where_[index] == Location::kFast) {
    ++stats_locked().hits;
    ++tier_stats_.fast_hits;
    const std::uint32_t slot = slot_of_[index];
    ++fast_[slot].pins;
    if (mode == AccessMode::kWrite) fast_[slot].dirty = true;
    fast_strategy_->on_access(index);
    return fast_data(slot);
  }

  ++stats_locked().misses;
  if (!touched_[index]) ++stats_locked().cold_misses;

  const bool from_ram = where_[index] == Location::kRam;
  bool promoted_dirty = false;
  if (from_ram) {
    // Stage the promotion through a bounce buffer and release the RAM slot
    // *before* freeing a fast slot: the demoted fast victim can then drop
    // into the just-freed RAM slot instead of spilling a third vector to
    // disk when both tiers are exactly full.
    const std::uint32_t ram_slot = slot_of_[index];
    std::memcpy(bounce_.data(), ram_data(ram_slot), width_ * sizeof(double));
    promoted_dirty = ram_[ram_slot].dirty;
    ram_strategy_->on_evict(index);
    ram_[ram_slot].vector = kNone;
    ram_[ram_slot].dirty = false;
    where_[index] = Location::kDisk;  // transiently: lives in the bounce buffer
    slot_of_[index] = kNone;
  }

  std::uint32_t fast_slot;
  VerifyResult verify;  // stays kOk unless a verified disk read fails
  if (from_ram) {
    fast_slot = obtain_fast_slot(index);
    // Promote from host RAM: a PCIe copy, no disk access.
    std::memcpy(fast_data(fast_slot), bounce_.data(), width_ * sizeof(double));
    ++tier_stats_.promotions;
    ++tier_stats_.ram_hits;
    tier_stats_.bytes_transferred += width_ * sizeof(double);
    fast_[fast_slot].dirty = promoted_dirty;
  } else {
    // Load from disk straight into the fast tier (staging through host RAM
    // is a hardware detail the model need not pay twice for).
    const bool need_read = mode == AccessMode::kRead || !options_.read_skipping;
    if (need_read && file_.async_io()) {
      // Only kRead misses verify: a paper-mode write-miss read loads bytes
      // that are about to be overwritten, so damage there is never consumed.
      fast_slot = swap_in_overlapped(
          index, mode == AccessMode::kRead && file_.integrity(), &verify);
    } else {
      fast_slot = obtain_fast_slot(index);
      if (need_read) {
        if (mode == AccessMode::kRead && file_.integrity())
          verify = file_.read_vector_verified(index, fast_data(fast_slot));
        else
          file_.read_vector(index, fast_data(fast_slot));
        ++stats_locked().file_reads;
        stats_locked().bytes_read += width_ * sizeof(double);
      } else {
        ++stats_locked().skipped_reads;
      }
    }
    ++tier_stats_.promotions;
    tier_stats_.bytes_transferred += width_ * sizeof(double);
    fast_[fast_slot].dirty = false;
  }

  touched_[index] = true;
  // A demand acquire is the payoff the prefetch staged for (the from_ram
  // promotion above IS the hit); the install can no longer count as wasted.
  prefetched_unread_[index] = false;
  fast_[fast_slot].vector = index;
  fast_[fast_slot].pins = 1;
  if (mode == AccessMode::kWrite) fast_[fast_slot].dirty = true;
  where_[index] = Location::kFast;
  slot_of_[index] = fast_slot;
  fast_strategy_->on_load(index);
  fast_strategy_->on_access(index);
  if (!verify.ok()) recover_or_throw(lock, index, fast_slot, verify);
  return fast_data(fast_slot);
}

// The body juggles the capability (unlocks around the re-entrant recovery
// hook, relocks before mutating the slot table); the REQUIRES contract on
// the declaration is what callers are checked against.
void TieredStore::recover_or_throw(MutexLock& lock, std::uint32_t index,
                                   std::uint32_t slot,
                                   const VerifyResult& verify)
    PLFOC_NO_THREAD_SAFETY_ANALYSIS {
  std::uint64_t recomputed = 0;
  if (recovery_hook_) {
    double* dst = fast_data(slot);
    // The hook recomputes from children via acquire()/release(), which
    // re-enter do_acquire — the slot table must be unlocked. `index` itself
    // stays pinned, so its fast slot (and dst) cannot move meanwhile.
    lock.unlock();
    try {
      recomputed = recovery_hook_(index, dst);
    } catch (...) {
      recomputed = 0;  // a failing recovery is an unrecoverable record
    }
    lock.lock();
  }

  // Count the whole episode at resolution, under one lock hold, so snapshots
  // taken by nested acquires never see the failure/recovery identity broken.
  ++stats_locked().integrity_failures;
  if (recomputed > 0) {
    ++stats_locked().integrity_recoveries;
    stats_locked().recovery_recomputes += recomputed;
    // The healed content supersedes the corrupt record: route it back to the
    // file through the normal dirty demote/spill path.
    fast_[slot].dirty = true;
    return;
  }

  ++stats_locked().integrity_unrecovered;
  // Undo the install: the slot holds damaged bytes nobody may consume.
  PLFOC_CHECK(fast_[slot].pins == 1);
  fast_[slot] = Slot{};
  where_[index] = Location::kDisk;
  slot_of_[index] = kNone;
  fast_strategy_->on_evict(index);
  throw IntegrityError(
      "tiered swap-in", index, verify.expected_generation,
      verify.found_generation, verify.injected,
      std::string(verify.status_name()) +
          (recovery_hook_
               ? "; recomputation failed (children unavailable or hook error)"
               : "; no recovery hook registered"));
}

void TieredStore::do_release(std::uint32_t index) {
  MutexLock lock(mutex_);
  PLFOC_CHECK(where_[index] == Location::kFast);
  Slot& slot = fast_[slot_of_[index]];
  PLFOC_CHECK(slot.pins > 0);
  --slot.pins;
}

void TieredStore::prefetch(std::uint32_t index) {
  PLFOC_CHECK(index < count_);
  // Advisory cancellation: this may run on the Prefetcher's worker thread,
  // where throwing would terminate the process. The demand path's acquire()
  // raises the typed CancelledError instead.
  if (cancel_.cancelled_or_expired()) return;
  MutexLock lock(mutex_);
  if (where_[index] != Location::kDisk) return;  // already staged or resident
  if (!touched_[index]) return;  // nothing meaningful on disk yet
  const std::uint32_t rslot = obtain_ram_slot(index);
  if (file_.integrity()) {
    // A later promotion consumes RAM-tier bytes without re-verification, so
    // the advisory read is where damage must be caught: drop the install and
    // let the demand miss take the verified (and recoverable) disk path.
    const VerifyResult verify =
        file_.read_vector_verified(index, ram_data(rslot));
    if (!verify.ok()) {
      stats_locked().bytes_read += width_ * sizeof(double);
      ++stats_locked().prefetch_stale;
      return;  // rslot stays free
    }
  } else {
    file_.read_vector(index, ram_data(rslot));
  }
  stats_locked().bytes_read += width_ * sizeof(double);
  ++stats_locked().prefetch_reads;
  ram_[rslot].vector = index;
  ram_[rslot].dirty = false;
  ram_strategy_->on_load(index);
  ram_strategy_->on_prefetch_install(index);
  where_[index] = Location::kRam;
  slot_of_[index] = rslot;
  prefetched_unread_[index] = true;
}

void TieredStore::flush() {
  MutexLock lock(mutex_);
  for (std::uint32_t s = 0; s < fast_.size(); ++s) {
    if (fast_[s].vector == kNone || !fast_[s].dirty) continue;
    file_.write_vector(fast_[s].vector, fast_data(s));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
    fast_[s].dirty = false;
  }
  for (std::uint32_t s = 0; s < ram_.size(); ++s) {
    if (ram_[s].vector == kNone || !ram_[s].dirty) continue;
    file_.write_vector(ram_[s].vector, ram_data(s));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
    ram_[s].dirty = false;
  }
  file_.sync();
}

OocStats TieredStore::stats_snapshot() const {
  MutexLock lock(mutex_);
  OocStats out = stats_locked();
  out.faults_injected = file_.faults_injected();
  out.io_retries = file_.io_retries();
  out.io_exhausted = file_.io_exhausted();
  out.corruptions_injected = file_.corruptions_injected();
  out.io_batches = file_.io_batches();
  out.io_coalesced = file_.io_coalesced();
  out.io_write_coalesced = file_.io_write_coalesced();
  return out;
}

void TieredStore::reset_stats() {
  MutexLock lock(mutex_);
  file_.reset_fault_counters();
  file_.reset_io_counters();
  // Forget pending prefetch installs: a wasted eviction after the reset
  // would otherwise break the prefetch_wasted <= prefetch_reads identity.
  std::fill(prefetched_unread_.begin(), prefetched_unread_.end(), false);
  stats_locked() = OocStats{};
}

}  // namespace plfoc
