#include "ooc/tiered_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace plfoc {

TieredStore::TieredStore(std::size_t count, std::size_t width,
                         TieredStoreOptions options)
    : AncestralStore(count, width),
      options_(std::move(options)),
      fast_arena_(std::min(options_.fast_slots, count) * width),
      ram_arena_(std::min(options_.ram_slots, count) * width),
      bounce_(width),
      fast_(std::min(options_.fast_slots, count)),
      ram_(std::min(options_.ram_slots, count)),
      where_(count, Location::kDisk),
      slot_of_(count, kNone),
      touched_(count, false),
      file_(count, width * sizeof(double), options_.file),
      fast_strategy_(make_strategy(StrategyConfig{
          options_.fast_policy, count, options_.seed, options_.tree})),
      ram_strategy_(make_strategy(StrategyConfig{
          options_.ram_policy, count, options_.seed + 1, options_.tree})) {
  PLFOC_REQUIRE(options_.fast_slots >= 3,
                "the fast tier needs at least 3 slots (working triple)");
  PLFOC_REQUIRE(options_.ram_slots >= 1, "the RAM tier needs at least 1 slot");
  PLFOC_LOG(kInfo) << "tiered store: " << count << " vectors, fast="
                   << fast_.size() << " ram=" << ram_.size() << " slots";
}

std::size_t TieredStore::fast_slots() const {
  MutexLock lock(mutex_);
  return fast_.size();
}

std::size_t TieredStore::ram_slots() const {
  MutexLock lock(mutex_);
  return ram_.size();
}

TierStats TieredStore::tier_stats() const {
  MutexLock lock(mutex_);
  return tier_stats_;
}

void TieredStore::demote(std::uint32_t slot) {
  Slot& fast_slot = fast_[slot];
  PLFOC_CHECK(fast_slot.vector != kNone && fast_slot.pins == 0);
  const std::uint32_t vector = fast_slot.vector;
  const std::uint32_t ram_slot = obtain_ram_slot(vector);
  std::memcpy(ram_data(ram_slot), fast_data(slot), width_ * sizeof(double));
  ++tier_stats_.demotions;
  tier_stats_.bytes_transferred += width_ * sizeof(double);
  ram_[ram_slot].vector = vector;
  ram_[ram_slot].dirty = fast_slot.dirty;
  ram_strategy_->on_load(vector);
  ram_strategy_->on_access(vector);
  where_[vector] = Location::kRam;
  slot_of_[vector] = ram_slot;
  fast_strategy_->on_evict(vector);
  fast_slot.vector = kNone;
  fast_slot.dirty = false;
}

std::uint32_t TieredStore::obtain_fast_slot(std::uint32_t incoming) {
  for (std::uint32_t s = 0; s < fast_.size(); ++s)
    if (fast_[s].vector == kNone) return s;
  std::vector<std::uint32_t> candidates;
  candidates.reserve(fast_.size());
  for (const Slot& slot : fast_)
    if (slot.pins == 0) candidates.push_back(slot.vector);
  PLFOC_REQUIRE(!candidates.empty(),
                "all fast-tier slots are pinned; increase fast_slots");
  const std::uint32_t victim = fast_strategy_->choose_victim(
      {candidates.data(), candidates.size()}, incoming);
  const std::uint32_t slot = slot_of_[victim];
  PLFOC_CHECK(fast_[slot].vector == victim);
  demote(slot);
  return slot;
}

std::uint32_t TieredStore::obtain_ram_slot(std::uint32_t incoming) {
  for (std::uint32_t s = 0; s < ram_.size(); ++s)
    if (ram_[s].vector == kNone) return s;
  // RAM-tier occupants are never pinned (pins live at the fast tier), so any
  // resident vector is a candidate.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(ram_.size());
  for (const Slot& slot : ram_) candidates.push_back(slot.vector);
  const std::uint32_t victim = ram_strategy_->choose_victim(
      {candidates.data(), candidates.size()}, incoming);
  const std::uint32_t slot = slot_of_[victim];
  PLFOC_CHECK(ram_[slot].vector == victim);
  // Spill to disk (the paper's slot manager always writes the victim back;
  // we keep dirty tracking here since the tiers multiply traffic).
  if (ram_[slot].dirty) {
    file_.write_vector(victim, ram_data(slot));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
  }
  ++stats_locked().evictions;
  ram_strategy_->on_evict(victim);
  where_[victim] = Location::kDisk;
  slot_of_[victim] = kNone;
  ram_[slot].vector = kNone;
  ram_[slot].dirty = false;
  return slot;
}

double* TieredStore::do_acquire(std::uint32_t index, AccessMode mode) {
  PLFOC_CHECK(index < count_);
  // MutexLock (not lock_guard semantics): a failed disk-read verification
  // releases the lock around the recovery hook, whose child acquires
  // re-enter this method.
  MutexLock lock(mutex_);
  ++stats_locked().accesses;

  if (where_[index] == Location::kFast) {
    ++stats_locked().hits;
    ++tier_stats_.fast_hits;
    const std::uint32_t slot = slot_of_[index];
    ++fast_[slot].pins;
    if (mode == AccessMode::kWrite) fast_[slot].dirty = true;
    fast_strategy_->on_access(index);
    return fast_data(slot);
  }

  ++stats_locked().misses;
  if (!touched_[index]) ++stats_locked().cold_misses;

  const bool from_ram = where_[index] == Location::kRam;
  bool promoted_dirty = false;
  if (from_ram) {
    // Stage the promotion through a bounce buffer and release the RAM slot
    // *before* freeing a fast slot: the demoted fast victim can then drop
    // into the just-freed RAM slot instead of spilling a third vector to
    // disk when both tiers are exactly full.
    const std::uint32_t ram_slot = slot_of_[index];
    std::memcpy(bounce_.data(), ram_data(ram_slot), width_ * sizeof(double));
    promoted_dirty = ram_[ram_slot].dirty;
    ram_strategy_->on_evict(index);
    ram_[ram_slot].vector = kNone;
    ram_[ram_slot].dirty = false;
    where_[index] = Location::kDisk;  // transiently: lives in the bounce buffer
    slot_of_[index] = kNone;
  }

  const std::uint32_t fast_slot = obtain_fast_slot(index);
  VerifyResult verify;  // stays kOk unless a verified disk read fails
  if (from_ram) {
    // Promote from host RAM: a PCIe copy, no disk access.
    std::memcpy(fast_data(fast_slot), bounce_.data(), width_ * sizeof(double));
    ++tier_stats_.promotions;
    ++tier_stats_.ram_hits;
    tier_stats_.bytes_transferred += width_ * sizeof(double);
    fast_[fast_slot].dirty = promoted_dirty;
  } else {
    // Load from disk straight into the fast tier (staging through host RAM
    // is a hardware detail the model need not pay twice for).
    if (mode == AccessMode::kRead || !options_.read_skipping) {
      // Only kRead misses verify: a paper-mode write-miss read loads bytes
      // that are about to be overwritten, so damage there is never consumed.
      if (mode == AccessMode::kRead && file_.integrity())
        verify = file_.read_vector_verified(index, fast_data(fast_slot));
      else
        file_.read_vector(index, fast_data(fast_slot));
      ++stats_locked().file_reads;
      stats_locked().bytes_read += width_ * sizeof(double);
    } else {
      ++stats_locked().skipped_reads;
    }
    ++tier_stats_.promotions;
    tier_stats_.bytes_transferred += width_ * sizeof(double);
    fast_[fast_slot].dirty = false;
  }

  touched_[index] = true;
  fast_[fast_slot].vector = index;
  fast_[fast_slot].pins = 1;
  if (mode == AccessMode::kWrite) fast_[fast_slot].dirty = true;
  where_[index] = Location::kFast;
  slot_of_[index] = fast_slot;
  fast_strategy_->on_load(index);
  fast_strategy_->on_access(index);
  if (!verify.ok()) recover_or_throw(lock, index, fast_slot, verify);
  return fast_data(fast_slot);
}

// The body juggles the capability (unlocks around the re-entrant recovery
// hook, relocks before mutating the slot table); the REQUIRES contract on
// the declaration is what callers are checked against.
void TieredStore::recover_or_throw(MutexLock& lock, std::uint32_t index,
                                   std::uint32_t slot,
                                   const VerifyResult& verify)
    PLFOC_NO_THREAD_SAFETY_ANALYSIS {
  std::uint64_t recomputed = 0;
  if (recovery_hook_) {
    double* dst = fast_data(slot);
    // The hook recomputes from children via acquire()/release(), which
    // re-enter do_acquire — the slot table must be unlocked. `index` itself
    // stays pinned, so its fast slot (and dst) cannot move meanwhile.
    lock.unlock();
    try {
      recomputed = recovery_hook_(index, dst);
    } catch (...) {
      recomputed = 0;  // a failing recovery is an unrecoverable record
    }
    lock.lock();
  }

  // Count the whole episode at resolution, under one lock hold, so snapshots
  // taken by nested acquires never see the failure/recovery identity broken.
  ++stats_locked().integrity_failures;
  if (recomputed > 0) {
    ++stats_locked().integrity_recoveries;
    stats_locked().recovery_recomputes += recomputed;
    // The healed content supersedes the corrupt record: route it back to the
    // file through the normal dirty demote/spill path.
    fast_[slot].dirty = true;
    return;
  }

  ++stats_locked().integrity_unrecovered;
  // Undo the install: the slot holds damaged bytes nobody may consume.
  PLFOC_CHECK(fast_[slot].pins == 1);
  fast_[slot] = Slot{};
  where_[index] = Location::kDisk;
  slot_of_[index] = kNone;
  fast_strategy_->on_evict(index);
  throw IntegrityError(
      "tiered swap-in", index, verify.expected_generation,
      verify.found_generation, verify.injected,
      std::string(verify.status_name()) +
          (recovery_hook_
               ? "; recomputation failed (children unavailable or hook error)"
               : "; no recovery hook registered"));
}

void TieredStore::do_release(std::uint32_t index) {
  MutexLock lock(mutex_);
  PLFOC_CHECK(where_[index] == Location::kFast);
  Slot& slot = fast_[slot_of_[index]];
  PLFOC_CHECK(slot.pins > 0);
  --slot.pins;
}

void TieredStore::flush() {
  MutexLock lock(mutex_);
  for (std::uint32_t s = 0; s < fast_.size(); ++s) {
    if (fast_[s].vector == kNone || !fast_[s].dirty) continue;
    file_.write_vector(fast_[s].vector, fast_data(s));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
    fast_[s].dirty = false;
  }
  for (std::uint32_t s = 0; s < ram_.size(); ++s) {
    if (ram_[s].vector == kNone || !ram_[s].dirty) continue;
    file_.write_vector(ram_[s].vector, ram_data(s));
    ++stats_locked().file_writes;
    stats_locked().bytes_written += width_ * sizeof(double);
    ram_[s].dirty = false;
  }
  file_.sync();
}

OocStats TieredStore::stats_snapshot() const {
  MutexLock lock(mutex_);
  OocStats out = stats_locked();
  out.faults_injected = file_.faults_injected();
  out.io_retries = file_.io_retries();
  out.io_exhausted = file_.io_exhausted();
  out.corruptions_injected = file_.corruptions_injected();
  return out;
}

void TieredStore::reset_stats() {
  MutexLock lock(mutex_);
  file_.reset_fault_counters();
  stats_locked() = OocStats{};
}

}  // namespace plfoc
