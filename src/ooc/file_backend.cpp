#include "ooc/file_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/checks.hpp"

namespace plfoc {
namespace {

// On-disk layout of an integrity-enabled vector file (docs/file-formats.md):
//   [0, 4096)                       header (fields below, rest reserved 0)
//   [4096, 4096 + 16 * blocks)      table: {u64 checksum, u64 generation}
//   [payload_offset, ...)           payload, payload_offset 4 KiB-aligned
constexpr std::uint64_t kHeaderBytes = 4096;
constexpr std::uint64_t kTableEntryBytes = 16;
constexpr std::uint32_t kMagic = 0x56464c50;  // "PLFV" little-endian
constexpr std::uint32_t kFormatVersion = 1;
// Header field byte offsets.
constexpr std::uint64_t kOffMagic = 0;
constexpr std::uint64_t kOffVersion = 4;
constexpr std::uint64_t kOffBlockBytes = 8;
constexpr std::uint64_t kOffBlockCount = 16;
constexpr std::uint64_t kOffTableOffset = 24;
constexpr std::uint64_t kOffPayloadOffset = 32;
constexpr std::uint64_t kOffChecksumSeed = 40;
constexpr std::uint64_t kOffPayloadBytes = 48;
// Stripe-file checksum seeds derive from this constant: seed_k =
// mix64(kChecksumSeedBase ^ mix64(k)). The seed is stored in the header so
// fsck needs no out-of-band knowledge.
constexpr std::uint64_t kChecksumSeedBase = 0x504c4656ull;  // "PLFV"

constexpr std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

void put_u32(unsigned char* base, std::uint64_t offset, std::uint32_t value) {
  std::memcpy(base + offset, &value, sizeof value);
}
void put_u64(unsigned char* base, std::uint64_t offset, std::uint64_t value) {
  std::memcpy(base + offset, &value, sizeof value);
}
std::uint32_t get_u32(const unsigned char* base, std::uint64_t offset) {
  std::uint32_t value;
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}
std::uint64_t get_u64(const unsigned char* base, std::uint64_t offset) {
  std::uint64_t value;
  std::memcpy(&value, base + offset, sizeof value);
  return value;
}

}  // namespace

const char* VerifyResult::status_name() const {
  switch (status) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kChecksumMismatch: return "checksum mismatch";
    case VerifyStatus::kStaleGeneration: return "stale generation";
  }
  return "?";
}

// The single I/O loop behind every vector transfer. POSIX permits pread /
// pwrite to transfer fewer bytes than requested or fail with EINTR on a
// perfectly healthy device, so short-transfer resumption and EINTR retry are
// unconditional — they neither consume retry budget nor depend on fault
// injection being configured. Transient errors (EIO, ENOSPC, ...) consume
// the bounded RetryPolicy budget with exponential backoff; completed
// progress is kept across retries (partial-I/O resumption), and any
// successful transfer resets the consecutive-failure count.
void FileBackend::transfer_all(bool is_write, int fd, void* buffer,
                               std::size_t bytes, std::uint64_t offset) {
  char* cursor = static_cast<char*>(buffer);
  std::size_t remaining = bytes;
  unsigned consecutive_failures = 0;
  unsigned faults_this_transfer = 0;
  std::uint64_t backoff_us = options_.retry.backoff_initial_us;
  const char* op = is_write ? "pwrite" : "pread";
  while (remaining > 0) {
    const std::uint64_t position = offset + (bytes - remaining);
    std::size_t request = remaining;
    int simulated_errno = 0;
    if (injector_ != nullptr) {
      const FaultDecision fault =
          injector_->next(is_write, faults_this_transfer);
      if (fault.kind != FaultKind::kNone)
        faults_injected_.fetch_add(1, std::memory_order_relaxed);
      switch (fault.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kLatency:
          // A stall, not an error: the transfer proceeds untouched and the
          // spike does not count against the burst cap.
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options_.faults.latency_ns));
          break;
        case FaultKind::kShortTransfer:
          ++faults_this_transfer;
          if (remaining > 1)
            request = 1 + static_cast<std::size_t>(
                              fault.fraction *
                              static_cast<double>(remaining - 1));
          break;
        case FaultKind::kEintr:
          ++faults_this_transfer;
          simulated_errno = EINTR;
          break;
        case FaultKind::kEio:
          ++faults_this_transfer;
          simulated_errno = EIO;
          break;
        case FaultKind::kEnospc:
          ++faults_this_transfer;
          simulated_errno = is_write ? ENOSPC : EIO;
          break;
      }
    }
    ssize_t moved;
    if (simulated_errno != 0) {
      // An injected error models a syscall that transferred nothing.
      moved = -1;
      errno = simulated_errno;
    } else if (is_write) {
      moved = ::pwrite(fd, cursor, request, static_cast<off_t>(position));
    } else {
      moved = ::pread(fd, cursor, request, static_cast<off_t>(position));
    }
    if (moved < 0) {
      const int error = errno;
      if (error == EINTR) {
        // Mandatory POSIX handling, never bounded by the retry policy.
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (consecutive_failures < options_.retry.max_retries) {
        ++consecutive_failures;
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min<std::uint64_t>(
              options_.retry.backoff_max_us,
              static_cast<std::uint64_t>(
                  static_cast<double>(backoff_us) *
                  options_.retry.backoff_multiplier));
        }
        continue;  // resume from `position`: prior progress is kept
      }
      io_exhausted_.fetch_add(1, std::memory_order_relaxed);
      throw IoError(op, error, position, consecutive_failures + 1,
                    simulated_errno != 0);
    }
    PLFOC_REQUIRE(moved > 0,
                  is_write ? "pwrite transferred no bytes"
                           : "pread hit end of vector file (file truncated?)");
    // A transfer that did not finish in this syscall resumes from the new
    // cursor on the next iteration — count that continuation as a retry.
    if (static_cast<std::size_t>(moved) < remaining)
      io_retries_.fetch_add(1, std::memory_order_relaxed);
    consecutive_failures = 0;
    backoff_us = options_.retry.backoff_initial_us;
    cursor += moved;
    remaining -= static_cast<std::size_t>(moved);
  }
}

FileBackend::FileBackend(std::size_t count, std::size_t bytes_per_vector,
                         FileBackendOptions options)
    : count_(count), bytes_per_vector_(bytes_per_vector),
      options_(std::move(options)) {
  if (options_.faults.enabled())
    injector_ = std::make_unique<FaultInjector>(options_.faults);
  PLFOC_REQUIRE(count_ > 0 && bytes_per_vector_ > 0,
                "FileBackend needs a positive vector count and width");
  PLFOC_REQUIRE(options_.num_files >= 1 && options_.num_files <= 64,
                "FileBackend supports 1..64 stripe files");
  PLFOC_REQUIRE(!options_.base_path.empty(), "FileBackend needs a file path");
  PLFOC_REQUIRE(!options_.faults.corruption_enabled() || options_.integrity,
                "corruption injection requires integrity checksums — a flip "
                "without a checksum table is a silently wrong likelihood");
  block_bytes_ = options_.integrity_block_bytes != 0
                     ? options_.integrity_block_bytes
                     : bytes_per_vector_;

  for (unsigned k = 0; k < options_.num_files; ++k) {
    std::string path = options_.base_path;
    if (options_.num_files > 1) path += "." + std::to_string(k);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    PLFOC_REQUIRE(fd >= 0, "cannot create vector file '" + path + "': " +
                               std::strerror(errno));
    fds_.push_back(fd);
    paths_.push_back(std::move(path));
  }
  if (options_.direct_io) {
    // Best effort: a filesystem may refuse O_DIRECT (tmpfs does); -1 routes
    // every attempt through the buffered fd.
    for (const std::string& path : paths_) {
#ifdef O_DIRECT
      direct_fds_.push_back(::open(path.c_str(), O_RDWR | O_DIRECT));
#else
      direct_fds_.push_back(-1);
#endif
    }
  }

  // Adopt the shared engine only when nothing this backend binds into a
  // private engine would be lost: no fault schedule (the engine carries the
  // injector + latency spike), matching kind/depth, and no bespoke
  // completion permutation. Otherwise build a private engine as before.
  const unsigned resolved_depth = options_.io_depth < 1 ? 1 : options_.io_depth;
  if (options_.shared_engine != nullptr && injector_ == nullptr &&
      options_.shared_engine->kind == options_.io_engine &&
      options_.shared_engine->depth == resolved_depth &&
      (options_.io_engine != AioEngineKind::kDeterministic ||
       options_.io_permute_seed == kAioOrderIdentity)) {
    shared_engine_ = options_.shared_engine;
  } else {
    AioEngineOptions engine_options;
    engine_options.kind = options_.io_engine;
    engine_options.depth = resolved_depth;
    engine_options.permute_seed = options_.io_permute_seed;
    engine_options.injector = injector_.get();
    engine_options.retry = options_.retry;
    engine_options.latency_ns = options_.faults.latency_ns;
    engine_ = make_aio_engine(engine_options);
  }

  // Vectors stripe round-robin: file k holds ceil((count - k)/num_files).
  for (unsigned k = 0; k < options_.num_files; ++k) {
    const std::uint64_t vectors_in_file =
        (count_ + options_.num_files - 1 - k) / options_.num_files;
    const std::uint64_t payload_bytes = vectors_in_file * bytes_per_vector_;
    if (options_.integrity) init_integrity_file(k, payload_bytes);
    if (options_.preallocate) {
      const std::uint64_t file_bytes =
          (options_.integrity ? integrity_[k].payload_offset : 0) +
          payload_bytes;
      const int rc = ::ftruncate(fds_[k], static_cast<off_t>(file_bytes));
      PLFOC_REQUIRE(rc == 0, std::string("ftruncate failed: ") +
                                 std::strerror(errno));
    }
  }
}

// Raw bootstrap/diagnostic I/O: EINTR and short transfers handled, no fault
// injection, no retry budget, no device-time accounting. A read past EOF
// zero-fills the remainder (preallocation semantics: unwritten is zero).
void FileBackend::raw_io(bool is_write, int fd, void* buffer,
                         std::size_t bytes, std::uint64_t offset) {
  char* cursor = static_cast<char*>(buffer);
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const off_t position = static_cast<off_t>(offset + (bytes - remaining));
    const ssize_t moved = is_write ? ::pwrite(fd, cursor, remaining, position)
                                   : ::pread(fd, cursor, remaining, position);
    if (moved < 0) {
      if (errno == EINTR) continue;
      PLFOC_REQUIRE(false, std::string(is_write ? "pwrite" : "pread") +
                               " (integrity metadata) failed: " +
                               std::strerror(errno));
    }
    if (moved == 0) {
      PLFOC_REQUIRE(!is_write, "pwrite transferred no bytes");
      std::memset(cursor, 0, remaining);
      return;
    }
    cursor += moved;
    remaining -= static_cast<std::size_t>(moved);
  }
}

void FileBackend::init_integrity_file(unsigned file_index,
                                      std::uint64_t payload_bytes) {
  FileIntegrity fi;
  fi.payload_bytes = payload_bytes;
  fi.block_count = (payload_bytes + block_bytes_ - 1) / block_bytes_;
  fi.payload_offset =
      round_up(kHeaderBytes + fi.block_count * kTableEntryBytes, 4096);
  fi.checksum_seed = mix64(kChecksumSeedBase ^ mix64(file_index));
  fi.checksum.reset(new std::atomic<std::uint64_t>[fi.block_count]());
  fi.generation.reset(new std::atomic<std::uint64_t>[fi.block_count]());
  fi.corrupt_mark.reset(new std::atomic<std::uint8_t>[fi.block_count]());

  unsigned char header[kHeaderBytes] = {};
  put_u32(header, kOffMagic, kMagic);
  put_u32(header, kOffVersion, kFormatVersion);
  put_u64(header, kOffBlockBytes, block_bytes_);
  put_u64(header, kOffBlockCount, fi.block_count);
  put_u64(header, kOffTableOffset, kHeaderBytes);
  put_u64(header, kOffPayloadOffset, fi.payload_offset);
  put_u64(header, kOffChecksumSeed, fi.checksum_seed);
  put_u64(header, kOffPayloadBytes, payload_bytes);
  raw_io(true, fds_[file_index], header, sizeof header, 0);
  // The zeroed table region materialises via ftruncate (preallocation) or
  // sparse extension on the first table write; generation 0 == never written
  // either way.
  const int rc = ::ftruncate(fds_[file_index],
                             static_cast<off_t>(fi.payload_offset));
  PLFOC_REQUIRE(rc == 0,
                std::string("ftruncate failed: ") + std::strerror(errno));
  integrity_.push_back(std::move(fi));
}

FileBackend::~FileBackend() {
  engine_.reset();  // drain workers before their fds go away
  // A shared engine outlives this backend, but no op of ours is in flight:
  // batches complete synchronously inside submit_vector_ops, so nothing in
  // the pool references our fds past that call.
  shared_engine_.reset();
  for (int fd : direct_fds_)
    if (fd >= 0) ::close(fd);
  for (int fd : fds_) ::close(fd);
  if (options_.remove_on_close)
    for (const std::string& path : paths_) ::unlink(path.c_str());
}

const char* FileBackend::io_engine_name() const {
  if (shared_engine_ != nullptr) {
    MutexLock lock(shared_engine_->mutex);
    return shared_engine_->engine->name();
  }
  MutexLock lock(engine_mutex_);
  return engine_->name();
}

FileBackend::Location FileBackend::locate(std::uint32_t index) const {
  PLFOC_DCHECK(index < count_);
  const unsigned file = index % options_.num_files;
  const std::uint64_t slot = index / options_.num_files;
  return {fds_[file], slot * bytes_per_vector_, file, slot};
}

void FileBackend::charge(std::size_t bytes) {
  io_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.device.enabled()) return;
  std::uint64_t ns = options_.device.seek_latency_ns;
  if (options_.device.bytes_per_second != 0)
    ns += static_cast<std::uint64_t>(bytes) * 1'000'000'000ull /
          options_.device.bytes_per_second;
  modeled_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void FileBackend::read_vector(std::uint32_t index, void* dst) {
  const Location loc = locate(index);
  const std::uint64_t base =
      options_.integrity ? integrity_[loc.file].payload_offset : 0;
  transfer_all(false, loc.fd, dst, bytes_per_vector_, base + loc.offset);
  charge(bytes_per_vector_);
}

void FileBackend::write_vector(std::uint32_t index, const void* src) {
  const Location loc = locate(index);
  if (!options_.integrity) {
    transfer_all(true, loc.fd, const_cast<void*>(src), bytes_per_vector_,
                 loc.offset);
    charge(bytes_per_vector_);
    return;
  }
  FileIntegrity& fi = integrity_[loc.file];
  // The table records the *intended* content, computed from memory, never
  // re-read from the file — that is what makes a torn or dropped payload
  // write detectable on the next verified read.
  const std::uint64_t checksum =
      checksum64(fi.checksum_seed, src, bytes_per_vector_);
  const std::uint64_t generation =
      fi.generation[loc.block].load(std::memory_order_relaxed) + 1;
  CorruptionDecision corruption;
  if (injector_ != nullptr) corruption = injector_->next_corruption(true);
  switch (corruption.kind) {
    case CorruptionKind::kStale:
      // The device acks but nothing reaches the medium: neither payload nor
      // table is written. The mirror still advances, so the next verified
      // read sees the on-disk table lagging — a stale-generation replay.
      corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      fi.corrupt_mark[loc.block].store(1, std::memory_order_relaxed);
      break;
    case CorruptionKind::kTorn: {
      std::size_t prefix = 1 + static_cast<std::size_t>(
                                   corruption.a *
                                   static_cast<double>(bytes_per_vector_ - 1));
      prefix = std::min(prefix, bytes_per_vector_ - 1);
      transfer_all(true, loc.fd, const_cast<void*>(src), prefix,
                   fi.payload_offset + loc.offset);
      store_table_entry(loc.file, loc.block, checksum, generation, true);
      corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      fi.corrupt_mark[loc.block].store(1, std::memory_order_relaxed);
      break;
    }
    default:
      transfer_all(true, loc.fd, const_cast<void*>(src), bytes_per_vector_,
                   fi.payload_offset + loc.offset);
      store_table_entry(loc.file, loc.block, checksum, generation, true);
      fi.corrupt_mark[loc.block].store(0, std::memory_order_relaxed);
      break;
  }
  fi.checksum[loc.block].store(checksum, std::memory_order_relaxed);
  fi.generation[loc.block].store(generation, std::memory_order_relaxed);
  charge(bytes_per_vector_);
}

// Batched vector transfers through the AioEngine. The completions may arrive
// in any order, so every effect that must be deterministic — injector draws,
// checksum-table writes, counter folds, verification, corruption draws — is
// split between submission time (in op order) and a completion pass that
// walks the batch in op order again, keyed by token rather than by delivery.
// Per-op semantics mirror the sequential read_vector / write_vector /
// read_vector_verified paths exactly; the only intended difference is that a
// coalesced range — read or write — charges the device model once for the
// whole range.
void FileBackend::submit_vector_ops(VectorOp* ops, std::size_t count) {
  if (count == 0) return;
  io_batches_.fetch_add(1, std::memory_order_relaxed);

  // Write-side integrity decisions are drawn at submission, in op order
  // (write_vector draws before its payload I/O, too).
  struct WritePlan {
    std::uint64_t checksum = 0;
    std::uint64_t generation = 0;
    CorruptionKind corruption = CorruptionKind::kNone;
    bool skip_payload = false;  ///< kStale: the device acks, nothing lands
  };
  struct Staged {
    AioOp aio;
    std::vector<std::size_t> members;  ///< op indices riding this transfer
    /// Write transfer that may absorb a following adjacent write: a full,
    /// uncorrupted payload (a torn write's shortened span must stay its own
    /// op; a stale write never stages at all).
    bool write_mergeable = false;
    int gather = -1;  ///< index into `gathers` when sources were copied
  };
  std::vector<WritePlan> plans(count);
  std::vector<Staged> staged;
  staged.reserve(count);
  // Gather buffers for merged writes whose source slots are not contiguous
  // in memory (eviction victims rarely are). Must outlive collect().
  std::vector<std::vector<char>> gathers;

  for (std::size_t i = 0; i < count; ++i) {
    VectorOp& op = ops[i];
    op.error = 0;
    op.attempts = 0;
    op.fail_offset = 0;
    op.injected = false;
    op.coalesced = false;
    op.verify_result = VerifyResult{};
    const Location loc = locate(op.index);
    const std::uint64_t payload_base =
        options_.integrity ? integrity_[loc.file].payload_offset : 0;

    AioOp aio;
    aio.is_write = op.is_write;
    aio.fd = loc.fd;
    aio.direct_fd = direct_fd(loc.file);
    aio.buffer = op.buffer;
    aio.bytes = bytes_per_vector_;
    aio.offset = payload_base + loc.offset;

    if (op.is_write) {
      bool mergeable = true;
      if (options_.integrity) {
        FileIntegrity& fi = integrity_[loc.file];
        WritePlan& plan = plans[i];
        plan.checksum =
            checksum64(fi.checksum_seed, op.buffer, bytes_per_vector_);
        plan.generation =
            fi.generation[loc.block].load(std::memory_order_relaxed) + 1;
        CorruptionDecision corruption;
        if (injector_ != nullptr)
          corruption = injector_->next_corruption(true);
        plan.corruption = corruption.kind;
        if (corruption.kind == CorruptionKind::kStale) {
          plan.skip_payload = true;
          continue;  // no transfer at all — bookkeeping-only at completion
        }
        if (corruption.kind == CorruptionKind::kTorn) {
          std::size_t prefix =
              1 + static_cast<std::size_t>(
                      corruption.a *
                      static_cast<double>(bytes_per_vector_ - 1));
          aio.bytes = std::min(prefix, bytes_per_vector_ - 1);
          mergeable = false;  // the shortened span must land alone
        }
      }
      // Coalesce with the previous staged transfer when this write continues
      // a mergeable write in the file. Eviction victims live in arbitrary
      // slots, so contiguous *sources* are not required: a gather copy
      // staples the payloads into one ranged write (the paper's analogue of
      // the OS clustering dirty pages into a single swap-out).
      if (mergeable && !staged.empty()) {
        Staged& prev = staged.back();
        if (prev.aio.is_write && prev.write_mergeable &&
            prev.aio.fd == aio.fd &&
            prev.aio.offset + prev.aio.bytes == aio.offset) {
          if (prev.gather < 0) {
            gathers.emplace_back();
            prev.gather = static_cast<int>(gathers.size()) - 1;
            gathers[prev.gather].assign(
                static_cast<const char*>(prev.aio.buffer),
                static_cast<const char*>(prev.aio.buffer) + prev.aio.bytes);
          }
          std::vector<char>& gather = gathers[prev.gather];
          gather.insert(gather.end(), static_cast<const char*>(op.buffer),
                        static_cast<const char*>(op.buffer) + aio.bytes);
          prev.aio.buffer = gather.data();  // insert may reallocate
          prev.aio.bytes += aio.bytes;
          prev.members.push_back(i);
          continue;
        }
      }
      aio.token = staged.size();
      staged.push_back(Staged{aio, {i}, mergeable, -1});
      continue;
    } else {
      PLFOC_CHECK(!op.verify || options_.integrity);
      // Coalesce with the previous staged transfer when this read continues
      // it in both the file and the destination buffer (prefetch batches
      // staged into contiguous scratch are the common case).
      if (!staged.empty()) {
        Staged& prev = staged.back();
        if (!prev.aio.is_write && prev.aio.fd == aio.fd &&
            prev.aio.offset + prev.aio.bytes == aio.offset &&
            static_cast<char*>(prev.aio.buffer) + prev.aio.bytes ==
                aio.buffer) {
          prev.aio.bytes += aio.bytes;
          prev.members.push_back(i);
          continue;
        }
      }
    }
    aio.token = staged.size();
    staged.push_back(Staged{aio, {i}});
  }

  std::vector<AioCompletion> completions(staged.size());
  if (!staged.empty()) {
    std::vector<AioOp> aio_ops;
    aio_ops.reserve(staged.size());
    for (const Staged& s : staged) aio_ops.push_back(s.aio);
    // One whole batch at a time on the engine: a prefetch batch interleaved
    // with the engine thread's overlapped swap would cross-deliver
    // completions (tokens are batch-relative). With a shared engine the
    // handle's mutex extends the same whole-batch discipline across every
    // backend on the handle.
    if (shared_engine_ != nullptr) {
      MutexLock engine_lock(shared_engine_->mutex);
      shared_engine_->engine->submit(aio_ops.data(), aio_ops.size());
      shared_engine_->engine->collect(completions.data(), completions.size());
    } else {
      MutexLock engine_lock(engine_mutex_);
      engine_->submit(aio_ops.data(), aio_ops.size());
      engine_->collect(completions.data(), completions.size());
    }
  }

  // Fold the per-op counter deltas and distribute outcomes in token order —
  // delivery order must leave no trace.
  std::vector<const AioCompletion*> by_token(staged.size(), nullptr);
  for (const AioCompletion& completion : completions)
    by_token[completion.token] = &completion;
  for (std::size_t t = 0; t < staged.size(); ++t) {
    const Staged& s = staged[t];
    PLFOC_CHECK(by_token[t] != nullptr);
    const AioCompletion& completion = *by_token[t];
    faults_injected_.fetch_add(completion.faults, std::memory_order_relaxed);
    io_retries_.fetch_add(completion.retries, std::memory_order_relaxed);
    io_exhausted_.fetch_add(completion.exhausted, std::memory_order_relaxed);
    const bool merged = s.members.size() > 1;
    for (const std::size_t i : s.members) {
      if (merged) {
        ops[i].coalesced = true;
        io_coalesced_.fetch_add(1, std::memory_order_relaxed);
        if (s.aio.is_write)
          io_write_coalesced_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!completion.ok()) {
        ops[i].error = completion.error;
        ops[i].attempts = completion.attempts;
        ops[i].fail_offset = completion.fail_offset;
        ops[i].injected = completion.injected;
      }
    }
    // A ranged transfer is one device operation however many vectors it
    // carries; a failed transfer charges nothing (the sequential path throws
    // before charge()). Single writes keep charging in the bookkeeping pass
    // below, after their table entry lands, exactly like write_vector.
    if (completion.ok() && (!s.aio.is_write || merged)) charge(s.aio.bytes);
  }

  // Completion bookkeeping, in op order.
  for (std::size_t i = 0; i < count; ++i) {
    VectorOp& op = ops[i];
    const Location loc = locate(op.index);
    if (op.is_write) {
      if (!options_.integrity) {
        // A coalesced member already charged as part of its ranged write.
        if (op.ok() && !op.coalesced) charge(bytes_per_vector_);
        continue;
      }
      FileIntegrity& fi = integrity_[loc.file];
      const WritePlan& plan = plans[i];
      if (plan.skip_payload) {  // kStale: mirror advances, medium untouched
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
        fi.corrupt_mark[loc.block].store(1, std::memory_order_relaxed);
        fi.checksum[loc.block].store(plan.checksum, std::memory_order_relaxed);
        fi.generation[loc.block].store(plan.generation,
                                       std::memory_order_relaxed);
        charge(bytes_per_vector_);
        continue;
      }
      // A failed payload leaves table, mirror, marks and device accounting
      // untouched — exactly the state write_vector's throw leaves behind.
      if (!op.ok()) continue;
      try {
        store_table_entry(loc.file, loc.block, plan.checksum, plan.generation,
                          true);
      } catch (const IoError& error) {
        op.error = error.errno_value();
        op.attempts = error.attempts();
        op.fail_offset = error.offset();
        op.injected = error.injected();
        continue;
      }
      if (plan.corruption == CorruptionKind::kTorn) {
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
        fi.corrupt_mark[loc.block].store(1, std::memory_order_relaxed);
      } else {
        fi.corrupt_mark[loc.block].store(0, std::memory_order_relaxed);
      }
      fi.checksum[loc.block].store(plan.checksum, std::memory_order_relaxed);
      fi.generation[loc.block].store(plan.generation,
                                     std::memory_order_relaxed);
      // A coalesced member's payload was charged with its ranged write (one
      // device op for the range, like ranged reads — the accepted divergence
      // is that a table-entry failure above has then already charged).
      if (!op.coalesced) charge(bytes_per_vector_);
    } else {
      if (!op.ok() || !op.verify) continue;
      FileIntegrity& fi = integrity_[loc.file];
      const std::uint64_t generation =
          fi.generation[loc.block].load(std::memory_order_relaxed);
      if (generation == 0) continue;  // never written: preallocated zeros
      const bool injected_now =
          apply_read_corruption(op.buffer, bytes_per_vector_);
      const std::uint64_t expected =
          fi.checksum[loc.block].load(std::memory_order_relaxed);
      if (checksum64(fi.checksum_seed, op.buffer, bytes_per_vector_) !=
          expected)
        op.verify_result =
            classify_mismatch(loc.file, loc.block, injected_now);
    }
  }
}

VerifyResult FileBackend::read_vector_verified(std::uint32_t index,
                                               void* dst) {
  PLFOC_CHECK(options_.integrity);
  PLFOC_CHECK(block_bytes_ == bytes_per_vector_);
  const Location loc = locate(index);
  FileIntegrity& fi = integrity_[loc.file];
  transfer_all(false, loc.fd, dst, bytes_per_vector_,
               fi.payload_offset + loc.offset);
  charge(bytes_per_vector_);
  VerifyResult result;
  const std::uint64_t generation =
      fi.generation[loc.block].load(std::memory_order_relaxed);
  if (generation == 0) return result;  // never written: preallocated zeros
  const bool injected_now = apply_read_corruption(dst, bytes_per_vector_);
  const std::uint64_t expected =
      fi.checksum[loc.block].load(std::memory_order_relaxed);
  if (checksum64(fi.checksum_seed, dst, bytes_per_vector_) == expected)
    return result;
  return classify_mismatch(loc.file, loc.block, injected_now);
}

VerifyResult FileBackend::read_bytes_verified(std::uint64_t offset, void* dst,
                                              std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_CHECK(options_.integrity);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  FileIntegrity& fi = integrity_[0];
  transfer_all(false, fds_[0], dst, bytes, fi.payload_offset + offset);
  charge(bytes);
  const bool injected_now = apply_read_corruption(dst, bytes);
  VerifyResult result;
  if (bytes == 0) return result;
  const std::uint64_t first = offset / block_bytes_;
  const std::uint64_t last = (offset + bytes - 1) / block_bytes_;
  for (std::uint64_t block = first; block <= last; ++block) {
    const std::uint64_t block_start = block * block_bytes_;
    const std::uint64_t block_end =
        std::min<std::uint64_t>(block_start + block_bytes_, fi.payload_bytes);
    if (block_start < offset || block_end > offset + bytes)
      continue;  // partially covered: not verifiable from this read
    const std::uint64_t generation =
        fi.generation[block].load(std::memory_order_relaxed);
    if (generation == 0) continue;
    const std::uint64_t expected =
        fi.checksum[block].load(std::memory_order_relaxed);
    const char* content = static_cast<const char*>(dst) +
                          (block_start - offset);
    if (checksum64(fi.checksum_seed, content, block_end - block_start) ==
        expected)
      continue;
    return classify_mismatch(0, block, injected_now);
  }
  return result;
}

void FileBackend::read_bytes(std::uint64_t offset, void* dst,
                             std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  const std::uint64_t base =
      options_.integrity ? integrity_[0].payload_offset : 0;
  transfer_all(false, fds_[0], dst, bytes, base + offset);
  charge(bytes);
}

void FileBackend::write_bytes(std::uint64_t offset, const void* src,
                              std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  const std::uint64_t base =
      options_.integrity ? integrity_[0].payload_offset : 0;
  transfer_all(true, fds_[0], const_cast<void*>(src), bytes, base + offset);
  update_blocks_after_byte_write(offset, src, bytes);
  charge(bytes);
}

void FileBackend::write_ranges_clustered(const IoRange* ranges,
                                         std::size_t count, const void* base) {
  PLFOC_CHECK(options_.num_files == 1);
  const std::uint64_t payload_base =
      options_.integrity ? integrity_[0].payload_offset : 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PLFOC_DCHECK(ranges[i].offset + ranges[i].bytes <= total_bytes());
    const char* src = static_cast<const char*>(base) + ranges[i].offset;
    CorruptionDecision corruption;
    if (options_.integrity && injector_ != nullptr)
      corruption = injector_->next_corruption(true);
    switch (corruption.kind) {
      case CorruptionKind::kStale:
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
        break;
      case CorruptionKind::kTorn: {
        std::size_t prefix =
            1 + static_cast<std::size_t>(
                    corruption.a * static_cast<double>(ranges[i].bytes - 1));
        prefix = std::min(prefix, ranges[i].bytes - 1);
        if (prefix > 0)
          transfer_all(true, fds_[0], const_cast<char*>(src), prefix,
                       payload_base + ranges[i].offset);
        corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      default:
        transfer_all(true, fds_[0], const_cast<char*>(src), ranges[i].bytes,
                     payload_base + ranges[i].offset);
        break;
    }
    // The table always records the intended content (from memory), so a
    // torn/dropped payload write above stays detectable at fault-in.
    update_blocks_after_byte_write(ranges[i].offset, src, ranges[i].bytes);
    if (corruption.kind != CorruptionKind::kNone && options_.integrity) {
      FileIntegrity& fi = integrity_[0];
      const std::uint64_t first = ranges[i].offset / block_bytes_;
      const std::uint64_t last =
          (ranges[i].offset + ranges[i].bytes - 1) / block_bytes_;
      for (std::uint64_t block = first; block <= last; ++block)
        fi.corrupt_mark[block].store(1, std::memory_order_relaxed);
    }
    total += ranges[i].bytes;
  }
  if (count > 0) charge(total);  // one device operation for the cluster
}

void FileBackend::update_blocks_after_byte_write(std::uint64_t offset,
                                                 const void* src,
                                                 std::size_t bytes) {
  if (!options_.integrity || bytes == 0) return;
  FileIntegrity& fi = integrity_[0];
  const char* intended = static_cast<const char*>(src);
  const std::uint64_t first = offset / block_bytes_;
  const std::uint64_t last = (offset + bytes - 1) / block_bytes_;
  std::vector<char> scratch;
  for (std::uint64_t block = first; block <= last; ++block) {
    const std::uint64_t block_start = block * block_bytes_;
    const std::uint64_t block_end =
        std::min<std::uint64_t>(block_start + block_bytes_, fi.payload_bytes);
    const std::size_t block_len =
        static_cast<std::size_t>(block_end - block_start);
    std::uint64_t checksum;
    if (block_start >= offset && block_end <= offset + bytes) {
      checksum = checksum64(fi.checksum_seed,
                            intended + (block_start - offset), block_len);
      fi.corrupt_mark[block].store(0, std::memory_order_relaxed);
    } else {
      // Partial overlap: reconstruct the intended block as current file
      // content overlaid with the written span. (Raw read: maintenance
      // traffic, not a data op.)
      scratch.resize(block_len);
      raw_io(false, fds_[0], scratch.data(), block_len,
             fi.payload_offset + block_start);
      const std::uint64_t cover_start = std::max(offset, block_start);
      const std::uint64_t cover_end =
          std::min<std::uint64_t>(offset + bytes, block_end);
      std::memcpy(scratch.data() + (cover_start - block_start),
                  intended + (cover_start - offset),
                  static_cast<std::size_t>(cover_end - cover_start));
      checksum = checksum64(fi.checksum_seed, scratch.data(), block_len);
    }
    store_table_entry(
        0, block, checksum,
        fi.generation[block].load(std::memory_order_relaxed) + 1, true);
    fi.checksum[block].store(checksum, std::memory_order_relaxed);
    fi.generation[block].fetch_add(1, std::memory_order_relaxed);
  }
}

void FileBackend::store_table_entry(unsigned file_index, std::uint64_t block,
                                    std::uint64_t checksum,
                                    std::uint64_t generation,
                                    bool write_table) {
  if (!write_table) return;
  unsigned char entry[kTableEntryBytes];
  put_u64(entry, 0, checksum);
  put_u64(entry, 8, generation);
  transfer_all(true, fds_[file_index], entry, sizeof entry,
               kHeaderBytes + block * kTableEntryBytes);
}

bool FileBackend::apply_read_corruption(void* dst, std::size_t bytes) {
  if (injector_ == nullptr || !options_.faults.corruption_enabled())
    return false;
  const CorruptionDecision corruption = injector_->next_corruption(false);
  unsigned char* p = static_cast<unsigned char*>(dst);
  switch (corruption.kind) {
    case CorruptionKind::kFlip: {
      std::uint64_t bit = static_cast<std::uint64_t>(
          corruption.a * static_cast<double>(bytes) * 8.0);
      bit = std::min<std::uint64_t>(bit, static_cast<std::uint64_t>(bytes) * 8 - 1);
      p[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case CorruptionKind::kZero: {
      // Zero one aligned "page" of the delivered buffer, as a dropped or
      // unmapped sector would.
      constexpr std::size_t kSpan = 4096;
      std::size_t start = static_cast<std::size_t>(
                              corruption.a * static_cast<double>(bytes)) /
                          kSpan * kSpan;
      if (start >= bytes) start = (bytes - 1) / kSpan * kSpan;
      const std::size_t len = std::min(kSpan, bytes - start);
      bool changed = false;
      for (std::size_t i = start; i < start + len; ++i)
        if (p[i] != 0) { changed = true; break; }
      if (!changed) return false;  // zeroing zeros: no damage done
      std::memset(p + start, 0, len);
      corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    default:
      return false;
  }
}

VerifyResult FileBackend::classify_mismatch(unsigned file_index,
                                            std::uint64_t block,
                                            bool injected_now) {
  FileIntegrity& fi = integrity_[file_index];
  // Failure path only: one raw table read distinguishes a payload that
  // changed under a current table (checksum mismatch) from a table that
  // never saw the write reach the medium (stale-generation replay).
  unsigned char entry[kTableEntryBytes];
  raw_io(false, fds_[file_index], entry, sizeof entry,
         kHeaderBytes + block * kTableEntryBytes);
  VerifyResult result;
  result.block = block;
  result.expected_generation =
      fi.generation[block].load(std::memory_order_relaxed);
  result.found_generation = get_u64(entry, 8);
  result.status = result.found_generation != result.expected_generation
                      ? VerifyStatus::kStaleGeneration
                      : VerifyStatus::kChecksumMismatch;
  result.injected =
      injected_now ||
      fi.corrupt_mark[block].load(std::memory_order_relaxed) != 0;
  return result;
}

FsckReport FileBackend::fsck(const std::string& path) {
  FsckReport report;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    report.header_error =
        "cannot open '" + path + "': " + std::strerror(errno);
    return report;
  }
  const auto read_span = [fd](void* dst, std::size_t bytes,
                              std::uint64_t offset) {
    char* cursor = static_cast<char*>(dst);
    std::size_t remaining = bytes;
    while (remaining > 0) {
      const ssize_t moved =
          ::pread(fd, cursor, remaining,
                  static_cast<off_t>(offset + (bytes - remaining)));
      if (moved < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (moved == 0) {  // EOF: unwritten tail reads as zeros
        std::memset(cursor, 0, remaining);
        return true;
      }
      cursor += moved;
      remaining -= static_cast<std::size_t>(moved);
    }
    return true;
  };

  unsigned char header[kHeaderBytes];
  if (!read_span(header, sizeof header, 0)) {
    report.header_error = "cannot read header: " + std::string(
                              std::strerror(errno));
    ::close(fd);
    return report;
  }
  if (get_u32(header, kOffMagic) != kMagic) {
    report.header_error =
        "bad magic (not an integrity-enabled plfoc vector file)";
    ::close(fd);
    return report;
  }
  if (get_u32(header, kOffVersion) != kFormatVersion) {
    report.header_error = "unsupported format version " +
                          std::to_string(get_u32(header, kOffVersion));
    ::close(fd);
    return report;
  }
  report.block_bytes = get_u64(header, kOffBlockBytes);
  report.block_count = get_u64(header, kOffBlockCount);
  report.payload_bytes = get_u64(header, kOffPayloadBytes);
  const std::uint64_t table_offset = get_u64(header, kOffTableOffset);
  const std::uint64_t payload_offset = get_u64(header, kOffPayloadOffset);
  const std::uint64_t seed = get_u64(header, kOffChecksumSeed);
  if (report.block_bytes == 0 || table_offset != kHeaderBytes ||
      payload_offset <
          table_offset + report.block_count * kTableEntryBytes ||
      report.block_count !=
          (report.payload_bytes + report.block_bytes - 1) /
              report.block_bytes) {
    report.header_error = "inconsistent header geometry";
    ::close(fd);
    return report;
  }
  report.header_ok = true;

  std::vector<char> payload(static_cast<std::size_t>(report.block_bytes));
  for (std::uint64_t block = 0; block < report.block_count; ++block) {
    unsigned char entry[kTableEntryBytes];
    if (!read_span(entry, sizeof entry,
                   table_offset + block * kTableEntryBytes)) {
      report.issues.push_back({block, "cannot read table entry"});
      continue;
    }
    const std::uint64_t checksum = get_u64(entry, 0);
    const std::uint64_t generation = get_u64(entry, 8);
    const std::uint64_t block_start = block * report.block_bytes;
    const std::uint64_t block_end = std::min(
        block_start + report.block_bytes, report.payload_bytes);
    const std::size_t block_len =
        static_cast<std::size_t>(block_end - block_start);
    if (!read_span(payload.data(), block_len, payload_offset + block_start)) {
      report.issues.push_back({block, "cannot read payload"});
      continue;
    }
    if (generation == 0) {
      bool nonzero = false;
      for (std::size_t i = 0; i < block_len; ++i)
        if (payload[i] != 0) { nonzero = true; break; }
      if (nonzero)
        report.issues.push_back(
            {block, "unwritten record (generation 0) has nonzero payload"});
      else
        ++report.skipped_unwritten;
      continue;
    }
    const std::uint64_t computed =
        checksum64(seed, payload.data(), block_len);
    if (computed != checksum) {
      report.issues.push_back(
          {block, "checksum mismatch (generation " +
                      std::to_string(generation) + ", recorded " +
                      std::to_string(checksum) + ", computed " +
                      std::to_string(computed) + ")"});
      continue;
    }
    ++report.checked;
  }
  ::close(fd);
  return report;
}

void FileBackend::drop_page_cache() {
  for (int fd : fds_) {
    ::fsync(fd);
#ifdef POSIX_FADV_DONTNEED
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  }
}

void FileBackend::sync() {
  for (int fd : fds_) ::fsync(fd);
}

std::string temp_vector_file_path(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  return dir + "/plfoc_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

}  // namespace plfoc
