#include "ooc/file_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/checks.hpp"

namespace plfoc {

// The single I/O loop behind every vector transfer. POSIX permits pread /
// pwrite to transfer fewer bytes than requested or fail with EINTR on a
// perfectly healthy device, so short-transfer resumption and EINTR retry are
// unconditional — they neither consume retry budget nor depend on fault
// injection being configured. Transient errors (EIO, ENOSPC, ...) consume
// the bounded RetryPolicy budget with exponential backoff; completed
// progress is kept across retries (partial-I/O resumption), and any
// successful transfer resets the consecutive-failure count.
void FileBackend::transfer_all(bool is_write, int fd, void* buffer,
                               std::size_t bytes, std::uint64_t offset) {
  char* cursor = static_cast<char*>(buffer);
  std::size_t remaining = bytes;
  unsigned consecutive_failures = 0;
  unsigned faults_this_transfer = 0;
  std::uint64_t backoff_us = options_.retry.backoff_initial_us;
  const char* op = is_write ? "pwrite" : "pread";
  while (remaining > 0) {
    const std::uint64_t position = offset + (bytes - remaining);
    std::size_t request = remaining;
    int simulated_errno = 0;
    if (injector_ != nullptr) {
      const FaultDecision fault =
          injector_->next(is_write, faults_this_transfer);
      if (fault.kind != FaultKind::kNone)
        faults_injected_.fetch_add(1, std::memory_order_relaxed);
      switch (fault.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kLatency:
          // A stall, not an error: the transfer proceeds untouched and the
          // spike does not count against the burst cap.
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options_.faults.latency_ns));
          break;
        case FaultKind::kShortTransfer:
          ++faults_this_transfer;
          if (remaining > 1)
            request = 1 + static_cast<std::size_t>(
                              fault.fraction *
                              static_cast<double>(remaining - 1));
          break;
        case FaultKind::kEintr:
          ++faults_this_transfer;
          simulated_errno = EINTR;
          break;
        case FaultKind::kEio:
          ++faults_this_transfer;
          simulated_errno = EIO;
          break;
        case FaultKind::kEnospc:
          ++faults_this_transfer;
          simulated_errno = is_write ? ENOSPC : EIO;
          break;
      }
    }
    ssize_t moved;
    if (simulated_errno != 0) {
      // An injected error models a syscall that transferred nothing.
      moved = -1;
      errno = simulated_errno;
    } else if (is_write) {
      moved = ::pwrite(fd, cursor, request, static_cast<off_t>(position));
    } else {
      moved = ::pread(fd, cursor, request, static_cast<off_t>(position));
    }
    if (moved < 0) {
      const int error = errno;
      if (error == EINTR) {
        // Mandatory POSIX handling, never bounded by the retry policy.
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (consecutive_failures < options_.retry.max_retries) {
        ++consecutive_failures;
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min<std::uint64_t>(
              options_.retry.backoff_max_us,
              static_cast<std::uint64_t>(
                  static_cast<double>(backoff_us) *
                  options_.retry.backoff_multiplier));
        }
        continue;  // resume from `position`: prior progress is kept
      }
      io_exhausted_.fetch_add(1, std::memory_order_relaxed);
      throw IoError(op, error, position, consecutive_failures + 1,
                    simulated_errno != 0);
    }
    PLFOC_REQUIRE(moved > 0,
                  is_write ? "pwrite transferred no bytes"
                           : "pread hit end of vector file (file truncated?)");
    // A transfer that did not finish in this syscall resumes from the new
    // cursor on the next iteration — count that continuation as a retry.
    if (static_cast<std::size_t>(moved) < remaining)
      io_retries_.fetch_add(1, std::memory_order_relaxed);
    consecutive_failures = 0;
    backoff_us = options_.retry.backoff_initial_us;
    cursor += moved;
    remaining -= static_cast<std::size_t>(moved);
  }
}

FileBackend::FileBackend(std::size_t count, std::size_t bytes_per_vector,
                         FileBackendOptions options)
    : count_(count), bytes_per_vector_(bytes_per_vector),
      options_(std::move(options)) {
  if (options_.faults.enabled())
    injector_ = std::make_unique<FaultInjector>(options_.faults);
  PLFOC_REQUIRE(count_ > 0 && bytes_per_vector_ > 0,
                "FileBackend needs a positive vector count and width");
  PLFOC_REQUIRE(options_.num_files >= 1 && options_.num_files <= 64,
                "FileBackend supports 1..64 stripe files");
  PLFOC_REQUIRE(!options_.base_path.empty(), "FileBackend needs a file path");

  for (unsigned k = 0; k < options_.num_files; ++k) {
    std::string path = options_.base_path;
    if (options_.num_files > 1) path += "." + std::to_string(k);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    PLFOC_REQUIRE(fd >= 0, "cannot create vector file '" + path + "': " +
                               std::strerror(errno));
    fds_.push_back(fd);
    paths_.push_back(std::move(path));
  }

  if (options_.preallocate) {
    // Vectors stripe round-robin: file k holds ceil((count - k)/num_files).
    for (unsigned k = 0; k < options_.num_files; ++k) {
      const std::uint64_t vectors_in_file =
          (count_ + options_.num_files - 1 - k) / options_.num_files;
      const int rc = ::ftruncate(
          fds_[k], static_cast<off_t>(vectors_in_file * bytes_per_vector_));
      PLFOC_REQUIRE(rc == 0, std::string("ftruncate failed: ") +
                                 std::strerror(errno));
    }
  }
}

FileBackend::~FileBackend() {
  for (int fd : fds_) ::close(fd);
  if (options_.remove_on_close)
    for (const std::string& path : paths_) ::unlink(path.c_str());
}

FileBackend::Location FileBackend::locate(std::uint32_t index) const {
  PLFOC_DCHECK(index < count_);
  const unsigned file = index % options_.num_files;
  const std::uint64_t slot = index / options_.num_files;
  return {fds_[file], slot * bytes_per_vector_};
}

void FileBackend::charge(std::size_t bytes) {
  io_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.device.enabled()) return;
  std::uint64_t ns = options_.device.seek_latency_ns;
  if (options_.device.bytes_per_second != 0)
    ns += static_cast<std::uint64_t>(bytes) * 1'000'000'000ull /
          options_.device.bytes_per_second;
  modeled_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void FileBackend::read_vector(std::uint32_t index, void* dst) {
  const Location loc = locate(index);
  transfer_all(false, loc.fd, dst, bytes_per_vector_, loc.offset);
  charge(bytes_per_vector_);
}

void FileBackend::write_vector(std::uint32_t index, const void* src) {
  const Location loc = locate(index);
  transfer_all(true, loc.fd, const_cast<void*>(src), bytes_per_vector_,
               loc.offset);
  charge(bytes_per_vector_);
}

void FileBackend::read_bytes(std::uint64_t offset, void* dst,
                             std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  transfer_all(false, fds_[0], dst, bytes, offset);
  charge(bytes);
}

void FileBackend::write_bytes(std::uint64_t offset, const void* src,
                              std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  transfer_all(true, fds_[0], const_cast<void*>(src), bytes, offset);
  charge(bytes);
}

void FileBackend::write_ranges_clustered(const IoRange* ranges,
                                         std::size_t count, const void* base) {
  PLFOC_CHECK(options_.num_files == 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PLFOC_DCHECK(ranges[i].offset + ranges[i].bytes <= total_bytes());
    transfer_all(
        true, fds_[0],
        const_cast<char*>(static_cast<const char*>(base) + ranges[i].offset),
        ranges[i].bytes, ranges[i].offset);
    total += ranges[i].bytes;
  }
  if (count > 0) charge(total);  // one device operation for the cluster
}

void FileBackend::drop_page_cache() {
  for (int fd : fds_) {
    ::fsync(fd);
#ifdef POSIX_FADV_DONTNEED
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  }
}

void FileBackend::sync() {
  for (int fd : fds_) ::fsync(fd);
}

std::string temp_vector_file_path(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  return dir + "/plfoc_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

}  // namespace plfoc
