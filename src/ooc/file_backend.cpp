#include "ooc/file_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/checks.hpp"

namespace plfoc {
namespace {

void pread_all(int fd, void* dst, std::size_t bytes, std::uint64_t offset) {
  char* cursor = static_cast<char*>(dst);
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t got = ::pread(fd, cursor, remaining,
                                static_cast<off_t>(offset + (bytes - remaining)));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("pread failed: ") + std::strerror(errno));
    }
    PLFOC_REQUIRE(got > 0, "pread hit end of vector file (file truncated?)");
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
  }
}

void pwrite_all(int fd, const void* src, std::size_t bytes,
                std::uint64_t offset) {
  const char* cursor = static_cast<const char*>(src);
  std::size_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t put = ::pwrite(fd, cursor, remaining,
                                 static_cast<off_t>(offset + (bytes - remaining)));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("pwrite failed: ") + std::strerror(errno));
    }
    cursor += put;
    remaining -= static_cast<std::size_t>(put);
  }
}

}  // namespace

FileBackend::FileBackend(std::size_t count, std::size_t bytes_per_vector,
                         FileBackendOptions options)
    : count_(count), bytes_per_vector_(bytes_per_vector),
      options_(std::move(options)) {
  PLFOC_REQUIRE(count_ > 0 && bytes_per_vector_ > 0,
                "FileBackend needs a positive vector count and width");
  PLFOC_REQUIRE(options_.num_files >= 1 && options_.num_files <= 64,
                "FileBackend supports 1..64 stripe files");
  PLFOC_REQUIRE(!options_.base_path.empty(), "FileBackend needs a file path");

  for (unsigned k = 0; k < options_.num_files; ++k) {
    std::string path = options_.base_path;
    if (options_.num_files > 1) path += "." + std::to_string(k);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
    PLFOC_REQUIRE(fd >= 0, "cannot create vector file '" + path + "': " +
                               std::strerror(errno));
    fds_.push_back(fd);
    paths_.push_back(std::move(path));
  }

  if (options_.preallocate) {
    // Vectors stripe round-robin: file k holds ceil((count - k)/num_files).
    for (unsigned k = 0; k < options_.num_files; ++k) {
      const std::uint64_t vectors_in_file =
          (count_ + options_.num_files - 1 - k) / options_.num_files;
      const int rc = ::ftruncate(
          fds_[k], static_cast<off_t>(vectors_in_file * bytes_per_vector_));
      PLFOC_REQUIRE(rc == 0, std::string("ftruncate failed: ") +
                                 std::strerror(errno));
    }
  }
}

FileBackend::~FileBackend() {
  for (int fd : fds_) ::close(fd);
  if (options_.remove_on_close)
    for (const std::string& path : paths_) ::unlink(path.c_str());
}

FileBackend::Location FileBackend::locate(std::uint32_t index) const {
  PLFOC_DCHECK(index < count_);
  const unsigned file = index % options_.num_files;
  const std::uint64_t slot = index / options_.num_files;
  return {fds_[file], slot * bytes_per_vector_};
}

void FileBackend::charge(std::size_t bytes) {
  io_ops_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.device.enabled()) return;
  std::uint64_t ns = options_.device.seek_latency_ns;
  if (options_.device.bytes_per_second != 0)
    ns += static_cast<std::uint64_t>(bytes) * 1'000'000'000ull /
          options_.device.bytes_per_second;
  modeled_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void FileBackend::read_vector(std::uint32_t index, void* dst) {
  const Location loc = locate(index);
  pread_all(loc.fd, dst, bytes_per_vector_, loc.offset);
  charge(bytes_per_vector_);
}

void FileBackend::write_vector(std::uint32_t index, const void* src) {
  const Location loc = locate(index);
  pwrite_all(loc.fd, src, bytes_per_vector_, loc.offset);
  charge(bytes_per_vector_);
}

void FileBackend::read_bytes(std::uint64_t offset, void* dst,
                             std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  pread_all(fds_[0], dst, bytes, offset);
  charge(bytes);
}

void FileBackend::write_bytes(std::uint64_t offset, const void* src,
                              std::size_t bytes) {
  PLFOC_CHECK(options_.num_files == 1);
  PLFOC_DCHECK(offset + bytes <= total_bytes());
  pwrite_all(fds_[0], src, bytes, offset);
  charge(bytes);
}

void FileBackend::write_ranges_clustered(const IoRange* ranges,
                                         std::size_t count, const void* base) {
  PLFOC_CHECK(options_.num_files == 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PLFOC_DCHECK(ranges[i].offset + ranges[i].bytes <= total_bytes());
    pwrite_all(fds_[0],
               static_cast<const char*>(base) + ranges[i].offset,
               ranges[i].bytes, ranges[i].offset);
    total += ranges[i].bytes;
  }
  if (count > 0) charge(total);  // one device operation for the cluster
}

void FileBackend::drop_page_cache() {
  for (int fd : fds_) {
    ::fsync(fd);
#ifdef POSIX_FADV_DONTNEED
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  }
}

void FileBackend::sync() {
  for (int fd : fds_) ::fsync(fd);
}

std::string temp_vector_file_path(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  return dir + "/plfoc_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

}  // namespace plfoc
