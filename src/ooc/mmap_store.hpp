// Memory-mapped ancestral-vector store.
//
// The paper's Sec. 4.1 runs note that on the 36 GB machine all vectors fit
// "both for the standard implementation or by using memory-mapped I/O for
// the out-of-core version". MmapStore maps the backing file with MAP_SHARED
// and returns addresses straight into the mapping: the *real* OS page cache
// does the replacement. Compared to PagedStore (which simulates paging
// deterministically for measurements), this backend is what a production
// deployment would use when it trusts the OS: no explicit slot management,
// no deterministic statistics — only residency sampled via mincore().
#pragma once

#include "ooc/storage.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace plfoc {

struct MmapStoreOptions {
  std::string file_path;        ///< backing file (created/truncated)
  bool remove_on_close = true;  ///< unlink in the destructor
  /// Advise the kernel about the access pattern (MADV_RANDOM fits the
  /// slot-manager-free usage best; false = default readahead).
  bool advise_random = true;
  /// Verify a per-vector checksum when a read acquire touches a vector whose
  /// pages have left the page cache — the only moment mapped content can
  /// silently change, because the fault re-reads the device. While the span
  /// stays resident re-verification is skipped (the cache content was already
  /// checked, and checksumming every access would defeat the point of mmap).
  bool integrity = true;
};

class MmapStore final : public AncestralStore {
 public:
  MmapStore(std::size_t count, std::size_t width, MmapStoreOptions options);
  ~MmapStore() override;

  const char* backend_name() const override { return "mmap"; }

  /// msync the mapping to the file.
  void flush() override;

  /// Fraction of the mapping currently resident in the page cache
  /// (sampled with mincore; diagnostic only).
  double resident_fraction() const;

  /// True when every page backing vector `index` is in the page cache.
  bool span_resident(std::uint32_t index) const;

  /// Best-effort: flush the vector's span and push its pages out of the page
  /// cache (msync + fadvise/madvise DONTNEED), so the next read acquire
  /// re-faults from the device and re-verifies. Test seam for corruption
  /// experiments; production evictions happen by memory pressure instead.
  void drop_residency(std::uint32_t index);

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  char* vector_bytes(std::uint32_t index) const;
  /// Checksum the (just re-faulted) span; on mismatch run the recovery hook
  /// or throw IntegrityError. Counts the episode in stats_.
  void verify_or_recover(std::uint32_t index);

  MmapStoreOptions options_;
  int fd_ = -1;
  void* mapping_ = nullptr;
  std::size_t mapping_bytes_ = 0;
  std::uint64_t checksum_seed_ = 0;
  std::vector<std::uint64_t> checksums_;    ///< valid when generation > 0
  std::vector<std::uint64_t> generations_;  ///< write-lease releases; 0 = never
  std::vector<std::uint32_t> lease_count_;  ///< live leases per vector
  std::vector<AccessMode> lease_mode_;      ///< mode of the live leases
};

}  // namespace plfoc
