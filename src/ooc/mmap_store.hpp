// Memory-mapped ancestral-vector store.
//
// The paper's Sec. 4.1 runs note that on the 36 GB machine all vectors fit
// "both for the standard implementation or by using memory-mapped I/O for
// the out-of-core version". MmapStore maps the backing file with MAP_SHARED
// and returns addresses straight into the mapping: the *real* OS page cache
// does the replacement. Compared to PagedStore (which simulates paging
// deterministically for measurements), this backend is what a production
// deployment would use when it trusts the OS: no explicit slot management,
// no deterministic statistics — only residency sampled via mincore().
#pragma once

#include "ooc/storage.hpp"

#include <string>

namespace plfoc {

struct MmapStoreOptions {
  std::string file_path;        ///< backing file (created/truncated)
  bool remove_on_close = true;  ///< unlink in the destructor
  /// Advise the kernel about the access pattern (MADV_RANDOM fits the
  /// slot-manager-free usage best; false = default readahead).
  bool advise_random = true;
};

class MmapStore final : public AncestralStore {
 public:
  MmapStore(std::size_t count, std::size_t width, MmapStoreOptions options);
  ~MmapStore() override;

  const char* backend_name() const override { return "mmap"; }

  /// msync the mapping to the file.
  void flush() override;

  /// Fraction of the mapping currently resident in the page cache
  /// (sampled with mincore; diagnostic only).
  double resident_fraction() const;

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  MmapStoreOptions options_;
  int fd_ = -1;
  void* mapping_ = nullptr;
  std::size_t mapping_bytes_ = 0;
};

}  // namespace plfoc
