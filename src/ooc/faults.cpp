#include "ooc/faults.hpp"

#include <cstring>
#include <sstream>
#include <vector>

namespace plfoc {
namespace {

// splitmix64: the repo-wide seeding permutation (util/rng.cpp uses the same
// constants), so equal seeds never produce correlated streams across uses.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

unsigned parse_kind_token(const std::string& token) {
  if (token == "short") return kFaultShort;
  if (token == "eintr") return kFaultEintr;
  if (token == "eio") return kFaultEio;
  if (token == "enospc") return kFaultEnospc;
  if (token == "latency") return kFaultLatency;
  if (token == "all") return kFaultAllErrors | kFaultLatency;
  throw Error("bad fault kind '" + token +
              "' (short | eintr | eio | enospc | latency | all)");
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw Error("bad integer value '" + value + "' for fault key " + key);
}

double parse_prob(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used == value.size() && parsed >= 0.0 && parsed <= 1.0) return parsed;
  } catch (const std::exception&) {
  }
  throw Error("bad probability '" + value + "' for fault key " + key +
              " (expected a number in [0, 1])");
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kShortTransfer: return "short";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kEio: return "eio";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kLatency: return "latency";
  }
  return "?";
}

const char* corruption_kind_name(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kNone: return "none";
    case CorruptionKind::kFlip: return "flip";
    case CorruptionKind::kZero: return "zero";
    case CorruptionKind::kTorn: return "torn";
    case CorruptionKind::kStale: return "stale";
  }
  return "?";
}

const char* FaultConfig::grammar() {
  return "seed=N,rate=P[,burst=K][,kinds=short|eintr|eio|enospc|latency|all]"
         "[,latency-ns=N][,flip=P][,torn=P][,zero=P][,stale=P][,nonce=N]";
}

FaultConfig FaultConfig::parse(const std::string& spec) {
  FaultConfig config;
  if (spec.empty()) return config;
  std::istringstream in(spec);
  std::string field;
  bool saw_rate = false;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    PLFOC_REQUIRE(eq != std::string::npos && eq > 0,
                  "fault spec expects key=value, got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed") {
      config.seed = parse_u64(key, value);
    } else if (key == "rate") {
      config.rate = parse_prob(key, value);
      saw_rate = true;
    } else if (key == "burst") {
      config.burst = static_cast<unsigned>(parse_u64(key, value));
    } else if (key == "kinds") {
      config.kinds = 0;
      std::istringstream kinds(value);
      std::string token;
      while (std::getline(kinds, token, '|'))
        config.kinds |= parse_kind_token(token);
      PLFOC_REQUIRE(config.kinds != 0, "fault spec kinds= selected nothing");
    } else if (key == "latency-ns") {
      config.latency_ns = parse_u64(key, value);
    } else if (key == "flip") {
      config.flip_rate = parse_prob(key, value);
    } else if (key == "torn") {
      config.torn_rate = parse_prob(key, value);
    } else if (key == "zero") {
      config.zero_rate = parse_prob(key, value);
    } else if (key == "stale") {
      config.stale_rate = parse_prob(key, value);
    } else if (key == "nonce") {
      config.nonce = parse_u64(key, value);
    } else {
      throw Error("unknown fault spec key '" + key + "' (grammar: " +
                  std::string(FaultConfig::grammar()) + ")");
    }
  }
  PLFOC_REQUIRE(config.flip_rate + config.zero_rate <= 1.0,
                "fault spec flip= + zero= must not exceed 1");
  PLFOC_REQUIRE(config.torn_rate + config.stale_rate <= 1.0,
                "fault spec torn= + stale= must not exceed 1");
  PLFOC_REQUIRE(saw_rate || config.corruption_enabled(),
                "fault spec needs rate= or a corruption rate "
                "(e.g. seed=7,rate=0.05 or seed=7,rate=0,flip=0.01)");
  return config;
}

std::string FaultConfig::spec() const {
  std::ostringstream out;
  out << "seed=" << seed << ",rate=" << rate << ",burst=" << burst;
  if (kinds != kFaultAllErrors) {
    out << ",kinds=";
    bool first = true;
    const std::pair<unsigned, const char*> names[] = {
        {kFaultShort, "short"},
        {kFaultEintr, "eintr"},
        {kFaultEio, "eio"},
        {kFaultEnospc, "enospc"},
        {kFaultLatency, "latency"}};
    for (const auto& [bit, name] : names) {
      if (!(kinds & bit)) continue;
      if (!first) out << "|";
      out << name;
      first = false;
    }
  }
  if (latency_ns != 0) out << ",latency-ns=" << latency_ns;
  if (flip_rate != 0.0) out << ",flip=" << flip_rate;
  if (torn_rate != 0.0) out << ",torn=" << torn_rate;
  if (zero_rate != 0.0) out << ",zero=" << zero_rate;
  if (stale_rate != 0.0) out << ",stale=" << stale_rate;
  if (nonce != 0) out << ",nonce=" << nonce;
  return out.str();
}

IntegrityError::IntegrityError(const std::string& op, std::uint64_t index,
                               std::uint64_t expected_generation,
                               std::uint64_t found_generation, bool injected,
                               const std::string& detail)
    : Error(op + ": integrity failure on record " + std::to_string(index) +
            " (generation expected " + std::to_string(expected_generation) +
            ", found " + std::to_string(found_generation) + "): " + detail +
            (injected ? " [injected]" : "")),
      op_(op),
      index_(index),
      expected_generation_(expected_generation),
      found_generation_(found_generation),
      injected_(injected) {}

IoError::IoError(const std::string& op, int errno_value, std::uint64_t offset,
                 unsigned attempts, bool injected)
    : Error(op + " failed at offset " + std::to_string(offset) + " after " +
            std::to_string(attempts) +
            (attempts == 1 ? " attempt: " : " attempts: ") +
            std::strerror(errno_value) + (injected ? " [injected]" : "")),
      op_(op),
      errno_value_(errno_value),
      offset_(offset),
      attempts_(attempts),
      injected_(injected) {}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config),
      base_(splitmix64(config.seed ^
                       splitmix64(config.nonce * 0xda942042e4dd58b5ull))) {}

FaultDecision FaultInjector::next(bool is_write, unsigned faults_so_far) {
  // Always advance the stream, even when the burst cap suppresses the fault:
  // the schedule position then depends only on how many syscalls ran, and a
  // replay with the same op sequence sees the same decisions.
  const std::uint64_t k = op_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = splitmix64(base_ ^ (k * 0x2545f4914f6cdd1dull));
  if (faults_so_far >= config_.burst) return {};
  if (to_unit(h) >= config_.rate) return {};

  // Draw the kind from the enabled set; the sub-hash keeps the choice
  // independent of the fire/no-fire draw above.
  std::vector<FaultKind> enabled;
  enabled.reserve(5);
  if (config_.kinds & kFaultShort) enabled.push_back(FaultKind::kShortTransfer);
  if (config_.kinds & kFaultEintr) enabled.push_back(FaultKind::kEintr);
  if (config_.kinds & kFaultEio) enabled.push_back(FaultKind::kEio);
  if ((config_.kinds & kFaultEnospc) && is_write)
    enabled.push_back(FaultKind::kEnospc);
  if ((config_.kinds & kFaultLatency) && config_.latency_ns != 0)
    enabled.push_back(FaultKind::kLatency);
  if (enabled.empty()) return {};

  const std::uint64_t sub = splitmix64(h);
  FaultDecision decision;
  decision.kind = enabled[sub % enabled.size()];
  decision.fraction = to_unit(splitmix64(sub));
  return decision;
}

CorruptionDecision FaultInjector::next_corruption(bool is_write) {
  // Separate counter + distinct salt: the corruption stream neither consumes
  // nor perturbs the syscall-fault stream, so arming flip= does not change
  // which reads see transient EIO under the same seed.
  const std::uint64_t k =
      corruption_op_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      splitmix64(base_ ^ 0x6c62272e07bb0142ull ^ (k * 0x9fb21c651e98df25ull));
  const double draw = to_unit(h);

  CorruptionDecision decision;
  if (is_write) {
    if (draw < config_.torn_rate) {
      decision.kind = CorruptionKind::kTorn;
    } else if (draw < config_.torn_rate + config_.stale_rate) {
      decision.kind = CorruptionKind::kStale;
    } else {
      return decision;
    }
  } else {
    if (draw < config_.flip_rate) {
      decision.kind = CorruptionKind::kFlip;
    } else if (draw < config_.flip_rate + config_.zero_rate) {
      decision.kind = CorruptionKind::kZero;
    } else {
      return decision;
    }
  }
  const std::uint64_t sub = splitmix64(h);
  decision.a = to_unit(sub);
  decision.b = to_unit(splitmix64(sub));
  return decision;
}

}  // namespace plfoc
