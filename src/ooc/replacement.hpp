// Replacement strategies for the out-of-core slot manager (Sec. 3.3).
//
// When a requested vector is on disk and no slot is free, the strategy picks
// a resident, unpinned victim to swap out. The paper implements and compares
// four strategies:
//
//  * Random       — uniform choice, O(1), one RNG call;
//  * LRU          — evict the vector accessed furthest in the past;
//  * LFU          — evict the resident vector with the fewest accesses since
//                   it was (re)loaded (frequency state is per-residency, the
//                   "list of m entries" of the paper);
//  * Topological  — evict the vector whose node is most distant from the
//                   requested node in the current tree (node-path distance),
//                   on the rationale that the most distant vector will be
//                   needed furthest in the future.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plfoc {

enum class ReplacementPolicy { kRandom, kLru, kLfu, kTopological };

const char* policy_name(ReplacementPolicy policy);
/// Parse "random" / "lru" / "lfu" / "topological" (case-insensitive; the
/// error message lists the accepted names so jobfile/CLI diagnostics stay
/// actionable).
ReplacementPolicy parse_policy(const std::string& name);

/// Strategy callbacks are invoked by the slot manager under its lock; vector
/// identity is the dense ancestral-vector index (inner_index of the node).
class ReplacementStrategy {
 public:
  virtual ~ReplacementStrategy() = default;

  /// Every acquire of `index` (hit or just-completed load).
  virtual void on_access(std::uint32_t index) { (void)index; }
  /// `index` became resident.
  virtual void on_load(std::uint32_t index) { (void)index; }
  /// `index` became resident through a *prefetch* install (no kernel access
  /// yet). Called after on_load. Recency/frequency strategies age the vector
  /// in at the current tick so freshly staged lookahead does not enter the
  /// pool as the coldest resident and evict itself before first use; Random
  /// and Topological ignore it (their victim choice never consults access
  /// history).
  virtual void on_prefetch_install(std::uint32_t index) { (void)index; }
  /// `index` was evicted.
  virtual void on_evict(std::uint32_t index) { (void)index; }

  /// Choose the victim among `candidates` (resident, unpinned, non-empty)
  /// given that vector `requested` is being brought in.
  virtual std::uint32_t choose_victim(std::span<const std::uint32_t> candidates,
                                      std::uint32_t requested) = 0;

  virtual const char* name() const = 0;
};

struct StrategyConfig {
  ReplacementPolicy policy = ReplacementPolicy::kRandom;
  std::size_t vector_count = 0;  ///< total number of ancestral vectors
  std::uint64_t seed = 1;        ///< Random strategy seed
  /// Topological strategy only: the live tree (vector index i corresponds to
  /// node tree->inner_node(i)). The tree must outlive the strategy and may
  /// change topology between calls (distances are recomputed per miss).
  const Tree* tree = nullptr;
};

std::unique_ptr<ReplacementStrategy> make_strategy(const StrategyConfig& config);

}  // namespace plfoc
