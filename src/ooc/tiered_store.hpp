// Three-layer storage hierarchy — the paper's Sec. 5 outlook, implemented.
//
// "One may also envision a three-layer architecture, where ancestral
//  probability vectors partially reside on disk, in RAM, or the memory of an
//  accelerator card."
//
// TieredStore stacks a small *fast tier* (modelling accelerator/GPU device
// memory: the kernels may only compute on vectors residing there) on top of
// the familiar RAM slot tier, backed by the binary vector file:
//
//      fast tier (m_fast slots)   <- acquire() returns addresses here only
//        | promote / demote         (models PCIe transfers; no disk I/O)
//      RAM tier (m_ram slots)
//        | swap in / out            (real file reads/writes, read skipping)
//      vector file on disk
//
// Demotions from the fast tier fall to the RAM tier (possibly cascading a
// RAM->disk eviction); promotions prefer RAM residency over a disk read.
// Pinning applies to the fast tier (a computation's working triple must be
// on the accelerator), so m_fast >= 3. Both tiers use their own replacement
// strategy instance. Transfer statistics are split per layer: stats() counts
// the disk layer exactly like OutOfCoreStore; tier_stats() counts
// host<->device traffic.
#pragma once

#include <vector>

#include "ooc/file_backend.hpp"
#include "ooc/replacement.hpp"
#include "ooc/storage.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct TieredStoreOptions {
  std::size_t fast_slots = 3;  ///< accelerator-memory vectors (>= 3)
  std::size_t ram_slots = 8;   ///< host-RAM vectors (>= 1)
  ReplacementPolicy fast_policy = ReplacementPolicy::kLru;
  ReplacementPolicy ram_policy = ReplacementPolicy::kRandom;
  bool read_skipping = true;
  std::uint64_t seed = 1;
  const Tree* tree = nullptr;  ///< for topological policies
  FileBackendOptions file;
};

/// Host<->device transfer counters (the middle layer of the hierarchy).
struct TierStats {
  std::uint64_t promotions = 0;    ///< RAM -> fast copies
  std::uint64_t demotions = 0;     ///< fast -> RAM copies
  std::uint64_t fast_hits = 0;     ///< acquire served from the fast tier
  std::uint64_t ram_hits = 0;      ///< promotion served from RAM (no disk read)
  std::uint64_t bytes_transferred = 0;
};

class TieredStore final : public AncestralStore {
 public:
  TieredStore(std::size_t count, std::size_t width, TieredStoreOptions options);

  const char* backend_name() const override { return "tiered"; }
  std::size_t fast_slots() const;
  std::size_t ram_slots() const;
  /// Copy of the host<->device transfer counters, taken under the slot-table
  /// lock. Returned by value: the counters are mutated under mutex_, so a
  /// reference would hand out unsynchronised state (the same defect class
  /// the PR 2 stats_snapshot() fix closed for OocStats).
  TierStats tier_stats() const;

  /// Advisory prefetch into the *RAM tier*: stage `index` from disk so a
  /// later acquire promotes it over PCIe instead of paying a device read.
  /// No-op unless the vector is on disk and has been written. The install
  /// ages the vector into the RAM strategy via on_prefetch_install, and an
  /// install evicted to disk before any acquire counts
  /// stats().prefetch_wasted. Synchronous (no engine batch): the tier's
  /// prefetch traffic is host-side staging, not the latency-critical path.
  void prefetch(std::uint32_t index);

  /// Write all dirty state (both tiers) back to the file.
  void flush() override;

  const FileBackend& file() const { return file_; }

  /// Counters plus the backing file's robustness counters (faults_injected /
  /// io_retries / io_exhausted), which live in backend atomics.
  OocStats stats_snapshot() const override;
  /// Also clears the backing file's robustness counters.
  void reset_stats() override;

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Slot {
    std::uint32_t vector = kNone;
    std::uint32_t pins = 0;  ///< fast tier only
    bool dirty = false;
  };

  enum class Location : std::uint8_t { kDisk, kRam, kFast };

  double* fast_data(std::uint32_t slot) {
    return fast_arena_.data() + static_cast<std::size_t>(slot) * width_;
  }
  double* ram_data(std::uint32_t slot) {
    return ram_arena_.data() + static_cast<std::size_t>(slot) * width_;
  }

  /// A verified disk read into fast slot `slot` failed: try the recovery
  /// hook (released lock), then either mark the slot dirty (healed) or undo
  /// the install and throw IntegrityError. Requires: lock held (`lock` is
  /// the scoped acquisition of mutex_), `slot` installed for `index` and
  /// pinned once.
  void recover_or_throw(MutexLock& lock, std::uint32_t index,
                        std::uint32_t slot, const VerifyResult& verify)
      PLFOC_REQUIRES(mutex_);
  /// Free a fast slot (demoting its occupant to RAM).
  std::uint32_t obtain_fast_slot(std::uint32_t incoming)
      PLFOC_REQUIRES(mutex_);
  /// Free a RAM slot (evicting its occupant to disk).
  std::uint32_t obtain_ram_slot(std::uint32_t incoming) PLFOC_REQUIRES(mutex_);
  /// Move the vector in fast slot `slot` down to the RAM tier.
  void demote(std::uint32_t slot) PLFOC_REQUIRES(mutex_);
  /// Async-engine disk-miss path: free a fast slot AND load `index` into it,
  /// overlapping the cascaded RAM-victim spill write (when one is needed)
  /// with the demand read as one engine batch. Counts file_reads/bytes_read
  /// like the sequential read; the caller still counts the promotion. On a
  /// spill failure the whole cascade is undone (both tiers keep their
  /// occupants) — the state the sequential obtain_ram_slot throw leaves.
  std::uint32_t swap_in_overlapped(std::uint32_t index, bool verified,
                                   VerifyResult* out_verify)
      PLFOC_REQUIRES(mutex_);

  /// Base-class counters re-exported under their capability (every mutation
  /// is provably under the slot-table lock).
  OocStats& stats_locked() PLFOC_REQUIRES(mutex_) { return stats_; }
  const OocStats& stats_locked() const PLFOC_REQUIRES(mutex_) {
    return stats_;
  }

  TieredStoreOptions options_;
  AlignedBuffer fast_arena_;
  AlignedBuffer ram_arena_;
  /// One-vector staging buffer for promotions.
  AlignedBuffer bounce_ PLFOC_GUARDED_BY(mutex_);
  /// Overlapped-swap staging (async engines only): holds the demoting fast
  /// victim's content while the demand read reuses its fast slot — and
  /// doubles as the undo image if the cascaded spill write fails.
  std::vector<double> demote_scratch_ PLFOC_GUARDED_BY(mutex_);
  std::vector<Slot> fast_ PLFOC_GUARDED_BY(mutex_);
  std::vector<Slot> ram_ PLFOC_GUARDED_BY(mutex_);
  /// Per vector.
  std::vector<Location> where_ PLFOC_GUARDED_BY(mutex_);
  /// Per vector: slot in its tier.
  std::vector<std::uint32_t> slot_of_ PLFOC_GUARDED_BY(mutex_);
  std::vector<bool> touched_ PLFOC_GUARDED_BY(mutex_);
  /// Vector staged into the RAM tier by prefetch() and not acquired since;
  /// spilling it back to disk while set counts stats().prefetch_wasted.
  std::vector<bool> prefetched_unread_ PLFOC_GUARDED_BY(mutex_);
  FileBackend file_;  ///< internally synchronised (backend atomics)
  std::unique_ptr<ReplacementStrategy> fast_strategy_ PLFOC_GUARDED_BY(mutex_);
  std::unique_ptr<ReplacementStrategy> ram_strategy_ PLFOC_GUARDED_BY(mutex_);
  TierStats tier_stats_ PLFOC_GUARDED_BY(mutex_);
  mutable Mutex mutex_;
};

}  // namespace plfoc
