// Machine-checked invariants for the out-of-core slot table (Sec. 3.2-3.4).
//
// The slot table is the piece of state whose silent corruption is costliest:
// it is mutated concurrently by the likelihood engine and the prefetch worker,
// and a wrong entry redirects vector-level file I/O, corrupting the on-disk
// vector file and every likelihood computed from it. StoreAuditor is an
// oracle for that state: OutOfCoreStore (when built with -DPLFOC_AUDIT=ON)
// reports every mutation — acquire, release, evict, write-back — and the
// auditor cross-checks the full table after each one:
//
//  * residency is a bijection: every resident vector maps to exactly one slot
//    and that slot maps back to the vector; no vector occupies two slots;
//  * pinned slots are never selected as replacement victims;
//  * dirty flags match write-backs: a vector with un-written-back
//    modifications is never dropped, and a slot's dirty bit always agrees
//    with the auditor's shadow model of pending modifications;
//  * read skipping only ever elides the swap-in read of a write-mode access —
//    in particular it never skips reading a vector that was ever written to
//    the backing file and is now being read.
//
// All checking methods return the violated invariant as a string (nullopt if
// the state is consistent) so tests can assert that corruption *is* detected;
// `enforce()` is the abort-on-violation wrapper the store uses in production
// audit builds. The auditor itself is always compiled (and unit-tested); only
// the hooks inside OutOfCoreStore are gated behind PLFOC_AUDIT.
//
// Thread safety: the auditor keeps shadow state and must be called under the
// store's slot-table mutex, exactly where the mutations it observes happen.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ooc/stats.hpp"

namespace plfoc {

/// Sentinel values shared by the slot table and its auditor.
inline constexpr std::uint32_t kOocNoSlot = 0xFFFFFFFFu;
inline constexpr std::uint32_t kOocNoVector = 0xFFFFFFFFu;

/// One RAM slot of the out-of-core slot table.
struct OocSlot {
  std::uint32_t vector = kOocNoVector;  ///< resident vector, or kOocNoVector
  std::uint32_t pins = 0;               ///< live leases on the vector
  bool dirty = false;                   ///< modified since last write-back
};

class StoreAuditor {
 public:
  StoreAuditor(std::size_t vector_count, std::size_t slot_count);

  // -- Event recorders ------------------------------------------------------
  // Each records the event into the shadow model and returns the violated
  // invariant, or nullopt. Call under the store's mutex, in the order the
  // store performs the operations.

  /// An acquire completed. `write_mode` is AccessMode::kWrite;
  /// `read_skipped` means the access missed and the swap-in read was elided.
  [[nodiscard]] std::optional<std::string> record_acquire(std::uint32_t index,
                                                          bool write_mode,
                                                          bool read_skipped);

  /// The store wrote `index` back to the backing file (eviction write-back,
  /// flush, or unconditional paper-mode write).
  [[nodiscard]] std::optional<std::string> record_file_write(
      std::uint32_t index);

  /// `victim` (with `pins` live leases) was chosen for eviction;
  /// `write_back_scheduled` reports whether the store will write the victim
  /// back before dropping it. Call BEFORE the write-back and before the
  /// store's own consistency checks, so the auditor observes the
  /// pre-write-back pin/dirty state independently of them.
  [[nodiscard]] std::optional<std::string> record_evict(
      std::uint32_t victim, std::uint32_t pins, bool write_back_scheduled);

  /// A lease on `index` was released; `pins_before` is the pin count the
  /// slot held at the moment of release.
  [[nodiscard]] std::optional<std::string> record_release(
      std::uint32_t index, std::uint32_t pins_before);

  /// A verified read of `index` failed its checksum and the store attempted
  /// self-healing recomputation. `recovered` reports the outcome. A
  /// successful recovery leaves the slot holding content newer than the
  /// (corrupt) file record, so the shadow model marks the vector dirty —
  /// the slot must be written back before it can be dropped.
  [[nodiscard]] std::optional<std::string> record_recovery(std::uint32_t index,
                                                          bool recovered);

  // -- Full-table validation ------------------------------------------------

  /// Validate the complete slot table against the structural invariants and
  /// the shadow dirty model. O(slots + vectors).
  [[nodiscard]] std::optional<std::string> check_table(
      const std::vector<OocSlot>& slots,
      const std::vector<std::uint32_t>& vector_slot) const;

  /// Validate the store's counter object: algebraic identities
  /// (hits + misses == accesses, cold_misses <= misses, skipped_reads <=
  /// misses, integrity_recoveries + integrity_unrecovered ==
  /// integrity_failures, recovery_recomputes >= integrity_recoveries) and
  /// monotonicity against the previously checked snapshot — including the
  /// robustness and integrity counters, which must never run backwards
  /// mid-run. Call after every counter mutation; reset_stats_baseline()
  /// after a counter reset.
  [[nodiscard]] std::optional<std::string> check_stats(const OocStats& stats);

  /// Forget the monotonicity baseline (pairs with AncestralStore's
  /// reset_stats(), which legitimately zeroes the counters).
  void reset_stats_baseline() { last_stats_ = OocStats{}; }

  /// Abort with a diagnostic if `violation` holds a message. `when` labels
  /// the mutating operation ("acquire", "release", "evict", ...).
  void enforce(const std::optional<std::string>& violation,
               const char* when) const;

  std::size_t vector_count() const { return vector_count_; }
  std::size_t slot_count() const { return slot_count_; }
  /// True once `index` has ever been written to the backing file.
  bool ever_on_disk(std::uint32_t index) const;

 private:
  std::size_t vector_count_;
  std::size_t slot_count_;
  std::vector<bool> on_disk_;      ///< vector was ever written to the file
  std::vector<bool> shadow_dirty_; ///< modifications not yet written back
  OocStats last_stats_;            ///< monotonicity baseline for check_stats
};

}  // namespace plfoc
