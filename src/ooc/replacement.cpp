#include "ooc/replacement.hpp"

#include <cctype>
#include <limits>
#include <vector>

#include "tree/distances.hpp"
#include "util/checks.hpp"

namespace plfoc {
namespace {

class RandomStrategy final : public ReplacementStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : rng_(seed) {}

  std::uint32_t choose_victim(std::span<const std::uint32_t> candidates,
                              std::uint32_t /*requested*/) override {
    PLFOC_CHECK(!candidates.empty());
    return candidates[rng_.below(candidates.size())];
  }

  const char* name() const override { return "random"; }

 private:
  Rng rng_;
};

class LruStrategy final : public ReplacementStrategy {
 public:
  explicit LruStrategy(std::size_t vector_count)
      : last_access_(vector_count, 0) {}

  void on_access(std::uint32_t index) override {
    last_access_[index] = ++tick_;
  }

  // A prefetched vector enters as if it had just been accessed: without this
  // the install keeps whatever ancient tick the vector had, so a batch of
  // prefetches are the coldest residents and evict each other (the lookahead
  // collapse).
  void on_prefetch_install(std::uint32_t index) override {
    last_access_[index] = ++tick_;
  }

  std::uint32_t choose_victim(std::span<const std::uint32_t> candidates,
                              std::uint32_t /*requested*/) override {
    PLFOC_CHECK(!candidates.empty());
    std::uint32_t victim = candidates[0];
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t candidate : candidates)
      if (last_access_[candidate] < oldest) {
        oldest = last_access_[candidate];
        victim = candidate;
      }
    return victim;
  }

  const char* name() const override { return "lru"; }

 private:
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> last_access_;
};

class LfuStrategy final : public ReplacementStrategy {
 public:
  explicit LfuStrategy(std::size_t vector_count)
      : frequency_(vector_count, 0) {}

  // Frequency counts live per residency (reset when a vector is loaded),
  // matching the paper's "list of m entries containing the access frequency".
  void on_load(std::uint32_t index) override { frequency_[index] = 0; }
  void on_access(std::uint32_t index) override { ++frequency_[index]; }
  // One-access grant: a prefetched vector starts at frequency 1 instead of 0
  // so it is not the automatic victim of the very next miss, but it still
  // loses to anything the kernel has actually touched more than once.
  void on_prefetch_install(std::uint32_t index) override {
    frequency_[index] = 1;
  }

  std::uint32_t choose_victim(std::span<const std::uint32_t> candidates,
                              std::uint32_t /*requested*/) override {
    PLFOC_CHECK(!candidates.empty());
    std::uint32_t victim = candidates[0];
    std::uint64_t fewest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t candidate : candidates)
      if (frequency_[candidate] < fewest) {
        fewest = frequency_[candidate];
        victim = candidate;
      }
    return victim;
  }

  const char* name() const override { return "lfu"; }

 private:
  std::vector<std::uint64_t> frequency_;
};

class TopologicalStrategy final : public ReplacementStrategy {
 public:
  explicit TopologicalStrategy(const Tree& tree) : tree_(tree) {}

  std::uint32_t choose_victim(std::span<const std::uint32_t> candidates,
                              std::uint32_t requested) override {
    PLFOC_CHECK(!candidates.empty());
    // One BFS from the requested node per miss — the "larger computational
    // overhead" the paper notes for this strategy (Sec. 4.1).
    const std::vector<std::uint32_t> dist =
        node_distances(tree_, tree_.inner_node(requested));
    std::uint32_t victim = candidates[0];
    std::uint32_t furthest = 0;
    for (std::uint32_t candidate : candidates) {
      const std::uint32_t d = dist[tree_.inner_node(candidate)];
      if (d > furthest) {
        furthest = d;
        victim = candidate;
      }
    }
    return victim;
  }

  const char* name() const override { return "topological"; }

 private:
  const Tree& tree_;
};

}  // namespace

const char* policy_name(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kLfu: return "lfu";
    case ReplacementPolicy::kTopological: return "topological";
  }
  return "?";
}

ReplacementPolicy parse_policy(const std::string& name) {
  std::string lowered = name;
  for (char& c : lowered)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lowered == "random") return ReplacementPolicy::kRandom;
  if (lowered == "lru") return ReplacementPolicy::kLru;
  if (lowered == "lfu") return ReplacementPolicy::kLfu;
  if (lowered == "topological") return ReplacementPolicy::kTopological;
  throw Error("unknown replacement policy '" + name +
              "' (expected one of: random, lru, lfu, topological)");
}

std::unique_ptr<ReplacementStrategy> make_strategy(
    const StrategyConfig& config) {
  PLFOC_REQUIRE(config.vector_count > 0,
                "replacement strategy needs the vector count");
  switch (config.policy) {
    case ReplacementPolicy::kRandom:
      return std::make_unique<RandomStrategy>(config.seed);
    case ReplacementPolicy::kLru:
      return std::make_unique<LruStrategy>(config.vector_count);
    case ReplacementPolicy::kLfu:
      return std::make_unique<LfuStrategy>(config.vector_count);
    case ReplacementPolicy::kTopological:
      PLFOC_REQUIRE(config.tree != nullptr,
                    "the topological strategy needs the tree");
      PLFOC_REQUIRE(config.tree->num_inner() == config.vector_count,
                    "topological strategy: tree size does not match the "
                    "vector count");
      return std::make_unique<TopologicalStrategy>(*config.tree);
  }
  throw Error("unknown replacement policy");
}

}  // namespace plfoc
