#include "ooc/mmap_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/checks.hpp"

namespace plfoc {

MmapStore::MmapStore(std::size_t count, std::size_t width,
                     MmapStoreOptions options)
    : AncestralStore(count, width), options_(std::move(options)) {
  PLFOC_REQUIRE(!options_.file_path.empty(), "MmapStore needs a file path");
  fd_ = ::open(options_.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  PLFOC_REQUIRE(fd_ >= 0, "cannot create vector file '" + options_.file_path +
                              "': " + std::strerror(errno));
  mapping_bytes_ = count * width * sizeof(double);
  const int rc = ::ftruncate(fd_, static_cast<off_t>(mapping_bytes_));
  PLFOC_REQUIRE(rc == 0,
                std::string("ftruncate failed: ") + std::strerror(errno));
  mapping_ = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd_, 0);
  PLFOC_REQUIRE(mapping_ != MAP_FAILED,
                std::string("mmap failed: ") + std::strerror(errno));
  if (options_.advise_random)
    ::madvise(mapping_, mapping_bytes_, MADV_RANDOM);
}

MmapStore::~MmapStore() {
  if (mapping_ != nullptr && mapping_ != MAP_FAILED)
    ::munmap(mapping_, mapping_bytes_);
  if (fd_ >= 0) ::close(fd_);
  if (options_.remove_on_close) ::unlink(options_.file_path.c_str());
}

double* MmapStore::do_acquire(std::uint32_t index, AccessMode /*mode*/) {
  PLFOC_CHECK(index < count_);
  ++stats_.accesses;
  ++stats_.hits;  // from the application's view every access "hits" the map
  return static_cast<double*>(mapping_) +
         static_cast<std::size_t>(index) * width_;
}

void MmapStore::do_release(std::uint32_t /*index*/) {}

void MmapStore::flush() {
  const int rc = ::msync(mapping_, mapping_bytes_, MS_SYNC);
  PLFOC_REQUIRE(rc == 0, std::string("msync failed: ") + std::strerror(errno));
}

double MmapStore::resident_fraction() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t pages =
      (mapping_bytes_ + static_cast<std::size_t>(page) - 1) /
      static_cast<std::size_t>(page);
  std::vector<unsigned char> residency(pages, 0);
  if (::mincore(mapping_, mapping_bytes_, residency.data()) != 0) return -1.0;
  std::size_t resident = 0;
  for (unsigned char byte : residency) resident += (byte & 1u);
  return pages == 0 ? 0.0
                    : static_cast<double>(resident) / static_cast<double>(pages);
}

}  // namespace plfoc
