#include "ooc/mmap_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "ooc/faults.hpp"
#include "ooc/file_backend.hpp"  // mix64 / checksum64
#include "util/checks.hpp"

namespace plfoc {

MmapStore::MmapStore(std::size_t count, std::size_t width,
                     MmapStoreOptions options)
    : AncestralStore(count, width),
      options_(std::move(options)),
      // Same finalizer family as FileBackend's per-stripe seeds, distinct
      // domain tag so mmap checksums never collide with file-table ones.
      checksum_seed_(mix64(0x504c4656ull ^ mix64(0x6d6d6170ull /* "mmap" */))),
      checksums_(count, 0),
      generations_(count, 0),
      lease_count_(count, 0),
      lease_mode_(count, AccessMode::kRead) {
  PLFOC_REQUIRE(!options_.file_path.empty(), "MmapStore needs a file path");
  fd_ = ::open(options_.file_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  PLFOC_REQUIRE(fd_ >= 0, "cannot create vector file '" + options_.file_path +
                              "': " + std::strerror(errno));
  mapping_bytes_ = count * width * sizeof(double);
  const int rc = ::ftruncate(fd_, static_cast<off_t>(mapping_bytes_));
  PLFOC_REQUIRE(rc == 0,
                std::string("ftruncate failed: ") + std::strerror(errno));
  mapping_ = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd_, 0);
  PLFOC_REQUIRE(mapping_ != MAP_FAILED,
                std::string("mmap failed: ") + std::strerror(errno));
  if (options_.advise_random)
    ::madvise(mapping_, mapping_bytes_, MADV_RANDOM);
}

MmapStore::~MmapStore() {
  if (mapping_ != nullptr && mapping_ != MAP_FAILED)
    ::munmap(mapping_, mapping_bytes_);
  if (fd_ >= 0) ::close(fd_);
  if (options_.remove_on_close) ::unlink(options_.file_path.c_str());
}

char* MmapStore::vector_bytes(std::uint32_t index) const {
  return static_cast<char*>(mapping_) +
         static_cast<std::size_t>(index) * width_ * sizeof(double);
}

double* MmapStore::do_acquire(std::uint32_t index, AccessMode mode) {
  PLFOC_CHECK(index < count_);
  ++stats_.accesses;
  ++stats_.hits;  // from the application's view every access "hits" the map
  // First touch per residency: only a read of a previously-written vector
  // whose pages left the cache can observe device bytes, so only that path
  // verifies. Outstanding leases imply residency (content possibly in flux).
  if (options_.integrity && mode == AccessMode::kRead &&
      lease_count_[index] == 0 && generations_[index] > 0 &&
      !span_resident(index))
    verify_or_recover(index);
  if (lease_count_[index] == 0 || mode == AccessMode::kWrite)
    lease_mode_[index] = mode;
  ++lease_count_[index];
  return static_cast<double*>(mapping_) +
         static_cast<std::size_t>(index) * width_;
}

void MmapStore::do_release(std::uint32_t index) {
  PLFOC_CHECK(lease_count_[index] > 0);
  if (--lease_count_[index] == 0 && lease_mode_[index] == AccessMode::kWrite &&
      options_.integrity) {
    // The write lease just ended: this content is what any later re-fault
    // must deliver back.
    checksums_[index] =
        checksum64(checksum_seed_, vector_bytes(index), width_ * sizeof(double));
    ++generations_[index];
  }
}

void MmapStore::verify_or_recover(std::uint32_t index) {
  const std::size_t bytes = width_ * sizeof(double);
  char* data = vector_bytes(index);
  // This checksum pass is itself the first touch: it faults the span back in.
  if (checksum64(checksum_seed_, data, bytes) == checksums_[index]) return;
  ++stats_.integrity_failures;
  std::uint64_t recomputed = 0;
  if (recovery_hook_) {
    // No lock to drop here (MmapStore is slot-free); the hook's child
    // acquires re-enter do_acquire and may verify recursively.
    try {
      recomputed = recovery_hook_(index, reinterpret_cast<double*>(data));
    } catch (...) {
      recomputed = 0;  // a failing recovery is an unrecoverable record
    }
  }
  if (recomputed > 0) {
    ++stats_.integrity_recoveries;
    stats_.recovery_recomputes += recomputed;
    // The healed bytes are dirty in the shared mapping; msync (flush) routes
    // them back to the file, replacing the damaged record.
    checksums_[index] = checksum64(checksum_seed_, data, bytes);
    return;
  }
  ++stats_.integrity_unrecovered;
  throw IntegrityError(
      "mmap fault-in", index, generations_[index], generations_[index],
      /*injected=*/false,
      std::string("checksum mismatch on re-faulted span") +
          (recovery_hook_ ? "; recomputation failed"
                          : "; no recovery hook registered"));
}

void MmapStore::flush() {
  const int rc = ::msync(mapping_, mapping_bytes_, MS_SYNC);
  PLFOC_REQUIRE(rc == 0, std::string("msync failed: ") + std::strerror(errno));
}

bool MmapStore::span_resident(std::uint32_t index) const {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_bytes = static_cast<std::size_t>(page);
  const std::size_t begin =
      static_cast<std::size_t>(index) * width_ * sizeof(double);
  const std::size_t end = begin + width_ * sizeof(double);
  const std::size_t aligned_begin = begin / page_bytes * page_bytes;
  const std::size_t aligned_end =
      std::min(mapping_bytes_, (end + page_bytes - 1) / page_bytes * page_bytes);
  const std::size_t span = aligned_end - aligned_begin;
  std::vector<unsigned char> residency((span + page_bytes - 1) / page_bytes, 0);
  if (::mincore(static_cast<char*>(mapping_) + aligned_begin, span,
                residency.data()) != 0)
    return true;  // cannot sample: assume resident (no spurious verify cost)
  for (unsigned char byte : residency)
    if ((byte & 1u) == 0) return false;
  return true;
}

void MmapStore::drop_residency(std::uint32_t index) {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_bytes = static_cast<std::size_t>(page);
  const std::size_t begin =
      static_cast<std::size_t>(index) * width_ * sizeof(double);
  const std::size_t end = begin + width_ * sizeof(double);
  const std::size_t aligned_begin = begin / page_bytes * page_bytes;
  const std::size_t aligned_end =
      std::min(mapping_bytes_, (end + page_bytes - 1) / page_bytes * page_bytes);
  char* span_begin = static_cast<char*>(mapping_) + aligned_begin;
  const std::size_t span = aligned_end - aligned_begin;
  ::msync(span_begin, span, MS_SYNC);
  ::posix_fadvise(fd_, static_cast<off_t>(aligned_begin),
                  static_cast<off_t>(span), POSIX_FADV_DONTNEED);
  ::madvise(span_begin, span, MADV_DONTNEED);
}

double MmapStore::resident_fraction() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t pages =
      (mapping_bytes_ + static_cast<std::size_t>(page) - 1) /
      static_cast<std::size_t>(page);
  std::vector<unsigned char> residency(pages, 0);
  if (::mincore(mapping_, mapping_bytes_, residency.data()) != 0) return -1.0;
  std::size_t resident = 0;
  for (unsigned char byte : residency) resident += (byte & 1u);
  return pages == 0 ? 0.0
                    : static_cast<double>(resident) / static_cast<double>(pages);
}

}  // namespace plfoc
