// The "standard implementation" baseline: every ancestral probability vector
// permanently resident in one contiguous RAM allocation (n == m). Acquire is
// pointer arithmetic; all accesses are hits.
#pragma once

#include "ooc/storage.hpp"
#include "util/aligned_buffer.hpp"

namespace plfoc {

class InRamStore final : public AncestralStore {
 public:
  InRamStore(std::size_t count, std::size_t width);

  const char* backend_name() const override { return "in-ram"; }

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  AlignedBuffer arena_;
};

}  // namespace plfoc
