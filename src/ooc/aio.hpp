// Asynchronous I/O engine — a submission/completion-queue abstraction under
// the FileBackend (ROADMAP item 2; docs/async-io.md).
//
// The paper's out-of-core regime is disk-bound: a synchronous pread/pwrite
// loop serialises the eviction write-back, the demand read, and every
// prefetch stage. An AioEngine accepts a *batch* of raw transfer ops and
// delivers their completions as they finish, so the stores can overlap the
// victim write-back with the demand read and the prefetcher can keep a whole
// lookahead window in flight.
//
// Four backends share one contract:
//   kSync          — ops execute in submission order at submit(); the
//                    historical sequential path, byte-identical to the old
//                    one-loop FileBackend (the default).
//   kThreads       — a portable worker pool; completions arrive in whatever
//                    order the workers finish.
//   kUring         — Linux io_uring via raw syscalls (the container carries
//                    no liburing); falls back to kThreads when the kernel
//                    refuses io_uring_setup.
//   kDeterministic — the test backend: ops execute eagerly in submission
//                    order (so file mutation order is deterministic), but the
//                    completions are buffered and delivered in a seed-chosen
//                    permutation. Seed 0 is the identity order, seed 1 fully
//                    reversed, any other seed a splitmix-shuffled order that
//                    also varies per batch. This is what lets the aio test
//                    suite prove the stores' completion handling is
//                    order-independent (docs/async-io.md, "completion-order
//                    determinism contract").
//
// Fault injection and retry live at *submission granularity*: every queued op
// consults the shared FaultInjector schedule before each syscall attempt and
// carries its own RetryPolicy state, mirroring FileBackend::transfer_all
// exactly (short-transfer resumption, unconditional EINTR retry, bounded
// transient-error retry with exponential backoff). Instead of throwing, an
// exhausted op reports the final errno in its completion — the FileBackend
// turns that into the same typed IoError the sequential path throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "ooc/faults.hpp"
#include "util/mutex.hpp"

namespace plfoc {

enum class AioEngineKind : std::uint8_t {
  kSync,
  kThreads,
  kUring,
  kDeterministic,
};

const char* aio_engine_name(AioEngineKind kind);
/// Parse "sync" | "threads" | "uring" | "deterministic" (the --io-engine
/// vocabulary). Throws plfoc::Error on anything else.
AioEngineKind parse_aio_engine(const std::string& name);

/// Reserved permutation seeds for the deterministic engine.
constexpr std::uint64_t kAioOrderIdentity = 0;  ///< completions in order
constexpr std::uint64_t kAioOrderReverse = 1;   ///< completions reversed

/// One raw transfer: a contiguous span of one file descriptor. `token` is
/// echoed verbatim in the completion so callers can match results to ops.
struct AioOp {
  bool is_write = false;
  int fd = -1;
  /// O_DIRECT sibling of `fd`, or -1. Attempts whose position, length and
  /// buffer are all 512-aligned go through it; others use the buffered fd
  /// (an injected short transfer can break alignment mid-op).
  int direct_fd = -1;
  void* buffer = nullptr;
  std::size_t bytes = 0;
  std::uint64_t offset = 0;
  std::uint64_t token = 0;
};

/// Completion of one AioOp, carrying the outcome plus the counter deltas the
/// per-op retry/injection state machine accumulated. The FileBackend folds
/// the deltas into its robustness atomics at completion time, so totals match
/// the sequential path regardless of delivery order.
struct AioCompletion {
  std::uint64_t token = 0;
  int error = 0;  ///< 0 = success; else errno of the final failed attempt
  std::uint64_t fail_offset = 0;  ///< file position of the failing attempt
  unsigned attempts = 0;          ///< failed attempts + 1 (IoError reporting)
  bool injected = false;  ///< final failure was injector-simulated
  std::uint64_t faults = 0;       ///< injected fault decisions consumed
  std::uint64_t retries = 0;      ///< EINTR / transient / short resumptions
  std::uint64_t exhausted = 0;    ///< 1 when the retry budget ran out
  bool ok() const { return error == 0; }
};

struct AioEngineOptions {
  AioEngineKind kind = AioEngineKind::kSync;
  /// Queue depth: worker count (kThreads) / ring size (kUring). Clamped to
  /// at least 1.
  unsigned depth = 8;
  /// Completion-delivery permutation seed (kDeterministic only).
  std::uint64_t permute_seed = kAioOrderIdentity;
  /// Shared fault-decision stream (may be null: injection disabled). The
  /// engine never owns it — the FileBackend does.
  const FaultInjector* injector = nullptr;
  RetryPolicy retry;
  std::uint64_t latency_ns = 0;  ///< injected latency-spike duration
};

/// The submission/completion-queue contract. Engines are internally
/// synchronised: submit() and wait() may be called from any one thread at a
/// time (the stores call both under their slot-table locks; the prefetcher
/// from its worker). Ops submitted in one batch may execute concurrently —
/// callers guarantee their buffers and file ranges do not alias.
class AioEngine {
 public:
  virtual ~AioEngine() = default;
  virtual const char* name() const = 0;
  /// Enqueue `count` ops. May begin — or, for the sync and deterministic
  /// engines, fully perform — execution before returning.
  virtual void submit(const AioOp* ops, std::size_t count) = 0;
  /// Dequeue up to `max` completions, blocking until at least one is
  /// available. Returns 0 only when nothing is in flight or queued.
  virtual std::size_t wait(AioCompletion* out, std::size_t max) = 0;
  /// Collect exactly `count` completions (helper over wait()). Aborts if the
  /// engine runs dry first — that would mean completions were lost.
  void collect(AioCompletion* out, std::size_t count);
};

/// Build an engine. kUring silently degrades to kThreads when io_uring is
/// unavailable (old kernel, seccomp, resource limits) — name() tells.
std::unique_ptr<AioEngine> make_aio_engine(const AioEngineOptions& options);

/// One AioEngine shared by several FileBackends (the service layer's worker
/// Sessions), instead of a private engine — and worker pool — per store. The
/// mutex serialises *whole batches* (submit + collect together), exactly the
/// discipline each FileBackend already applies to its private engine; ops
/// within a batch still overlap, which is where the parallelism is. A store
/// only adopts the handle when it has no fault schedule of its own (the
/// engine binds the injector/retry/latency it was built with), and its
/// resolved `kind`/`depth` must match the store's request — FileBackend
/// checks both and quietly keeps a private engine otherwise.
struct AioEngineHandle {
  AioEngineKind kind = AioEngineKind::kSync;  ///< kind the engine was built as
  unsigned depth = 1;
  Mutex mutex;
  std::unique_ptr<AioEngine> engine PLFOC_GUARDED_BY(mutex);
};

/// Build a shareable engine handle (no injector, default retry). Returns
/// null for kSync — the sequential path has no engine state worth sharing.
std::shared_ptr<AioEngineHandle> make_shared_aio_engine(AioEngineKind kind,
                                                        unsigned depth);

/// True when this host can set up an io_uring instance right now.
bool aio_uring_supported();

}  // namespace plfoc
