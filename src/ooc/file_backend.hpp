// Binary backing file(s) for ancestral probability vectors.
//
// Vectors are stored contiguously in one binary file (Sec. 3.2); splitting
// across several files is supported (the paper found "minimal" performance
// differences) by striping vectors round-robin. The logical block size equals
// one vector — far above the 512 B / 8 KiB hardware block granularity — so
// every transfer is one large contiguous pread/pwrite.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ooc/faults.hpp"

namespace plfoc {

/// Deterministic storage-device cost model. The paper's Fig. 5 machine had
/// 2 GB of RAM, so its vector file could never be page-cached and every
/// transfer paid real device latency; on a large-RAM host the OS page cache
/// absorbs the file and wall clock no longer reflects the disk-bound regime.
/// When enabled, every read/write additionally accrues
///   seek_latency_ns + bytes * 1e9 / bytes_per_second
/// of virtual device time, which benchmarks report alongside wall time.
/// Defaults model a ~2010 consumer HDD (the paper's era).
struct DeviceModel {
  std::uint64_t seek_latency_ns = 0;      ///< per-operation cost (0 = disabled)
  std::uint64_t bytes_per_second = 0;     ///< sequential bandwidth (0 = disabled)

  bool enabled() const { return seek_latency_ns != 0 || bytes_per_second != 0; }
  static DeviceModel hdd_2010() { return {8'000'000, 100'000'000}; }
  static DeviceModel ssd() { return {80'000, 500'000'000}; }
};

struct FileBackendOptions {
  std::string base_path;      ///< file path; file k gets suffix ".k" if num_files > 1
  unsigned num_files = 1;     ///< stripe count (paper: 1 by default)
  bool preallocate = true;    ///< ftruncate to full size up front (zero-filled)
  bool remove_on_close = true;  ///< unlink backing files in the destructor
  DeviceModel device;         ///< virtual device cost accounting (off by default)
  FaultConfig faults;         ///< seeded fault schedule (disabled by default)
  RetryPolicy retry;          ///< bounded retry + backoff for transient errors
};

class FileBackend {
 public:
  /// Creates/opens the backing file(s) for `count` vectors of
  /// `bytes_per_vector` bytes each.
  FileBackend(std::size_t count, std::size_t bytes_per_vector,
              FileBackendOptions options);
  ~FileBackend();
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  std::size_t count() const { return count_; }
  std::size_t bytes_per_vector() const { return bytes_per_vector_; }
  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(count_) * bytes_per_vector_;
  }

  /// Read/write one whole vector (one logical block).
  void read_vector(std::uint32_t index, void* dst);
  void write_vector(std::uint32_t index, const void* src);

  /// Byte-granularity access into the single-file linear vector space
  /// (vector i occupies [i*w, (i+1)*w)). Used by the paged baseline.
  /// Requires num_files == 1.
  void read_bytes(std::uint64_t offset, void* dst, std::size_t bytes);
  void write_bytes(std::uint64_t offset, const void* src, std::size_t bytes);

  /// One clustered write: several file ranges (offsets into the linear
  /// space, data taken from `base + offset`) written as a *single* device
  /// operation for accounting purposes — models the OS coalescing dirty
  /// pages into one swap-out. Requires num_files == 1.
  struct IoRange {
    std::uint64_t offset;
    std::size_t bytes;
  };
  void write_ranges_clustered(const IoRange* ranges, std::size_t count,
                              const void* base);

  /// Ask the OS to drop its page cache for the backing files so subsequent
  /// reads hit the device (benchmark cold-cache mode). Best effort.
  void drop_page_cache();

  /// fsync all backing files.
  void sync();

  /// Accumulated virtual device time (0 if the DeviceModel is disabled).
  double modeled_device_seconds() const {
    return static_cast<double>(modeled_ns_.load()) * 1e-9;
  }
  /// Total read+write operations issued.
  std::uint64_t io_operations() const { return io_ops_.load(); }
  void reset_device_accounting() {
    modeled_ns_.store(0);
    io_ops_.store(0);
  }

  // Robustness counters (see ooc/faults.hpp and docs/robustness.md). The
  // stores fold these into their OocStats so per-job reports carry them.
  /// Faults injected by the configured schedule (0 when injection is off).
  std::uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  /// Syscall re-attempts: EINTR, resumed short transfers, transient errors.
  std::uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Logical transfers that exhausted the retry budget and threw IoError.
  std::uint64_t io_exhausted() const {
    return io_exhausted_.load(std::memory_order_relaxed);
  }
  void reset_fault_counters() {
    faults_injected_.store(0, std::memory_order_relaxed);
    io_retries_.store(0, std::memory_order_relaxed);
    io_exhausted_.store(0, std::memory_order_relaxed);
  }
  /// Non-null when a fault schedule is configured.
  const FaultInjector* injector() const { return injector_.get(); }

 private:
  void charge(std::size_t bytes);

  /// The one I/O loop every transfer goes through: loops over short
  /// transfers (resuming from the last completed byte) and EINTR
  /// unconditionally — POSIX permits both on a healthy device — and retries
  /// transient errors per RetryPolicy with exponential backoff. Consults the
  /// fault injector, when configured, before each syscall. Throws IoError
  /// once the retry budget is exhausted.
  void transfer_all(bool is_write, int fd, void* buffer, std::size_t bytes,
                    std::uint64_t offset);

  struct Location {
    int fd;
    std::uint64_t offset;
  };
  Location locate(std::uint32_t index) const;

  std::size_t count_;
  std::size_t bytes_per_vector_;
  FileBackendOptions options_;
  std::vector<int> fds_;
  std::vector<std::string> paths_;
  std::unique_ptr<FaultInjector> injector_;  ///< null: injection disabled
  std::atomic<std::uint64_t> modeled_ns_{0};
  std::atomic<std::uint64_t> io_ops_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> io_exhausted_{0};
};

/// A unique temporary file path under $TMPDIR (or /tmp) for vector files.
std::string temp_vector_file_path(const std::string& tag);

}  // namespace plfoc
