// Binary backing file(s) for ancestral probability vectors.
//
// Vectors are stored contiguously in one binary file (Sec. 3.2); splitting
// across several files is supported (the paper found "minimal" performance
// differences) by striping vectors round-robin. The logical block size equals
// one vector — far above the 512 B / 8 KiB hardware block granularity — so
// every transfer is one large contiguous pread/pwrite.
//
// With integrity on (the default) each stripe file carries a 4 KiB header
// and a per-block {checksum, generation} table ahead of the payload, so
// corruption that survives a successful read() — bit flips, torn writes,
// zeroed pages, stale-sector replays — is detected at swap-in instead of
// being folded into the likelihood. docs/file-formats.md specifies the
// layout; docs/robustness.md covers the corruption model and the stores'
// self-healing recovery path.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ooc/aio.hpp"
#include "ooc/faults.hpp"
#include "util/mutex.hpp"

namespace plfoc {

/// The splitmix64 finalizer — the repo-wide mixing permutation (util/rng.cpp
/// and ooc/faults.cpp use the same constants).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seeded 64-bit content checksum over an integrity block: one mix64 round
/// per 8-byte little-endian word, tail zero-padded and salted with the
/// length so blocks of different sizes never collide trivially. Seeding
/// makes checksums file-specific: a record replayed from another file (or
/// stripe) with a self-consistent checksum still fails verification.
inline std::uint64_t checksum64(std::uint64_t seed, const void* data,
                                std::size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h =
      seed ^ (0x9e3779b97f4a7c15ull + (static_cast<std::uint64_t>(bytes) << 1));
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = mix64(h ^ word);
  }
  if (i < bytes) {
    std::uint64_t word = 0;
    std::memcpy(&word, p + i, bytes - i);
    h = mix64(h ^ word ^ static_cast<std::uint64_t>(bytes));
  }
  return h;
}

/// Deterministic storage-device cost model. The paper's Fig. 5 machine had
/// 2 GB of RAM, so its vector file could never be page-cached and every
/// transfer paid real device latency; on a large-RAM host the OS page cache
/// absorbs the file and wall clock no longer reflects the disk-bound regime.
/// When enabled, every read/write additionally accrues
///   seek_latency_ns + bytes * 1e9 / bytes_per_second
/// of virtual device time, which benchmarks report alongside wall time.
/// Defaults model a ~2010 consumer HDD (the paper's era).
struct DeviceModel {
  std::uint64_t seek_latency_ns = 0;      ///< per-operation cost (0 = disabled)
  std::uint64_t bytes_per_second = 0;     ///< sequential bandwidth (0 = disabled)

  bool enabled() const { return seek_latency_ns != 0 || bytes_per_second != 0; }
  static DeviceModel hdd_2010() { return {8'000'000, 100'000'000}; }
  static DeviceModel ssd() { return {80'000, 500'000'000}; }
};

struct FileBackendOptions {
  std::string base_path;      ///< file path; file k gets suffix ".k" if num_files > 1
  unsigned num_files = 1;     ///< stripe count (paper: 1 by default)
  bool preallocate = true;    ///< ftruncate to full size up front (zero-filled)
  bool remove_on_close = true;  ///< unlink backing files in the destructor
  DeviceModel device;         ///< virtual device cost accounting (off by default)
  FaultConfig faults;         ///< seeded fault schedule (disabled by default)
  RetryPolicy retry;          ///< bounded retry + backoff for transient errors
  /// Per-block checksum + generation table (docs/file-formats.md). Required
  /// when the fault schedule has corruption rates; off = the legacy headerless
  /// raw layout (the bench baseline for measuring the integrity overhead).
  bool integrity = true;
  /// Integrity-block granularity in bytes; 0 = one block per vector (the
  /// stores' natural unit). PagedStore sets this to its page size so the
  /// byte-granular path verifies page runs. Must divide into the payload
  /// only logically — the final block of a file may be short.
  std::size_t integrity_block_bytes = 0;
  /// Async submission/completion backend for batched vector ops
  /// (docs/async-io.md). kSync keeps the historical sequential path; the
  /// stores only take their overlapped eviction/demand and batched-prefetch
  /// paths when this is an async engine.
  AioEngineKind io_engine = AioEngineKind::kSync;
  /// Queue depth for the async engines (worker count / ring size).
  unsigned io_depth = 8;
  /// Completion-delivery permutation seed (kDeterministic engine only).
  std::uint64_t io_permute_seed = kAioOrderIdentity;
  /// Also open O_DIRECT descriptors and route 512-aligned attempts through
  /// them, bypassing the page cache (best effort: falls back to the buffered
  /// fd when the open or the alignment fails).
  bool direct_io = false;
  /// Optional engine shared with other FileBackends (the service layer's
  /// worker Sessions all batch through one pool instead of spawning
  /// io_depth workers per store). Adopted only when this backend has no
  /// fault schedule and the handle's kind/depth match io_engine/io_depth;
  /// otherwise a private engine is built as before. The shared engine keeps
  /// its own (default) retry policy.
  std::shared_ptr<AioEngineHandle> shared_engine;
};

/// Outcome of a verified read.
enum class VerifyStatus : std::uint8_t {
  kOk,
  kChecksumMismatch,   ///< content does not match the recorded checksum
  kStaleGeneration,    ///< on-disk table lags the in-memory generation
};

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kOk;
  /// Failing integrity block (byte-granular path; equals the per-file block
  /// index for the vector path).
  std::uint64_t block = 0;
  std::uint64_t expected_generation = 0;  ///< what the backend last wrote
  std::uint64_t found_generation = 0;     ///< what the on-disk table says
  /// True when an injected corruption decision explains the damage.
  bool injected = false;
  bool ok() const { return status == VerifyStatus::kOk; }
  const char* status_name() const;
};

/// One damaged record found by an offline fsck scan.
struct FsckIssue {
  std::uint64_t block = 0;
  std::string what;
};

/// Result of FileBackend::fsck — an offline header + table + payload walk
/// over one stripe file (no engine, no store).
struct FsckReport {
  bool header_ok = false;
  std::string header_error;  ///< set when !header_ok
  std::uint64_t block_bytes = 0;
  std::uint64_t block_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checked = 0;            ///< written records verified
  std::uint64_t skipped_unwritten = 0;  ///< generation-0 records skipped
  std::vector<FsckIssue> issues;
  bool clean() const { return header_ok && issues.empty(); }
};

class FileBackend {
 public:
  /// Creates/opens the backing file(s) for `count` vectors of
  /// `bytes_per_vector` bytes each.
  FileBackend(std::size_t count, std::size_t bytes_per_vector,
              FileBackendOptions options);
  ~FileBackend();
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  std::size_t count() const { return count_; }
  std::size_t bytes_per_vector() const { return bytes_per_vector_; }
  std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(count_) * bytes_per_vector_;
  }

  /// Read/write one whole vector (one logical block).
  void read_vector(std::uint32_t index, void* dst);
  void write_vector(std::uint32_t index, const void* src);

  /// One whole-vector transfer in a batch submitted through the AioEngine.
  /// Outcome fields are filled by submit_vector_ops; `verify` requests the
  /// read_vector_verified semantics at completion (requires integrity).
  struct VectorOp {
    // -- request --
    bool is_write = false;
    std::uint32_t index = 0;
    void* buffer = nullptr;  ///< read target / write source, bytes_per_vector()
    bool verify = false;     ///< verified read (reads only)
    // -- outcome --
    /// 0 = transferred; else errno of the exhausted transfer (the caller
    /// converts to the same typed IoError the sequential path throws, using
    /// attempts/fail_offset/injected below).
    int error = 0;
    unsigned attempts = 0;
    std::uint64_t fail_offset = 0;
    bool injected = false;
    VerifyResult verify_result;  ///< verified reads only
    bool coalesced = false;  ///< rode a merged ranged op with neighbours
    bool ok() const { return error == 0; }
  };

  /// Submit a batch of whole-vector transfers through the configured
  /// AioEngine and block until all complete. Adjacent reads (same stripe
  /// file, contiguous file offsets AND contiguous buffers) coalesce into
  /// single ranged ops, charged as one device operation; adjacent *writes*
  /// (same file, contiguous offsets — sources need not be contiguous, a
  /// gather copy staples them) merge the same way unless a scheduled
  /// corruption must land on an individual op. All bookkeeping —
  /// counter folds, checksum-table writes, verification, corruption draws —
  /// happens in submission order at completion, so results are independent
  /// of the engine's delivery order. Per-op failures are *recorded*, never
  /// thrown; ops in one batch must not alias buffers or vector indices.
  void submit_vector_ops(VectorOp* ops, std::size_t count);

  /// True when the configured engine completes ops out of submission order
  /// (threads/uring/deterministic): the stores' overlap paths key off this.
  bool async_io() const { return options_.io_engine != AioEngineKind::kSync; }
  unsigned io_depth() const { return options_.io_depth < 1 ? 1 : options_.io_depth; }
  /// Resolved engine name ("sync", "threads", "uring", "deterministic") —
  /// reflects a uring→threads runtime fallback.
  const char* io_engine_name() const;

  /// Verified whole-vector read: reads the payload, applies any scheduled
  /// read-side corruption, then checks the content against the in-memory
  /// checksum/generation mirror. Never-written vectors (generation 0)
  /// verify trivially — preallocated zeros are the contract. Requires
  /// integrity; detection only — the *store* decides whether to recover or
  /// throw IntegrityError.
  VerifyResult read_vector_verified(std::uint32_t index, void* dst);

  /// Verified byte-granular read (num_files == 1): verifies every integrity
  /// block *fully covered* by [offset, offset+bytes) that has been written;
  /// partially-covered blocks are read but not checked (the paged store
  /// reads aligned page runs, so full coverage is the common case). Returns
  /// the first failing block.
  VerifyResult read_bytes_verified(std::uint64_t offset, void* dst,
                                   std::size_t bytes);

  /// Byte-granularity access into the single-file linear vector space
  /// (vector i occupies [i*w, (i+1)*w)). Used by the paged baseline.
  /// Requires num_files == 1.
  void read_bytes(std::uint64_t offset, void* dst, std::size_t bytes);
  void write_bytes(std::uint64_t offset, const void* src, std::size_t bytes);

  /// One clustered write: several file ranges (offsets into the linear
  /// space, data taken from `base + offset`) written as a *single* device
  /// operation for accounting purposes — models the OS coalescing dirty
  /// pages into one swap-out. Requires num_files == 1.
  struct IoRange {
    std::uint64_t offset;
    std::size_t bytes;
  };
  void write_ranges_clustered(const IoRange* ranges, std::size_t count,
                              const void* base);

  /// Ask the OS to drop its page cache for the backing files so subsequent
  /// reads hit the device (benchmark cold-cache mode). Best effort.
  void drop_page_cache();

  /// fsync all backing files.
  void sync();

  /// Accumulated virtual device time (0 if the DeviceModel is disabled).
  double modeled_device_seconds() const {
    return static_cast<double>(modeled_ns_.load()) * 1e-9;
  }
  /// Total read+write operations issued.
  std::uint64_t io_operations() const { return io_ops_.load(); }
  void reset_device_accounting() {
    modeled_ns_.store(0);
    io_ops_.store(0);
  }

  // Robustness counters (see ooc/faults.hpp and docs/robustness.md). The
  // stores fold these into their OocStats so per-job reports carry them.
  /// Faults injected by the configured schedule (0 when injection is off).
  std::uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  /// Syscall re-attempts: EINTR, resumed short transfers, transient errors.
  std::uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Logical transfers that exhausted the retry budget and threw IoError.
  std::uint64_t io_exhausted() const {
    return io_exhausted_.load(std::memory_order_relaxed);
  }
  /// Corruptions actually applied by the configured schedule (flip, torn,
  /// zero, stale) — every one of these is detectable by a verified read.
  std::uint64_t corruptions_injected() const {
    return corruptions_injected_.load(std::memory_order_relaxed);
  }
  /// Batches submitted through submit_vector_ops.
  std::uint64_t io_batches() const {
    return io_batches_.load(std::memory_order_relaxed);
  }
  /// Vector ops that rode a coalesced ranged op with their neighbours.
  std::uint64_t io_coalesced() const {
    return io_coalesced_.load(std::memory_order_relaxed);
  }
  /// The write-side subset of io_coalesced(): eviction write-backs that rode
  /// a merged ranged write.
  std::uint64_t io_write_coalesced() const {
    return io_write_coalesced_.load(std::memory_order_relaxed);
  }
  /// Zero the robustness counters (faults/retries/exhaustion/corruption).
  void reset_fault_counters() {
    faults_injected_.store(0, std::memory_order_relaxed);
    io_retries_.store(0, std::memory_order_relaxed);
    io_exhausted_.store(0, std::memory_order_relaxed);
    corruptions_injected_.store(0, std::memory_order_relaxed);
  }
  /// Zero the async-traffic counters (batches/coalesced). Separate from the
  /// robustness set so the stores' reset_stats() — which must zero *both* —
  /// states each intent explicitly.
  void reset_io_counters() {
    io_batches_.store(0, std::memory_order_relaxed);
    io_coalesced_.store(0, std::memory_order_relaxed);
    io_write_coalesced_.store(0, std::memory_order_relaxed);
  }
  /// Non-null when a fault schedule is configured.
  const FaultInjector* injector() const { return injector_.get(); }

  bool integrity() const { return options_.integrity; }
  std::size_t integrity_block_bytes() const { return block_bytes_; }

  /// Offline integrity scan of one stripe file: header validation, then a
  /// table + payload walk recomputing every written record's checksum with
  /// the seed stored in the header. Flags checksum mismatches, generation
  /// regressions (table generation 0 with a nonzero payload), and truncated
  /// payloads. Pure file-format knowledge — no store or engine involved.
  static FsckReport fsck(const std::string& path);

 private:
  void charge(std::size_t bytes);

  /// The one I/O loop every transfer goes through: loops over short
  /// transfers (resuming from the last completed byte) and EINTR
  /// unconditionally — POSIX permits both on a healthy device — and retries
  /// transient errors per RetryPolicy with exponential backoff. Consults the
  /// fault injector, when configured, before each syscall. Throws IoError
  /// once the retry budget is exhausted.
  void transfer_all(bool is_write, int fd, void* buffer, std::size_t bytes,
                    std::uint64_t offset);

  struct Location {
    int fd;
    std::uint64_t offset;  ///< payload-relative byte offset within the file
    unsigned file;
    std::uint64_t block;  ///< per-file integrity-block index
  };
  Location locate(std::uint32_t index) const;

  /// Per-stripe-file integrity state: the on-disk layout plus an in-memory
  /// mirror of the {checksum, generation} table. The mirror entries are
  /// relaxed atomics so the prefetch thread may verify concurrently with
  /// demand-path writes — a torn {checksum, generation} pair read there
  /// yields at worst a spurious mismatch, which prefetch treats as "drop the
  /// staged read" (the demand access re-verifies under the store lock).
  struct FileIntegrity {
    std::uint64_t payload_bytes = 0;
    std::uint64_t block_count = 0;
    std::uint64_t payload_offset = 0;
    std::uint64_t checksum_seed = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> checksum;
    std::unique_ptr<std::atomic<std::uint64_t>[]> generation;
    /// Attribution only: set when an injected torn/stale write damaged the
    /// block, cleared by the next clean full-block write.
    std::unique_ptr<std::atomic<std::uint8_t>[]> corrupt_mark;
  };

  /// Raw non-injected, non-counted I/O (EINTR/short-transfer safe) for
  /// header + table bootstrap and failure-path classification reads. Using
  /// the injector here would let a rate=1.0 schedule fail construction
  /// before any data op runs.
  void raw_io(bool is_write, int fd, void* buffer, std::size_t bytes,
              std::uint64_t offset);

  void init_integrity_file(unsigned file_index, std::uint64_t payload_bytes);
  /// Persist one table entry (fault-injectable like any data write) and the
  /// in-memory mirror.
  void store_table_entry(unsigned file_index, std::uint64_t block,
                         std::uint64_t checksum, std::uint64_t generation,
                         bool write_table);
  /// Re-checksum the blocks touched by a byte-granular write. `src` holds
  /// the *intended* content of [offset, offset+bytes) so a torn payload
  /// write stays detectable; partially-covered blocks are read back and
  /// overlaid with the intended span.
  void update_blocks_after_byte_write(std::uint64_t offset, const void* src,
                                      std::size_t bytes);
  /// Apply a read-side corruption decision to a buffer just read.
  bool apply_read_corruption(void* dst, std::size_t bytes);
  VerifyResult classify_mismatch(unsigned file_index, std::uint64_t block,
                                 bool injected_now);

  /// O_DIRECT sibling fd of stripe `file_index`, or -1 (direct_io off, or
  /// the open failed — tmpfs, for one, refuses O_DIRECT).
  int direct_fd(unsigned file_index) const {
    return direct_fds_.empty() ? -1 : direct_fds_[file_index];
  }

  std::size_t count_;
  std::size_t bytes_per_vector_;
  FileBackendOptions options_;
  std::size_t block_bytes_ = 0;  ///< integrity-block granularity (resolved)
  std::vector<int> fds_;
  std::vector<int> direct_fds_;  ///< empty when direct_io is off
  std::vector<std::string> paths_;
  std::vector<FileIntegrity> integrity_;  ///< empty when integrity is off
  std::unique_ptr<FaultInjector> injector_;  ///< null: injection disabled
  std::atomic<std::uint64_t> modeled_ns_{0};
  std::atomic<std::uint64_t> io_ops_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> io_exhausted_{0};
  std::atomic<std::uint64_t> corruptions_injected_{0};
  std::atomic<std::uint64_t> io_batches_{0};
  std::atomic<std::uint64_t> io_coalesced_{0};
  std::atomic<std::uint64_t> io_write_coalesced_{0};
  /// Serialises whole batches on the engine: AioEngine's contract is one
  /// submitting/waiting thread at a time, and the prefetch worker's batches
  /// run concurrently with the engine thread's overlapped swaps. Interleaved
  /// batches would cross-deliver completions (tokens are batch-relative).
  /// Ops *within* a batch still overlap — that is where the parallelism is.
  mutable Mutex engine_mutex_;
  /// Built from io_engine/io_depth/io_permute_seed; declared after the
  /// injector it borrows, destroyed before it. Null when shared_engine_ was
  /// adopted instead.
  std::unique_ptr<AioEngine> engine_ PLFOC_GUARDED_BY(engine_mutex_);
  /// The adopted shared engine (see FileBackendOptions::shared_engine), or
  /// null. Batches lock the handle's own mutex, which serialises whole
  /// batches across *all* backends on the handle.
  std::shared_ptr<AioEngineHandle> shared_engine_;

 public:
  /// True when this backend batches through a shared engine handle.
  bool shared_engine_active() const { return shared_engine_ != nullptr; }
};

/// A unique temporary file path under $TMPDIR (or /tmp) for vector files.
std::string temp_vector_file_path(const std::string& tag);

}  // namespace plfoc
