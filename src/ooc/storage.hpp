// The ancestral-vector storage interface — the seam the whole design hangs on.
//
// The paper's claim (Sec. 3.3): out-of-core execution can be "entirely
// encapsulated by a function call that returns the address of an ancestral
// probability vector" (RAxML's getxvector(i)). Here that function is
// `AncestralStore::acquire(index, mode)`:
//
//  * it returns a RAII `VectorLease` whose data() is the vector's current RAM
//    address;
//  * while a lease is live its vector is *pinned* — it cannot be chosen as a
//    replacement victim. The likelihood engine holds at most three leases at
//    a time (target + two children), which is exactly the paper's m >= 3
//    constraint;
//  * `mode` tells the store whether this access will fully overwrite the
//    vector (AccessMode::kWrite) — the hook for read skipping (Sec. 3.4) —
//    or read its existing contents (AccessMode::kRead).
//
// Backends: InRamStore (the "standard" RAxML layout, everything resident),
// OutOfCoreStore (the paper's slot manager), PagedStore (the OS-paging
// baseline of Fig. 5, simulated deterministically at 4 KiB page granularity).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "ooc/stats.hpp"
#include "util/cancel.hpp"
#include "util/checks.hpp"

namespace plfoc {

enum class AccessMode {
  kRead,   ///< existing contents will be read
  kWrite,  ///< contents will be fully overwritten before any read
};

class AncestralStore;

/// Move-only RAII pin on one ancestral vector. data() stays valid (and the
/// vector stays in RAM) until the lease is destroyed or release()d.
class VectorLease {
 public:
  VectorLease() = default;
  VectorLease(AncestralStore* store, std::uint32_t index, double* data)
      : store_(store), index_(index), data_(data) {}
  ~VectorLease() { release(); }

  VectorLease(const VectorLease&) = delete;
  VectorLease& operator=(const VectorLease&) = delete;
  VectorLease(VectorLease&& other) noexcept { *this = std::move(other); }
  VectorLease& operator=(VectorLease&& other) noexcept {
    if (this != &other) {
      release();
      store_ = std::exchange(other.store_, nullptr);
      index_ = other.index_;
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }

  double* data() const {
    PLFOC_DCHECK(data_ != nullptr);
    return data_;
  }
  std::uint32_t index() const { return index_; }
  explicit operator bool() const { return data_ != nullptr; }

  void release();

 private:
  AncestralStore* store_ = nullptr;
  std::uint32_t index_ = 0;
  double* data_ = nullptr;
};

/// Abstract store of `count` ancestral probability vectors of `width` doubles.
class AncestralStore {
 public:
  AncestralStore(std::size_t count, std::size_t width)
      : count_(count), width_(width) {}
  virtual ~AncestralStore() = default;
  AncestralStore(const AncestralStore&) = delete;
  AncestralStore& operator=(const AncestralStore&) = delete;

  std::size_t count() const { return count_; }
  /// Doubles per vector (the paper's slot width w is width() * 8 bytes).
  std::size_t width() const { return width_; }

  /// Pin vector `index` into RAM and return a lease on it. The paper's
  /// getxvector(): transparently swaps the vector in if it is on disk.
  /// The cancellation check fires *before* do_acquire touches any slot
  /// state, so an unwinding CancelledError leaves the store exactly as it
  /// was — no half-installed vector, nothing pinned, audit-clean.
  VectorLease acquire(std::uint32_t index, AccessMode mode) {
    cancel_.check();
    double* data = do_acquire(index, mode);
    return VectorLease(this, index, data);
  }

  /// Attach a cancellation token (util/cancel.hpp). Checked at every
  /// acquire(); file-backed stores additionally consult it between AIO
  /// prefetch batches. Set while the store is quiescent (no concurrent
  /// acquires or prefetch workers).
  void set_cancel_token(CancelToken token) { cancel_ = std::move(token); }

  /// Write any RAM-only state back to stable storage (no-op for RAM stores).
  virtual void flush() {}

  const OocStats& stats() const { return stats_; }
  /// Zero the counters. Virtual so file-backed stores can also reset their
  /// backend's robustness counters (and the auditor's monotonicity baseline).
  virtual void reset_stats() { stats_ = OocStats{}; }

  /// Copy of the counters that is safe to take while a Prefetcher worker is
  /// still attached; plain stats() is only safe once the store is quiescent.
  virtual OocStats stats_snapshot() const { return stats_; }

  /// Human-readable backend name for reports ("in-ram", "out-of-core", ...).
  virtual const char* backend_name() const = 0;

  /// Self-healing seam: recompute vector `index` into `dst` (width() doubles)
  /// from first principles — ancestral vectors are pure functions of the
  /// tree, model, and tip data, so a corrupt on-disk record is a recomputable
  /// cache entry. Returns the number of vectors recomputed (>= 1 — recovery
  /// may recurse into unmaterialized children), or 0 when recomputation is
  /// impossible. Registered by the Session, which owns the likelihood engine
  /// that knows the Felsenstein recurrence; file-backed stores call it on a
  /// checksum mismatch before giving up with IntegrityError. The hook may
  /// re-enter acquire()/release() on *other* vectors.
  using RecoveryHook = std::function<std::uint64_t(std::uint32_t, double*)>;
  void set_recovery_hook(RecoveryHook hook) {
    recovery_hook_ = std::move(hook);
  }

 protected:
  friend class VectorLease;
  virtual double* do_acquire(std::uint32_t index, AccessMode mode) = 0;
  virtual void do_release(std::uint32_t index) = 0;

  std::size_t count_;
  std::size_t width_;
  OocStats stats_;
  RecoveryHook recovery_hook_;  ///< empty: recovery impossible, throw typed
  CancelToken cancel_;          ///< null by default: checks are free
};

inline void VectorLease::release() {
  if (store_ != nullptr) {
    store_->do_release(index_);
    store_ = nullptr;
    data_ = nullptr;
  }
}

}  // namespace plfoc
