// Storage-fault vocabulary: deterministic fault injection and bounded retry.
//
// The out-of-core layer funnels every ancestral-vector access through disk
// I/O (the paper's getxvector(), Sec. 3), so one transient EIO or short read
// in the backing file would otherwise abort a whole evaluation. This header
// defines the robustness seam shared by the FileBackend I/O core, the
// Session/CLI configuration surface, and the differential fuzzer:
//
//  * FaultConfig / FaultInjector — a seeded, *replayable* fault schedule.
//    Decision k of a schedule depends only on (seed, nonce, k), so a failing
//    fuzzer case is reproduced exactly by re-running with the same spec
//    string. Injectable faults: short reads/writes, EINTR, transient EIO /
//    ENOSPC, and latency spikes. Parsed from "seed=N,rate=P,..." — the CLI's
//    --inject-faults and the jobfile's faults= key.
//  * RetryPolicy — bounded retries with exponential backoff. Partial
//    transfers always resume from the last completed byte; EINTR always
//    retries (POSIX), without consuming retry budget.
//  * IoError — the typed error thrown once the budget is exhausted. The
//    service layer catches it to fail a single job with a per-job fault
//    report instead of taking down the worker thread.
//  * Corruption modes + IntegrityError — faults that *survive* a successful
//    read(): single-bit flips, torn writes, zeroed pages, stale-generation
//    replays. FileBackend detects them via per-vector checksums; the store
//    first tries to self-heal by recomputing the vector (ancestral vectors
//    are pure functions of tree + model + tips, so every on-disk record is a
//    recomputable cache entry) and throws IntegrityError only when recovery
//    is impossible.
//
// docs/robustness.md describes the fault model and how to reproduce a
// failure from a fuzzer seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/checks.hpp"

namespace plfoc {

enum class FaultKind : std::uint8_t {
  kNone,
  kShortTransfer,  ///< syscall transfers only part of the requested span
  kEintr,          ///< syscall fails with EINTR (no transfer happened)
  kEio,            ///< transient EIO (no transfer happened)
  kEnospc,         ///< transient ENOSPC on writes (EIO on reads)
  kLatency,        ///< the op succeeds but stalls for latency_ns first
};

const char* fault_kind_name(FaultKind kind);

/// Bitmask selecting which fault kinds a schedule may inject.
enum FaultKindMask : unsigned {
  kFaultShort = 1u << 0,
  kFaultEintr = 1u << 1,
  kFaultEio = 1u << 2,
  kFaultEnospc = 1u << 3,
  kFaultLatency = 1u << 4,
  kFaultAllErrors = kFaultShort | kFaultEintr | kFaultEio | kFaultEnospc,
};

/// A seeded, deterministic fault schedule. Decision k depends only on
/// (seed, nonce, k): replaying the same op sequence replays the same faults.
struct FaultConfig {
  std::uint64_t seed = 1;
  /// Per-syscall probability of injecting a fault from `kinds`.
  double rate = 0.0;
  /// Cap on injected data-path faults per *logical* transfer. Together with
  /// a retry budget >= burst this guarantees every transfer eventually
  /// completes, which is what lets a faulty run stay bit-identical to a
  /// fault-free one. Exhaustion tests raise it above the retry budget.
  unsigned burst = 2;
  /// Which kinds the schedule draws from (latency is additionally gated by
  /// latency_ns > 0).
  unsigned kinds = kFaultAllErrors;
  /// Duration of an injected latency spike; 0 disables latency injection.
  std::uint64_t latency_ns = 0;
  /// Re-admission salt: the service bumps this when it re-runs a failed job
  /// so the second attempt sees a fresh schedule, the way a real transient
  /// fault would not repeat. Mixed into the effective seed.
  std::uint64_t nonce = 0;

  /// Corruption rates — faults a successful read() cannot see. Each is a
  /// per-operation probability, drawn on a stream independent of the
  /// syscall-fault stream above. Read-side: flip (one bit of the delivered
  /// payload), zero (an aligned page-sized span zeroed). Write-side: torn
  /// (only a prefix of the payload reaches the file while the checksum table
  /// records the full write), stale (the payload write is dropped entirely —
  /// a stale-generation replay on the next read).
  double flip_rate = 0.0;
  double torn_rate = 0.0;
  double zero_rate = 0.0;
  double stale_rate = 0.0;

  bool corruption_enabled() const {
    return flip_rate > 0.0 || torn_rate > 0.0 || zero_rate > 0.0 ||
           stale_rate > 0.0;
  }
  bool enabled() const { return rate > 0.0 || corruption_enabled(); }

  /// The one authoritative description of the spec grammar, shared by the
  /// --inject-faults CLI help, the jobfile faults= key, and parse errors.
  static const char* grammar();

  /// Parse a spec per grammar(). An empty spec returns a disabled config.
  /// Throws plfoc::Error on unknown keys or malformed values.
  static FaultConfig parse(const std::string& spec);
  /// Round-trip back to the spec string (for reports and reproduction).
  std::string spec() const;
};

/// Bounded-retry policy for the FileBackend I/O core. max_retries == 0
/// disables retrying: the first transient failure throws IoError. EINTR and
/// short-transfer resumption are *not* governed by this policy — POSIX
/// permits both on a healthy device, so the I/O loops always handle them.
struct RetryPolicy {
  unsigned max_retries = 4;  ///< consecutive failed attempts before giving up
  std::uint64_t backoff_initial_us = 50;  ///< first retry delay (0: no sleep)
  double backoff_multiplier = 4.0;
  std::uint64_t backoff_max_us = 5000;
};

/// Typed error for an I/O transfer that exhausted its retry budget. The
/// batch service catches this to fail one job with a fault report instead of
/// killing the worker.
class IoError : public Error {
 public:
  IoError(const std::string& op, int errno_value, std::uint64_t offset,
          unsigned attempts, bool injected);

  const std::string& op() const { return op_; }
  int errno_value() const { return errno_value_; }
  std::uint64_t offset() const { return offset_; }
  unsigned attempts() const { return attempts_; }
  /// True when the final failure was injected by a FaultInjector (vs. a real
  /// device error) — surfaces in reports so reproductions are unambiguous.
  bool injected() const { return injected_; }

 private:
  std::string op_;
  int errno_value_;
  std::uint64_t offset_;
  unsigned attempts_;
  bool injected_;
};

/// Typed error for corruption that could not be healed: a checksum or
/// generation mismatch on a vector whose recomputation is impossible (no
/// recovery hook, children unmaterialized during a read-skip window, or no
/// free slot to stage a child in). Sibling of IoError so the service can
/// fail one job at the same boundary without killing the worker.
class IntegrityError : public Error {
 public:
  IntegrityError(const std::string& op, std::uint64_t index,
                 std::uint64_t expected_generation,
                 std::uint64_t found_generation, bool injected,
                 const std::string& detail);

  const std::string& op() const { return op_; }
  /// Vector index for the stores' vector-granular paths; integrity-block
  /// index for PagedStore's byte-granular path.
  std::uint64_t index() const { return index_; }
  std::uint64_t expected_generation() const { return expected_generation_; }
  std::uint64_t found_generation() const { return found_generation_; }
  /// True when a FaultInjector corruption decision explains the damage (vs.
  /// real media corruption) — surfaces in reports for reproduction.
  bool injected() const { return injected_; }

 private:
  std::string op_;
  std::uint64_t index_;
  std::uint64_t expected_generation_;
  std::uint64_t found_generation_;
  bool injected_;
};

/// One fault decision for one syscall attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// kShortTransfer: fraction in [0, 1) of the remaining span to transfer
  /// (clamped to at least one byte by the I/O loop).
  double fraction = 0.0;
};

enum class CorruptionKind : std::uint8_t {
  kNone,
  kFlip,   ///< read-side: flip one bit of the delivered payload
  kZero,   ///< read-side: zero an aligned span (a "zeroed page")
  kTorn,   ///< write-side: only a prefix of the payload reaches the file
  kStale,  ///< write-side: the payload write is silently dropped
};

const char* corruption_kind_name(CorruptionKind kind);

/// One corruption decision for one logical vector/block transfer. `a` and
/// `b` are uniform draws in [0, 1) the backend maps onto positions (which
/// bit to flip, where a torn write stops, which page to zero).
struct CorruptionDecision {
  CorruptionKind kind = CorruptionKind::kNone;
  double a = 0.0;
  double b = 0.0;
};

/// Deterministic decision stream. Thread-safe: decisions are numbered by an
/// atomic counter, so a run with a prefetch thread still draws each decision
/// exactly once (the interleaving, not the stream, is what varies).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// Decision for the next syscall attempt. `is_write` selects the errno
  /// vocabulary; `faults_so_far` is the number of data-path faults already
  /// injected into the current logical transfer (enforces `burst`).
  FaultDecision next(bool is_write, unsigned faults_so_far);

  /// Corruption decision for the next logical vector/block transfer. Drawn
  /// from a separately-salted stream on its own counter, so arming
  /// corruption does not perturb the syscall-fault schedule (and vice
  /// versa). Read-side transfers draw from {flip, zero}, write-side from
  /// {torn, stale}; the per-kind rates are cumulative thresholds on one
  /// uniform draw.
  CorruptionDecision next_corruption(bool is_write);

  /// Total decisions drawn (faulting or not) — the schedule position.
  std::uint64_t decisions() const {
    return op_.load(std::memory_order_relaxed);
  }
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::uint64_t base_;  ///< splitmix64(seed ^ nonce) — the stream key
  std::atomic<std::uint64_t> op_{0};
  std::atomic<std::uint64_t> corruption_op_{0};
};

}  // namespace plfoc
