// Deterministic OS-paging baseline (the "standard implementation" of Fig. 5).
//
// The paper compares its out-of-core layer against unmodified RAxML whose
// ancestral vectors overflow RAM and are demand-paged to swap by the OS. We
// reproduce that mechanism deterministically: the vectors' full linear
// address space is backed by the same kind of binary file, and a page cache
// of `budget_bytes` with 4 KiB pages and LRU replacement mediates every
// vector access. This models exactly what generic paging does differently
// from the application-specific layer:
//
//  * granularity is a hardware page, not a whole vector, so one vector access
//    costs ~w/4096 page faults once the working set exceeds the budget;
//  * there is no read skipping — the OS cannot know a page is about to be
//    fully overwritten, so every fault reads the page from the device;
//  * there is no pinning or topology knowledge, only recency.
//
// Pages of currently leased vectors are held resident for the lease's
// lifetime (equivalent to the OS keeping the active working set mapped; this
// is *generous* to the baseline). Faults perform real file I/O, so both
// counted statistics and wall-clock comparisons are meaningful.
#pragma once

#include <vector>

#include "ooc/file_backend.hpp"
#include "ooc/storage.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct PagedStoreOptions {
  std::uint64_t budget_bytes = 0;   ///< page-cache size ("physical RAM")
  std::size_t page_bytes = 4096;    ///< hardware page size
  /// Swap readahead: pages brought in per fault I/O (Linux page-cluster=3
  /// corresponds to 8 pages). 1 disables clustering.
  unsigned read_cluster_pages = 8;
  /// Swap-out coalescing: dirty pages written per eviction I/O.
  unsigned write_cluster_pages = 8;
  FileBackendOptions file;          ///< backing file (single file required)
};

class PagedStore final : public AncestralStore {
 public:
  PagedStore(std::size_t count, std::size_t width, PagedStoreOptions options);

  const char* backend_name() const override { return "paged"; }

  /// Snapshot-consistent fault count (misses are mutated under mutex_, so a
  /// concurrent reader must take the same lock — not a bare stats_ read).
  std::uint64_t page_faults() const;
  std::size_t num_page_frames() const { return frames_; }

  /// Backing-file accounting (I/O op counts, modeled device time).
  const FileBackend& file() const { return file_; }
  FileBackend& file() { return file_; }

  /// Counters plus the backing file's robustness counters (faults_injected /
  /// io_retries / io_exhausted), which live in backend atomics.
  OocStats stats_snapshot() const override;
  /// Also clears the backing file's robustness counters.
  void reset_stats() override;

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

  struct PageMeta {
    bool resident = false;
    bool dirty = false;
    /// Page has been swapped out at least once. First-ever faults are
    /// zero-fill-on-demand (anonymous memory), not device reads.
    bool swapped_out = false;
    std::uint32_t pins = 0;
    // Intrusive LRU list links (page numbers), valid while resident+unpinned.
    std::uint64_t prev = kNoPage;
    std::uint64_t next = kNoPage;
  };

  std::uint64_t first_page(std::uint32_t index) const {
    return static_cast<std::uint64_t>(index) * width_ * sizeof(double) /
           options_.page_bytes;
  }
  std::uint64_t last_page(std::uint32_t index) const {
    return (static_cast<std::uint64_t>(index + 1) * width_ * sizeof(double) -
            1) /
           options_.page_bytes;
  }

  void lru_push_front(std::uint64_t page) PLFOC_REQUIRES(mutex_);
  void lru_remove(std::uint64_t page) PLFOC_REQUIRES(mutex_);
  /// Bring `page` (plus readahead) into the cache; one clustered device read.
  void fault_cluster(std::uint64_t page) PLFOC_REQUIRES(mutex_);
  /// Free at least `needed` frames, coalescing dirty write-back.
  void make_room(std::size_t needed) PLFOC_REQUIRES(mutex_);

  /// The base-class counters, re-exported under their capability: every
  /// counter mutation in this store goes through here so the analysis can
  /// prove it happens with the page-table lock held.
  OocStats& stats_locked() PLFOC_REQUIRES(mutex_) { return stats_; }
  const OocStats& stats_locked() const PLFOC_REQUIRES(mutex_) {
    return stats_;
  }

  PagedStoreOptions options_;
  AlignedBuffer arena_;  ///< the full vector address space
  FileBackend file_;     ///< internally synchronised (backend atomics)
  std::vector<PageMeta> pages_ PLFOC_GUARDED_BY(mutex_);
  std::size_t frames_ = 0;  ///< page-cache capacity in pages; ctor-immutable
  /// Pages currently "in RAM".
  std::size_t resident_count_ PLFOC_GUARDED_BY(mutex_) = 0;
  /// Most recently used.
  std::uint64_t lru_head_ PLFOC_GUARDED_BY(mutex_) = kNoPage;
  /// Least recently used.
  std::uint64_t lru_tail_ PLFOC_GUARDED_BY(mutex_) = kNoPage;
  /// Active lease mode per vector.
  std::vector<AccessMode> lease_mode_ PLFOC_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> lease_count_ PLFOC_GUARDED_BY(mutex_);
  mutable Mutex mutex_;
};

}  // namespace plfoc
