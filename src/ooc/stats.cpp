#include "ooc/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace plfoc {

OocStats& OocStats::operator+=(const OocStats& other) {
  accesses += other.accesses;
  hits += other.hits;
  misses += other.misses;
  cold_misses += other.cold_misses;
  // Either operand may come from a store whose counters were reset after the
  // cold population (cold_misses kept, misses cleared); without the clamp the
  // merged object would report capacity misses computed from a wrapped
  // unsigned difference.
  cold_misses = std::min(cold_misses, misses);
  evictions += other.evictions;
  file_reads += other.file_reads;
  file_writes += other.file_writes;
  skipped_reads += other.skipped_reads;
  prefetch_reads += other.prefetch_reads;
  prefetch_stale += other.prefetch_stale;
  prefetch_wasted += other.prefetch_wasted;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  faults_injected += other.faults_injected;
  io_retries += other.io_retries;
  io_exhausted += other.io_exhausted;
  integrity_failures += other.integrity_failures;
  integrity_recoveries += other.integrity_recoveries;
  integrity_unrecovered += other.integrity_unrecovered;
  recovery_recomputes += other.recovery_recomputes;
  corruptions_injected += other.corruptions_injected;
  io_batches += other.io_batches;
  io_coalesced += other.io_coalesced;
  io_write_coalesced += other.io_write_coalesced;
  return *this;
}

std::string OocStats::summary() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "accesses=%llu miss_rate=%.4f read_rate=%.4f reads=%llu "
                "writes=%llu skipped=%llu MB_read=%.1f MB_written=%.1f",
                static_cast<unsigned long long>(accesses), miss_rate(),
                read_rate(), static_cast<unsigned long long>(file_reads),
                static_cast<unsigned long long>(file_writes),
                static_cast<unsigned long long>(skipped_reads),
                static_cast<double>(bytes_read) / 1048576.0,
                static_cast<double>(bytes_written) / 1048576.0);
  std::string out = buffer;
  // The robustness counters only appear when something actually happened, so
  // fault-free reports read exactly as before.
  if (faults_injected != 0 || io_retries != 0 || io_exhausted != 0) {
    std::snprintf(buffer, sizeof(buffer),
                  " faults=%llu retried=%llu exhausted=%llu",
                  static_cast<unsigned long long>(faults_injected),
                  static_cast<unsigned long long>(io_retries),
                  static_cast<unsigned long long>(io_exhausted));
    out += buffer;
  }
  // Likewise for the integrity counters: silent when nothing was detected.
  if (integrity_failures != 0 || integrity_recoveries != 0 ||
      integrity_unrecovered != 0 || recovery_recomputes != 0 ||
      corruptions_injected != 0) {
    std::snprintf(buffer, sizeof(buffer),
                  " corrupt=%llu detected=%llu recovered=%llu "
                  "unrecovered=%llu recomputed=%llu",
                  static_cast<unsigned long long>(corruptions_injected),
                  static_cast<unsigned long long>(integrity_failures),
                  static_cast<unsigned long long>(integrity_recoveries),
                  static_cast<unsigned long long>(integrity_unrecovered),
                  static_cast<unsigned long long>(recovery_recomputes));
    out += buffer;
  }
  // Async-engine traffic: silent under the sync engine (all stay zero).
  if (io_batches != 0 || io_coalesced != 0 || io_write_coalesced != 0) {
    std::snprintf(buffer, sizeof(buffer),
                  " batches=%llu coalesced=%llu write_coalesced=%llu",
                  static_cast<unsigned long long>(io_batches),
                  static_cast<unsigned long long>(io_coalesced),
                  static_cast<unsigned long long>(io_write_coalesced));
    out += buffer;
  }
  // Prefetch waste: silent unless lookahead actually churned slots.
  if (prefetch_wasted != 0) {
    std::snprintf(buffer, sizeof(buffer), " prefetch_wasted=%llu",
                  static_cast<unsigned long long>(prefetch_wasted));
    out += buffer;
  }
  return out;
}

}  // namespace plfoc
