// I/O and cache statistics for ancestral-vector stores.
//
// These counters are the paper's measurements: miss rate (Figs. 2, 4) is
// misses/accesses, read rate (Fig. 3) is file_reads/accesses — with read
// skipping off the two are identical (Sec. 4.1).
#pragma once

#include <cstdint>
#include <string>

namespace plfoc {

struct OocStats {
  std::uint64_t accesses = 0;     ///< vector acquires (hits + misses)
  std::uint64_t hits = 0;         ///< vector already in RAM
  std::uint64_t misses = 0;       ///< vector had to be brought into RAM
  std::uint64_t cold_misses = 0;  ///< first-ever access to a vector
  std::uint64_t evictions = 0;    ///< vectors displaced from RAM
  std::uint64_t file_reads = 0;   ///< read operations actually issued
  std::uint64_t file_writes = 0;  ///< write operations actually issued
  std::uint64_t skipped_reads = 0;  ///< reads omitted by read skipping
  std::uint64_t prefetch_reads = 0;  ///< reads issued by the prefetch thread
  /// Prefetch reads staged outside the slot-table lock and then dropped at
  /// install time because a demand load or write-back raced them (the
  /// advisory prefetch lost; correctness is unaffected).
  std::uint64_t prefetch_stale = 0;
  /// Prefetch installs evicted again before the kernel ever acquired them:
  /// the read was paid for and the slot churned for nothing. A high value
  /// relative to prefetch_reads is the signature of the LRU lookahead
  /// collapse (lookahead deeper than the unpinned slot budget, or a
  /// replacement strategy that does not age prefetched vectors in).
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  // Robustness counters, mirrored from the FileBackend I/O core (see
  // ooc/faults.hpp): lifetime totals of the store's backing file.
  std::uint64_t faults_injected = 0;  ///< faults fired by the fault schedule
  std::uint64_t io_retries = 0;       ///< syscall re-attempts / resumptions
  std::uint64_t io_exhausted = 0;     ///< transfers that gave up (IoError)
  // Integrity counters (docs/robustness.md, "corruption and self-healing").
  // Invariant, enforced by StoreAuditor::check_stats:
  //   integrity_recoveries + integrity_unrecovered == integrity_failures.
  /// Verified reads whose checksum/generation did not match.
  std::uint64_t integrity_failures = 0;
  /// Failures healed by recomputing the vector from its children.
  std::uint64_t integrity_recoveries = 0;
  /// Failures that could not be healed (the access threw IntegrityError).
  std::uint64_t integrity_unrecovered = 0;
  /// Vectors recomputed while healing (>= integrity_recoveries: recovery
  /// recurses into children that are themselves unmaterialized).
  std::uint64_t recovery_recomputes = 0;
  /// Corruptions applied by the injection schedule (flip/torn/zero/stale).
  std::uint64_t corruptions_injected = 0;
  // Async I/O counters (docs/async-io.md), mirrored from the FileBackend:
  /// Engine submission batches issued through submit_vector_ops.
  std::uint64_t io_batches = 0;
  /// Vector transfers absorbed into a neighbouring ranged read or write
  /// (each saved a syscall/SQE: ops_submitted = ops_requested - io_coalesced).
  std::uint64_t io_coalesced = 0;
  /// The write-side subset of io_coalesced: eviction write-backs absorbed
  /// into a neighbouring ranged write. io_write_coalesced / file_writes is
  /// the write-coalescing ratio bench/aio reports.
  std::uint64_t io_write_coalesced = 0;

  /// Fraction of vector requests not served from RAM (Figs. 2, 4).
  /// 0.0 when no accesses were recorded (zero-denominator guard).
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  /// Fraction of vector requests that triggered an actual disk read (Fig. 3).
  /// 0.0 when no accesses were recorded (zero-denominator guard).
  double read_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(file_reads) / static_cast<double>(accesses);
  }
  /// Fraction of misses whose swap-in read was elided by read skipping
  /// (Sec. 3.4). 0.0 when no misses were recorded (zero-denominator guard).
  double read_skip_rate() const {
    return misses == 0 ? 0.0
                       : static_cast<double>(skipped_reads) /
                             static_cast<double>(misses);
  }
  /// Misses excluding compulsory (first-touch) ones. A stats object built
  /// from partially reset counters (reset_stats() between the cold
  /// population and the measurement) can carry cold_misses > misses; clamp
  /// instead of letting the unsigned subtraction wrap.
  std::uint64_t capacity_misses() const {
    return misses >= cold_misses ? misses - cold_misses : 0;
  }
  /// Miss rate with compulsory (first-touch) misses excluded.
  double capacity_miss_rate() const {
    if (accesses == 0) return 0.0;
    return static_cast<double>(capacity_misses()) /
           static_cast<double>(accesses);
  }

  /// Counter-wise merge. Restores the misses >= cold_misses invariant after
  /// the addition so downstream accessors never see a half-reset skew; the
  /// accessors above still clamp defensively for hand-assembled objects.
  /// Not atomic: callers merging from several threads (the service layer's
  /// per-job aggregation) must serialise, e.g. under the results mutex.
  OocStats& operator+=(const OocStats& other);

  /// One-line human-readable summary.
  std::string summary() const;
};

}  // namespace plfoc
