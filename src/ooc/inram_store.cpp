#include "ooc/inram_store.hpp"

namespace plfoc {

InRamStore::InRamStore(std::size_t count, std::size_t width)
    : AncestralStore(count, width), arena_(count * width) {}

double* InRamStore::do_acquire(std::uint32_t index, AccessMode /*mode*/) {
  PLFOC_CHECK(index < count_);
  ++stats_.accesses;
  ++stats_.hits;
  return arena_.data() + static_cast<std::size_t>(index) * width_;
}

void InRamStore::do_release(std::uint32_t /*index*/) {}

}  // namespace plfoc
