#include "ooc/paged_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace plfoc {

namespace {

// Integrity blocks match the paging granularity: each page checksums
// independently, so a clustered fault verifies exactly the span it reads.
PagedStoreOptions with_page_integrity_blocks(PagedStoreOptions options) {
  options.file.integrity_block_bytes = options.page_bytes;
  return options;
}

}  // namespace

PagedStore::PagedStore(std::size_t count, std::size_t width,
                       PagedStoreOptions options)
    : AncestralStore(count, width),
      options_(with_page_integrity_blocks(std::move(options))),
      arena_(count * width),
      file_(count, width * sizeof(double), options_.file),
      lease_mode_(count, AccessMode::kRead),
      lease_count_(count, 0) {
  PLFOC_REQUIRE(options_.page_bytes >= 512 &&
                    (options_.page_bytes & (options_.page_bytes - 1)) == 0,
                "page size must be a power of two >= 512");
  const std::uint64_t total = file_.total_bytes();
  const std::uint64_t num_pages =
      (total + options_.page_bytes - 1) / options_.page_bytes;
  pages_.resize(num_pages);
  frames_ = static_cast<std::size_t>(options_.budget_bytes / options_.page_bytes);
  // The cache must hold the pages of three vectors (the engine's working set)
  // plus slack, or acquire would deadlock on pinned pages.
  const std::uint64_t pages_per_vector =
      (width * sizeof(double) + options_.page_bytes - 1) / options_.page_bytes +
      1;
  PLFOC_REQUIRE(frames_ >= 3 * pages_per_vector + 2,
                "paged store budget too small for the 3-vector working set");
  PLFOC_LOG(kInfo) << "paged store: " << num_pages << " pages of "
                   << options_.page_bytes << " B, " << frames_ << " frames ("
                   << (options_.budget_bytes >> 20) << " MiB budget)";
}

void PagedStore::lru_push_front(std::uint64_t page) {
  PageMeta& meta = pages_[page];
  meta.prev = kNoPage;
  meta.next = lru_head_;
  if (lru_head_ != kNoPage) pages_[lru_head_].prev = page;
  lru_head_ = page;
  if (lru_tail_ == kNoPage) lru_tail_ = page;
}

void PagedStore::lru_remove(std::uint64_t page) {
  PageMeta& meta = pages_[page];
  if (meta.prev != kNoPage)
    pages_[meta.prev].next = meta.next;
  else if (lru_head_ == page)
    lru_head_ = meta.next;
  if (meta.next != kNoPage)
    pages_[meta.next].prev = meta.prev;
  else if (lru_tail_ == page)
    lru_tail_ = meta.prev;
  meta.prev = kNoPage;
  meta.next = kNoPage;
}

void PagedStore::make_room(std::size_t needed) {
  // Evict least-recently-used unpinned pages until `needed` frames are free.
  // Dirty pages are written back — the OS cannot drop modified pages — and
  // consecutive dirty evictions coalesce into one clustered swap-out
  // operation (swap slots are allocated sequentially, so the device sees one
  // large write rather than one seek per page).
  std::vector<FileBackend::IoRange> batch;
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    file_.write_ranges_clustered(batch.data(), batch.size(), arena_.data());
    ++stats_locked().file_writes;
    for (const FileBackend::IoRange& range : batch)
      stats_locked().bytes_written += range.bytes;
    batch.clear();
  };
  if (resident_count_ + needed <= frames_) return;
  // kswapd-style batching: once reclaim starts, free a whole cluster's worth
  // of frames so consecutive dirty pages coalesce into clustered swap-outs.
  const std::size_t target =
      std::max<std::size_t>(needed, options_.write_cluster_pages);
  while (resident_count_ + target > frames_ && lru_tail_ != kNoPage) {
    const std::uint64_t page = lru_tail_;
    lru_remove(page);
    PageMeta& meta = pages_[page];
    PLFOC_CHECK(meta.resident && meta.pins == 0);
    if (meta.dirty) {
      const std::uint64_t offset = page * options_.page_bytes;
      batch.push_back({offset,
                       static_cast<std::size_t>(std::min<std::uint64_t>(
                           options_.page_bytes, file_.total_bytes() - offset))});
      if (batch.size() >= options_.write_cluster_pages) flush_batch();
      meta.swapped_out = true;
    }
    meta.resident = false;
    meta.dirty = false;
    ++stats_locked().evictions;
    --resident_count_;
  }
  flush_batch();
  PLFOC_REQUIRE(resident_count_ + needed <= frames_,
                "paged store: all cached pages are pinned");
}

void PagedStore::fault_cluster(std::uint64_t first) {
  // Readahead: fault in a contiguous run of non-resident pages starting at
  // the faulting page (Linux swap readahead / page-cluster). Every
  // non-resident page's arena content equals its backing-file content, so
  // reading across the whole run is safe.
  std::uint64_t end = first;
  const std::uint64_t limit = std::min<std::uint64_t>(
      pages_.size(), first + options_.read_cluster_pages);
  bool any_swapped = false;
  while (end < limit && !pages_[end].resident) {
    any_swapped = any_swapped || pages_[end].swapped_out;
    ++end;
  }
  const std::size_t run = static_cast<std::size_t>(end - first);
  PLFOC_CHECK(run >= 1);
  make_room(run);
  // A first-ever fault on anonymous memory is zero-fill-on-demand: no device
  // access (the arena is already zeroed). Once any page of the run has been
  // swapped out the fault must read from the device — and unlike the
  // out-of-core layer, the OS cannot know the application is about to
  // overwrite the data, so there is no read skipping at this level.
  if (any_swapped) {
    const std::uint64_t offset = first * options_.page_bytes;
    const std::size_t bytes = static_cast<std::size_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(run) * options_.page_bytes,
        file_.total_bytes() - offset));
    char* dst = reinterpret_cast<char*>(arena_.data()) + offset;
    if (file_.integrity()) {
      const VerifyResult verify = file_.read_bytes_verified(offset, dst, bytes);
      ++stats_locked().file_reads;
      stats_locked().bytes_read += bytes;
      if (!verify.ok()) {
        // Detection only: the OS-paging baseline has no recomputation seam —
        // generic paging cannot know a swap page is a recomputable cache
        // entry. The pages stay non-resident (a later fault re-reads them),
        // and the damage surfaces typed instead of as a wrong likelihood.
        ++stats_locked().integrity_failures;
        ++stats_locked().integrity_unrecovered;
        stats_locked().corruptions_injected = file_.corruptions_injected();
        throw IntegrityError(
            "paged swap-in", verify.block, verify.expected_generation,
            verify.found_generation, verify.injected,
            std::string(verify.status_name()) +
                "; the OS-paging baseline cannot self-heal");
      }
    } else {
      file_.read_bytes(offset, dst, bytes);
      ++stats_locked().file_reads;
      stats_locked().bytes_read += bytes;
    }
  }
  for (std::uint64_t page = first; page < end; ++page) {
    pages_[page].resident = true;
    ++resident_count_;
    // Readahead pages beyond the faulting one start on the LRU list (they
    // are not pinned by the current acquire unless it reaches them).
    if (page != first) lru_push_front(page);
  }
}

double* PagedStore::do_acquire(std::uint32_t index, AccessMode mode) {
  PLFOC_CHECK(index < count_);
  MutexLock lock(mutex_);
  ++stats_locked().accesses;
  bool any_fault = false;
  const std::uint64_t first = first_page(index);
  std::uint64_t page = first;
  try {
    for (; page <= last_page(index); ++page) {
      PageMeta& meta = pages_[page];
      if (!meta.resident) {
        fault_cluster(page);
        ++stats_locked().misses;  // one miss per page fault (readahead pages are free)
        any_fault = true;
      }
      if (meta.pins == 0) lru_remove(page);  // re-inserted at release (MRU)
      ++meta.pins;
      if (mode == AccessMode::kWrite) meta.dirty = true;
    }
  } catch (...) {
    // A fault detected damage mid-walk (IntegrityError) or hit an I/O error:
    // unpin the pages this acquire already pinned so the cache is not leaked
    // behind the typed failure.
    for (std::uint64_t undo = first; undo < page; ++undo) {
      PageMeta& meta = pages_[undo];
      PLFOC_CHECK(meta.pins > 0);
      --meta.pins;
      if (meta.pins == 0) lru_push_front(undo);
    }
    throw;
  }
  if (!any_fault) ++stats_locked().hits;
  if (lease_count_[index] == 0 || mode == AccessMode::kWrite)
    lease_mode_[index] = mode;
  ++lease_count_[index];
  return arena_.data() + static_cast<std::size_t>(index) * width_;
}

void PagedStore::do_release(std::uint32_t index) {
  MutexLock lock(mutex_);
  PLFOC_CHECK(lease_count_[index] > 0);
  --lease_count_[index];
  for (std::uint64_t page = first_page(index); page <= last_page(index);
       ++page) {
    PageMeta& meta = pages_[page];
    PLFOC_CHECK(meta.pins > 0);
    --meta.pins;
    if (meta.pins == 0) lru_push_front(page);
  }
}

std::uint64_t PagedStore::page_faults() const {
  MutexLock lock(mutex_);
  return stats_locked().misses;
}

OocStats PagedStore::stats_snapshot() const {
  MutexLock lock(mutex_);
  OocStats out = stats_locked();
  out.faults_injected = file_.faults_injected();
  out.io_retries = file_.io_retries();
  out.io_exhausted = file_.io_exhausted();
  out.corruptions_injected = file_.corruptions_injected();
  out.io_batches = file_.io_batches();
  out.io_coalesced = file_.io_coalesced();
  out.io_write_coalesced = file_.io_write_coalesced();
  return out;
}

void PagedStore::reset_stats() {
  MutexLock lock(mutex_);
  file_.reset_fault_counters();
  file_.reset_io_counters();
  stats_locked() = OocStats{};
}

}  // namespace plfoc
