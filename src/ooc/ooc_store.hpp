// The out-of-core slot manager — the paper's core contribution (Sec. 3.2-3.4).
//
// All `count` ancestral probability vectors live in a binary backing file;
// only `m` RAM slots of w bytes each are allocated (m = f·n in the paper's
// experiments, or m chosen from a byte budget as with RAxML's -L flag).
// An acquire of a non-resident vector selects a victim slot through the
// configured replacement strategy (pinned slots excluded), swaps the victim
// out to the file, and the requested vector in — unless the access is
// write-only and read skipping elides the swap-in read.
//
// Thread safety: all slot-table mutations are guarded by one mutex so the
// optional prefetch thread (ooc/prefetch.hpp) can swap vectors in while the
// likelihood engine computes. Lease data pointers remain stable while pinned.
#pragma once

#include <atomic>
#include <vector>

#include "ooc/audit.hpp"
#include "ooc/file_backend.hpp"
#include "ooc/replacement.hpp"
#include "ooc/storage.hpp"
#include "util/aligned_buffer.hpp"
#include "util/mutex.hpp"

namespace plfoc {

/// On-disk numeric precision of ancestral vectors. The paper's companion
/// technique (Berger & Stamatakis 2010, cited as [1]) halves PLF memory with
/// single-precision arithmetic and the paper notes the approaches compose:
/// kSingle stores vectors as floats on disk (half the file size and half the
/// transfer bytes) while RAM slots and kernels stay double. Swaps convert.
/// Results are no longer bit-identical to all-double runs (a controlled,
/// tested perturbation ~1e-7 relative per value); default remains kDouble.
enum class DiskPrecision { kDouble, kSingle };

struct OocStoreOptions {
  /// Number of RAM slots m (>= 3; the engine pins up to 3 vectors at once).
  std::size_t num_slots = 3;
  ReplacementPolicy policy = ReplacementPolicy::kRandom;
  /// Elide the swap-in read for write-only first accesses (Sec. 3.4).
  bool read_skipping = true;
  DiskPrecision disk_precision = DiskPrecision::kDouble;
  /// Paper behaviour: a swap always writes the victim back. With false,
  /// clean victims are dropped without a write (dirty-tracking extension).
  bool write_back_clean = true;
  std::uint64_t seed = 1;                  ///< Random strategy seed
  const Tree* tree = nullptr;              ///< required for kTopological
  FileBackendOptions file;                 ///< backing file configuration

  /// Convenience: slots from the paper's fraction parameter f (m = max(3, round(f·n))).
  static std::size_t slots_from_fraction(double f, std::size_t count);
  /// Convenience: slots from a RAM byte budget (RAxML's -L flag).
  static std::size_t slots_from_budget(std::uint64_t budget_bytes,
                                       std::size_t width_doubles);
};

class OutOfCoreStore final : public AncestralStore {
 public:
  OutOfCoreStore(std::size_t count, std::size_t width, OocStoreOptions options);
  /// Aborts if a Prefetcher worker thread is still attached: the contract in
  /// ooc/prefetch.hpp is that the store outlives the thread, and tearing the
  /// slot table down under a live worker corrupts the backing file.
  ~OutOfCoreStore() override;

  const char* backend_name() const override { return "out-of-core"; }
  std::size_t num_slots() const { return slot_count_; }
  const char* strategy_name() const;

  /// True if the vector is currently in a RAM slot.
  bool is_resident(std::uint32_t index) const;

  /// Bring `index` into RAM (read mode) without pinning it; used by the
  /// prefetch thread. No-op if resident; never evicts a pinned vector.
  /// Counted in stats().prefetch_reads, not as an access. The disk read is
  /// staged into a prefetch-private buffer OUTSIDE mutex_, so a concurrent
  /// demand miss on the engine thread never stalls behind prefetch I/O; the
  /// slot install re-validates residency and the vector's file generation
  /// under the lock (a raced install is dropped and counted in
  /// stats().prefetch_stale).
  void prefetch(std::uint32_t index);

  /// Batched prefetch: stage up to `count` queued reads as ONE engine batch
  /// (adjacent vectors coalesce into ranged transfers) and install whatever
  /// survives the same re-validation as prefetch(). With the sync engine
  /// this degrades to per-index prefetch() semantics, byte for byte.
  void prefetch_batch(const std::uint32_t* indices, std::size_t count);

  /// How many queued reads a prefetch_batch caller should aim to hand over
  /// at once: the engine queue depth for async engines, 1 for sync.
  std::size_t prefetch_batch_limit() const {
    return file_.async_io() ? file_.io_depth() : 1;
  }

  /// Write all resident vectors back to the file (e.g. before checkpointing).
  void flush() override;

  /// Counters are mutated under mutex_ (including by the prefetch thread),
  /// so a concurrent snapshot must take the same lock. The robustness
  /// counters (faults_injected / io_retries / io_exhausted) are read fresh
  /// from the backing file, so a snapshot taken right after an IoError still
  /// reflects the failed transfer.
  OocStats stats_snapshot() const override;

  /// Also clears the backing file's robustness counters (and, in audit
  /// builds, the auditor's counter-monotonicity baseline).
  void reset_stats() override;

  /// Backing-file accounting (I/O op counts, modeled device time).
  const FileBackend& file() const { return file_; }
  FileBackend& file() { return file_; }

  /// RAM actually allocated for slots, in bytes.
  std::uint64_t slot_memory_bytes() const {
    return static_cast<std::uint64_t>(slot_count_) * width_ * sizeof(double);
  }

  /// Lifecycle guard held by each Prefetcher while its worker thread may
  /// touch this store (see ~OutOfCoreStore).
  void attach_prefetch_guard() {
    prefetch_guards_.fetch_add(1, std::memory_order_relaxed);
  }
  void detach_prefetch_guard() {
    prefetch_guards_.fetch_sub(1, std::memory_order_relaxed);
  }

 protected:
  double* do_acquire(std::uint32_t index, AccessMode mode) override;
  void do_release(std::uint32_t index) override;

 private:
  static constexpr std::uint32_t kNoSlot = kOocNoSlot;
  static constexpr std::uint32_t kNoVector = kOocNoVector;

  // The slot record itself lives in ooc/audit.hpp so the PLFOC_AUDIT
  // invariant auditor can validate the table without friending into here.
  using Slot = OocSlot;

  /// Lease data pointers derive from the ctor-immutable arena; the *content*
  /// they address is protected by pins + the slot table, not by mutex_, so
  /// this accessor carries no capability requirement.
  double* slot_data(std::uint32_t slot) {
    return arena_.data() + static_cast<std::size_t>(slot) * width_;
  }
  /// Pick (evicting if needed) a slot for `index`.
  std::uint32_t obtain_slot(std::uint32_t index) PLFOC_REQUIRES(mutex_);
  /// Async-engine demand-miss path: pick the slot AND perform the swap, with
  /// the victim write-back (staged from a scratch copy) and the demand read
  /// (into the freed slot) in flight together. On a write-back failure the
  /// victim is restored and stays resident — the exact state the sequential
  /// obtain_slot leaves when file_write throws. `verify` carries
  /// read_vector_verified semantics; the result lands in *out_verify.
  std::uint32_t swap_in_overlapped(std::uint32_t index, bool verify,
                                   VerifyResult* out_verify)
      PLFOC_REQUIRES(mutex_);
  /// Vector-level file transfer honouring disk_precision.
  /// `verify` (kRead-mode demand misses) checks the record against its
  /// checksum; the returned result is kOk on unverified reads. Write-mode
  /// paper-mode reads (read skipping off) load bytes that are about to be
  /// overwritten, so a corrupt record there must not fail a run that never
  /// consumes it — those reads stay unverified.
  VerifyResult file_read(std::uint32_t index, double* dst, bool verify)
      PLFOC_REQUIRES(mutex_);
  void file_write(std::uint32_t index, const double* src)
      PLFOC_REQUIRES(mutex_);
  /// A verified swap-in failed: try the recovery hook (released lock), then
  /// either mark the slot dirty (healed — the recomputed content supersedes
  /// the corrupt record) or undo the install and throw IntegrityError.
  /// Requires: lock held (`lock` is the scoped acquisition of mutex_),
  /// `slot` installed for `index` and pinned once.
  void recover_or_throw(MutexLock& lock, std::uint32_t index,
                        std::uint32_t slot, const VerifyResult& verify)
      PLFOC_REQUIRES(mutex_);
  /// Mirror the backing file's robustness counters into the stats block.
  void refresh_fault_counters() PLFOC_REQUIRES(mutex_);

  /// Base-class counters re-exported under their capability: every counter
  /// mutation in this store goes through here so the analysis can prove it
  /// happens with the slot-table lock held.
  OocStats& stats_locked() PLFOC_REQUIRES(mutex_) { return stats_; }
  const OocStats& stats_locked() const PLFOC_REQUIRES(mutex_) {
    return stats_;
  }

  OocStoreOptions options_;
  AlignedBuffer arena_;
#ifdef PLFOC_AUDIT
  /// Slot-table invariant oracle.
  StoreAuditor auditor_ PLFOC_GUARDED_BY(mutex_);
#endif
  std::vector<Slot> slots_ PLFOC_GUARDED_BY(mutex_);
  std::size_t slot_count_ = 0;  ///< slots_.size(); ctor-immutable
  /// Per vector: slot or kNoSlot.
  std::vector<std::uint32_t> vector_slot_ PLFOC_GUARDED_BY(mutex_);
  /// Vector ever accessed (cold-miss tracking).
  std::vector<bool> touched_ PLFOC_GUARDED_BY(mutex_);
  /// Vector was installed by a prefetch and has not been demand-acquired
  /// since: evicting it while set counts stats().prefetch_wasted (the read
  /// was paid for and the slot churned for nothing). Cleared on acquire and
  /// by reset_stats() (so prefetch_wasted <= prefetch_reads holds across a
  /// counter reset).
  std::vector<bool> prefetched_unread_ PLFOC_GUARDED_BY(mutex_);
  /// Conversion buffer (kSingle only).
  std::vector<float> float_scratch_ PLFOC_GUARDED_BY(mutex_);
  /// Overlapped-swap staging (async engines only): the victim's content is
  /// written back from this copy so the demand read can target the slot
  /// buffer concurrently — and so a failed write-back can restore the victim
  /// even after the read clobbered the slot.
  std::vector<double> evict_scratch_ PLFOC_GUARDED_BY(mutex_);
  /// kSingle overlapped swap: demand-read float staging (float_scratch_ is
  /// busy carrying the victim's write-back conversion).
  std::vector<float> swap_float_scratch_ PLFOC_GUARDED_BY(mutex_);
  /// Per vector: bumped by every file_write (under mutex_). Lets prefetch()
  /// detect that bytes it staged without the lock were superseded by a
  /// write-back that happened during the read (the write-then-evict ABA the
  /// residency check alone cannot see).
  std::vector<std::uint64_t> file_generation_ PLFOC_GUARDED_BY(mutex_);
  FileBackend file_;  ///< internally synchronised (backend atomics)
  std::unique_ptr<ReplacementStrategy> strategy_ PLFOC_GUARDED_BY(mutex_);
  std::atomic<int> prefetch_guards_{0};  ///< live Prefetcher worker threads
  mutable Mutex mutex_;

  // Prefetch staging state, private to prefetch() and guarded by
  // prefetch_io_mutex_ (lock order: prefetch_io_mutex_ before mutex_, never
  // the reverse — declared to the analysis via ACQUIRED_BEFORE).
  // float_scratch_ is engine-owned (used by file_read / file_write under
  // mutex_), hence the dedicated buffers here.
  Mutex prefetch_io_mutex_ PLFOC_ACQUIRED_BEFORE(mutex_);
  std::vector<double> prefetch_scratch_ PLFOC_GUARDED_BY(prefetch_io_mutex_);
  /// kSingle only.
  std::vector<float> prefetch_float_scratch_
      PLFOC_GUARDED_BY(prefetch_io_mutex_);
};

}  // namespace plfoc
