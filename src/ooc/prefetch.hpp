// Prefetch thread — the paper's Sec. 5 future-work item, implemented as an
// optional extension. A traversal descriptor reveals the exact order in which
// ancestral vectors will be read, so a background thread can swap upcoming
// vectors into RAM while the likelihood kernels compute, hiding swap-in
// latency.
//
// The worker is *cursor-coupled* to the engine: the engine reports how many
// entries of the submitted read sequence it has consumed, and the worker only
// prefetches within a bounded lookahead window beyond that cursor. Without
// the window the worker trails the engine (re-reading vectors that were
// already consumed and evicted — pure waste); without the cursor it cannot
// skip entries the engine has already taken the miss for.
//
// The worker hands the window over in *batches*: up to
// store.prefetch_batch_limit() upcoming indices per wakeup go into one
// OutOfCoreStore::prefetch_batch() call, which async I/O engines turn into a
// single submission-queue batch (adjacent vectors coalesce into ranged
// reads). With the sync engine the limit is 1 and behaviour is byte-for-byte
// the historical per-index prefetch.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "ooc/ooc_store.hpp"
#include "util/mutex.hpp"

namespace plfoc {

class Prefetcher {
 public:
  /// Starts the worker thread. The store must outlive the worker thread:
  /// the constructor registers a lifecycle guard with the store, and
  /// destroying the store while the guard is held aborts (see
  /// OutOfCoreStore::~OutOfCoreStore) instead of letting the worker touch a
  /// dead slot table. `lookahead` bounds how far beyond the engine's cursor
  /// the worker runs (in read-sequence entries).
  explicit Prefetcher(OutOfCoreStore& store, std::size_t lookahead = 8);
  ~Prefetcher();
  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Stop and join the worker thread, then release the store lifecycle
  /// guard. Idempotent — safe to call any number of times, and the
  /// destructor calls it too — so owners that must tear down in a specific
  /// order (a service worker draining its session) can stop the thread
  /// explicitly before the store goes away. Not safe to call concurrently
  /// from two threads. After stop(), submit()/notify_progress() are no-ops
  /// and drain() returns immediately.
  void stop();

  /// Replace the plan with the read sequence of the next traversal (the
  /// inner-vector indices in the order the engine will read them). Resets
  /// the progress cursor.
  void submit(std::vector<std::uint32_t> upcoming);

  /// The engine has consumed `consumed` entries of the current plan; the
  /// worker may advance its window accordingly.
  void notify_progress(std::size_t consumed);

  /// Block until the worker has prefetched everything currently allowed by
  /// the window (for deterministic tests).
  void drain();

 private:
  void worker();
  std::size_t window_end() const PLFOC_REQUIRES(mutex_) {
    const std::size_t end = cursor_ + lookahead_;
    return end < plan_.size() ? end : plan_.size();
  }

  OutOfCoreStore& store_;
  const std::size_t lookahead_;
  mutable Mutex mutex_;
  CondVar wake_;
  CondVar idle_;
  std::vector<std::uint32_t> plan_ PLFOC_GUARDED_BY(mutex_);
  /// Worker position in plan_.
  std::size_t next_ PLFOC_GUARDED_BY(mutex_) = 0;
  /// Engine progress in plan_.
  std::size_t cursor_ PLFOC_GUARDED_BY(mutex_) = 0;
  bool stop_ PLFOC_GUARDED_BY(mutex_) = false;
  bool busy_ PLFOC_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace plfoc
