#include "ooc/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace plfoc {

namespace {

std::string describe(const char* what, std::uint32_t index) {
  return std::string(what) + " (vector " + std::to_string(index) + ")";
}

}  // namespace

StoreAuditor::StoreAuditor(std::size_t vector_count, std::size_t slot_count)
    : vector_count_(vector_count),
      slot_count_(slot_count),
      on_disk_(vector_count, false),
      shadow_dirty_(vector_count, false) {}

bool StoreAuditor::ever_on_disk(std::uint32_t index) const {
  return index < vector_count_ && on_disk_[index];
}

std::optional<std::string> StoreAuditor::record_acquire(std::uint32_t index,
                                                        bool write_mode,
                                                        bool read_skipped) {
  if (index >= vector_count_)
    return describe("acquire of out-of-range vector", index);
  if (read_skipped && !write_mode) {
    if (on_disk_[index])
      return describe(
          "read skipping elided the swap-in read of a READ-mode access to a "
          "vector with live on-disk contents",
          index);
    return describe("read skipping elided the read of a READ-mode access",
                    index);
  }
  if (write_mode) shadow_dirty_[index] = true;
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::record_file_write(
    std::uint32_t index) {
  if (index >= vector_count_)
    return describe("file write of out-of-range vector", index);
  on_disk_[index] = true;
  shadow_dirty_[index] = false;
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::record_evict(
    std::uint32_t victim, std::uint32_t pins, bool write_back_scheduled) {
  if (victim >= vector_count_)
    return describe("eviction of out-of-range vector", victim);
  if (pins != 0)
    return describe("pinned vector selected as replacement victim", victim) +
           " with " + std::to_string(pins) + " live lease(s)";
  if (shadow_dirty_[victim] && !write_back_scheduled)
    return describe("dirty vector evicted without a write-back", victim);
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::record_release(
    std::uint32_t index, std::uint32_t pins_before) {
  if (index >= vector_count_)
    return describe("release of out-of-range vector", index);
  if (pins_before == 0)
    return describe("release of a vector that holds no lease", index);
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::record_recovery(std::uint32_t index,
                                                         bool recovered) {
  if (index >= vector_count_)
    return describe("recovery of out-of-range vector", index);
  if (!on_disk_[index])
    return describe(
        "integrity failure reported for a vector never written to the file",
        index);
  // The recomputed slot content supersedes the corrupt file record: it must
  // reach the file before the slot may be dropped.
  if (recovered) shadow_dirty_[index] = true;
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::check_table(
    const std::vector<OocSlot>& slots,
    const std::vector<std::uint32_t>& vector_slot) const {
  if (slots.size() != slot_count_)
    return "slot table has " + std::to_string(slots.size()) +
           " slots, expected " + std::to_string(slot_count_);
  if (vector_slot.size() != vector_count_)
    return "vector->slot map has " + std::to_string(vector_slot.size()) +
           " entries, expected " + std::to_string(vector_count_);

  // Slot -> vector direction: every occupied slot names an in-range vector
  // whose map entry points straight back at the slot.
  for (std::uint32_t s = 0; s < slots.size(); ++s) {
    const OocSlot& slot = slots[s];
    if (slot.vector == kOocNoVector) {
      if (slot.pins != 0)
        return "empty slot " + std::to_string(s) + " carries " +
               std::to_string(slot.pins) + " pin(s)";
      if (slot.dirty)
        return "empty slot " + std::to_string(s) + " is marked dirty";
      continue;
    }
    if (slot.vector >= vector_count_)
      return "slot " + std::to_string(s) + " holds out-of-range vector " +
             std::to_string(slot.vector);
    if (vector_slot[slot.vector] != s)
      return "slot " + std::to_string(s) + " holds vector " +
             std::to_string(slot.vector) + " but the vector->slot map says " +
             (vector_slot[slot.vector] == kOocNoSlot
                    ? std::string("not resident")
                    : "slot " + std::to_string(vector_slot[slot.vector]));
    if (slot.dirty != static_cast<bool>(shadow_dirty_[slot.vector]))
      return "slot " + std::to_string(s) + " dirty flag (" +
             (slot.dirty ? "dirty" : "clean") + ") disagrees with recorded " +
             (shadow_dirty_[slot.vector] ? "unwritten modifications"
                                         : "write-back history") +
             " for vector " + std::to_string(slot.vector);
  }

  // Vector -> slot direction: every resident vector names an in-range slot
  // that holds exactly it. Together with the pass above this makes residency
  // a bijection (two vectors cannot share a slot, nor one vector two slots).
  for (std::uint32_t v = 0; v < vector_slot.size(); ++v) {
    const std::uint32_t s = vector_slot[v];
    if (s == kOocNoSlot) continue;
    if (s >= slots.size())
      return "vector " + std::to_string(v) + " maps to out-of-range slot " +
             std::to_string(s);
    if (slots[s].vector != v)
      return "vector " + std::to_string(v) + " maps to slot " +
             std::to_string(s) + " which holds " +
             (slots[s].vector == kOocNoVector
                    ? std::string("no vector")
                    : "vector " + std::to_string(slots[s].vector));
  }
  return std::nullopt;
}

std::optional<std::string> StoreAuditor::check_stats(const OocStats& stats) {
  // Algebraic identities that hold at every quiescent point of the store.
  if (stats.hits + stats.misses != stats.accesses)
    return "hits (" + std::to_string(stats.hits) + ") + misses (" +
           std::to_string(stats.misses) + ") != accesses (" +
           std::to_string(stats.accesses) + ")";
  if (stats.cold_misses > stats.misses)
    return "cold_misses (" + std::to_string(stats.cold_misses) +
           ") exceeds misses (" + std::to_string(stats.misses) + ")";
  if (stats.skipped_reads > stats.misses)
    return "skipped_reads (" + std::to_string(stats.skipped_reads) +
           ") exceeds misses (" + std::to_string(stats.misses) + ")";
  if (stats.integrity_recoveries + stats.integrity_unrecovered !=
      stats.integrity_failures)
    return "integrity_recoveries (" +
           std::to_string(stats.integrity_recoveries) +
           ") + integrity_unrecovered (" +
           std::to_string(stats.integrity_unrecovered) +
           ") != integrity_failures (" +
           std::to_string(stats.integrity_failures) + ")";
  if (stats.recovery_recomputes < stats.integrity_recoveries)
    return "recovery_recomputes (" +
           std::to_string(stats.recovery_recomputes) +
           ") below integrity_recoveries (" +
           std::to_string(stats.integrity_recoveries) +
           ") — every recovery recomputes at least its own vector";
  if (stats.prefetch_wasted > stats.prefetch_reads)
    return "prefetch_wasted (" + std::to_string(stats.prefetch_wasted) +
           ") exceeds prefetch_reads (" +
           std::to_string(stats.prefetch_reads) +
           ") — a wasted install needs a prefetch read that staged it";
  if (stats.prefetch_wasted > stats.evictions)
    return "prefetch_wasted (" + std::to_string(stats.prefetch_wasted) +
           ") exceeds evictions (" + std::to_string(stats.evictions) +
           ") — waste is only charged when the install is evicted";
  if (stats.io_write_coalesced > stats.io_coalesced)
    return "io_write_coalesced (" +
           std::to_string(stats.io_write_coalesced) +
           ") exceeds io_coalesced (" + std::to_string(stats.io_coalesced) +
           ") — the write-side count is a subset of the total";

  // Monotonicity against the previous snapshot: counters only ever grow
  // between resets (reset_stats_baseline() clears the reference).
  struct Field {
    const char* name;
    std::uint64_t now;
    std::uint64_t before;
  };
  const Field fields[] = {
      {"accesses", stats.accesses, last_stats_.accesses},
      {"hits", stats.hits, last_stats_.hits},
      {"misses", stats.misses, last_stats_.misses},
      {"cold_misses", stats.cold_misses, last_stats_.cold_misses},
      {"evictions", stats.evictions, last_stats_.evictions},
      {"file_reads", stats.file_reads, last_stats_.file_reads},
      {"file_writes", stats.file_writes, last_stats_.file_writes},
      {"skipped_reads", stats.skipped_reads, last_stats_.skipped_reads},
      {"prefetch_reads", stats.prefetch_reads, last_stats_.prefetch_reads},
      {"prefetch_stale", stats.prefetch_stale, last_stats_.prefetch_stale},
      {"prefetch_wasted", stats.prefetch_wasted, last_stats_.prefetch_wasted},
      {"bytes_read", stats.bytes_read, last_stats_.bytes_read},
      {"bytes_written", stats.bytes_written, last_stats_.bytes_written},
      {"faults_injected", stats.faults_injected, last_stats_.faults_injected},
      {"io_retries", stats.io_retries, last_stats_.io_retries},
      {"io_exhausted", stats.io_exhausted, last_stats_.io_exhausted},
      {"integrity_failures", stats.integrity_failures,
       last_stats_.integrity_failures},
      {"integrity_recoveries", stats.integrity_recoveries,
       last_stats_.integrity_recoveries},
      {"integrity_unrecovered", stats.integrity_unrecovered,
       last_stats_.integrity_unrecovered},
      {"recovery_recomputes", stats.recovery_recomputes,
       last_stats_.recovery_recomputes},
      {"corruptions_injected", stats.corruptions_injected,
       last_stats_.corruptions_injected},
      {"io_batches", stats.io_batches, last_stats_.io_batches},
      {"io_coalesced", stats.io_coalesced, last_stats_.io_coalesced},
      {"io_write_coalesced", stats.io_write_coalesced,
       last_stats_.io_write_coalesced},
  };
  for (const Field& f : fields) {
    if (f.now < f.before)
      return std::string(f.name) + " ran backwards (" +
             std::to_string(f.before) + " -> " + std::to_string(f.now) + ")";
  }
  last_stats_ = stats;
  return std::nullopt;
}

void StoreAuditor::enforce(const std::optional<std::string>& violation,
                           const char* when) const {
  if (!violation) return;
  std::fprintf(stderr,
               "plfoc: slot-table audit failed after %s: %s "
               "(%zu vectors, %zu slots)\n",
               when, violation->c_str(), vector_count_, slot_count_);
  std::abort();
}

}  // namespace plfoc
