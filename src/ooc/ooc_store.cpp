#include "ooc/ooc_store.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

// Audit hooks: record every slot-table mutation with the invariant auditor
// and re-validate the whole table afterwards. All hook sites run under
// mutex_. Compiled out entirely unless configured with -DPLFOC_AUDIT=ON.
#ifdef PLFOC_AUDIT
#define PLFOC_AUDIT_EVENT(when, call) auditor_.enforce((call), (when))
#define PLFOC_AUDIT_TABLE(when) \
  auditor_.enforce(auditor_.check_table(slots_, vector_slot_), (when))
#else
#define PLFOC_AUDIT_EVENT(when, call) ((void)0)
#define PLFOC_AUDIT_TABLE(when) ((void)0)
#endif

namespace plfoc {

std::size_t OocStoreOptions::slots_from_fraction(double f, std::size_t count) {
  PLFOC_REQUIRE(f > 0.0, "RAM fraction f must be positive");
  const double m = std::round(f * static_cast<double>(count));
  return std::max<std::size_t>(3, static_cast<std::size_t>(m));
}

std::size_t OocStoreOptions::slots_from_budget(std::uint64_t budget_bytes,
                                               std::size_t width_doubles) {
  const std::uint64_t w = width_doubles * sizeof(double);
  PLFOC_REQUIRE(budget_bytes >= 3 * w,
                "RAM budget must hold at least 3 ancestral vectors (m >= 3)");
  return static_cast<std::size_t>(budget_bytes / w);
}

OutOfCoreStore::OutOfCoreStore(std::size_t count, std::size_t width,
                               OocStoreOptions options)
    : AncestralStore(count, width),
      options_(std::move(options)),
      arena_(std::min(options_.num_slots, count) * width),
#ifdef PLFOC_AUDIT
      auditor_(count, std::min(options_.num_slots, count)),
#endif
      slots_(std::min(options_.num_slots, count)),
      slot_count_(std::min(options_.num_slots, count)),
      vector_slot_(count, kNoSlot),
      touched_(count, false),
      prefetched_unread_(count, false),
      float_scratch_(options_.disk_precision == DiskPrecision::kSingle ? width
                                                                        : 0),
      file_generation_(count, 0),
      file_(count,
            width * (options_.disk_precision == DiskPrecision::kSingle
                         ? sizeof(float)
                         : sizeof(double)),
            options_.file),
      strategy_(make_strategy(StrategyConfig{options_.policy, count,
                                             options_.seed, options_.tree})) {
  PLFOC_REQUIRE(options_.num_slots >= 3,
                "the out-of-core store needs at least 3 slots (m >= 3)");
  PLFOC_LOG(kInfo) << "out-of-core store: " << count << " vectors x " << width
                   << " doubles, " << slot_count_ << " slots ("
                   << (slot_memory_bytes() >> 20) << " MiB RAM), strategy="
                   << strategy_->name();
}

OutOfCoreStore::~OutOfCoreStore() {
  // The contract in ooc/prefetch.hpp: the store outlives the worker thread.
  // A Prefetcher that has not been stopped would keep calling prefetch() on
  // freed slot-table state, so fail loudly instead.
  PLFOC_CHECK(prefetch_guards_.load(std::memory_order_relaxed) == 0);
}

const char* OutOfCoreStore::strategy_name() const {
  // The strategy object is never replaced after construction, but the
  // pointer read still synchronises with mutations of the strategy's own
  // state, which happen under mutex_.
  MutexLock lock(mutex_);
  return strategy_->name();
}

bool OutOfCoreStore::is_resident(std::uint32_t index) const {
  PLFOC_CHECK(index < count_);
  MutexLock lock(mutex_);
  return vector_slot_[index] != kNoSlot;
}

void OutOfCoreStore::refresh_fault_counters() {
  stats_locked().faults_injected = file_.faults_injected();
  stats_locked().io_retries = file_.io_retries();
  stats_locked().io_exhausted = file_.io_exhausted();
  stats_locked().corruptions_injected = file_.corruptions_injected();
  stats_locked().io_batches = file_.io_batches();
  stats_locked().io_coalesced = file_.io_coalesced();
  stats_locked().io_write_coalesced = file_.io_write_coalesced();
}

VerifyResult OutOfCoreStore::file_read(std::uint32_t index, double* dst,
                                       bool verify) {
  VerifyResult result;
  const bool verified = verify && file_.integrity();
  if (options_.disk_precision == DiskPrecision::kDouble) {
    if (verified)
      result = file_.read_vector_verified(index, dst);
    else
      file_.read_vector(index, dst);
  } else {
    // Verification runs over the on-disk representation (floats), before
    // widening — the checksum covers file bytes, not RAM content.
    if (verified)
      result = file_.read_vector_verified(index, float_scratch_.data());
    else
      file_.read_vector(index, float_scratch_.data());
    for (std::size_t i = 0; i < width_; ++i)
      dst[i] = static_cast<double>(float_scratch_[i]);
  }
  ++stats_locked().file_reads;
  stats_locked().bytes_read += file_.bytes_per_vector();
  refresh_fault_counters();
  return result;
}

void OutOfCoreStore::file_write(std::uint32_t index, const double* src) {
  if (options_.disk_precision == DiskPrecision::kDouble) {
    file_.write_vector(index, src);
  } else {
    for (std::size_t i = 0; i < width_; ++i)
      float_scratch_[i] = static_cast<float>(src[i]);
    file_.write_vector(index, float_scratch_.data());
  }
  ++stats_locked().file_writes;
  stats_locked().bytes_written += file_.bytes_per_vector();
  ++file_generation_[index];
  refresh_fault_counters();
  PLFOC_AUDIT_EVENT("file write", auditor_.record_file_write(index));
}

std::uint32_t OutOfCoreStore::obtain_slot(std::uint32_t index) {
  // Free slot available? (Cold phase, or count <= slots.)
  for (std::uint32_t s = 0; s < slots_.size(); ++s)
    if (slots_[s].vector == kNoVector) return s;

  // Collect eviction candidates: resident and unpinned.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(slots_.size());
  for (const Slot& slot : slots_)
    if (slot.pins == 0) candidates.push_back(slot.vector);
  PLFOC_REQUIRE(!candidates.empty(),
                "all RAM slots are pinned; the store needs more slots than "
                "concurrently held leases");

  const std::uint32_t victim = strategy_->choose_victim(
      {candidates.data(), candidates.size()}, index);
  const std::uint32_t slot = vector_slot_[victim];
  PLFOC_CHECK(slot != kNoSlot);

  // The paper's implementation always writes the victim back; dirty tracking
  // (write_back_clean = false) is an ablation extension.
  const bool write_back = options_.write_back_clean || slots_[slot].dirty;
  // The auditor must see the victim's pin count and shadow dirty bit before
  // the store's own pin assertion and before the write-back clears the shadow
  // state — otherwise it only re-checks values the store already validated.
  PLFOC_AUDIT_EVENT("evict", auditor_.record_evict(victim, slots_[slot].pins,
                                                   write_back));
  PLFOC_CHECK(slots_[slot].vector == victim && slots_[slot].pins == 0);

  if (write_back) file_write(victim, slot_data(slot));
  ++stats_locked().evictions;
  if (prefetched_unread_[victim]) {
    prefetched_unread_[victim] = false;
    ++stats_locked().prefetch_wasted;  // staged, never acquired, gone again
  }
  strategy_->on_evict(victim);
  vector_slot_[victim] = kNoSlot;
  slots_[slot].vector = kNoVector;
  slots_[slot].dirty = false;
  return slot;
}

// The async-engine miss path: the victim write-back and the demand read are
// one engine batch, so the device (or the modeled latency) overlaps them
// instead of serialising write-then-read. All slot-table bookkeeping happens
// at completion in the sequential path's order, so stats, audit events and
// failure states are indistinguishable from obtain_slot + file_read.
std::uint32_t OutOfCoreStore::swap_in_overlapped(std::uint32_t index,
                                                 bool verify,
                                                 VerifyResult* out_verify) {
  // A free slot (or a dropped clean victim) leaves nothing to overlap.
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].vector != kNoVector) continue;
    *out_verify = file_read(index, slot_data(s), verify);
    return s;
  }

  std::vector<std::uint32_t> candidates;
  candidates.reserve(slots_.size());
  for (const Slot& slot : slots_)
    if (slot.pins == 0) candidates.push_back(slot.vector);
  PLFOC_REQUIRE(!candidates.empty(),
                "all RAM slots are pinned; the store needs more slots than "
                "concurrently held leases");
  const std::uint32_t victim = strategy_->choose_victim(
      {candidates.data(), candidates.size()}, index);
  const std::uint32_t slot = vector_slot_[victim];
  PLFOC_CHECK(slot != kNoSlot);
  const bool write_back = options_.write_back_clean || slots_[slot].dirty;
  PLFOC_AUDIT_EVENT("evict", auditor_.record_evict(victim, slots_[slot].pins,
                                                   write_back));
  PLFOC_CHECK(slots_[slot].vector == victim && slots_[slot].pins == 0);

  if (!write_back) {
    ++stats_locked().evictions;
    if (prefetched_unread_[victim]) {
      prefetched_unread_[victim] = false;
      ++stats_locked().prefetch_wasted;
    }
    strategy_->on_evict(victim);
    vector_slot_[victim] = kNoSlot;
    slots_[slot].vector = kNoVector;
    slots_[slot].dirty = false;
    *out_verify = file_read(index, slot_data(slot), verify);
    return slot;
  }

  // The write-back sources a scratch copy: the demand read is about to reuse
  // the victim's slot buffer while the write is still in flight, and the
  // copy doubles as the undo image if the write-back fails.
  evict_scratch_.assign(slot_data(slot), slot_data(slot) + width_);
  const bool single = options_.disk_precision == DiskPrecision::kSingle;
  FileBackend::VectorOp ops[2];
  ops[0].is_write = true;
  ops[0].index = victim;
  if (single) {
    for (std::size_t i = 0; i < width_; ++i)
      float_scratch_[i] = static_cast<float>(evict_scratch_[i]);
    ops[0].buffer = float_scratch_.data();
  } else {
    ops[0].buffer = evict_scratch_.data();
  }
  ops[1].is_write = false;
  ops[1].index = index;
  ops[1].verify = verify && file_.integrity();
  if (single) {
    if (swap_float_scratch_.size() != width_)
      swap_float_scratch_.resize(width_);
    ops[1].buffer = swap_float_scratch_.data();
  } else {
    ops[1].buffer = slot_data(slot);
  }
  file_.submit_vector_ops(ops, 2);
  refresh_fault_counters();

  // Write-back outcome first — it precedes the read in the sequential order.
  if (!ops[0].ok()) {
    // file_write would have thrown with the victim still fully installed:
    // restore the slot content (the concurrent read may have clobbered it)
    // and leave every table and counter untouched.
    std::copy(evict_scratch_.begin(), evict_scratch_.end(), slot_data(slot));
    throw IoError("pwrite", ops[0].error, ops[0].fail_offset, ops[0].attempts,
                  ops[0].injected);
  }
  ++stats_locked().file_writes;
  stats_locked().bytes_written += file_.bytes_per_vector();
  ++file_generation_[victim];
  PLFOC_AUDIT_EVENT("file write", auditor_.record_file_write(victim));
  ++stats_locked().evictions;
  if (prefetched_unread_[victim]) {
    prefetched_unread_[victim] = false;
    ++stats_locked().prefetch_wasted;
  }
  strategy_->on_evict(victim);
  vector_slot_[victim] = kNoSlot;
  slots_[slot].vector = kNoVector;
  slots_[slot].dirty = false;

  if (!ops[1].ok()) {
    // Sequential equivalent: file_read threw after the eviction completed —
    // the slot stays free, file_reads/bytes_read untouched.
    throw IoError("pread", ops[1].error, ops[1].fail_offset, ops[1].attempts,
                  ops[1].injected);
  }
  if (single) {
    double* dst = slot_data(slot);
    for (std::size_t i = 0; i < width_; ++i)
      dst[i] = static_cast<double>(swap_float_scratch_[i]);
  }
  ++stats_locked().file_reads;
  stats_locked().bytes_read += file_.bytes_per_vector();
  *out_verify = ops[1].verify_result;
  return slot;
}

double* OutOfCoreStore::do_acquire(std::uint32_t index, AccessMode mode) {
  PLFOC_CHECK(index < count_);
  // MutexLock (not a plain guard): a failed verification releases the lock
  // around the recovery hook, whose child acquires re-enter this method.
  MutexLock lock(mutex_);
  ++stats_locked().accesses;

  std::uint32_t slot = vector_slot_[index];
  [[maybe_unused]] bool read_skipped = false;  // only consumed by audit hooks
  VerifyResult verify;  // stays kOk unless a verified swap-in failed
  if (slot != kNoSlot) {
    ++stats_locked().hits;
  } else {
    ++stats_locked().misses;
    if (!touched_[index]) ++stats_locked().cold_misses;
    // Swap the requested vector in — unless this access overwrites it anyway
    // and read skipping applies (Sec. 3.4). First-ever accesses never have
    // meaningful file contents either way (the file is zero-preallocated).
    const bool need_read = mode == AccessMode::kRead || !options_.read_skipping;
    if (need_read && file_.async_io()) {
      slot = swap_in_overlapped(index, mode == AccessMode::kRead, &verify);
    } else {
      slot = obtain_slot(index);
      if (need_read) {
        verify = file_read(index, slot_data(slot), mode == AccessMode::kRead);
      } else {
        ++stats_locked().skipped_reads;
        read_skipped = true;
      }
    }
    vector_slot_[index] = slot;
    slots_[slot].vector = index;
    strategy_->on_load(index);
  }
  touched_[index] = true;
  // The kernel is consuming this vector: whatever prefetch staged it was
  // useful, so it can no longer count as wasted.
  prefetched_unread_[index] = false;
  ++slots_[slot].pins;
  if (mode == AccessMode::kWrite) slots_[slot].dirty = true;
  strategy_->on_access(index);
  // Self-healing happens with the slot fully installed and pinned: the pin
  // keeps the recomputation target stable while the hook's child acquires
  // recurse through this method with the lock released.
  if (!verify.ok()) recover_or_throw(lock, index, slot, verify);
  PLFOC_AUDIT_EVENT("acquire", auditor_.record_acquire(
                                   index, mode == AccessMode::kWrite,
                                   read_skipped));
  PLFOC_AUDIT_TABLE("acquire");
  PLFOC_AUDIT_EVENT("acquire stats", auditor_.check_stats(stats_locked()));
  return slot_data(slot);
}

// The body juggles the capability (unlocks around the re-entrant recovery
// hook, relocks before mutating the slot table); the REQUIRES contract on
// the declaration is what callers are checked against.
void OutOfCoreStore::recover_or_throw(MutexLock& lock, std::uint32_t index,
                                      std::uint32_t slot,
                                      const VerifyResult& verify)
    PLFOC_NO_THREAD_SAFETY_ANALYSIS {
  std::uint64_t recomputed = 0;
  if (recovery_hook_) {
    double* dst = slot_data(slot);  // pinned: stable across the unlock
    lock.unlock();
    try {
      recomputed = recovery_hook_(index, dst);
    } catch (...) {
      recomputed = 0;  // a throwing hook is an unrecoverable vector
    }
    lock.lock();
  }
  // Count the whole episode at resolution, under one lock hold: nested
  // acquires inside the hook run check_stats mid-flight and must never see
  // the recoveries + unrecovered == failures identity half-updated.
  ++stats_locked().integrity_failures;
  if (recomputed > 0) {
    ++stats_locked().integrity_recoveries;
    stats_locked().recovery_recomputes += recomputed;
    refresh_fault_counters();
    if (options_.disk_precision == DiskPrecision::kSingle) {
      // Match what an intact disk read would have delivered: the recomputed
      // doubles round-trip through the on-disk float representation.
      double* data = slot_data(slot);
      for (std::size_t i = 0; i < width_; ++i)
        data[i] = static_cast<double>(static_cast<float>(data[i]));
    }
    // The healed content supersedes the corrupt file record; the dirty bit
    // routes it back to the file through the normal write-back path.
    slots_[slot].dirty = true;
    PLFOC_AUDIT_EVENT("recovery", auditor_.record_recovery(index, true));
    return;
  }
  ++stats_locked().integrity_unrecovered;
  refresh_fault_counters();
  PLFOC_AUDIT_EVENT("recovery", auditor_.record_recovery(index, false));
  // Undo the install: the acquire is failing, so its pin and residency must
  // not outlive this throw (callers never see the lease).
  PLFOC_CHECK(slots_[slot].pins == 1);
  slots_[slot] = Slot{};
  vector_slot_[index] = kNoSlot;
  strategy_->on_evict(index);
  PLFOC_AUDIT_TABLE("integrity failure");
  PLFOC_AUDIT_EVENT("integrity stats", auditor_.check_stats(stats_locked()));
  throw IntegrityError(
      "out-of-core swap-in", index, verify.expected_generation,
      verify.found_generation, verify.injected,
      std::string(verify.status_name()) +
          (recovery_hook_ ? "; recomputation failed (children unmaterialized "
                            "during a read-skip window, or no free slot)"
                          : "; no recovery hook registered"));
}

void OutOfCoreStore::do_release(std::uint32_t index) {
  MutexLock lock(mutex_);
  const std::uint32_t slot = vector_slot_[index];
  PLFOC_CHECK(slot != kNoSlot && slots_[slot].pins > 0);
  PLFOC_AUDIT_EVENT("release",
                    auditor_.record_release(index, slots_[slot].pins));
  --slots_[slot].pins;
  PLFOC_AUDIT_TABLE("release");
}

void OutOfCoreStore::prefetch(std::uint32_t index) {
  PLFOC_CHECK(index < count_);
  // Cancellation is advisory here: this runs on the Prefetcher's worker
  // thread, where a throw would terminate the process. Returning early is
  // enough — the demand path's acquire() throws the typed error.
  if (cancel_.cancelled_or_expired()) return;
  // Serialises prefetch() callers and owns the staging buffers. mutex_ is
  // only taken in short sections below, so a demand miss on the engine
  // thread never waits behind this call's disk read.
  MutexLock io_lock(prefetch_io_mutex_);

  std::uint64_t generation;
  {
    MutexLock lock(mutex_);
    if (vector_slot_[index] != kNoSlot) return;  // already resident
    // Never prefetch a vector that has not been written yet: the file holds
    // no meaningful bytes for it, and the first real access is write-mode.
    if (!touched_[index]) return;
    generation = file_generation_[index];
  }

  // Stage the read WITHOUT the slot-table lock. Prefetching is advisory: a
  // transfer whose retry budget is exhausted must not propagate IoError onto
  // the prefetch worker thread (which would call std::terminate). The demand
  // access either succeeds on retry or fails on the engine thread, where it
  // is catchable.
  if (prefetch_scratch_.size() != width_) prefetch_scratch_.resize(width_);
  // Prefetch never recovers: recovery needs the engine (and may deadlock on
  // engine-owned scratch). A verification failure here just drops the staged
  // read — the demand access re-verifies under the slot-table lock, on the
  // engine thread, where the recovery hook is callable and IntegrityError is
  // catchable. This also absorbs the benign race where a concurrent
  // write-back tears the checksum mirror read (a spurious mismatch).
  bool verify_failed = false;
  try {
    if (options_.disk_precision == DiskPrecision::kDouble) {
      verify_failed =
          file_.integrity()
              ? !file_.read_vector_verified(index, prefetch_scratch_.data())
                     .ok()
              : (file_.read_vector(index, prefetch_scratch_.data()), false);
    } else {
      if (prefetch_float_scratch_.size() != width_)
        prefetch_float_scratch_.resize(width_);
      verify_failed =
          file_.integrity()
              ? !file_
                     .read_vector_verified(index,
                                           prefetch_float_scratch_.data())
                     .ok()
              : (file_.read_vector(index, prefetch_float_scratch_.data()),
                 false);
      for (std::size_t i = 0; i < width_; ++i)
        prefetch_scratch_[i] = static_cast<double>(prefetch_float_scratch_[i]);
    }
  } catch (const IoError&) {
    MutexLock lock(mutex_);
    refresh_fault_counters();
    PLFOC_AUDIT_TABLE("prefetch io-error");
    return;
  }
  if (verify_failed) {
    MutexLock lock(mutex_);
    stats_locked().bytes_read += file_.bytes_per_vector();
    ++stats_locked().prefetch_stale;
    refresh_fault_counters();
    PLFOC_AUDIT_TABLE("prefetch integrity drop");
    return;
  }

  MutexLock lock(mutex_);
  stats_locked().bytes_read += file_.bytes_per_vector();
  refresh_fault_counters();
  // Re-validate before installing: the vector may have been demand-loaded
  // while the read was in flight (drop — it is already resident), or loaded,
  // dirtied and evicted again, making the staged bytes stale (drop — the
  // file's newer contents win on the next access).
  if (vector_slot_[index] != kNoSlot || file_generation_[index] != generation) {
    ++stats_locked().prefetch_stale;
    PLFOC_AUDIT_TABLE("prefetch stale");
    return;
  }
  std::uint32_t slot;
  try {
    slot = obtain_slot(index);
  } catch (const Error&) {
    return;  // everything pinned; skip this prefetch
  }
  std::copy(prefetch_scratch_.begin(), prefetch_scratch_.end(),
            slot_data(slot));
  ++stats_locked().prefetch_reads;
  vector_slot_[index] = slot;
  slots_[slot].vector = index;
  strategy_->on_load(index);
  strategy_->on_prefetch_install(index);
  prefetched_unread_[index] = true;
  PLFOC_AUDIT_TABLE("prefetch");
}

// Batched prefetch (async engines): one engine batch carries every staged
// read — vectors adjacent in the file coalesce into ranged transfers inside
// submit_vector_ops — and the install pass replays prefetch()'s
// re-validation per index. Per-op failures are advisory exactly like the
// sequential path: an exhausted transfer refreshes counters and moves on, a
// verification failure or a raced install counts prefetch_stale.
void OutOfCoreStore::prefetch_batch(const std::uint32_t* indices,
                                    std::size_t count) {
  if (count == 0) return;
  // Advisory, like prefetch(): never throw on the prefetch worker thread.
  if (cancel_.cancelled_or_expired()) return;
  if (!file_.async_io()) {
    // Sync engine: the historical one-vector-per-call path, byte for byte.
    for (std::size_t i = 0; i < count; ++i) prefetch(indices[i]);
    return;
  }
  MutexLock io_lock(prefetch_io_mutex_);

  struct Item {
    std::uint32_t index;
    std::uint64_t generation;
  };
  std::vector<Item> items;
  items.reserve(count);
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t index = indices[i];
      PLFOC_CHECK(index < count_);
      if (vector_slot_[index] != kNoSlot) continue;  // already resident
      if (!touched_[index]) continue;  // never written: nothing to stage
      bool duplicate = false;  // a repeated plan entry stages one read
      for (const Item& item : items)
        if (item.index == index) { duplicate = true; break; }
      if (!duplicate) items.push_back({index, file_generation_[index]});
    }
  }
  if (items.empty()) return;

  const bool single = options_.disk_precision == DiskPrecision::kSingle;
  const std::size_t n = items.size();
  if (single) {
    if (prefetch_float_scratch_.size() < n * width_)
      prefetch_float_scratch_.resize(n * width_);
  } else {
    if (prefetch_scratch_.size() < n * width_)
      prefetch_scratch_.resize(n * width_);
  }
  std::vector<FileBackend::VectorOp> ops(n);
  for (std::size_t k = 0; k < n; ++k) {
    ops[k].is_write = false;
    ops[k].index = items[k].index;
    ops[k].verify = file_.integrity();
    ops[k].buffer = single
                        ? static_cast<void*>(prefetch_float_scratch_.data() +
                                             k * width_)
                        : static_cast<void*>(prefetch_scratch_.data() +
                                             k * width_);
  }
  // Between-AIO-batch cancellation point: nothing has been submitted or
  // installed yet, only private scratch staged, so bailing out here leaves
  // the store untouched — the "within one AIO batch" granularity bound.
  if (cancel_.cancelled_or_expired()) return;
  // Records per-op failures instead of throwing — prefetch stays advisory.
  file_.submit_vector_ops(ops.data(), n);

  MutexLock lock(mutex_);
  refresh_fault_counters();

  // Install in three passes so the victim write-backs form ONE engine batch
  // (adjacent victims merge into ranged writes inside submit_vector_ops)
  // instead of a synchronous file_write per eviction:
  //
  //   A. re-validate each staged read and claim a slot for the survivors —
  //      free slots first, then strategy-chosen victims. Slots claimed (and
  //      victims chosen) earlier in the batch are excluded, mirroring the
  //      state the sequential per-install path would see after each install;
  //      vectors installed by this batch are never victim candidates within
  //      it (they are exactly the lookahead the batch exists to protect).
  //   B. submit every victim write-back as one batch.
  //   C. per surviving install, in op order: fold the write-back outcome (a
  //      failed write keeps its victim resident and skips the install, the
  //      state the sequential path leaves when file_write throws), then
  //      evict, install, and age the vector in via on_prefetch_install.
  struct Pending {
    std::size_t k = 0;                  ///< ops[k] / items[k]
    std::uint32_t slot = kNoSlot;
    std::uint32_t victim = kNoVector;   ///< kNoVector: free slot, no evict
    bool write_back = false;
    std::size_t wop = 0;                ///< index into wops when write_back
  };
  std::vector<Pending> pending;
  pending.reserve(n);
  std::vector<bool> slot_claimed(slots_.size(), false);

  for (std::size_t k = 0; k < n; ++k) {
    FileBackend::VectorOp& op = ops[k];
    const std::uint32_t index = items[k].index;
    if (!op.ok()) {
      PLFOC_AUDIT_TABLE("prefetch io-error");
      continue;  // demand access retries on the engine thread, catchably
    }
    stats_locked().bytes_read += file_.bytes_per_vector();
    if (op.verify && !op.verify_result.ok()) {
      ++stats_locked().prefetch_stale;
      PLFOC_AUDIT_TABLE("prefetch integrity drop");
      continue;
    }
    if (vector_slot_[index] != kNoSlot ||
        file_generation_[index] != items[k].generation) {
      ++stats_locked().prefetch_stale;
      PLFOC_AUDIT_TABLE("prefetch stale");
      continue;
    }
    Pending p;
    p.k = k;
    for (std::uint32_t s = 0; s < slots_.size(); ++s)
      if (slots_[s].vector == kNoVector && !slot_claimed[s]) {
        p.slot = s;
        break;
      }
    if (p.slot == kNoSlot) {
      std::vector<std::uint32_t> candidates;
      candidates.reserve(slots_.size());
      for (std::uint32_t s = 0; s < slots_.size(); ++s)
        if (slots_[s].pins == 0 && !slot_claimed[s] &&
            slots_[s].vector != kNoVector)
          candidates.push_back(slots_[s].vector);
      if (candidates.empty()) continue;  // everything pinned/claimed: skip
      p.victim = strategy_->choose_victim(
          {candidates.data(), candidates.size()}, index);
      p.slot = vector_slot_[p.victim];
      PLFOC_CHECK(p.slot != kNoSlot);
      p.write_back = options_.write_back_clean || slots_[p.slot].dirty;
      PLFOC_AUDIT_EVENT("evict",
                        auditor_.record_evict(p.victim, slots_[p.slot].pins,
                                              p.write_back));
      PLFOC_CHECK(slots_[p.slot].vector == p.victim &&
                  slots_[p.slot].pins == 0);
    }
    slot_claimed[p.slot] = true;
    pending.push_back(p);
  }

  // B: the eviction-write batch. Victims source their slot buffers directly
  // (stable under mutex_; the staged read data only lands in pass C).
  std::vector<FileBackend::VectorOp> wops;
  std::vector<float> wfloat;  // kSingle conversion staging, one span per wop
  for (Pending& p : pending) {
    if (p.victim == kNoVector || !p.write_back) continue;
    p.wop = wops.size();
    FileBackend::VectorOp wop;
    wop.is_write = true;
    wop.index = p.victim;
    wops.push_back(wop);
  }
  if (!wops.empty()) {
    if (single) {
      wfloat.resize(wops.size() * width_);
      std::size_t w = 0;
      for (const Pending& p : pending) {
        if (p.victim == kNoVector || !p.write_back) continue;
        const double* src = slot_data(p.slot);
        for (std::size_t i = 0; i < width_; ++i)
          wfloat[w * width_ + i] = static_cast<float>(src[i]);
        wops[w].buffer = wfloat.data() + w * width_;
        ++w;
      }
    } else {
      for (const Pending& p : pending)
        if (p.victim != kNoVector && p.write_back)
          wops[p.wop].buffer = slot_data(p.slot);
    }
    file_.submit_vector_ops(wops.data(), wops.size());
    refresh_fault_counters();
  }

  // C: fold outcomes and install, in op order.
  for (const Pending& p : pending) {
    const std::uint32_t index = items[p.k].index;
    if (p.victim != kNoVector) {
      if (p.write_back) {
        const FileBackend::VectorOp& wop = wops[p.wop];
        if (!wop.ok()) continue;  // victim stays resident; skip the install
        ++stats_locked().file_writes;
        stats_locked().bytes_written += file_.bytes_per_vector();
        ++file_generation_[p.victim];
        PLFOC_AUDIT_EVENT("file write", auditor_.record_file_write(p.victim));
      }
      ++stats_locked().evictions;
      if (prefetched_unread_[p.victim]) {
        prefetched_unread_[p.victim] = false;
        ++stats_locked().prefetch_wasted;
      }
      strategy_->on_evict(p.victim);
      vector_slot_[p.victim] = kNoSlot;
      slots_[p.slot].vector = kNoVector;
      slots_[p.slot].dirty = false;
    }
    double* dst = slot_data(p.slot);
    if (single) {
      const float* src = prefetch_float_scratch_.data() + p.k * width_;
      for (std::size_t i = 0; i < width_; ++i)
        dst[i] = static_cast<double>(src[i]);
    } else {
      const double* src = prefetch_scratch_.data() + p.k * width_;
      std::copy(src, src + width_, dst);
    }
    ++stats_locked().prefetch_reads;
    vector_slot_[index] = p.slot;
    slots_[p.slot].vector = index;
    strategy_->on_load(index);
    strategy_->on_prefetch_install(index);
    prefetched_unread_[index] = true;
    PLFOC_AUDIT_TABLE("prefetch");
  }
}

void OutOfCoreStore::flush() {
  MutexLock lock(mutex_);
  if (!file_.async_io()) {
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].vector == kNoVector || !slots_[s].dirty) continue;
      file_write(slots_[s].vector, slot_data(s));
      slots_[s].dirty = false;
    }
    file_.sync();
    PLFOC_AUDIT_TABLE("flush");
    return;
  }
  // Async engines: write every dirty slot as ONE batch, ordered by vector
  // index so file-adjacent vectors sit next to each other and merge into
  // ranged writes. Bookkeeping in op order; the first failure is thrown
  // after the whole batch is folded (failed slots stay dirty), where the
  // sequential path stops at the first failing slot.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dirty;  // {vector, slot}
  for (std::uint32_t s = 0; s < slots_.size(); ++s)
    if (slots_[s].vector != kNoVector && slots_[s].dirty)
      dirty.push_back({slots_[s].vector, s});
  std::sort(dirty.begin(), dirty.end());
  const bool single = options_.disk_precision == DiskPrecision::kSingle;
  std::vector<FileBackend::VectorOp> ops(dirty.size());
  std::vector<float> wfloat(single ? dirty.size() * width_ : 0);
  for (std::size_t k = 0; k < dirty.size(); ++k) {
    ops[k].is_write = true;
    ops[k].index = dirty[k].first;
    if (single) {
      const double* src = slot_data(dirty[k].second);
      for (std::size_t i = 0; i < width_; ++i)
        wfloat[k * width_ + i] = static_cast<float>(src[i]);
      ops[k].buffer = wfloat.data() + k * width_;
    } else {
      ops[k].buffer = slot_data(dirty[k].second);
    }
  }
  if (!ops.empty()) file_.submit_vector_ops(ops.data(), ops.size());
  refresh_fault_counters();
  const FileBackend::VectorOp* failed = nullptr;
  for (std::size_t k = 0; k < dirty.size(); ++k) {
    const FileBackend::VectorOp& op = ops[k];
    if (!op.ok()) {
      if (failed == nullptr) failed = &op;
      continue;  // stays dirty; a later flush (or eviction) retries
    }
    ++stats_locked().file_writes;
    stats_locked().bytes_written += file_.bytes_per_vector();
    ++file_generation_[op.index];
    PLFOC_AUDIT_EVENT("file write", auditor_.record_file_write(op.index));
    slots_[dirty[k].second].dirty = false;
  }
  file_.sync();
  PLFOC_AUDIT_TABLE("flush");
  if (failed != nullptr)
    throw IoError("pwrite", failed->error, failed->fail_offset,
                  failed->attempts, failed->injected);
}

OocStats OutOfCoreStore::stats_snapshot() const {
  MutexLock lock(mutex_);
  OocStats out = stats_locked();
  // Overlay the robustness counters straight from the backend atomics: an
  // IoError unwinds past the stats_ mirroring, so the mirror can be stale
  // exactly when a failure report is being assembled.
  out.faults_injected = file_.faults_injected();
  out.io_retries = file_.io_retries();
  out.io_exhausted = file_.io_exhausted();
  out.corruptions_injected = file_.corruptions_injected();
  out.io_batches = file_.io_batches();
  out.io_coalesced = file_.io_coalesced();
  out.io_write_coalesced = file_.io_write_coalesced();
  return out;
}

void OutOfCoreStore::reset_stats() {
  MutexLock lock(mutex_);
  file_.reset_fault_counters();
  // The async-traffic counters have their own reset: without it a post-reset
  // snapshot overlays pre-reset io_batches/io_coalesced over zeroed stats.
  file_.reset_io_counters();
  stats_locked() = OocStats{};
  // Forget pre-reset prefetch installs, so prefetch_wasted keeps satisfying
  // prefetch_wasted <= prefetch_reads within the new counting window.
  std::fill(prefetched_unread_.begin(), prefetched_unread_.end(), false);
#ifdef PLFOC_AUDIT
  auditor_.reset_stats_baseline();
#endif
}

}  // namespace plfoc
