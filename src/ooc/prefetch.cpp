#include "ooc/prefetch.hpp"

namespace plfoc {

Prefetcher::Prefetcher(OutOfCoreStore& store, std::size_t lookahead)
    : store_(store), lookahead_(lookahead == 0 ? 1 : lookahead) {
  store_.attach_prefetch_guard();
  thread_ = std::thread([this] { worker(); });
}

Prefetcher::~Prefetcher() { stop(); }

void Prefetcher::stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  idle_.notify_all();
  // joinable() is the one-shot gate that makes repeated stop() calls (and
  // the destructor after an explicit stop()) no-ops.
  if (thread_.joinable()) {
    thread_.join();
    store_.detach_prefetch_guard();
  }
}

void Prefetcher::submit(std::vector<std::uint32_t> upcoming) {
  {
    MutexLock lock(mutex_);
    if (stop_) return;  // worker is gone; accepting a plan would strand it
    plan_ = std::move(upcoming);
    next_ = 0;
    cursor_ = 0;
  }
  wake_.notify_one();
}

void Prefetcher::notify_progress(std::size_t consumed) {
  {
    MutexLock lock(mutex_);
    if (stop_) return;
    if (consumed <= cursor_) return;
    cursor_ = consumed > plan_.size() ? plan_.size() : consumed;
    // Entries the engine already consumed are no longer worth fetching.
    if (next_ < cursor_) next_ = cursor_;
  }
  wake_.notify_one();
}

void Prefetcher::drain() {
  MutexLock lock(mutex_);
  while (!stop_ && (next_ < window_end() || busy_)) idle_.wait(lock);
}

void Prefetcher::worker() {
  MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && next_ >= window_end()) wake_.wait(lock);
    if (stop_) {
      idle_.notify_all();  // wake drain()ers parked before stop() was called
      return;
    }
    const std::uint32_t index = plan_[next_++];
    busy_ = true;
    lock.unlock();
    // The store's own mutex serialises against the engine; prefetch never
    // evicts pinned vectors and silently skips when everything is pinned or
    // the vector is resident already.
    store_.prefetch(index);
    lock.lock();
    busy_ = false;
    if (next_ >= window_end()) idle_.notify_all();
  }
}

}  // namespace plfoc
