#include "ooc/prefetch.hpp"

namespace plfoc {

Prefetcher::Prefetcher(OutOfCoreStore& store, std::size_t lookahead)
    : store_(store), lookahead_(lookahead == 0 ? 1 : lookahead) {
  store_.attach_prefetch_guard();
  thread_ = std::thread([this] { worker(); });
}

Prefetcher::~Prefetcher() { stop(); }

void Prefetcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  idle_.notify_all();
  // joinable() is the one-shot gate that makes repeated stop() calls (and
  // the destructor after an explicit stop()) no-ops.
  if (thread_.joinable()) {
    thread_.join();
    store_.detach_prefetch_guard();
  }
}

void Prefetcher::submit(std::vector<std::uint32_t> upcoming) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // worker is gone; accepting a plan would strand it
    plan_ = std::move(upcoming);
    next_ = 0;
    cursor_ = 0;
  }
  wake_.notify_one();
}

void Prefetcher::notify_progress(std::size_t consumed) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    if (consumed <= cursor_) return;
    cursor_ = consumed > plan_.size() ? plan_.size() : consumed;
    // Entries the engine already consumed are no longer worth fetching.
    if (next_ < cursor_) next_ = cursor_;
  }
  wake_.notify_one();
}

void Prefetcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock,
             [this] { return stop_ || (next_ >= window_end() && !busy_); });
}

void Prefetcher::worker() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stop_ || next_ < window_end(); });
    if (stop_) {
      idle_.notify_all();  // wake drain()ers parked before stop() was called
      return;
    }
    const std::uint32_t index = plan_[next_++];
    busy_ = true;
    lock.unlock();
    // The store's own mutex serialises against the engine; prefetch never
    // evicts pinned vectors and silently skips when everything is pinned or
    // the vector is resident already.
    store_.prefetch(index);
    lock.lock();
    busy_ = false;
    if (next_ >= window_end()) idle_.notify_all();
  }
}

}  // namespace plfoc
