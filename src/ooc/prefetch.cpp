#include "ooc/prefetch.hpp"

namespace plfoc {

Prefetcher::Prefetcher(OutOfCoreStore& store, std::size_t lookahead)
    : store_(store), lookahead_(lookahead == 0 ? 1 : lookahead) {
  store_.attach_prefetch_guard();
  thread_ = std::thread([this] { worker(); });
}

Prefetcher::~Prefetcher() { stop(); }

void Prefetcher::stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  idle_.notify_all();
  // joinable() is the one-shot gate that makes repeated stop() calls (and
  // the destructor after an explicit stop()) no-ops.
  if (thread_.joinable()) {
    thread_.join();
    store_.detach_prefetch_guard();
  }
}

void Prefetcher::submit(std::vector<std::uint32_t> upcoming) {
  {
    MutexLock lock(mutex_);
    if (stop_) return;  // worker is gone; accepting a plan would strand it
    plan_ = std::move(upcoming);
    next_ = 0;
    cursor_ = 0;
  }
  wake_.notify_one();
}

void Prefetcher::notify_progress(std::size_t consumed) {
  {
    MutexLock lock(mutex_);
    if (stop_) return;
    if (consumed <= cursor_) return;
    cursor_ = consumed > plan_.size() ? plan_.size() : consumed;
    // Entries the engine already consumed are no longer worth fetching.
    if (next_ < cursor_) next_ = cursor_;
  }
  wake_.notify_one();
}

void Prefetcher::drain() {
  MutexLock lock(mutex_);
  while (!stop_ && (next_ < window_end() || busy_)) idle_.wait(lock);
}

void Prefetcher::worker() {
  MutexLock lock(mutex_);
  std::vector<std::uint32_t> batch;
  for (;;) {
    while (!stop_ && next_ >= window_end()) {
      // Window empty *right now, under the lock*. A notify_progress can
      // empty it remotely (skipping entries the engine already consumed)
      // while only waking wake_ — so the worker, not the mutator, owns
      // telling drain()ers the window drained. Without this notify a
      // drain() that raced such a skip would sleep until stop().
      idle_.notify_all();
      wake_.wait(lock);
    }
    if (stop_) {
      idle_.notify_all();  // wake drain()ers parked before stop() was called
      return;
    }
    // Pop up to the store's preferred batch size. The window edge is read
    // under the lock on every iteration, so a batch never reaches past a
    // plan swap or cursor move that landed while the previous batch was in
    // flight.
    const std::size_t limit = store_.prefetch_batch_limit();
    batch.clear();
    while (next_ < window_end() && batch.size() < limit)
      batch.push_back(plan_[next_++]);
    busy_ = true;
    lock.unlock();
    // The store's own mutex serialises against the engine; prefetch never
    // evicts pinned vectors and silently skips when everything is pinned or
    // the vector is resident already.
    store_.prefetch_batch(batch.data(), batch.size());
    lock.lock();
    busy_ = false;
    if (next_ >= window_end()) idle_.notify_all();
  }
}

}  // namespace plfoc
