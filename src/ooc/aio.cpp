#include "ooc/aio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "util/checks.hpp"
#include "util/mutex.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PLFOC_HAVE_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace plfoc {
namespace {

// Local splitmix64 finalizer (the repo-wide mixing permutation; duplicated
// here because file_backend.hpp includes this header's sibling, not the
// reverse).
std::uint64_t aio_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// O_DIRECT demands 512-aligned position, length and buffer; an attempt that
/// violates any of the three goes through the buffered descriptor instead.
int pick_fd(const AioOp& op, std::uint64_t position, std::size_t request,
            const char* cursor) {
  if (op.direct_fd >= 0 && position % 512 == 0 && request % 512 == 0 &&
      reinterpret_cast<std::uintptr_t>(cursor) % 512 == 0)
    return op.direct_fd;
  return op.fd;
}

/// The per-op retry/injection state machine — a faithful mirror of
/// FileBackend::transfer_all, with the counter side effects accumulated into
/// the completion (instead of backend atomics) and the terminal IoError
/// reported as completion fields (instead of thrown): the engines run this
/// off the calling thread, where a throw would terminate the process.
AioCompletion run_transfer(const AioOp& op, const AioEngineOptions& options) {
  AioCompletion completion;
  completion.token = op.token;
  char* cursor = static_cast<char*>(op.buffer);
  std::size_t remaining = op.bytes;
  unsigned consecutive_failures = 0;
  unsigned faults_this_transfer = 0;
  std::uint64_t backoff_us = options.retry.backoff_initial_us;
  while (remaining > 0) {
    const std::uint64_t position = op.offset + (op.bytes - remaining);
    std::size_t request = remaining;
    int simulated_errno = 0;
    if (options.injector != nullptr) {
      const FaultDecision fault = const_cast<FaultInjector*>(options.injector)
                                      ->next(op.is_write, faults_this_transfer);
      if (fault.kind != FaultKind::kNone) ++completion.faults;
      switch (fault.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kLatency:
          // A stall, not an error: proceeds untouched, exempt from the burst
          // cap (same contract as the sequential loop).
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.latency_ns));
          break;
        case FaultKind::kShortTransfer:
          ++faults_this_transfer;
          if (remaining > 1)
            request = 1 + static_cast<std::size_t>(
                              fault.fraction *
                              static_cast<double>(remaining - 1));
          break;
        case FaultKind::kEintr:
          ++faults_this_transfer;
          simulated_errno = EINTR;
          break;
        case FaultKind::kEio:
          ++faults_this_transfer;
          simulated_errno = EIO;
          break;
        case FaultKind::kEnospc:
          ++faults_this_transfer;
          simulated_errno = op.is_write ? ENOSPC : EIO;
          break;
      }
    }
    ssize_t moved;
    if (simulated_errno != 0) {
      // An injected error models a syscall that transferred nothing.
      moved = -1;
      errno = simulated_errno;
    } else {
      const int fd = pick_fd(op, position, request, cursor);
      if (op.is_write) {
        moved = ::pwrite(fd, cursor, request, static_cast<off_t>(position));
      } else {
        moved = ::pread(fd, cursor, request, static_cast<off_t>(position));
      }
    }
    if (moved < 0) {
      const int error = errno;
      if (error == EINTR) {
        ++completion.retries;  // mandatory POSIX handling, never budgeted
        continue;
      }
      if (consecutive_failures < options.retry.max_retries) {
        ++consecutive_failures;
        ++completion.retries;
        if (backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = std::min<std::uint64_t>(
              options.retry.backoff_max_us,
              static_cast<std::uint64_t>(static_cast<double>(backoff_us) *
                                         options.retry.backoff_multiplier));
        }
        continue;  // resume from `position`: prior progress is kept
      }
      completion.exhausted = 1;
      completion.error = error;
      completion.fail_offset = position;
      completion.attempts = consecutive_failures + 1;
      completion.injected = simulated_errno != 0;
      return completion;
    }
    PLFOC_REQUIRE(moved > 0,
                  op.is_write
                      ? "pwrite transferred no bytes"
                      : "pread hit end of vector file (file truncated?)");
    if (static_cast<std::size_t>(moved) < remaining) ++completion.retries;
    consecutive_failures = 0;
    backoff_us = options.retry.backoff_initial_us;
    cursor += moved;
    remaining -= static_cast<std::size_t>(moved);
  }
  return completion;
}

/// Ops execute inline at submit() in submission order; completions pop FIFO.
/// This is the sequential FileBackend loop wearing the queue interface.
class SyncAioEngine final : public AioEngine {
 public:
  explicit SyncAioEngine(const AioEngineOptions& options)
      : options_(options) {}
  const char* name() const override { return "sync"; }

  void submit(const AioOp* ops, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i)
      done_.push_back(run_transfer(ops[i], options_));
  }

  std::size_t wait(AioCompletion* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max && !done_.empty()) {
      out[n++] = done_.front();
      done_.pop_front();
    }
    return n;
  }

 private:
  AioEngineOptions options_;
  std::deque<AioCompletion> done_;
};

/// The test backend: ops still execute eagerly in submission order (file
/// mutation order stays deterministic, and in-batch ops never alias by the
/// engine contract), but the batch's completions are delivered in a
/// seed-chosen permutation. Exercises every reordering the async engines can
/// produce, reproducibly.
class DeterministicAioEngine final : public AioEngine {
 public:
  explicit DeterministicAioEngine(const AioEngineOptions& options)
      : options_(options) {}
  const char* name() const override { return "deterministic"; }

  void submit(const AioOp* ops, std::size_t count) override {
    std::vector<AioCompletion> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      batch.push_back(run_transfer(ops[i], options_));
    permute(batch);
    for (const AioCompletion& completion : batch) done_.push_back(completion);
  }

  std::size_t wait(AioCompletion* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max && !done_.empty()) {
      out[n++] = done_.front();
      done_.pop_front();
    }
    return n;
  }

 private:
  void permute(std::vector<AioCompletion>& batch) {
    const std::uint64_t batch_id = batch_counter_++;
    if (options_.permute_seed == kAioOrderIdentity || batch.size() < 2) return;
    if (options_.permute_seed == kAioOrderReverse) {
      std::reverse(batch.begin(), batch.end());
      return;
    }
    // Fisher–Yates keyed by (seed, batch index): every batch of a run sees a
    // different but fully reproducible delivery order.
    std::uint64_t state = aio_mix64(options_.permute_seed ^ aio_mix64(batch_id));
    for (std::size_t i = batch.size() - 1; i > 0; --i) {
      state = aio_mix64(state);
      std::swap(batch[i], batch[state % (i + 1)]);
    }
  }

  AioEngineOptions options_;
  std::uint64_t batch_counter_ = 0;
  std::deque<AioCompletion> done_;
};

/// Portable async backend: `depth` worker threads drain a shared submission
/// queue; completions arrive in whatever order the transfers finish. Even on
/// a single core this overlaps device (and injected-latency) waits across
/// ops — the disk-bound regime's win does not need parallel CPUs.
class ThreadPoolAioEngine final : public AioEngine {
 public:
  explicit ThreadPoolAioEngine(const AioEngineOptions& options)
      : options_(options) {
    const unsigned n = std::max(1u, options_.depth);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker(); });
  }

  ~ThreadPoolAioEngine() override {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    work_.notify_all();
    for (std::thread& thread : workers_) thread.join();
  }

  const char* name() const override { return "threads"; }

  void submit(const AioOp* ops, std::size_t count) override {
    {
      MutexLock lock(mutex_);
      for (std::size_t i = 0; i < count; ++i) queue_.push_back(ops[i]);
      pending_ += count;
    }
    if (count == 1)
      work_.notify_one();
    else
      work_.notify_all();
  }

  std::size_t wait(AioCompletion* out, std::size_t max) override {
    MutexLock lock(mutex_);
    while (done_.empty() && pending_ > 0) reaped_.wait(lock);
    std::size_t n = 0;
    while (n < max && !done_.empty()) {
      out[n++] = done_.front();
      done_.pop_front();
    }
    return n;
  }

 private:
  void worker() {
    MutexLock lock(mutex_);
    for (;;) {
      while (!stop_ && queue_.empty()) work_.wait(lock);
      if (stop_) return;
      const AioOp op = queue_.front();
      queue_.pop_front();
      lock.unlock();
      const AioCompletion completion = run_transfer(op, options_);
      lock.lock();
      done_.push_back(completion);
      --pending_;
      reaped_.notify_all();
    }
  }

  AioEngineOptions options_;
  mutable Mutex mutex_;
  CondVar work_;
  CondVar reaped_;
  std::deque<AioOp> queue_ PLFOC_GUARDED_BY(mutex_);
  std::deque<AioCompletion> done_ PLFOC_GUARDED_BY(mutex_);
  /// Ops submitted but not yet moved to done_.
  std::size_t pending_ PLFOC_GUARDED_BY(mutex_) = 0;
  bool stop_ PLFOC_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

#ifdef PLFOC_HAVE_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// Linux io_uring backend over raw syscalls (the toolchain ships no
/// liburing): one SQ/CQ ring pair, ops resubmitted from the completion
/// handler on short transfers, EINTR, and budgeted transient errors — the
/// same state machine as run_transfer, driven by CQEs instead of a loop.
/// Injected faults are decided at (re)submission: a simulated errno never
/// reaches the kernel, it synthesizes a failed attempt inline.
class UringAioEngine final : public AioEngine {
 public:
  static std::unique_ptr<UringAioEngine> create(
      const AioEngineOptions& options) {
    auto engine = std::unique_ptr<UringAioEngine>(new UringAioEngine(options));
    if (!engine->init()) return nullptr;
    return engine;
  }

  ~UringAioEngine() override {
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED)
      ::munmap(sq_ring_, sq_ring_bytes_);
    if (!single_mmap_ && cq_ring_ != nullptr && cq_ring_ != MAP_FAILED)
      ::munmap(cq_ring_, cq_ring_bytes_);
    if (sqes_ != nullptr && static_cast<void*>(sqes_) != MAP_FAILED)
      ::munmap(sqes_, sqe_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "uring"; }

  void submit(const AioOp* ops, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t slot;
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
      } else {
        slot = pending_.size();
        pending_.emplace_back();
      }
      Pending& p = pending_[slot];
      p = Pending{};
      p.op = ops[i];
      p.backoff_us = options_.retry.backoff_initial_us;
      p.completion.token = ops[i].token;
      ++in_flight_;
      if (p.op.bytes == 0) {
        finish(slot);
        continue;
      }
      drive(slot);
    }
    flush(0);  // kick the kernel without waiting
  }

  std::size_t wait(AioCompletion* out, std::size_t max) override {
    while (done_.empty() && in_flight_ > 0) {
      flush(1);
      reap();
    }
    std::size_t n = 0;
    while (n < max && !done_.empty()) {
      out[n++] = done_.front();
      done_.pop_front();
    }
    return n;
  }

 private:
  struct Pending {
    AioOp op;
    std::size_t done = 0;  ///< bytes completed so far
    unsigned consecutive_failures = 0;
    unsigned faults_this_transfer = 0;
    std::uint64_t backoff_us = 0;
    AioCompletion completion;
  };

  explicit UringAioEngine(const AioEngineOptions& options)
      : options_(options) {}

  bool init() {
    io_uring_params params;
    std::memset(&params, 0, sizeof params);
    const unsigned entries =
        std::min(1024u, std::max(1u, options_.depth));
    ring_fd_ = sys_io_uring_setup(entries, &params);
    if (ring_fd_ < 0) return false;

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(__u32);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_)
      sq_ring_bytes_ = cq_ring_bytes_ =
          std::max(sq_ring_bytes_, cq_ring_bytes_);
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    if (single_mmap_) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) return false;
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) return false;

    char* sq = static_cast<char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_entries_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_entries);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  /// Run injection/retry steps for `slot` until an SQE is pushed or the op
  /// finishes (success on zero remaining is impossible here; exhaustion ends
  /// it). Simulated errnos synthesize a failed attempt without the kernel.
  void drive(std::size_t slot) {
    for (;;) {
      Pending& p = pending_[slot];
      const std::size_t remaining = p.op.bytes - p.done;
      const std::uint64_t position = p.op.offset + p.done;
      std::size_t request = remaining;
      int simulated_errno = 0;
      if (options_.injector != nullptr) {
        const FaultDecision fault =
            const_cast<FaultInjector*>(options_.injector)
                ->next(p.op.is_write, p.faults_this_transfer);
        if (fault.kind != FaultKind::kNone) ++p.completion.faults;
        switch (fault.kind) {
          case FaultKind::kNone:
            break;
          case FaultKind::kLatency:
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(options_.latency_ns));
            break;
          case FaultKind::kShortTransfer:
            ++p.faults_this_transfer;
            if (remaining > 1)
              request = 1 + static_cast<std::size_t>(
                                fault.fraction *
                                static_cast<double>(remaining - 1));
            break;
          case FaultKind::kEintr:
            ++p.faults_this_transfer;
            simulated_errno = EINTR;
            break;
          case FaultKind::kEio:
            ++p.faults_this_transfer;
            simulated_errno = EIO;
            break;
          case FaultKind::kEnospc:
            ++p.faults_this_transfer;
            simulated_errno = p.op.is_write ? ENOSPC : EIO;
            break;
        }
      }
      if (simulated_errno != 0) {
        if (!absorb_failure(p, simulated_errno, position, true)) {
          finish(slot);
          return;
        }
        continue;  // synthesized attempt failed transiently: try again
      }
      push_sqe(slot, position, request);
      return;
    }
  }

  /// One failed attempt: EINTR retries unconditionally; transient errors
  /// consume the bounded budget (with backoff); exhaustion records the typed
  /// failure in the completion. Returns false when the op is finished.
  bool absorb_failure(Pending& p, int error, std::uint64_t position,
                      bool injected) {
    if (error == EINTR) {
      ++p.completion.retries;
      return true;
    }
    if (p.consecutive_failures < options_.retry.max_retries) {
      ++p.consecutive_failures;
      ++p.completion.retries;
      if (p.backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(p.backoff_us));
        p.backoff_us = std::min<std::uint64_t>(
            options_.retry.backoff_max_us,
            static_cast<std::uint64_t>(static_cast<double>(p.backoff_us) *
                                       options_.retry.backoff_multiplier));
      }
      return true;
    }
    p.completion.exhausted = 1;
    p.completion.error = error;
    p.completion.fail_offset = position;
    p.completion.attempts = p.consecutive_failures + 1;
    p.completion.injected = injected;
    return false;
  }

  void push_sqe(std::size_t slot, std::uint64_t position,
                std::size_t request) {
    // Ring full: hand what we have to the kernel first.
    while (*sq_tail_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >=
           sq_entries_)
      flush(1);
    Pending& p = pending_[slot];
    const unsigned tail = *sq_tail_;
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof *sqe);
    sqe->opcode = p.op.is_write ? IORING_OP_WRITE : IORING_OP_READ;
    sqe->fd = pick_fd(p.op, position, request,
                      static_cast<const char*>(p.op.buffer) + p.done);
    sqe->addr = reinterpret_cast<std::uint64_t>(
        static_cast<char*>(p.op.buffer) + p.done);
    sqe->len = static_cast<unsigned>(request);
    sqe->off = position;
    sqe->user_data = slot;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    ++to_submit_;
  }

  void flush(unsigned min_complete) {
    for (;;) {
      const int rc = sys_io_uring_enter(ring_fd_, to_submit_, min_complete,
                                        IORING_ENTER_GETEVENTS);
      if (rc >= 0) {
        to_submit_ -= static_cast<unsigned>(rc);
        return;
      }
      PLFOC_REQUIRE(errno == EINTR, std::string("io_uring_enter failed: ") +
                                        std::strerror(errno));
    }
  }

  void reap() {
    unsigned head = *cq_head_;
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    std::vector<std::pair<std::size_t, int>> results;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      results.emplace_back(static_cast<std::size_t>(cqe.user_data), cqe.res);
      ++head;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    for (const auto& [slot, res] : results) {
      Pending& p = pending_[slot];
      if (res < 0) {
        if (!absorb_failure(p, -res, p.op.offset + p.done, false))
          finish(slot);
        else
          drive(slot);
        continue;
      }
      PLFOC_REQUIRE(res > 0,
                    p.op.is_write
                        ? "pwrite transferred no bytes"
                        : "pread hit end of vector file (file truncated?)");
      p.done += static_cast<std::size_t>(res);
      if (p.done < p.op.bytes) ++p.completion.retries;
      p.consecutive_failures = 0;
      p.backoff_us = options_.retry.backoff_initial_us;
      if (p.done >= p.op.bytes)
        finish(slot);
      else
        drive(slot);
    }
    if (to_submit_ > 0) flush(0);  // resubmissions from this reap
  }

  void finish(std::size_t slot) {
    done_.push_back(pending_[slot].completion);
    free_.push_back(slot);
    --in_flight_;
  }

  AioEngineOptions options_;
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;
  bool single_mmap_ = false;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned to_submit_ = 0;
  std::vector<Pending> pending_;
  std::vector<std::size_t> free_;
  std::deque<AioCompletion> done_;
  std::size_t in_flight_ = 0;
};

#endif  // PLFOC_HAVE_URING

}  // namespace

const char* aio_engine_name(AioEngineKind kind) {
  switch (kind) {
    case AioEngineKind::kSync: return "sync";
    case AioEngineKind::kThreads: return "threads";
    case AioEngineKind::kUring: return "uring";
    case AioEngineKind::kDeterministic: return "deterministic";
  }
  return "?";
}

AioEngineKind parse_aio_engine(const std::string& name) {
  if (name == "sync") return AioEngineKind::kSync;
  if (name == "threads") return AioEngineKind::kThreads;
  if (name == "uring") return AioEngineKind::kUring;
  if (name == "deterministic") return AioEngineKind::kDeterministic;
  throw Error("unknown I/O engine '" + name +
              "' (expected sync | threads | uring | deterministic)");
}

void AioEngine::collect(AioCompletion* out, std::size_t count) {
  std::size_t got = 0;
  while (got < count) {
    const std::size_t n = wait(out + got, count - got);
    PLFOC_REQUIRE(n > 0,
                  "AioEngine ran dry before delivering every completion of a "
                  "batch — a completion was lost");
    got += n;
  }
}

bool aio_uring_supported() {
#ifdef PLFOC_HAVE_URING
  io_uring_params params;
  std::memset(&params, 0, sizeof params);
  const int fd = sys_io_uring_setup(1, &params);
  if (fd < 0) return false;
  ::close(fd);
  return true;
#else
  return false;
#endif
}

std::unique_ptr<AioEngine> make_aio_engine(const AioEngineOptions& options) {
  switch (options.kind) {
    case AioEngineKind::kSync:
      return std::make_unique<SyncAioEngine>(options);
    case AioEngineKind::kThreads:
      return std::make_unique<ThreadPoolAioEngine>(options);
    case AioEngineKind::kUring:
#ifdef PLFOC_HAVE_URING
      if (auto engine = UringAioEngine::create(options)) return engine;
#endif
      // The kernel (or seccomp, or RLIMIT_MEMLOCK) refused the ring: degrade
      // to the portable pool rather than failing the run.
      return std::make_unique<ThreadPoolAioEngine>(options);
    case AioEngineKind::kDeterministic:
      return std::make_unique<DeterministicAioEngine>(options);
  }
  return std::make_unique<SyncAioEngine>(options);
}

std::shared_ptr<AioEngineHandle> make_shared_aio_engine(AioEngineKind kind,
                                                        unsigned depth) {
  if (kind == AioEngineKind::kSync) return nullptr;
  AioEngineOptions options;
  options.kind = kind;
  options.depth = depth < 1 ? 1 : depth;
  auto handle = std::make_shared<AioEngineHandle>();
  handle->kind = kind;
  handle->depth = options.depth;
  MutexLock lock(handle->mutex);
  handle->engine = make_aio_engine(options);
  return handle;
}

}  // namespace plfoc
