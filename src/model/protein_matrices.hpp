// Empirical protein model support.
//
// The paper's experiments are DNA-only; protein (20-state) support exists to
// exercise the Sec. 3.1 memory model ((n−2)·8·80·s bytes under Γ4) and the
// 20-state kernels. We deliberately do not embed the published WAG/LG/JTT
// constant tables (this build is offline and hand-typing 190 constants per
// matrix invites silent transcription errors); instead:
//
//  * `poisson_protein()` (rate_matrix.hpp) is a real published model;
//  * `read_paml_dat()` loads any empirical matrix from the standard PAML
//    .dat format (lower-triangular exchangeabilities followed by 20
//    frequencies), so WAG.dat / LG.dat etc. drop in unchanged;
//  * `synthetic_protein_model(seed)` produces a deterministic, strictly
//    positive, heterogeneous reversible matrix for tests and benchmarks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "model/rate_matrix.hpp"

namespace plfoc {

/// Parse a PAML .dat empirical amino-acid model file: 19 rows of the strict
/// lower triangle of the symmetric exchangeability matrix, then 20
/// equilibrium frequencies. Whitespace/newline layout is free-form.
SubstitutionModel read_paml_dat(std::istream& in, std::string name);
SubstitutionModel read_paml_dat_file(const std::string& path);

/// Deterministic pseudo-empirical 20-state model: heterogeneous
/// exchangeabilities and frequencies derived from `seed`. Valid and
/// reversible by construction.
SubstitutionModel synthetic_protein_model(std::uint64_t seed);

}  // namespace plfoc
