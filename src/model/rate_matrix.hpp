// Time-reversible substitution models.
//
// A model is (equilibrium frequencies π, symmetric exchangeabilities ρ). The
// instantaneous rate matrix is Q_ij = ρ_ij π_j (i≠j), diagonal set so rows
// sum to zero, globally rescaled so the expected substitution rate
// -Σ_i π_i Q_ii equals 1 (branch lengths are then expected substitutions per
// site — the RAxML convention).
#pragma once

#include <string>
#include <vector>

#include "msa/datatype.hpp"

namespace plfoc {

struct SubstitutionModel {
  std::string name;
  DataType type = DataType::kDna;
  /// Equilibrium frequencies, size = num_states(type), strictly positive,
  /// summing to 1.
  std::vector<double> frequencies;
  /// Upper-triangular exchangeabilities ρ_ij for i<j in row order
  /// ((0,1), (0,2), ..., (S-2,S-1)); size S(S-1)/2, strictly positive.
  std::vector<double> exchangeabilities;

  unsigned states() const { return num_states(type); }
  /// Index of ρ_ij in `exchangeabilities` (i < j).
  static std::size_t pair_index(unsigned i, unsigned j, unsigned states);
  /// Throws plfoc::Error if sizes/positivity/normalisation are violated.
  void validate() const;
};

// --- DNA models --------------------------------------------------------------

/// Jukes-Cantor 1969: uniform frequencies, all exchangeabilities equal.
SubstitutionModel jc69();

/// Kimura 1980: uniform frequencies, transition/transversion ratio kappa.
SubstitutionModel k80(double kappa);

/// Hasegawa-Kishino-Yano 1985: arbitrary frequencies + kappa.
SubstitutionModel hky85(double kappa, std::vector<double> frequencies);

/// General time-reversible: 6 rates (AC, AG, AT, CG, CT, GT) + frequencies.
SubstitutionModel gtr(std::vector<double> rates, std::vector<double> frequencies);

// --- Protein models ----------------------------------------------------------

/// Poisson (the 20-state JC analogue): uniform frequencies and rates.
SubstitutionModel poisson_protein();

/// Build the dense S×S rate matrix Q (row-major), scaled to mean rate 1.
std::vector<double> build_rate_matrix(const SubstitutionModel& model);

}  // namespace plfoc
