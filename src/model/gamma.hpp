// Discrete Γ rate heterogeneity (Yang 1994) and the special functions it
// needs. The paper runs everything under "the standard (and biologically
// meaningful) Γ model of rate heterogeneity with 4 discrete rates", which
// multiplies ancestral-vector memory by the category count (Sec. 3.1).
#pragma once

#include <vector>

namespace plfoc {

/// Regularised lower incomplete gamma P(a, x) (series / continued fraction).
double regularized_gamma_p(double a, double x);

/// Quantile of the Gamma(shape, rate) distribution: smallest x with
/// P(shape, rate·x) >= p. Bracketed Newton iteration; p in (0, 1).
double gamma_quantile(double p, double shape, double rate);

/// The K category rates of the discrete Γ approximation with shape alpha
/// (mean-of-equal-probability-classes discretisation; the rates average
/// to exactly 1 after normalisation). K >= 1; K == 1 returns {1.0}.
std::vector<double> discrete_gamma_rates(double alpha, unsigned categories);

}  // namespace plfoc
