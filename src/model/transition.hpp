// Transition probability matrices P(t) = V e^{Λt} V^{-1} and their first two
// derivatives in t (needed by Newton-Raphson branch-length optimisation).
#pragma once

#include <vector>

#include "model/eigen.hpp"

namespace plfoc {

/// Fill `out` (row-major S×S) with P(t). t >= 0.
void transition_matrix(const EigenSystem& eigen, double t, double* out);

/// Fill p, dp, d2p (each row-major S×S, any may be nullptr) with P(t) and its
/// first and second derivatives with respect to t.
void transition_derivatives(const EigenSystem& eigen, double t, double* p,
                            double* dp, double* d2p);

/// Per-category transition matrices for a branch: out has
/// categories × S × S entries; category c uses effective time t * rates[c].
void category_transition_matrices(const EigenSystem& eigen, double t,
                                  const std::vector<double>& rates,
                                  std::vector<double>& out);

}  // namespace plfoc
