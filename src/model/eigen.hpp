// Eigendecomposition of time-reversible rate matrices.
//
// For a reversible Q with stationary distribution π, the similarity transform
// B = Π^{1/2} Q Π^{-1/2} (Π = diag(π)) is symmetric, so it has a real
// orthogonal eigendecomposition B = U Λ Uᵀ (computed here by cyclic Jacobi —
// states ≤ 20, so a dense O(S³) method is ideal). Then
//   Q = V Λ V^{-1} with V = Π^{-1/2} U and V^{-1} = Uᵀ Π^{1/2},
// and the transition matrix is P(t) = V e^{Λt} V^{-1}.
#pragma once

#include <vector>

#include "model/rate_matrix.hpp"

namespace plfoc {

struct EigenSystem {
  unsigned states = 0;
  std::vector<double> eigenvalues;  ///< λ_k, size S (one is ~0, rest negative)
  std::vector<double> right;        ///< V, row-major S×S (columns = eigenvectors)
  std::vector<double> inverse;      ///< V^{-1}, row-major S×S
};

/// Decompose a validated reversible model. Deterministic; throws on invalid
/// models, aborts if Jacobi fails to converge (cannot happen for symmetric
/// input within the iteration bound).
EigenSystem decompose(const SubstitutionModel& model);

/// Cyclic Jacobi eigensolver for a symmetric matrix (row-major n×n).
/// Outputs eigenvalues and an orthogonal matrix whose *columns* are the
/// corresponding eigenvectors. Exposed for testing.
void jacobi_eigen(std::vector<double> symmetric, unsigned n,
                  std::vector<double>& eigenvalues,
                  std::vector<double>& eigenvectors);

}  // namespace plfoc
