#include "model/gamma.hpp"

#include <cmath>

#include "util/checks.hpp"

namespace plfoc {
namespace {

/// Thread-safe log-Gamma. std::lgamma writes the process-global `signgam`
/// on POSIX, a data race once the batch service constructs engines (and
/// hence discrete-Γ rates) from several workers at once; lgamma_r keeps the
/// sign in a local. All call sites here have x > 0, so the sign is unused.
double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(_GNU_SOURCE)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  // Non-glibc fallback only; every caller has x > 0 and ignores the sign,
  // so the process-global signgam write cannot be observed.
  // plfoc-lint: allow(mt-unsafe-libc): signgam race benign (x > 0)
  return std::lgamma(x);
#endif
}

/// P(a, x) by its power series — converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Q(a, x) = 1 - P(a, x) by Lentz's continued fraction — for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  PLFOC_CHECK(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double gamma_quantile(double p, double shape, double rate) {
  PLFOC_CHECK(p > 0.0 && p < 1.0);
  PLFOC_CHECK(shape > 0.0 && rate > 0.0);

  // Solve P(shape, y) = p for the unit-rate variable y (x = y / rate) in
  // u = log(y): small shapes put the quantile at ~10^{-1/shape} scales, so a
  // linear-space bracket loses all relative precision there.
  const double g = log_gamma(shape);

  // Bracket in u. A safe lower start comes from the series leading term
  // P(a, y) ~ y^a / (a Γ(a)), i.e. y0 = (p a Γ(a))^{1/a}, an underestimate
  // up to the e^{-y} factor; expand outward to be safe.
  double u_lo = (std::log(p * shape) + g) / shape - 1.0;
  if (!std::isfinite(u_lo)) u_lo = -700.0;
  double u_hi = std::log(shape + 10.0 * std::sqrt(shape) + 10.0);
  while (regularized_gamma_p(shape, std::exp(u_lo)) > p) u_lo -= 5.0;
  while (regularized_gamma_p(shape, std::exp(u_hi)) < p) u_hi += 1.0;

  double u = 0.5 * (u_lo + u_hi);
  for (int iter = 0; iter < 300; ++iter) {
    const double y = std::exp(u);
    const double f = regularized_gamma_p(shape, y) - p;
    if (f > 0.0)
      u_hi = u;
    else
      u_lo = u;
    // dP/du = pdf(y) * y = exp(a ln y - y - lgamma(a)).
    const double dfdu = std::exp(shape * u - y - g);
    double next = (dfdu > 1e-300) ? u - f / dfdu : 0.5 * (u_lo + u_hi);
    if (!(next > u_lo) || !(next < u_hi)) next = 0.5 * (u_lo + u_hi);
    if (std::abs(next - u) < 1e-14) {
      u = next;
      break;
    }
    u = next;
  }
  return std::exp(u) / rate;
}

std::vector<double> discrete_gamma_rates(double alpha, unsigned categories) {
  PLFOC_CHECK(alpha > 0.0);
  PLFOC_CHECK(categories >= 1);
  if (categories == 1) return {1.0};

  const unsigned k = categories;
  // Cut points of K equal-probability classes of Gamma(alpha, alpha)
  // (mean 1), then the mean rate within each class via the identity
  //   E[X · 1{X < q}] = P(alpha + 1, alpha·q)   for X ~ Gamma(alpha, alpha).
  std::vector<double> upper_mass(k, 1.0);
  for (unsigned i = 0; i + 1 < k; ++i) {
    const double q =
        gamma_quantile(static_cast<double>(i + 1) / k, alpha, alpha);
    upper_mass[i] = regularized_gamma_p(alpha + 1.0, alpha * q);
  }
  std::vector<double> rates(k);
  double previous = 0.0;
  for (unsigned i = 0; i < k; ++i) {
    rates[i] = (upper_mass[i] - previous) * k;
    previous = upper_mass[i];
  }
  // Normalise the (already ~1) mean exactly to 1 so branch lengths keep their
  // expected-substitutions interpretation.
  double mean = 0.0;
  for (double r : rates) mean += r;
  mean /= k;
  PLFOC_CHECK(mean > 0.0);
  for (double& r : rates) r /= mean;
  return rates;
}

}  // namespace plfoc
