#include "model/transition.hpp"

#include <algorithm>
#include <cmath>

#include "util/checks.hpp"

namespace plfoc {
namespace {

/// out = V diag(w) V^{-1}; the shared core of P and its derivatives.
void weighted_reconstruct(const EigenSystem& eigen, const double* weights,
                          double* out) {
  const unsigned s = eigen.states;
  for (unsigned i = 0; i < s; ++i) {
    for (unsigned j = 0; j < s; ++j) {
      double sum = 0.0;
      for (unsigned k = 0; k < s; ++k)
        sum += eigen.right[i * s + k] * weights[k] * eigen.inverse[k * s + j];
      out[i * s + j] = sum;
    }
  }
}

}  // namespace

void transition_matrix(const EigenSystem& eigen, double t, double* out) {
  PLFOC_CHECK(t >= 0.0 && std::isfinite(t));
  const unsigned s = eigen.states;
  double weights[32] = {};
  PLFOC_CHECK(s <= 32);
  for (unsigned k = 0; k < s; ++k) weights[k] = std::exp(eigen.eigenvalues[k] * t);
  weighted_reconstruct(eigen, weights, out);
  // Clamp tiny negative round-off; probabilities must be non-negative for the
  // likelihood kernels (log of negative would poison a whole site).
  for (unsigned i = 0; i < s * s; ++i) out[i] = std::max(out[i], 0.0);
}

void transition_derivatives(const EigenSystem& eigen, double t, double* p,
                            double* dp, double* d2p) {
  PLFOC_CHECK(t >= 0.0 && std::isfinite(t));
  const unsigned s = eigen.states;
  PLFOC_CHECK(s <= 32);
  double w0[32] = {};
  double w1[32] = {};
  double w2[32] = {};
  for (unsigned k = 0; k < s; ++k) {
    const double lambda = eigen.eigenvalues[k];
    const double e = std::exp(lambda * t);
    w0[k] = e;
    w1[k] = lambda * e;
    w2[k] = lambda * lambda * e;
  }
  if (p != nullptr) {
    weighted_reconstruct(eigen, w0, p);
    for (unsigned i = 0; i < s * s; ++i) p[i] = std::max(p[i], 0.0);
  }
  if (dp != nullptr) weighted_reconstruct(eigen, w1, dp);
  if (d2p != nullptr) weighted_reconstruct(eigen, w2, d2p);
}

void category_transition_matrices(const EigenSystem& eigen, double t,
                                  const std::vector<double>& rates,
                                  std::vector<double>& out) {
  const unsigned s = eigen.states;
  out.resize(rates.size() * s * s);
  for (std::size_t c = 0; c < rates.size(); ++c)
    transition_matrix(eigen, t * rates[c], out.data() + c * s * s);
}

}  // namespace plfoc
