#include "model/protein_matrices.hpp"

#include <cmath>
#include <fstream>
#include <numeric>

#include "util/checks.hpp"
#include "util/rng.hpp"

namespace plfoc {

SubstitutionModel read_paml_dat(std::istream& in, std::string name) {
  constexpr unsigned kStates = 20;
  // PAML stores the strict lower triangle row by row: row i (1..19) has i
  // entries, entry (i, j) = rho between states i and j.
  std::vector<double> lower(kStates * (kStates - 1) / 2, 0.0);
  for (double& value : lower)
    PLFOC_REQUIRE(static_cast<bool>(in >> value),
                  "PAML .dat: unexpected end of exchangeability data");
  std::vector<double> freqs(kStates, 0.0);
  for (double& value : freqs)
    PLFOC_REQUIRE(static_cast<bool>(in >> value),
                  "PAML .dat: unexpected end of frequency data");
  // Normalise frequencies (published files often sum to 0.999999...).
  const double total = std::accumulate(freqs.begin(), freqs.end(), 0.0);
  PLFOC_REQUIRE(total > 0.0, "PAML .dat: non-positive frequency sum");
  for (double& f : freqs) f /= total;

  SubstitutionModel model;
  model.name = std::move(name);
  model.type = DataType::kProtein;
  model.frequencies = std::move(freqs);
  // Reindex lower-triangle (i>j) storage into our upper-triangle (i<j) order:
  // lower row i has entries for j = 0..i-1 and lower[(i,j)] == rho_{ji}.
  model.exchangeabilities.assign(kStates * (kStates - 1) / 2, 0.0);
  std::size_t cursor = 0;
  for (unsigned i = 1; i < kStates; ++i)
    for (unsigned j = 0; j < i; ++j)
      model.exchangeabilities[SubstitutionModel::pair_index(j, i, kStates)] =
          lower[cursor++];
  model.validate();
  return model;
}

SubstitutionModel read_paml_dat_file(const std::string& path) {
  std::ifstream in(path);
  PLFOC_REQUIRE(in.good(), "cannot open PAML .dat file '" + path + "'");
  // Model name = file stem.
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.resize(dot);
  return read_paml_dat(in, std::move(name));
}

SubstitutionModel synthetic_protein_model(std::uint64_t seed) {
  constexpr unsigned kStates = 20;
  Rng rng(seed);
  SubstitutionModel model;
  model.name = "Synthetic20-" + std::to_string(seed);
  model.type = DataType::kProtein;
  model.exchangeabilities.resize(kStates * (kStates - 1) / 2);
  // Log-uniform exchangeabilities over ~3 orders of magnitude mimic the
  // heterogeneity of empirical matrices.
  for (double& rho : model.exchangeabilities)
    rho = std::exp(rng.uniform(-3.0, 3.0));
  model.frequencies.resize(kStates);
  double total = 0.0;
  for (double& f : model.frequencies) {
    f = 0.01 + rng.uniform();  // bounded away from zero
    total += f;
  }
  for (double& f : model.frequencies) f /= total;
  model.validate();
  return model;
}

}  // namespace plfoc
