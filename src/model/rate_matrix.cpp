#include "model/rate_matrix.hpp"

#include <cmath>
#include <numeric>

#include "util/checks.hpp"

namespace plfoc {

std::size_t SubstitutionModel::pair_index(unsigned i, unsigned j,
                                          unsigned states) {
  PLFOC_DCHECK(i < j && j < states);
  // Row-major upper triangle: row i starts after (states-1) + ... + (states-i)
  // entries.
  return static_cast<std::size_t>(i) * states - static_cast<std::size_t>(i) * (i + 1) / 2 +
         (j - i - 1);
}

void SubstitutionModel::validate() const {
  const unsigned s = states();
  PLFOC_REQUIRE(frequencies.size() == s,
                "model '" + name + "': frequency vector has wrong size");
  PLFOC_REQUIRE(exchangeabilities.size() == static_cast<std::size_t>(s) * (s - 1) / 2,
                "model '" + name + "': exchangeability vector has wrong size");
  double total = 0.0;
  for (double f : frequencies) {
    PLFOC_REQUIRE(std::isfinite(f) && f > 0.0,
                  "model '" + name + "': frequencies must be positive");
    total += f;
  }
  PLFOC_REQUIRE(std::abs(total - 1.0) < 1e-8,
                "model '" + name + "': frequencies must sum to 1");
  for (double r : exchangeabilities)
    PLFOC_REQUIRE(std::isfinite(r) && r > 0.0,
                  "model '" + name + "': exchangeabilities must be positive");
}

namespace {

SubstitutionModel make_dna(std::string name, std::vector<double> rates,
                           std::vector<double> freqs) {
  SubstitutionModel model;
  model.name = std::move(name);
  model.type = DataType::kDna;
  model.frequencies = std::move(freqs);
  model.exchangeabilities = std::move(rates);
  model.validate();
  return model;
}

}  // namespace

SubstitutionModel jc69() {
  return make_dna("JC69", std::vector<double>(6, 1.0),
                  std::vector<double>(4, 0.25));
}

SubstitutionModel k80(double kappa) {
  PLFOC_REQUIRE(kappa > 0.0, "K80: kappa must be positive");
  // State order A, C, G, T; transitions are A<->G and C<->T.
  return make_dna("K80", {1.0, kappa, 1.0, 1.0, kappa, 1.0},
                  std::vector<double>(4, 0.25));
}

SubstitutionModel hky85(double kappa, std::vector<double> frequencies) {
  PLFOC_REQUIRE(kappa > 0.0, "HKY85: kappa must be positive");
  return make_dna("HKY85", {1.0, kappa, 1.0, 1.0, kappa, 1.0},
                  std::move(frequencies));
}

SubstitutionModel gtr(std::vector<double> rates,
                      std::vector<double> frequencies) {
  PLFOC_REQUIRE(rates.size() == 6, "GTR: expected 6 rates (AC AG AT CG CT GT)");
  return make_dna("GTR", std::move(rates), std::move(frequencies));
}

SubstitutionModel poisson_protein() {
  SubstitutionModel model;
  model.name = "Poisson";
  model.type = DataType::kProtein;
  model.frequencies.assign(20, 0.05);
  model.exchangeabilities.assign(190, 1.0);
  model.validate();
  return model;
}

std::vector<double> build_rate_matrix(const SubstitutionModel& model) {
  model.validate();
  const unsigned s = model.states();
  std::vector<double> q(static_cast<std::size_t>(s) * s, 0.0);
  for (unsigned i = 0; i < s; ++i) {
    for (unsigned j = 0; j < s; ++j) {
      if (i == j) continue;
      const unsigned lo = std::min(i, j);
      const unsigned hi = std::max(i, j);
      const double rho =
          model.exchangeabilities[SubstitutionModel::pair_index(lo, hi, s)];
      q[i * s + j] = rho * model.frequencies[j];
    }
  }
  // Diagonal: rows sum to zero.
  for (unsigned i = 0; i < s; ++i) {
    double row = 0.0;
    for (unsigned j = 0; j < s; ++j)
      if (j != i) row += q[i * s + j];
    q[i * s + i] = -row;
  }
  // Scale so the mean instantaneous rate is 1 substitution per unit time.
  double mean_rate = 0.0;
  for (unsigned i = 0; i < s; ++i) mean_rate -= model.frequencies[i] * q[i * s + i];
  PLFOC_CHECK(mean_rate > 0.0);
  for (double& value : q) value /= mean_rate;
  return q;
}

}  // namespace plfoc
