#include "model/eigen.hpp"

#include <cmath>

#include "util/checks.hpp"

namespace plfoc {

void jacobi_eigen(std::vector<double> a, unsigned n,
                  std::vector<double>& eigenvalues,
                  std::vector<double>& eigenvectors) {
  PLFOC_CHECK(a.size() == static_cast<std::size_t>(n) * n);
  eigenvectors.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (unsigned i = 0; i < n; ++i) eigenvectors[i * n + i] = 1.0;

  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (unsigned p = 0; p < n; ++p)
      for (unsigned q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    if (off < 1e-28) break;

    for (unsigned p = 0; p < n; ++p) {
      for (unsigned q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        // Numerically stable tangent of the rotation angle.
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        a[p * n + p] = app - t * apq;
        a[q * n + q] = aqq + t * apq;
        a[p * n + q] = 0.0;
        a[q * n + p] = 0.0;
        for (unsigned r = 0; r < n; ++r) {
          if (r != p && r != q) {
            const double arp = a[r * n + p];
            const double arq = a[r * n + q];
            a[r * n + p] = arp - s * (arq + tau * arp);
            a[r * n + q] = arq + s * (arp - tau * arq);
            a[p * n + r] = a[r * n + p];
            a[q * n + r] = a[r * n + q];
          }
          const double vrp = eigenvectors[r * n + p];
          const double vrq = eigenvectors[r * n + q];
          eigenvectors[r * n + p] = vrp - s * (vrq + tau * vrp);
          eigenvectors[r * n + q] = vrq + s * (vrp - tau * vrq);
        }
      }
    }
  }

  eigenvalues.resize(n);
  for (unsigned i = 0; i < n; ++i) eigenvalues[i] = a[i * n + i];
}

EigenSystem decompose(const SubstitutionModel& model) {
  model.validate();
  const unsigned s = model.states();
  const std::vector<double> q = build_rate_matrix(model);

  // Symmetrise: B = Π^{1/2} Q Π^{-1/2}.
  std::vector<double> sqrt_pi(s);
  std::vector<double> inv_sqrt_pi(s);
  for (unsigned i = 0; i < s; ++i) {
    sqrt_pi[i] = std::sqrt(model.frequencies[i]);
    inv_sqrt_pi[i] = 1.0 / sqrt_pi[i];
  }
  std::vector<double> b(static_cast<std::size_t>(s) * s);
  for (unsigned i = 0; i < s; ++i)
    for (unsigned j = 0; j < s; ++j)
      b[i * s + j] = sqrt_pi[i] * q[i * s + j] * inv_sqrt_pi[j];
  // Force exact symmetry against rounding before Jacobi.
  for (unsigned i = 0; i < s; ++i)
    for (unsigned j = i + 1; j < s; ++j) {
      const double mean = 0.5 * (b[i * s + j] + b[j * s + i]);
      b[i * s + j] = mean;
      b[j * s + i] = mean;
    }

  EigenSystem system;
  system.states = s;
  std::vector<double> u;
  jacobi_eigen(std::move(b), s, system.eigenvalues, u);

  // V = Π^{-1/2} U ; V^{-1} = Uᵀ Π^{1/2}.
  system.right.resize(static_cast<std::size_t>(s) * s);
  system.inverse.resize(static_cast<std::size_t>(s) * s);
  for (unsigned i = 0; i < s; ++i)
    for (unsigned k = 0; k < s; ++k) {
      system.right[i * s + k] = inv_sqrt_pi[i] * u[i * s + k];
      system.inverse[k * s + i] = u[i * s + k] * sqrt_pi[i];
    }
  return system;
}

}  // namespace plfoc
