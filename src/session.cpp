#include "session.hpp"

#include "util/checks.hpp"
#include "util/timer.hpp"

namespace plfoc {
namespace {

Alignment prepare_alignment(Alignment alignment, bool compress,
                            std::vector<std::size_t>* site_to_pattern) {
  if (!compress || !alignment.weights().empty()) return alignment;
  CompressionResult result = compress_patterns(alignment);
  *site_to_pattern = std::move(result.site_to_pattern);
  return std::move(result.compressed);
}

}  // namespace

void SessionOptions::validate() const {
  PLFOC_REQUIRE(ram_fraction >= 0.0, "ram_fraction must not be negative");
  const bool has_fraction = ram_fraction > 0.0;
  const bool has_budget = ram_budget_bytes > 0;
  switch (backend) {
    case Backend::kOutOfCore:
      PLFOC_REQUIRE(has_fraction || has_budget,
                    "out-of-core backend needs exactly one of ram_fraction / "
                    "ram_budget_bytes; neither is set");
      PLFOC_REQUIRE(!(has_fraction && has_budget),
                    "out-of-core backend needs exactly one of ram_fraction / "
                    "ram_budget_bytes; both are set");
      break;
    case Backend::kPaged:
      PLFOC_REQUIRE(has_budget, "paged backend needs ram_budget_bytes");
      PLFOC_REQUIRE(!has_fraction,
                    "paged backend takes ram_budget_bytes, not ram_fraction");
      break;
    case Backend::kInRam:
    case Backend::kTiered:
    case Backend::kMmap:
      break;  // memory-limit fields are ignored by these backends
  }
}

Session::Session(Alignment alignment, Tree tree, SubstitutionModel model,
                 SessionOptions options)
    : options_(std::move(options)),
      alignment_(prepare_alignment(std::move(alignment),
                                   options_.compress_patterns,
                                   &site_to_pattern_)),
      tree_(std::move(tree)) {
  options_.validate();
  const std::size_t count = tree_.num_inner();
  const std::size_t width =
      LikelihoodEngine::vector_width(alignment_, options_.categories);

  switch (options_.backend) {
    case Backend::kInRam: {
      store_ = std::make_unique<InRamStore>(count, width);
      break;
    }
    case Backend::kOutOfCore: {
      OocStoreOptions ooc;
      if (options_.ram_fraction > 0.0) {
        ooc.num_slots =
            OocStoreOptions::slots_from_fraction(options_.ram_fraction, count);
      } else {
        ooc.num_slots = OocStoreOptions::slots_from_budget(
            options_.ram_budget_bytes, width);
      }
      ooc.policy = options_.policy;
      ooc.read_skipping = options_.read_skipping;
      ooc.write_back_clean = options_.write_back_clean;
      ooc.disk_precision = options_.single_precision_disk
                               ? DiskPrecision::kSingle
                               : DiskPrecision::kDouble;
      ooc.seed = options_.seed;
      ooc.tree = &tree_;
      ooc.file.base_path = options_.vector_file.empty()
                               ? temp_vector_file_path("ooc")
                               : options_.vector_file;
      ooc.file.num_files = options_.num_files;
      ooc.file.device = options_.device;
      ooc.file.faults = options_.faults;
      ooc.file.retry = options_.io_retry;
      ooc.file.integrity = options_.integrity;
      ooc.file.io_engine = options_.io_engine;
      ooc.file.io_depth = options_.io_depth;
      ooc.file.io_permute_seed = options_.io_permute_seed;
      ooc.file.direct_io = options_.direct_io;
      ooc.file.shared_engine = options_.shared_aio_engine;
      store_ = std::make_unique<OutOfCoreStore>(count, width, std::move(ooc));
      break;
    }
    case Backend::kPaged: {
      PagedStoreOptions paged;
      paged.budget_bytes = options_.ram_budget_bytes;
      paged.page_bytes = options_.page_bytes;
      paged.file.base_path = options_.vector_file.empty()
                                 ? temp_vector_file_path("paged")
                                 : options_.vector_file;
      paged.file.device = options_.device;
      paged.file.faults = options_.faults;
      paged.file.retry = options_.io_retry;
      paged.file.integrity = options_.integrity;
      paged.file.io_engine = options_.io_engine;
      paged.file.io_depth = options_.io_depth;
      paged.file.io_permute_seed = options_.io_permute_seed;
      paged.file.direct_io = options_.direct_io;
      paged.file.shared_engine = options_.shared_aio_engine;
      store_ = std::make_unique<PagedStore>(count, width, std::move(paged));
      break;
    }
    case Backend::kTiered: {
      TieredStoreOptions tiered;
      tiered.fast_slots = options_.tiered_fast_slots;
      tiered.ram_slots = options_.tiered_ram_slots;
      tiered.fast_policy = ReplacementPolicy::kLru;
      tiered.ram_policy = options_.policy;
      tiered.read_skipping = options_.read_skipping;
      tiered.seed = options_.seed;
      tiered.tree = &tree_;
      tiered.file.base_path = options_.vector_file.empty()
                                  ? temp_vector_file_path("tiered")
                                  : options_.vector_file;
      tiered.file.device = options_.device;
      tiered.file.faults = options_.faults;
      tiered.file.retry = options_.io_retry;
      tiered.file.integrity = options_.integrity;
      tiered.file.io_engine = options_.io_engine;
      tiered.file.io_depth = options_.io_depth;
      tiered.file.io_permute_seed = options_.io_permute_seed;
      tiered.file.direct_io = options_.direct_io;
      tiered.file.shared_engine = options_.shared_aio_engine;
      store_ = std::make_unique<TieredStore>(count, width, std::move(tiered));
      break;
    }
    case Backend::kMmap: {
      MmapStoreOptions mm;
      mm.file_path = options_.vector_file.empty()
                         ? temp_vector_file_path("mmap")
                         : options_.vector_file;
      mm.integrity = options_.integrity;
      store_ = std::make_unique<MmapStore>(count, width, std::move(mm));
      break;
    }
  }

  ModelConfig config;
  config.substitution = std::move(model);
  config.categories = options_.categories;
  config.alpha = options_.alpha;
  engine_ = std::make_unique<LikelihoodEngine>(alignment_, tree_,
                                               std::move(config), *store_);
  if (options_.threads > 1) {
    kernel_pool_ = std::make_unique<KernelPool>(options_.threads);
    engine_->attach_kernel_pool(kernel_pool_.get());
  }
  // Self-healing seam: a corrupt record found at swap-in is recomputed from
  // its children via the Felsenstein recurrence instead of failing the run.
  store_->set_recovery_hook([this](std::uint32_t index, double* dst) {
    return engine_->recover_vector(index, dst);
  });

  if (options_.cancel.valid()) set_cancel_token(options_.cancel);
}

void Session::set_cancel_token(CancelToken token) {
  options_.cancel = token;
  store_->set_cancel_token(token);
  if (kernel_pool_) kernel_pool_->set_cancel_token(token);
  engine_->set_cancel_token(token);
}

Session::~Session() {
  // The hook captures `this` and dispatches into engine_; drop it before the
  // members it reaches through are torn down.
  if (store_) store_->set_recovery_hook(nullptr);
}

EvalResult Session::evaluate() {
  Timer timer;
  EvalResult result;
  result.log_likelihood = engine_->log_likelihood();
  result.wall_seconds = timer.seconds();
  // Snapshot, not stats(): a batch-service prefetch thread may still be
  // draining its queue when the traversal finishes.
  result.stats = store_->stats_snapshot();
  return result;
}

std::vector<double> Session::site_log_likelihoods() {
  const auto [a, b] = tree_.default_root_branch();
  const std::vector<double> per_pattern =
      engine_->pattern_log_likelihoods(a, b);
  if (site_to_pattern_.empty()) return per_pattern;
  std::vector<double> out(site_to_pattern_.size());
  for (std::size_t site = 0; site < out.size(); ++site)
    out[site] = per_pattern[site_to_pattern_[site]];
  return out;
}

}  // namespace plfoc
