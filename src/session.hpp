// Session: the one-stop public entry point.
//
// Bundles what a caller otherwise wires manually — pattern compression, tip
// binding, storage backend construction (in-RAM / out-of-core / paged), and
// the likelihood engine — behind a small options struct. Mirrors how the
// paper's modified RAxML is driven: pick a dataset, a model, a memory limit
// (-L) or fraction f, and a replacement strategy.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "likelihood/engine.hpp"
#include "likelihood/kernel_pool.hpp"
#include "msa/patterns.hpp"
#include "ooc/inram_store.hpp"
#include "ooc/ooc_store.hpp"
#include "ooc/paged_store.hpp"
#include "ooc/mmap_store.hpp"
#include "ooc/tiered_store.hpp"

namespace plfoc {

enum class Backend {
  kInRam,      ///< the standard implementation (everything resident)
  kOutOfCore,  ///< the paper's slot manager
  kPaged,      ///< deterministic OS-paging baseline (Fig. 5 "Standard")
  kTiered,     ///< three-layer disk/RAM/accelerator hierarchy (Sec. 5)
  kMmap,       ///< memory-mapped file, OS page cache does the caching
};

struct SessionOptions {
  unsigned categories = 4;
  double alpha = 1.0;
  Backend backend = Backend::kInRam;
  /// Kernel threads for pattern-block-parallel PLF kernels (--threads).
  /// 1 = serial (no pool). The log likelihood is bit-identical for every
  /// value; see docs/parallelism.md. 0 is normalised to 1.
  unsigned threads = 1;
  /// Collapse identical columns before building vectors (RAxML default).
  bool compress_patterns = true;

  // Out-of-core / paged memory limit. The out-of-core backend takes exactly
  // one of these (`ram_fraction` is the paper's f, `ram_budget_bytes` is
  // RAxML's -L); the paged backend takes only `ram_budget_bytes`. Other
  // backends ignore both. Enforced by validate().
  double ram_fraction = 0.0;
  std::uint64_t ram_budget_bytes = 0;

  ReplacementPolicy policy = ReplacementPolicy::kRandom;
  bool read_skipping = true;
  bool write_back_clean = true;
  /// Store vectors on disk in single precision (out-of-core backend only):
  /// halves file size and transfer bytes at a ~1e-7 relative perturbation
  /// (see ooc/ooc_store.hpp, DiskPrecision).
  bool single_precision_disk = false;
  std::uint64_t seed = 1;
  /// Backing file path (empty = unique temp file, removed on destruction).
  std::string vector_file;
  unsigned num_files = 1;
  std::size_t page_bytes = 4096;  ///< paged backend only
  std::size_t tiered_fast_slots = 8;   ///< tiered backend: accelerator slots
  std::size_t tiered_ram_slots = 32;   ///< tiered backend: host-RAM slots
  /// Virtual device cost model applied to all backing-file I/O (see
  /// ooc/file_backend.hpp); disabled by default.
  DeviceModel device;
  /// Seeded fault-injection schedule applied to the backing file of every
  /// file-backed backend (out-of-core / paged / tiered); disabled by default.
  /// The mmap and in-RAM backends have no syscall I/O path and ignore it.
  FaultConfig faults;
  /// Per-vector checksums on the backing file (out-of-core / paged / tiered)
  /// and on the mmap mapping, verified at swap-in / re-fault; a mismatch
  /// triggers self-healing recomputation through the likelihood engine before
  /// surfacing as IntegrityError (see docs/robustness.md). Corruption
  /// injection (faults flip=/torn=/zero=/stale=) requires this on.
  bool integrity = true;
  /// Retry budget + backoff for transient backing-file errors (injected or
  /// real). max_retries = 0 disables retrying: the first transient error
  /// surfaces as IoError.
  RetryPolicy io_retry;
  /// Async I/O engine for the backing file of every file-backed backend
  /// (out-of-core / paged / tiered): kSync keeps the historical sequential
  /// syscalls; kThreads is the portable submission/completion thread pool;
  /// kUring is Linux io_uring (degrades to kThreads when the host lacks
  /// support); kDeterministic is the test engine that delivers completions
  /// in a seeded permutation (docs/async-io.md).
  AioEngineKind io_engine = AioEngineKind::kSync;
  /// Submission-queue depth for async engines (clamped to >= 1).
  unsigned io_depth = 8;
  /// Completion-delivery permutation seed (deterministic engine only).
  std::uint64_t io_permute_seed = kAioOrderIdentity;
  /// Open a second O_DIRECT descriptor per backing file and route
  /// 512-byte-aligned transfers through it (best effort: misaligned
  /// attempts and hosts without O_DIRECT fall back to buffered I/O).
  bool direct_io = false;
  /// Optional shared async-I/O engine (see AioEngineHandle in ooc/aio.hpp):
  /// when set, the session's file-backed store adopts this engine instead of
  /// building a private one — the service tier passes one handle to every
  /// worker session so N workers share one submission queue and worker pool
  /// instead of spawning N. Adoption requires the handle's kind/depth to
  /// match io_engine/io_depth and no fault injection; otherwise the store
  /// silently keeps a private engine (see FileBackendOptions::shared_engine).
  std::shared_ptr<AioEngineHandle> shared_aio_engine;
  /// Cooperative cancellation token (util/cancel.hpp). When valid, the
  /// session threads it through the store (checked at every vector acquire),
  /// the kernel pool (checked per pattern-block claim), and the engine
  /// (checked per traversal step), so cancelling or letting the deadline
  /// expire unwinds a running evaluation as CancelledError within one
  /// pattern-block / traversal-step / AIO-batch granularity. The default
  /// (null) token makes every check free.
  CancelToken cancel;

  /// Throws plfoc::Error unless the memory-limit fields are consistent with
  /// the backend: out-of-core needs exactly one of ram_fraction /
  /// ram_budget_bytes (neither or both is a configuration error), paged
  /// needs ram_budget_bytes and no ram_fraction. Called by the Session
  /// constructor; the service layer also calls it per job so a bad jobfile
  /// line surfaces as that job's error instead of aborting the batch.
  void validate() const;
};

/// What one evaluation job produced — the service core's per-job payload.
struct EvalResult {
  double log_likelihood = 0.0;
  double wall_seconds = 0.0;
  OocStats stats;  ///< store counters accumulated up to the evaluation's end
};

class Session {
 public:
  /// Takes ownership of the (uncompressed) alignment and the starting tree;
  /// the substitution model's data type must match the alignment.
  Session(Alignment alignment, Tree tree, SubstitutionModel model,
          SessionOptions options = {});
  /// Clears the store's recovery hook (which captures `this`) before the
  /// engine it dispatches to is destroyed.
  ~Session();

  LikelihoodEngine& engine() { return *engine_; }
  Tree& tree() { return tree_; }
  const Alignment& alignment() const { return alignment_; }
  AncestralStore& store() { return *store_; }
  const OocStats& stats() const { return store_->stats(); }
  void reset_stats() { store_->reset_stats(); }

  /// Non-null only for the out-of-core backend.
  OutOfCoreStore* out_of_core() {
    return dynamic_cast<OutOfCoreStore*>(store_.get());
  }
  PagedStore* paged() { return dynamic_cast<PagedStore*>(store_.get()); }
  TieredStore* tiered() { return dynamic_cast<TieredStore*>(store_.get()); }
  MmapStore* mmap_backend() { return dynamic_cast<MmapStore*>(store_.get()); }

  std::size_t patterns() const { return alignment_.num_sites(); }
  std::size_t vector_width() const { return store_->width(); }
  const SessionOptions& options() const { return options_; }

  /// Replace the cancellation token and re-thread it through the store, the
  /// kernel pool, and the engine. A tripped token cannot be un-tripped, so
  /// this (with a fresh or null token) is how a caller reuses a session
  /// after a cancelled evaluation; the interrupted steps were invalidated
  /// on unwind, and the next evaluate() recomputes exactly those.
  void set_cancel_token(CancelToken token);

  /// Per-site log likelihoods in *original alignment column order* (pattern
  /// values expanded through the compression map; identical to the pattern
  /// values when compression is disabled). Evaluated at the default root
  /// branch.
  std::vector<double> site_log_likelihoods();

  /// The one-shot job path shared by the CLI's evaluate mode and the batch
  /// service workers: evaluate the log likelihood at the default root branch
  /// and report wall time plus a snapshot of the store's I/O statistics.
  EvalResult evaluate();

 private:
  SessionOptions options_;
  std::vector<std::size_t> site_to_pattern_;  ///< empty when not compressed
  Alignment alignment_;  ///< pattern-compressed when requested
  Tree tree_;
  std::unique_ptr<AncestralStore> store_;
  std::unique_ptr<KernelPool> kernel_pool_;  ///< null when threads <= 1
  std::unique_ptr<LikelihoodEngine> engine_;
};

}  // namespace plfoc
