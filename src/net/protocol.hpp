// Length-prefixed binary wire protocol of the serving tier.
//
// Frame layout (all integers little-endian; docs/serving.md has the field
// tables):
//
//   offset size  field
//   0      4     magic "PLFN" (0x4e464c50 as a LE u32)
//   4      2     protocol version (kProtocolVersion)
//   6      2     message type (MessageType)
//   8      4     payload length in bytes
//   12     n     payload
//
// Payload primitives: u8/u16/u32/u64 little-endian, f64 as the IEEE-754
// bit pattern in a u64 (log likelihoods cross the wire bit-exactly — the
// loopback acceptance test compares u64 bit patterns, not rounded text),
// strings as u32 length + raw bytes, vectors as u32 count + elements.
//
// Trees travel as Phylo2Vec payloads (tree/phylo2vec.hpp): the topology
// vector, the canonical-order branch lengths, and a digest of the sorted
// taxon names. The names themselves are deliberately not sent — the
// binding is positional (leaf label = rank in the sorted taxon order of
// the server-side alignment), and the digest lets the server reject a
// tree/alignment mismatch instead of silently mis-binding.
//
// Decoding is strict: every read is bounds-checked, every decoder consumes
// its payload exactly, and any violation — short frame, bad magic, unknown
// version or type, oversized payload, malformed field, trailing bytes —
// throws a typed ProtocolError instead of crashing or guessing
// (tests/test_net.cpp fuzzes truncated/oversized/garbage frames against
// this contract). A ProtocolError poisons at most the one connection.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace plfoc {

inline constexpr std::uint32_t kProtocolMagic = 0x4e464c50u;  // "PLFN"
/// Current protocol version. v2 adds SubmitRequest::deadline_ms, the
/// deadline/cancel/overload result flags, and per-tenant expired/shed
/// stats rows. Decoders accept every version in
/// [kMinProtocolVersion, kProtocolVersion] and gate the v2 fields on the
/// frame's own version, so a v1 peer interoperates unchanged (its submits
/// simply carry no deadline).
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on one frame's payload; FrameDecoder rejects larger claims
/// before buffering (a garbage length prefix must not allocate 4 GiB).
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class MessageType : std::uint16_t {
  kSubmitRequest = 1,
  kResultResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kErrorResponse = 5,
  kPing = 6,
  kPong = 7,
};

/// Typed wire-format violation. Never fatal to the process: the server
/// answers with kErrorResponse (or drops the connection), the client
/// surfaces it to the caller.
class ProtocolError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,      ///< read past the end of the payload / short header
    kBadMagic,       ///< frame does not start with "PLFN"
    kBadVersion,     ///< unsupported protocol version
    kBadType,        ///< unknown MessageType
    kOversized,      ///< payload length exceeds kMaxFramePayload
    kBadField,       ///< field value out of its domain
    kTrailingBytes,  ///< payload longer than the message it encodes
  };

  ProtocolError(Kind kind, const std::string& what)
      : std::runtime_error("protocol: " + what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// One decoded frame: validated header + raw payload bytes. `version` is
/// the header's protocol version (within the accepted range); decoders use
/// it to gate fields added after v1.
struct Frame {
  MessageType type = MessageType::kPing;
  std::uint16_t version = kProtocolVersion;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame parser shared by the server's per-connection read
/// state machine, the blocking client, and the framing fuzz tests. Feed
/// arbitrary byte chunks with append(); next() yields complete frames and
/// throws ProtocolError on a malformed header (the stream is then
/// unrecoverable — drop the connection).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void append(const std::uint8_t* data, std::size_t size);
  std::optional<Frame> next();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_payload_;
  std::deque<std::uint8_t> buffer_;
};

/// Bounds-checked payload reader; every getter throws ProtocolError
/// (kTruncated) past the end, expect_end() throws kTrailingBytes unless
/// the payload was consumed exactly.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string string();
  std::vector<std::uint32_t> u32_vector();
  std::vector<double> f64_vector();
  std::size_t remaining() const { return size_ - offset_; }
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Little-endian payload builder mirroring WireReader.
class WireWriter {
 public:
  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void f64(double value);
  void string(const std::string& value);
  void u32_vector(const std::vector<std::uint32_t>& values);
  void f64_vector(const std::vector<double>& values);

  const std::vector<std::uint8_t>& payload() const { return payload_; }
  std::vector<std::uint8_t> take() { return std::move(payload_); }

 private:
  std::vector<std::uint8_t> payload_;
};

/// How a SubmitRequest ships its tree.
enum class WireTreeKind : std::uint8_t {
  kStepwise = 0,   ///< server builds a stepwise-addition tree from `seed`
  kPhylo2Vec = 1,  ///< explicit topology + branch lengths
};

/// One evaluation job. Field vocabulary matches the jobfile columns
/// (service/jobfile.hpp) so `plfoc-client <jobfile>` is a pure transport
/// change relative to `plfoc batch <jobfile>`.
struct SubmitRequest {
  std::uint64_t request_id = 0;  ///< client-chosen; echoed in the response
  std::string tenant;
  std::string name;
  std::string msa_path;  ///< server-side path; the MSA itself is not sent
  std::string format = "fasta";
  std::string data_type = "dna";
  std::string model = "gtr";
  double kappa = 2.0;
  std::uint32_t categories = 4;
  double alpha = 1.0;
  std::string backend = "inram";
  double ram_fraction = 0.0;
  std::uint64_t budget_bytes = 0;
  std::string strategy = "lru";
  std::uint64_t seed = 42;
  std::uint32_t threads = 0;
  WireTreeKind tree_kind = WireTreeKind::kStepwise;
  /// kPhylo2Vec only: topology vector, canonical-order branch lengths and
  /// the sorted-taxa digest (phylo2vec_taxa_digest) the server verifies
  /// against the alignment before binding leaf ranks to taxa.
  std::vector<std::uint32_t> tree_v;
  std::vector<double> tree_lengths;
  std::uint64_t taxa_digest = 0;
  /// v2: end-to-end deadline in milliseconds, measured from server accept
  /// (0 = none). Maps to JobSpec::deadline_seconds; absent from v1 frames.
  std::uint64_t deadline_ms = 0;
};

/// Converts JobSpec-style deadline seconds to the wire's millisecond field.
/// Rounds up so a positive sub-millisecond deadline stays a deadline (1 ms)
/// instead of truncating to 0 = "none"; 0 and negatives stay 0.
std::uint64_t deadline_ms_from_seconds(double seconds);

/// JobResult bit flags in ResultResponse::flags.
inline constexpr std::uint8_t kResultDegraded = 1u << 0;
inline constexpr std::uint8_t kResultCacheHit = 1u << 1;
inline constexpr std::uint8_t kResultIoFailure = 1u << 2;
inline constexpr std::uint8_t kResultIntegrityFailure = 1u << 3;
/// v2 flags: how a non-kDone job ended. The status byte carries the same
/// information; the flags make it greppable next to the v1 failure bits.
inline constexpr std::uint8_t kResultDeadlineExceeded = 1u << 4;
inline constexpr std::uint8_t kResultCancelled = 1u << 5;
inline constexpr std::uint8_t kResultOverloaded = 1u << 6;

struct ResultResponse {
  std::uint64_t request_id = 0;
  std::uint64_t job_id = 0;
  /// JobStatus as u8 (only terminal states cross the wire).
  std::uint8_t status = 0;
  /// IEEE-754 bit pattern of the log likelihood (bit-exact transport).
  std::uint64_t logl_bits = 0;
  std::uint8_t flags = 0;
  /// Diagnostic text: non-empty for failed jobs and typed drops
  /// (deadline-exceeded / overloaded / cancelled mid-evaluation).
  std::string error;
  double wall_seconds = 0.0;
  double queue_seconds = 0.0;
  std::string backend;  ///< admitted backend name
  std::uint32_t attempts = 1;
};

struct StatsRequest {
  std::uint64_t request_id = 0;
};

struct StatsResponse {
  std::uint64_t request_id = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t queued_jobs = 0;
  struct TenantRow {
    std::string tenant;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t expired = 0;  ///< v2: deadline-exceeded jobs
    std::uint64_t shed = 0;     ///< v2: overload-shed jobs
  };
  std::vector<TenantRow> tenants;
};

/// ErrorResponse::code values.
enum class WireErrorCode : std::uint16_t {
  kBadRequest = 1,  ///< malformed or rejected submit (message explains)
  kBusy = 2,        ///< queue full — backpressure, retry later
  kShutdown = 3,    ///< server is draining; no new work accepted
};

struct ErrorResponse {
  std::uint64_t request_id = 0;
  WireErrorCode code = WireErrorCode::kBadRequest;
  std::string message;
};

// Frame assembly: header + payload for one message. decode_* functions
// take a Frame of the matching type (checked) and throw ProtocolError on
// any malformation. The version parameters exist for compatibility tests
// and old-peer emulation; production paths encode kProtocolVersion.
std::vector<std::uint8_t> encode_frame(
    MessageType type, const std::vector<std::uint8_t>& body,
    std::uint16_t version = kProtocolVersion);

std::vector<std::uint8_t> encode_submit_request(
    const SubmitRequest& msg, std::uint16_t version = kProtocolVersion);
std::vector<std::uint8_t> encode_result_response(const ResultResponse& msg);
std::vector<std::uint8_t> encode_stats_request(const StatsRequest& msg);
std::vector<std::uint8_t> encode_stats_response(const StatsResponse& msg);
std::vector<std::uint8_t> encode_error_response(const ErrorResponse& msg);
std::vector<std::uint8_t> encode_ping();
std::vector<std::uint8_t> encode_pong();

SubmitRequest decode_submit_request(const Frame& frame);
ResultResponse decode_result_response(const Frame& frame);
StatsRequest decode_stats_request(const Frame& frame);
StatsResponse decode_stats_response(const Frame& frame);
ErrorResponse decode_error_response(const Frame& frame);

}  // namespace plfoc
