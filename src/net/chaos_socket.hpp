// Fault-injecting client socket for the serving-tier chaos suite.
//
// A ChaosSocket is a deliberately badly behaved client: it connects to a
// real server and then executes a seeded misbehaviour schedule drawn from
// one of three modes —
//
//   kMidFrameDisconnect  deliver a strict prefix of a frame, then close
//                        abortively (RST when the stack allows it), so the
//                        server sees a connection die inside a length-
//                        prefixed frame body;
//   kTrickle             deliver every byte, but one byte per send with
//                        millisecond stalls in between, and read responses
//                        just as slowly — the pathological-but-legal peer;
//   kSlowLoris           dribble a few header bytes with long stalls and
//                        never finish the frame, holding the connection
//                        slot open until dropped or abandoned.
//
// The schedule (cut position, stall lengths, dribble count) derives
// entirely from the seed via util/rng.hpp, so a failing trial reprints as
// `seed=<n> mode=<name>` and replays bit-identically. Expected peer
// failures (the server resetting or closing on us) are swallowed and
// reported through return values — a chaos client being dropped is a
// success, not an error.
//
// The abortive close needs SO_LINGER, so this TU joins server.cpp on the
// plfoc-lint `raw-socket` allow list; everything else goes through the
// Socket primitives. Test-only code paths: nothing in the serving tier
// links against this header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "util/rng.hpp"

namespace plfoc {

enum class ChaosMode {
  kMidFrameDisconnect,
  kTrickle,
  kSlowLoris,
};

/// All modes, for seed-sweep loops (trial t -> kAllChaosModes[t % 3]).
inline constexpr ChaosMode kAllChaosModes[] = {
    ChaosMode::kMidFrameDisconnect,
    ChaosMode::kTrickle,
    ChaosMode::kSlowLoris,
};

const char* chaos_mode_name(ChaosMode mode);

/// Outcome of one scripted chaos interaction, for per-trial assertions.
struct ChaosReport {
  std::size_t bytes_sent = 0;      ///< bytes actually handed to the kernel
  std::size_t bytes_received = 0;  ///< response bytes read back (kTrickle)
  bool peer_closed = false;  ///< the server closed/reset us mid-schedule
};

class ChaosSocket {
 public:
  /// Connect to the server; throws plfoc::Error when it is unreachable
  /// (a chaos client must start from a live connection).
  ChaosSocket(const std::string& host, std::uint16_t port,
              std::uint64_t seed, ChaosMode mode);
  ~ChaosSocket();  ///< closes abortively when the schedule says so

  ChaosSocket(const ChaosSocket&) = delete;
  ChaosSocket& operator=(const ChaosSocket&) = delete;

  std::uint64_t seed() const { return seed_; }
  ChaosMode mode() const { return mode_; }

  /// Execute the mode's script against `frame` (a fully encoded protocol
  /// frame, typically a SubmitRequest). Returns what actually happened;
  /// never throws for peer-inflicted failures.
  ChaosReport run(const std::uint8_t* frame, std::size_t size);

  /// Close abortively now: SO_LINGER(0) + close, turning the teardown
  /// into an RST instead of an orderly FIN where the stack permits.
  void abort_close();

  bool open() const { return socket_.valid(); }

 private:
  /// Send a chunk, swallowing broken-pipe/reset errors. Returns false
  /// (and marks the peer closed) when the connection died.
  bool send_chunk(const std::uint8_t* data, std::size_t size,
                  ChaosReport* report);

  Socket socket_;
  Rng rng_;
  std::uint64_t seed_ = 0;
  ChaosMode mode_ = ChaosMode::kTrickle;
};

}  // namespace plfoc
