// The single TU allowed to make raw socket syscalls (plfoc-lint rule
// `raw-socket`): the Socket primitives and the Server event loop both
// live here so the whole network syscall surface is auditable in one file.
#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "search/stepwise.hpp"
#include "service/jobfile.hpp"
#include "tree/phylo2vec.hpp"
#include "util/checks.hpp"
#include "util/rng.hpp"

namespace plfoc {
namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PLFOC_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "cannot make socket non-blocking");
}

const char* backend_wire_name(Backend backend) {
  switch (backend) {
    case Backend::kInRam: return "inram";
    case Backend::kOutOfCore: return "ooc";
    case Backend::kPaged: return "paged";
    case Backend::kTiered: return "tiered";
    case Backend::kMmap: return "mmap";
  }
  return "?";
}

/// make_job_spec tags errors with the (meaningless, for wire submits)
/// "jobfile line 0:" prefix; strip it before it reaches a client.
std::string strip_line_tag(std::string what) {
  const std::string tag = "jobfile line 0: ";
  if (what.compare(0, tag.size(), tag) == 0) what.erase(0, tag.size());
  return what;
}

}  // namespace

void Socket::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  PLFOC_REQUIRE(rc == 0 && results != nullptr,
                "cannot resolve '" + host + "': " + ::gai_strerror(rc));
  int fd = -1;
  for (const addrinfo* entry = results; entry; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  PLFOC_REQUIRE(fd >= 0, "cannot connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Socket::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      PLFOC_REQUIRE(false,
                    std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(std::uint8_t* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    PLFOC_REQUIRE(false, std::string("recv failed: ") + std::strerror(errno));
  }
}

ServerOptions loopback_server_options(std::size_t workers,
                                      std::size_t queue_capacity) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // kernel-assigned ephemeral
  options.service.workers = workers;
  options.service.queue_capacity = queue_capacity;
  return options;
}

Server::Server(ServerOptions options) : options_(std::move(options)) {
  // Self-wake channel, created before the Service so on_complete can poke
  // it from day one. A socketpair (not a pipe) keeps the wake path inside
  // the raw-socket boundary instead of the raw-io one.
  int pair[2] = {-1, -1};
  PLFOC_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0,
                "cannot create wake socketpair");
  wake_recv_ = Socket(pair[0]);
  wake_send_ = Socket(pair[1]);
  set_nonblocking(wake_recv_.fd());
  set_nonblocking(wake_send_.fd());

  ServiceOptions service_options = options_.service;
  auto user_hook = service_options.on_complete;
  service_options.on_complete = [this, user_hook](const JobResult& result) {
    {
      MutexLock lock(mutex_);
      pending_results_.push_back(result);
    }
    const std::uint8_t byte = 1;
    ::send(wake_send_.fd(), &byte, 1, MSG_NOSIGNAL);
    if (user_hook) user_hook(result);
  };
  service_ = std::make_unique<Service>(std::move(service_options));
}

Server::~Server() { stop(); }

void Server::start() {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(options_.host.c_str(),
                    std::to_string(options_.port).c_str(), &hints, &results);
  PLFOC_REQUIRE(rc == 0 && results != nullptr,
                "cannot resolve listen address '" + options_.host +
                    "': " + ::gai_strerror(rc));
  int fd = -1;
  for (const addrinfo* entry = results; entry; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // A fixed port can sit in TIME_WAIT from a previous listener that had
    // live connections when it closed (SO_REUSEADDR does not cover every
    // such state on all hosts) — the classic source of flaky EADDRINUSE in
    // back-to-back test runs. Retry briefly instead of failing on the
    // first collision; any other errno fails immediately as before.
    bool bound = false;
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (::bind(fd, entry->ai_addr, entry->ai_addrlen) == 0) {
        bound = true;
        break;
      }
      if (errno != EADDRINUSE) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (bound && ::listen(fd, 64) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  PLFOC_REQUIRE(fd >= 0, "cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  listener_ = Socket(fd);
  set_nonblocking(listener_.fd());

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  PLFOC_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                              &bound_len) == 0,
                "getsockname failed");
  if (bound.ss_family == AF_INET) {
    bound_port_ =
        ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
  } else {
    bound_port_ =
        ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
  }

  {
    MutexLock lock(mutex_);
    running_ = true;
    stop_requested_ = false;
  }
  event_thread_ = std::thread([this] { event_loop(); });
}

DrainReport Server::stop() {
  {
    MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  const std::uint8_t byte = 1;
  ::send(wake_send_.fd(), &byte, 1, MSG_NOSIGNAL);
  if (event_thread_.joinable()) event_thread_.join();

  // Workers finish their in-flight jobs here; the queued backlog is
  // cancelled per tenant. on_complete keeps appending to
  // pending_results_, which we deliver below — the event thread is
  // joined, so its state is safe to touch from this thread now.
  DrainReport report = service_->drain(DrainMode::kFlushQueued);
  route_pending_results();
  const double deadline = monotonic_seconds() + options_.drain_flush_seconds;
  for (auto& [id, conn] : connections_) {
    while (!conn.outbox.empty() && monotonic_seconds() < deadline) {
      pollfd pfd{conn.socket.fd(), POLLOUT, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      if (!flush_outbox(conn)) break;
    }
  }
  // Make abandoned responses observable: a drain report that says "clean"
  // while frames died in outboxes would hide exactly the loss the flush
  // window is meant to bound.
  for (const auto& [id, conn] : connections_) {
    if (conn.outbox.empty()) continue;
    ++report.unsent_connections;
    report.unsent_frames += conn.outbox.size();
  }
  {
    MutexLock lock(mutex_);
    stats_.closed += connections_.size();
    running_ = false;
  }
  connections_.clear();
  routes_.clear();
  listener_.reset();
  return report;
}

ServerStats Server::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void Server::event_loop() {
  clock_ = monotonic_seconds();
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // parallel to fds, 0 for non-conns
  std::uint8_t scratch[4096];
  for (;;) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_recv_.fd(), POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back({listener_.fd(), POLLIN, 0});
    fd_conn.push_back(0);
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      fds.push_back({conn.socket.fd(), events, 0});
      fd_conn.push_back(id);
    }
    const int timeout_ms = options_.idle_timeout_seconds > 0 ? 200 : 1000;
    ::poll(fds.data(), fds.size(), timeout_ms);
    clock_ = monotonic_seconds();

    if (fds[0].revents & POLLIN) {
      while (::recv(wake_recv_.fd(), scratch, sizeof(scratch), 0) > 0) {
      }
    }
    route_pending_results();
    {
      MutexLock lock(mutex_);
      if (stop_requested_) return;
    }

    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) break;
        if (connections_.size() >= options_.max_connections) {
          ::close(fd);
          MutexLock lock(mutex_);
          ++stats_.over_limit;
          continue;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Connection conn;
        conn.socket = Socket(fd);
        conn.decoder = FrameDecoder(options_.max_frame_bytes);
        conn.last_activity = clock_;
        connections_.emplace(next_conn_id_++, std::move(conn));
        MutexLock lock(mutex_);
        ++stats_.accepted;
      }
    }

    std::vector<std::uint64_t> doomed;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const std::uint64_t conn_id = fd_conn[i];
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      bool drop = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      if (!drop && (fds[i].revents & POLLIN)) {
        for (;;) {
          const ssize_t n =
              ::recv(conn.socket.fd(), scratch, sizeof(scratch), 0);
          if (n > 0) {
            conn.decoder.append(scratch, static_cast<std::size_t>(n));
            conn.last_activity = clock_;
            continue;
          }
          if (n == 0) drop = true;  // orderly shutdown
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) drop = true;
          break;
        }
        if (!drop && !handle_frames(conn_id, conn)) {
          MutexLock lock(mutex_);
          ++stats_.protocol_errors;
          drop = true;
        }
      }
      if (!drop && !conn.outbox.empty() && !flush_outbox(conn)) drop = true;
      if (drop) doomed.push_back(conn_id);
    }
    for (const std::uint64_t conn_id : doomed) drop_connection(conn_id);

    if (options_.idle_timeout_seconds > 0) {
      doomed.clear();
      for (const auto& [id, conn] : connections_) {
        if (clock_ - conn.last_activity > options_.idle_timeout_seconds)
          doomed.push_back(id);
      }
      for (const std::uint64_t conn_id : doomed) {
        drop_connection(conn_id);
        MutexLock lock(mutex_);
        ++stats_.idle_closed;
      }
    }
  }
}

bool Server::handle_frames(std::uint64_t conn_id, Connection& conn) {
  try {
    while (std::optional<Frame> frame = conn.decoder.next()) {
      {
        MutexLock lock(mutex_);
        ++stats_.frames_in;
      }
      switch (frame->type) {
        case MessageType::kPing:
          enqueue_frame(conn, encode_pong());
          break;
        case MessageType::kStatsRequest: {
          const StatsRequest request = decode_stats_request(*frame);
          StatsResponse response;
          response.request_id = request.request_id;
          const CacheStats cache = service_->cache_stats();
          response.cache_lookups = cache.lookups;
          response.cache_hits = cache.hits;
          response.cache_misses = cache.misses;
          response.cache_coalesced = cache.coalesced;
          response.queued_jobs = service_->queued_jobs();
          for (const auto& [tenant, stats] : service_->tenant_stats()) {
            response.tenants.push_back({tenant, stats.submitted,
                                        stats.completed, stats.failed,
                                        stats.cancelled, stats.cache_hits,
                                        stats.expired, stats.shed});
          }
          enqueue_frame(conn, encode_stats_response(response));
          break;
        }
        case MessageType::kSubmitRequest:
          handle_submit(conn_id, conn, *frame);
          break;
        default:
          // A server never receives responses; answer rather than kill the
          // connection so a confused client can see what it did.
          enqueue_frame(conn,
                        encode_error_response(
                            {0, WireErrorCode::kBadRequest,
                             "unexpected message type on a server"}));
          break;
      }
    }
    return true;
  } catch (const ProtocolError&) {
    // Malformed bytes: the stream offset is untrustworthy from here on, so
    // the connection dies (the counter is bumped by the caller).
    return false;
  }
}

void Server::handle_submit(std::uint64_t conn_id, Connection& conn,
                           const Frame& frame) {
  const SubmitRequest msg = decode_submit_request(frame);
  try {
    JobFileEntry entry;
    entry.msa_path = msg.msa_path;
    entry.tree_path = "-";
    entry.model = msg.model;
    entry.backend = msg.backend;
    entry.ram_fraction = msg.ram_fraction;
    entry.name = msg.name;
    entry.format = msg.format;
    entry.data_type = msg.data_type;
    entry.strategy = msg.strategy;
    entry.kappa = msg.kappa;
    entry.categories = msg.categories;
    entry.alpha = msg.alpha;
    entry.seed = msg.seed;
    entry.budget_bytes = msg.budget_bytes;
    entry.threads = msg.threads;

    Alignment alignment = load_entry_alignment(entry);
    Tree tree = [&] {
      if (msg.tree_kind == WireTreeKind::kPhylo2Vec) {
        std::vector<std::string> names;
        names.reserve(alignment.num_taxa());
        for (std::size_t i = 0; i < alignment.num_taxa(); ++i)
          names.push_back(alignment.name(i));
        std::sort(names.begin(), names.end());
        PLFOC_REQUIRE(phylo2vec_taxa_digest(names) == msg.taxa_digest,
                      "taxa digest mismatch: the tree was encoded against "
                      "a different taxon set than the alignment");
        Phylo2Vec encoding{std::move(names), msg.tree_v, msg.tree_lengths};
        phylo2vec_validate(encoding);
        return phylo2vec_decode(encoding);
      }
      Rng rng(msg.seed);
      return stepwise_addition_tree(alignment, rng);
    }();
    JobSpec spec = make_job_spec(entry, std::move(alignment), std::move(tree));
    spec.tenant = msg.tenant;
    // v2 deadline (ms on the wire; 0 = none). Armed by the service at
    // accept time, so the clock starts here — queue time counts.
    spec.deadline_seconds = static_cast<double>(msg.deadline_ms) / 1000.0;

    const std::optional<JobId> id = service_->try_submit(std::move(spec));
    if (!id) {
      enqueue_frame(conn, encode_error_response(
                              {msg.request_id, WireErrorCode::kBusy,
                               "job queue is full; retry later"}));
      return;
    }
    routes_[*id] = {conn_id, msg.request_id};
  } catch (const Error& error) {
    bool stopping;
    {
      MutexLock lock(mutex_);
      stopping = stop_requested_;
    }
    enqueue_frame(conn,
                  encode_error_response({msg.request_id,
                                         stopping ? WireErrorCode::kShutdown
                                                  : WireErrorCode::kBadRequest,
                                         strip_line_tag(error.what())}));
  }
}

void Server::enqueue_frame(Connection& conn, std::vector<std::uint8_t> bytes) {
  conn.outbox.push_back(std::move(bytes));
  MutexLock lock(mutex_);
  ++stats_.frames_out;
}

void Server::route_pending_results() {
  std::vector<JobResult> batch;
  {
    MutexLock lock(mutex_);
    batch.swap(pending_results_);
  }
  for (const JobResult& result : batch) {
    auto route = routes_.find(result.id);
    if (route == routes_.end()) continue;  // in-process submit, not ours
    const auto [conn_id, request_id] = route->second;
    routes_.erase(route);
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) continue;  // client went away
    enqueue_frame(it->second,
                  encode_result_response(
                      make_result_response(request_id, result)));
  }
}

bool Server::flush_outbox(Connection& conn) {
  while (!conn.outbox.empty()) {
    const std::vector<std::uint8_t>& front = conn.outbox.front();
    const ssize_t n =
        ::send(conn.socket.fd(), front.data() + conn.front_offset,
               front.size() - conn.front_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.front_offset += static_cast<std::size_t>(n);
    if (conn.front_offset == front.size()) {
      conn.outbox.pop_front();
      conn.front_offset = 0;
    }
  }
  return true;
}

void Server::drop_connection(std::uint64_t conn_id) {
  connections_.erase(conn_id);
  MutexLock lock(mutex_);
  ++stats_.closed;
}

ResultResponse Server::make_result_response(std::uint64_t request_id,
                                            const JobResult& result) {
  ResultResponse response;
  response.request_id = request_id;
  response.job_id = result.id;
  response.status = static_cast<std::uint8_t>(result.status);
  response.logl_bits = std::bit_cast<std::uint64_t>(result.log_likelihood);
  if (result.degraded) response.flags |= kResultDegraded;
  if (result.cache_hit) response.flags |= kResultCacheHit;
  if (result.io_failure) response.flags |= kResultIoFailure;
  if (result.integrity_failure) response.flags |= kResultIntegrityFailure;
  if (result.status == JobStatus::kDeadlineExceeded)
    response.flags |= kResultDeadlineExceeded;
  if (result.status == JobStatus::kCancelled)
    response.flags |= kResultCancelled;
  if (result.status == JobStatus::kOverloaded)
    response.flags |= kResultOverloaded;
  response.error = result.error;
  response.wall_seconds = result.wall_seconds;
  response.queue_seconds = result.queue_seconds;
  response.backend = backend_wire_name(result.admitted_backend);
  response.attempts = result.attempts;
  return response;
}

}  // namespace plfoc
