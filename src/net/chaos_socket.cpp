#include "net/chaos_socket.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/checks.hpp"

namespace plfoc {
namespace {

void stall_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const char* chaos_mode_name(ChaosMode mode) {
  switch (mode) {
    case ChaosMode::kMidFrameDisconnect:
      return "mid-frame-disconnect";
    case ChaosMode::kTrickle:
      return "trickle";
    case ChaosMode::kSlowLoris:
      return "slow-loris";
  }
  return "unknown";
}

ChaosSocket::ChaosSocket(const std::string& host, std::uint16_t port,
                         std::uint64_t seed, ChaosMode mode)
    : socket_(Socket::connect_to(host, port)),
      rng_(seed),
      seed_(seed),
      mode_(mode) {}

ChaosSocket::~ChaosSocket() {
  // Half the teardowns are abortive (RST), half orderly (FIN): the server
  // must shrug off both. Drawn from the seeded stream so a trial replays.
  if (socket_.valid() && rng_.below(2) == 0) abort_close();
}

void ChaosSocket::abort_close() {
  if (!socket_.valid()) return;
  struct linger hard = {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  // Best effort: a failed setsockopt just downgrades RST to FIN.
  ::setsockopt(socket_.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  socket_.reset();
}

bool ChaosSocket::send_chunk(const std::uint8_t* data, std::size_t size,
                             ChaosReport* report) {
  if (!socket_.valid()) return false;
  try {
    socket_.send_all(data, size);
  } catch (const Error&) {
    // EPIPE/ECONNRESET: the server dropped us. For a chaos client that is
    // an outcome to record, not a failure to propagate.
    report->peer_closed = true;
    socket_.reset();
    return false;
  }
  report->bytes_sent += size;
  return true;
}

ChaosReport ChaosSocket::run(const std::uint8_t* frame, std::size_t size) {
  ChaosReport report;
  PLFOC_REQUIRE(size > 0, "chaos script needs a non-empty frame");
  switch (mode_) {
    case ChaosMode::kMidFrameDisconnect: {
      // Deliver a strict prefix — never the whole frame — then vanish.
      // cut in [1, size): at least one byte so the decoder has started.
      const std::size_t cut =
          1 + static_cast<std::size_t>(rng_.below(size > 1 ? size - 1 : 1));
      send_chunk(frame, std::min(cut, size - 1), &report);
      abort_close();
      break;
    }
    case ChaosMode::kTrickle: {
      // Every byte arrives, but one syscall at a time with short stalls —
      // the frame decoder must reassemble across dozens of reads. Then
      // read the response back just as slowly.
      for (std::size_t i = 0; i < size; ++i) {
        if (!send_chunk(frame + i, 1, &report)) return report;
        if (rng_.below(4) == 0) stall_ms(1 + rng_.below(3));
      }
      // Trickle-read until the peer closes or ~one response frame worth
      // of bytes has arrived (the scripted client does not decode).
      std::uint8_t byte = 0;
      for (std::size_t reads = 0; reads < 4096; ++reads) {
        std::size_t n = 0;
        try {
          n = socket_.recv_some(&byte, 1);
        } catch (const Error&) {
          report.peer_closed = true;
          socket_.reset();
          return report;
        }
        if (n == 0) {
          report.peer_closed = true;
          return report;
        }
        report.bytes_received += n;
        if (rng_.below(8) == 0) stall_ms(1);
        // Stop after the 12-byte header plus a small body sample; the
        // real protocol conformance tests live in test_net.cpp.
        if (report.bytes_received >= 16) break;
      }
      break;
    }
    case ChaosMode::kSlowLoris: {
      // Dribble only a few header bytes with long pauses and never finish
      // the frame: the classic connection-slot squatter. The server's
      // idle sweep (or our own abandonment) ends it.
      const std::size_t dribble =
          std::min<std::size_t>(size, 1 + rng_.below(8));
      for (std::size_t i = 0; i < dribble; ++i) {
        if (!send_chunk(frame + i, 1, &report)) return report;
        stall_ms(2 + rng_.below(10));
      }
      // Abandon without closing; the destructor picks FIN or RST.
      break;
    }
  }
  return report;
}

}  // namespace plfoc
