// RAII wrapper for a connected TCP socket.
//
// Deliberately interface-only: every raw socket syscall in the project lives
// in src/net/server.cpp (including the implementations of these methods),
// which is the single file the plfoc-lint `raw-socket` rule allows. The
// client (net/client.hpp), the CLI and the benchmarks all do their network
// I/O through this class, so the auditable syscall surface stays one TU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace plfoc {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close the descriptor now (also done by the destructor).
  void reset();

  /// Blocking TCP connect; throws plfoc::Error on resolution/connect
  /// failure.
  static Socket connect_to(const std::string& host, std::uint16_t port);

  /// Send the whole buffer (blocking, retries short sends); throws
  /// plfoc::Error on a broken connection.
  void send_all(const std::uint8_t* data, std::size_t size);

  /// Receive up to `size` bytes; returns 0 on orderly peer shutdown,
  /// throws plfoc::Error on a socket error.
  std::size_t recv_some(std::uint8_t* data, std::size_t size);

 private:
  int fd_ = -1;
};

}  // namespace plfoc
