// The socket front-end of the serving tier (`plfoc serve`).
//
// One event thread runs a poll(2) loop over the listening socket, a
// self-wake socketpair and every client connection. Connections speak the
// length-prefixed protocol of net/protocol.hpp; each carries its own
// incremental FrameDecoder, an outbox for queued response bytes and an
// idle clock. Submits are bound to a JobSpec on the event thread (alignment
// loaded from the server-side path, Phylo2Vec trees digest-verified and
// decoded) and handed to the embedded Service, whose FairJobQueue /
// ResultCache / Scheduler stack does the real work. Results come back via
// ServiceOptions::on_complete — worker threads only append to a pending
// list under the server mutex and poke the wake socket; all connection
// state stays single-threaded on the event thread.
//
// Failure containment: a malformed frame (typed ProtocolError) costs that
// one connection; a rejected submit (bad model, digest mismatch, queue
// full, draining) costs one kErrorResponse; nothing reaches the engine.
//
// All raw socket syscalls live in server.cpp — the plfoc-lint `raw-socket`
// rule pins that boundary the same way `raw-io` pins the FileBackend.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port (tests); port() reports the
  /// actual one after start().
  std::uint16_t port = 0;
  std::size_t max_connections = 64;
  /// Close connections silent for longer than this; 0 disables the sweep.
  double idle_timeout_seconds = 300.0;
  std::size_t max_frame_bytes = kMaxFramePayload;
  /// stop(): how long to keep best-effort flushing already-finished
  /// responses to still-connected clients before closing them. Responses
  /// left unsent when the window closes are counted in the drain report
  /// (DrainReport::unsent_frames / unsent_connections).
  double drain_flush_seconds = 2.0;
  /// The embedded service (workers, budget, cache, tenants). The server
  /// installs its own on_complete hook; a caller-provided one is invoked
  /// too, after the response is routed.
  ServiceOptions service;
};

/// Loopback server options for tests and benchmarks: bind 127.0.0.1 on a
/// kernel-assigned ephemeral port, so back-to-back runs can never collide on
/// a fixed port (Server::start() additionally retries a transient
/// EADDRINUSE). Read the actual port back with Server::port().
ServerOptions loopback_server_options(std::size_t workers = 2,
                                      std::size_t queue_capacity = 16);

/// Lifetime counters, readable while the server runs.
struct ServerStats {
  std::uint64_t accepted = 0;         ///< connections accepted
  std::uint64_t closed = 0;           ///< connections closed (any reason)
  std::uint64_t over_limit = 0;       ///< accepts refused at max_connections
  std::uint64_t idle_closed = 0;      ///< closed by the idle sweep
  std::uint64_t protocol_errors = 0;  ///< connections dropped on bad frames
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< calls stop() if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the event thread. Throws plfoc::Error when the
  /// address cannot be bound.
  void start();
  /// The bound port (resolves port 0); valid after start().
  std::uint16_t port() const { return bound_port_; }

  /// Shut down: stop accepting, flush queued-but-unadmitted jobs
  /// (Service::drain(kFlushQueued)), best-effort deliver the already
  /// finished responses, close every connection, join the event thread.
  /// Idempotent; returns the service's per-tenant drain report.
  DrainReport stop();

  Service& service() { return *service_; }
  ServerStats stats() const;

 private:
  struct Connection {
    Socket socket;
    FrameDecoder decoder;
    /// Encoded frames waiting for POLLOUT; offset_ tracks the partial send
    /// position inside the front buffer.
    std::deque<std::vector<std::uint8_t>> outbox;
    std::size_t front_offset = 0;
    double last_activity = 0.0;  ///< seconds on the event loop's clock
  };

  void event_loop();
  /// Process every complete frame buffered on the connection. Returns
  /// false when the connection must be dropped (protocol error).
  bool handle_frames(std::uint64_t conn_id, Connection& conn);
  void handle_submit(std::uint64_t conn_id, Connection& conn,
                     const Frame& frame);
  void enqueue_frame(Connection& conn, std::vector<std::uint8_t> bytes);
  /// Move externally produced results (worker threads) into outboxes.
  void route_pending_results();
  /// True when the socket went dry but the outbox still holds bytes.
  bool flush_outbox(Connection& conn);
  void drop_connection(std::uint64_t conn_id);
  static ResultResponse make_result_response(std::uint64_t request_id,
                                             const JobResult& result);

  ServerOptions options_;
  std::unique_ptr<Service> service_;
  std::uint16_t bound_port_ = 0;

  Socket listener_;   ///< event thread only (after start())
  Socket wake_recv_;  ///< event thread only
  /// Any thread may poke this to interrupt poll() (1-byte send).
  Socket wake_send_;

  /// Event-thread-only state (no locking; the event thread is the sole
  /// owner between start() and join).
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  /// job id -> (connection id, client request id); routes for results.
  std::map<JobId, std::pair<std::uint64_t, std::uint64_t>> routes_;
  double clock_ = 0.0;  ///< monotonic seconds, refreshed per loop pass

  mutable Mutex mutex_;
  bool running_ PLFOC_GUARDED_BY(mutex_) = false;
  bool stop_requested_ PLFOC_GUARDED_BY(mutex_) = false;
  /// Results finished by service workers, awaiting routing.
  std::vector<JobResult> pending_results_ PLFOC_GUARDED_BY(mutex_);
  ServerStats stats_ PLFOC_GUARDED_BY(mutex_);

  std::thread event_thread_;
};

}  // namespace plfoc
