#include "net/client.hpp"

#include <utility>

#include "tree/newick.hpp"
#include "tree/phylo2vec.hpp"
#include "util/checks.hpp"

namespace plfoc {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port)
    : socket_(Socket::connect_to(host, port)) {}

void BlockingClient::submit(const SubmitRequest& request) {
  const std::vector<std::uint8_t> bytes = encode_submit_request(request);
  socket_.send_all(bytes.data(), bytes.size());
}

Frame BlockingClient::read_frame() {
  std::uint8_t chunk[4096];
  for (;;) {
    if (std::optional<Frame> frame = decoder_.next()) return *std::move(frame);
    const std::size_t n = socket_.recv_some(chunk, sizeof(chunk));
    PLFOC_REQUIRE(n > 0, "connection closed by server");
    decoder_.append(chunk, n);
  }
}

void BlockingClient::file_response(const Frame& frame) {
  switch (frame.type) {
    case MessageType::kResultResponse: {
      ResultResponse response = decode_result_response(frame);
      const std::uint64_t id = response.request_id;
      pending_[id].result = std::move(response);
      break;
    }
    case MessageType::kErrorResponse: {
      ErrorResponse response = decode_error_response(frame);
      const std::uint64_t id = response.request_id;
      pending_[id].error = std::move(response);
      break;
    }
    case MessageType::kStatsResponse: {
      StatsResponse response = decode_stats_response(frame);
      const std::uint64_t id = response.request_id;
      pending_stats_[id] = std::move(response);
      break;
    }
    case MessageType::kPong:
      pong_seen_ = true;
      break;
    default:
      throw ProtocolError(ProtocolError::Kind::kBadType,
                          "unexpected message type on a client");
  }
}

ClientResponse BlockingClient::wait(std::uint64_t request_id) {
  for (;;) {
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      ClientResponse response = std::move(it->second);
      pending_.erase(it);
      return response;
    }
    file_response(read_frame());
  }
}

StatsResponse BlockingClient::stats(std::uint64_t request_id) {
  StatsRequest request;
  request.request_id = request_id;
  const std::vector<std::uint8_t> bytes = encode_stats_request(request);
  socket_.send_all(bytes.data(), bytes.size());
  for (;;) {
    auto it = pending_stats_.find(request_id);
    if (it != pending_stats_.end()) {
      StatsResponse response = std::move(it->second);
      pending_stats_.erase(it);
      return response;
    }
    file_response(read_frame());
  }
}

void BlockingClient::ping() {
  const std::vector<std::uint8_t> bytes = encode_ping();
  socket_.send_all(bytes.data(), bytes.size());
  pong_seen_ = false;
  while (!pong_seen_) file_response(read_frame());
}

SubmitRequest submit_request_from_entry(const JobFileEntry& entry,
                                        const std::string& tenant,
                                        std::uint64_t request_id) {
  SubmitRequest request;
  request.request_id = request_id;
  request.tenant = tenant;
  request.name = entry.name;
  request.msa_path = entry.msa_path;
  request.format = entry.format;
  request.data_type = entry.data_type;
  request.model = entry.model;
  request.kappa = entry.kappa;
  request.categories = entry.categories;
  request.alpha = entry.alpha;
  request.backend = entry.backend;
  request.ram_fraction = entry.ram_fraction;
  request.budget_bytes = entry.budget_bytes;
  request.strategy = entry.strategy;
  request.seed = entry.seed;
  request.threads = entry.threads;
  request.deadline_ms = deadline_ms_from_seconds(entry.deadline_seconds);
  if (entry.tree_path == "-") {
    request.tree_kind = WireTreeKind::kStepwise;
  } else {
    const Tree tree = read_newick_file(entry.tree_path);
    Phylo2Vec encoding = phylo2vec_encode(tree);
    request.tree_kind = WireTreeKind::kPhylo2Vec;
    request.taxa_digest = phylo2vec_taxa_digest(encoding.taxa);
    request.tree_v = std::move(encoding.v);
    request.tree_lengths = std::move(encoding.lengths);
  }
  return request;
}

}  // namespace plfoc
