// Blocking client of the serving tier's wire protocol.
//
// One BlockingClient owns one TCP connection. submit() fires a
// SubmitRequest frame and returns immediately; wait(request_id) reads
// frames (buffering out-of-order answers) until that request's
// ResultResponse or ErrorResponse arrives, so a caller can pipeline many
// submits and collect the answers in any order. stats() and ping() are
// simple request/response round trips.
//
// This class performs no raw socket syscalls — all its I/O goes through
// net/socket.hpp (implemented in server.cpp, the one TU the plfoc-lint
// `raw-socket` rule allows). `plfoc-client`, the loopback tests and the
// networked bench phases all sit on top of this class, which makes it the
// protocol's reference consumer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/jobfile.hpp"

namespace plfoc {

/// Exactly one of the two members is set: the server answers a submit with
/// either a ResultResponse (the job ran) or an ErrorResponse (rejected
/// before it reached the queue — malformed, digest mismatch, busy,
/// shutting down).
struct ClientResponse {
  std::optional<ResultResponse> result;
  std::optional<ErrorResponse> error;
};

class BlockingClient {
 public:
  /// Connect; throws plfoc::Error when the server is unreachable.
  BlockingClient(const std::string& host, std::uint16_t port);

  /// Send one submit frame (non-blocking on the response; pair with
  /// wait()). The request_id must be unique within this connection.
  void submit(const SubmitRequest& request);

  /// Block until the response for `request_id` arrives. Throws
  /// plfoc::Error when the connection dies first and ProtocolError when
  /// the server sends malformed bytes.
  ClientResponse wait(std::uint64_t request_id);

  /// Round trip a StatsRequest.
  StatsResponse stats(std::uint64_t request_id = 0);

  /// Round trip a Ping (liveness probe); throws if the pong never comes.
  void ping();

 private:
  /// Read one frame off the wire (blocking). Throws plfoc::Error on EOF.
  Frame read_frame();
  /// File a response frame under its request id.
  void file_response(const Frame& frame);

  Socket socket_;
  FrameDecoder decoder_;
  /// Answers read while waiting for a different request id.
  std::map<std::uint64_t, ClientResponse> pending_;
  std::map<std::uint64_t, StatsResponse> pending_stats_;
  bool pong_seen_ = false;
};

/// Build the wire request for one jobfile entry: scalar fields copied
/// verbatim; a '-' tree column becomes kStepwise (the server seeds the
/// stepwise-addition tree), any other column is read as a Newick file here
/// on the client and shipped as a canonical Phylo2Vec payload with the
/// sorted-taxa digest the server verifies before binding leaf ranks.
SubmitRequest submit_request_from_entry(const JobFileEntry& entry,
                                        const std::string& tenant,
                                        std::uint64_t request_id);

}  // namespace plfoc
