#include "net/protocol.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace plfoc {

std::uint64_t deadline_ms_from_seconds(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double ms = std::ceil(seconds * 1000.0);
  return ms < 1.0 ? 1 : static_cast<std::uint64_t>(ms);
}

namespace {

void require(bool condition, ProtocolError::Kind kind,
             const std::string& what) {
  if (!condition) throw ProtocolError(kind, what);
}

bool known_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MessageType::kSubmitRequest) &&
         raw <= static_cast<std::uint16_t>(MessageType::kPong);
}

std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0]) |
         static_cast<std::uint16_t>(p[1]) << 8;
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

WireReader reader_for(const Frame& frame, MessageType expected,
                      const char* name) {
  require(frame.type == expected, ProtocolError::Kind::kBadType,
          std::string("frame is not a ") + name);
  return WireReader(frame.payload);
}

}  // namespace

void FrameDecoder::append(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  std::uint8_t header[kFrameHeaderBytes];
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) header[i] = buffer_[i];
  require(load_u32(header) == kProtocolMagic, ProtocolError::Kind::kBadMagic,
          "bad frame magic");
  const std::uint16_t version = load_u16(header + 4);
  require(version >= kMinProtocolVersion && version <= kProtocolVersion,
          ProtocolError::Kind::kBadVersion,
          "unsupported protocol version " + std::to_string(version));
  const std::uint16_t raw_type = load_u16(header + 6);
  require(known_type(raw_type), ProtocolError::Kind::kBadType,
          "unknown message type " + std::to_string(raw_type));
  const std::uint32_t payload_len = load_u32(header + 8);
  require(payload_len <= max_payload_, ProtocolError::Kind::kOversized,
          "payload of " + std::to_string(payload_len) +
              " bytes exceeds the frame limit");
  if (buffer_.size() < kFrameHeaderBytes + payload_len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.version = version;
  frame.payload.reserve(payload_len);
  auto begin = buffer_.begin() + kFrameHeaderBytes;
  frame.payload.assign(begin, begin + payload_len);
  buffer_.erase(buffer_.begin(), begin + payload_len);
  return frame;
}

std::uint8_t WireReader::u8() {
  require(remaining() >= 1, ProtocolError::Kind::kTruncated,
          "payload truncated reading u8");
  return data_[offset_++];
}

std::uint16_t WireReader::u16() {
  require(remaining() >= 2, ProtocolError::Kind::kTruncated,
          "payload truncated reading u16");
  const std::uint16_t value = load_u16(data_ + offset_);
  offset_ += 2;
  return value;
}

std::uint32_t WireReader::u32() {
  require(remaining() >= 4, ProtocolError::Kind::kTruncated,
          "payload truncated reading u32");
  const std::uint32_t value = load_u32(data_ + offset_);
  offset_ += 4;
  return value;
}

std::uint64_t WireReader::u64() {
  const std::uint64_t low = u32();
  const std::uint64_t high = u32();
  return low | high << 32;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::string() {
  const std::uint32_t length = u32();
  require(remaining() >= length, ProtocolError::Kind::kTruncated,
          "payload truncated reading a string of " + std::to_string(length) +
              " bytes");
  std::string value(reinterpret_cast<const char*>(data_ + offset_), length);
  offset_ += length;
  return value;
}

std::vector<std::uint32_t> WireReader::u32_vector() {
  const std::uint32_t count = u32();
  // Check the claim against the bytes actually present before allocating,
  // so a forged huge count fails as kTruncated instead of OOM-ing.
  require(remaining() / 4 >= count, ProtocolError::Kind::kTruncated,
          "payload truncated reading a u32 vector of " +
              std::to_string(count) + " elements");
  std::vector<std::uint32_t> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) values.push_back(u32());
  return values;
}

std::vector<double> WireReader::f64_vector() {
  const std::uint32_t count = u32();
  require(remaining() / 8 >= count, ProtocolError::Kind::kTruncated,
          "payload truncated reading an f64 vector of " +
              std::to_string(count) + " elements");
  std::vector<double> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) values.push_back(f64());
  return values;
}

void WireReader::expect_end() const {
  require(remaining() == 0, ProtocolError::Kind::kTrailingBytes,
          std::to_string(remaining()) + " trailing bytes after the message");
}

void WireWriter::u8(std::uint8_t value) { payload_.push_back(value); }

void WireWriter::u16(std::uint16_t value) {
  payload_.push_back(static_cast<std::uint8_t>(value));
  payload_.push_back(static_cast<std::uint8_t>(value >> 8));
}

void WireWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    payload_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void WireWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    payload_.push_back(static_cast<std::uint8_t>(value >> shift));
}

void WireWriter::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void WireWriter::string(const std::string& value) {
  u32(static_cast<std::uint32_t>(value.size()));
  payload_.insert(payload_.end(), value.begin(), value.end());
}

void WireWriter::u32_vector(const std::vector<std::uint32_t>& values) {
  u32(static_cast<std::uint32_t>(values.size()));
  for (const std::uint32_t value : values) u32(value);
}

void WireWriter::f64_vector(const std::vector<double>& values) {
  u32(static_cast<std::uint32_t>(values.size()));
  for (const double value : values) f64(value);
}

std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& body,
                                       std::uint16_t version) {
  WireWriter header;
  header.u32(kProtocolMagic);
  header.u16(version);
  header.u16(static_cast<std::uint16_t>(type));
  header.u32(static_cast<std::uint32_t>(body.size()));
  std::vector<std::uint8_t> frame = header.take();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

std::vector<std::uint8_t> encode_submit_request(const SubmitRequest& msg,
                                                std::uint16_t version) {
  WireWriter body;
  body.u64(msg.request_id);
  body.string(msg.tenant);
  body.string(msg.name);
  body.string(msg.msa_path);
  body.string(msg.format);
  body.string(msg.data_type);
  body.string(msg.model);
  body.f64(msg.kappa);
  body.u32(msg.categories);
  body.f64(msg.alpha);
  body.string(msg.backend);
  body.f64(msg.ram_fraction);
  body.u64(msg.budget_bytes);
  body.string(msg.strategy);
  body.u64(msg.seed);
  body.u32(msg.threads);
  body.u8(static_cast<std::uint8_t>(msg.tree_kind));
  if (msg.tree_kind == WireTreeKind::kPhylo2Vec) {
    body.u32_vector(msg.tree_v);
    body.f64_vector(msg.tree_lengths);
    body.u64(msg.taxa_digest);
  }
  if (version >= 2) body.u64(msg.deadline_ms);
  return encode_frame(MessageType::kSubmitRequest, body.payload(), version);
}

SubmitRequest decode_submit_request(const Frame& frame) {
  WireReader reader =
      reader_for(frame, MessageType::kSubmitRequest, "SubmitRequest");
  SubmitRequest msg;
  msg.request_id = reader.u64();
  msg.tenant = reader.string();
  msg.name = reader.string();
  msg.msa_path = reader.string();
  msg.format = reader.string();
  msg.data_type = reader.string();
  msg.model = reader.string();
  msg.kappa = reader.f64();
  msg.categories = reader.u32();
  msg.alpha = reader.f64();
  msg.backend = reader.string();
  msg.ram_fraction = reader.f64();
  msg.budget_bytes = reader.u64();
  msg.strategy = reader.string();
  msg.seed = reader.u64();
  msg.threads = reader.u32();
  const std::uint8_t kind = reader.u8();
  require(kind <= static_cast<std::uint8_t>(WireTreeKind::kPhylo2Vec),
          ProtocolError::Kind::kBadField,
          "unknown tree kind " + std::to_string(kind));
  msg.tree_kind = static_cast<WireTreeKind>(kind);
  if (msg.tree_kind == WireTreeKind::kPhylo2Vec) {
    msg.tree_v = reader.u32_vector();
    msg.tree_lengths = reader.f64_vector();
    msg.taxa_digest = reader.u64();
  }
  // v2 trailer: gate on the frame's own version so a v1 submit (no
  // deadline on the wire) decodes exactly as before.
  if (frame.version >= 2) msg.deadline_ms = reader.u64();
  reader.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_result_response(const ResultResponse& msg) {
  WireWriter body;
  body.u64(msg.request_id);
  body.u64(msg.job_id);
  body.u8(msg.status);
  body.u64(msg.logl_bits);
  body.u8(msg.flags);
  body.string(msg.error);
  body.f64(msg.wall_seconds);
  body.f64(msg.queue_seconds);
  body.string(msg.backend);
  body.u32(msg.attempts);
  return encode_frame(MessageType::kResultResponse, body.payload());
}

ResultResponse decode_result_response(const Frame& frame) {
  WireReader reader =
      reader_for(frame, MessageType::kResultResponse, "ResultResponse");
  ResultResponse msg;
  msg.request_id = reader.u64();
  msg.job_id = reader.u64();
  msg.status = reader.u8();
  msg.logl_bits = reader.u64();
  msg.flags = reader.u8();
  msg.error = reader.string();
  msg.wall_seconds = reader.f64();
  msg.queue_seconds = reader.f64();
  msg.backend = reader.string();
  msg.attempts = reader.u32();
  reader.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_stats_request(const StatsRequest& msg) {
  WireWriter body;
  body.u64(msg.request_id);
  return encode_frame(MessageType::kStatsRequest, body.payload());
}

StatsRequest decode_stats_request(const Frame& frame) {
  WireReader reader =
      reader_for(frame, MessageType::kStatsRequest, "StatsRequest");
  StatsRequest msg;
  msg.request_id = reader.u64();
  reader.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_stats_response(const StatsResponse& msg) {
  WireWriter body;
  body.u64(msg.request_id);
  body.u64(msg.cache_lookups);
  body.u64(msg.cache_hits);
  body.u64(msg.cache_misses);
  body.u64(msg.cache_coalesced);
  body.u64(msg.queued_jobs);
  body.u32(static_cast<std::uint32_t>(msg.tenants.size()));
  for (const StatsResponse::TenantRow& row : msg.tenants) {
    body.string(row.tenant);
    body.u64(row.submitted);
    body.u64(row.completed);
    body.u64(row.failed);
    body.u64(row.cancelled);
    body.u64(row.cache_hits);
    body.u64(row.expired);
    body.u64(row.shed);
  }
  return encode_frame(MessageType::kStatsResponse, body.payload());
}

StatsResponse decode_stats_response(const Frame& frame) {
  WireReader reader =
      reader_for(frame, MessageType::kStatsResponse, "StatsResponse");
  StatsResponse msg;
  msg.request_id = reader.u64();
  msg.cache_lookups = reader.u64();
  msg.cache_hits = reader.u64();
  msg.cache_misses = reader.u64();
  msg.cache_coalesced = reader.u64();
  msg.queued_jobs = reader.u64();
  const std::uint32_t rows = reader.u32();
  for (std::uint32_t i = 0; i < rows; ++i) {
    StatsResponse::TenantRow row;
    row.tenant = reader.string();
    row.submitted = reader.u64();
    row.completed = reader.u64();
    row.failed = reader.u64();
    row.cancelled = reader.u64();
    row.cache_hits = reader.u64();
    if (frame.version >= 2) {
      row.expired = reader.u64();
      row.shed = reader.u64();
    }
    msg.tenants.push_back(std::move(row));
  }
  reader.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_error_response(const ErrorResponse& msg) {
  WireWriter body;
  body.u64(msg.request_id);
  body.u16(static_cast<std::uint16_t>(msg.code));
  body.string(msg.message);
  return encode_frame(MessageType::kErrorResponse, body.payload());
}

ErrorResponse decode_error_response(const Frame& frame) {
  WireReader reader =
      reader_for(frame, MessageType::kErrorResponse, "ErrorResponse");
  ErrorResponse msg;
  msg.request_id = reader.u64();
  const std::uint16_t code = reader.u16();
  require(code >= static_cast<std::uint16_t>(WireErrorCode::kBadRequest) &&
              code <= static_cast<std::uint16_t>(WireErrorCode::kShutdown),
          ProtocolError::Kind::kBadField,
          "unknown error code " + std::to_string(code));
  msg.code = static_cast<WireErrorCode>(code);
  msg.message = reader.string();
  reader.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_ping() {
  return encode_frame(MessageType::kPing, {});
}

std::vector<std::uint8_t> encode_pong() {
  return encode_frame(MessageType::kPong, {});
}

}  // namespace plfoc
