// Sequence evolution simulator — the INDELible substitute (see DESIGN.md).
//
// Simulates character data along a tree under any supported reversible model
// with discrete-Γ rate heterogeneity: root states are drawn from the
// equilibrium frequencies, then states evolve edge by edge with the
// transition matrices P(t·r). Substitution-only (the paper's pipelines
// consume *aligned* data, so indel simulation would be immediately undone by
// the alignment step). Deterministic for a given RNG state.
#pragma once

#include "msa/alignment.hpp"
#include "model/rate_matrix.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plfoc {

struct SimulationOptions {
  /// Γ rate categories (1 = homogeneous rates).
  unsigned categories = 4;
  /// Γ shape parameter used to draw per-site rates.
  double alpha = 1.0;
};

/// Simulate `sites` characters for every taxon of `tree` under `model`.
/// Returns an uncompressed alignment in tree-tip order.
Alignment simulate_alignment(const Tree& tree, const SubstitutionModel& model,
                             std::size_t sites, Rng& rng,
                             const SimulationOptions& options = {});

}  // namespace plfoc
