#include "sim/dataset_planner.hpp"

#include "util/checks.hpp"

namespace plfoc {

std::size_t sites_for_ancestral_bytes(std::size_t num_taxa, unsigned states,
                                      unsigned categories,
                                      std::uint64_t target_bytes) {
  PLFOC_REQUIRE(num_taxa >= 3, "need at least 3 taxa");
  const std::uint64_t per_site =
      static_cast<std::uint64_t>(num_taxa - 2) * 8 * states * categories;
  const std::size_t sites =
      static_cast<std::size_t>((target_bytes + per_site - 1) / per_site);
  return sites > 0 ? sites : 1;
}

SubstitutionModel benchmark_gtr() {
  // A GTR parameterisation with the usual empirical signatures: strong
  // transition/transversion asymmetry (AG, CT elevated) and GC-skewed
  // frequencies. Deterministic so every bench run sees the same model.
  return gtr({1.2, 4.5, 0.8, 1.1, 5.2, 1.0}, {0.30, 0.22, 0.24, 0.24});
}

PlannedDataset make_dna_dataset(const DatasetPlan& plan) {
  std::size_t sites = plan.num_sites;
  if (sites == 0) {
    PLFOC_REQUIRE(plan.target_ancestral_bytes > 0,
                  "dataset plan needs num_sites or target_ancestral_bytes");
    sites = sites_for_ancestral_bytes(plan.num_taxa, 4, plan.categories,
                                      plan.target_ancestral_bytes);
  }
  Rng rng(plan.seed);
  RandomTreeOptions tree_options;
  tree_options.mean_branch_length = plan.mean_branch_length;
  Tree tree = random_tree(plan.num_taxa, rng, tree_options);
  SimulationOptions sim_options;
  sim_options.categories = plan.categories;
  sim_options.alpha = plan.alpha;
  Alignment alignment =
      simulate_alignment(tree, benchmark_gtr(), sites, rng, sim_options);
  MemoryModel memory = MemoryModel::dna(plan.num_taxa, sites, plan.categories);
  return {std::move(tree), std::move(alignment), memory};
}

}  // namespace plfoc
