#include "sim/simulate.hpp"

#include <vector>

#include "model/eigen.hpp"
#include "model/gamma.hpp"
#include "model/transition.hpp"
#include "util/checks.hpp"

namespace plfoc {
namespace {

/// Encoded tip code for a simulated (unambiguous) state.
std::uint8_t code_for_state(DataType type, unsigned state) {
  if (type == DataType::kDna) return static_cast<std::uint8_t>(1u << state);
  return static_cast<std::uint8_t>(state);
}

}  // namespace

Alignment simulate_alignment(const Tree& tree, const SubstitutionModel& model,
                             std::size_t sites, Rng& rng,
                             const SimulationOptions& options) {
  PLFOC_REQUIRE(sites >= 1, "cannot simulate an empty alignment");
  PLFOC_CHECK(tree.is_fully_connected());
  model.validate();
  const unsigned states = model.states();
  const EigenSystem eigen = decompose(model);
  const std::vector<double> rates =
      discrete_gamma_rates(options.alpha, options.categories);

  // Per-site rate category (uniform over the equal-probability classes).
  std::vector<std::uint8_t> site_category(sites);
  for (std::size_t s = 0; s < sites; ++s)
    site_category[s] = static_cast<std::uint8_t>(rng.below(rates.size()));

  // States per node, filled along a preorder walk from an arbitrary root.
  std::vector<std::vector<std::uint8_t>> node_states(tree.num_nodes());
  const NodeId root = tree.inner_node(0);
  node_states[root].resize(sites);
  for (std::size_t s = 0; s < sites; ++s)
    node_states[root][s] = static_cast<std::uint8_t>(
        rng.categorical(model.frequencies.data(), states));

  std::vector<std::pair<NodeId, NodeId>> stack;  // (node, parent)
  for (NodeId nbr : tree.neighbors(root)) stack.emplace_back(nbr, root);
  std::vector<double> pmats;
  while (!stack.empty()) {
    const auto [node, parent] = stack.back();
    stack.pop_back();
    const double t = tree.branch_length(node, parent);
    category_transition_matrices(eigen, t, rates, pmats);
    node_states[node].resize(sites);
    const auto& parent_states = node_states[parent];
    for (std::size_t s = 0; s < sites; ++s) {
      const double* row =
          pmats.data() +
          (static_cast<std::size_t>(site_category[s]) * states +
           parent_states[s]) *
              states;
      node_states[node][s] =
          static_cast<std::uint8_t>(rng.categorical(row, states));
    }
    for (NodeId nbr : tree.neighbors(node))
      if (nbr != parent) stack.emplace_back(nbr, node);
  }

  Alignment alignment(model.type, sites);
  for (NodeId tip = 0; tip < tree.num_taxa(); ++tip) {
    std::vector<std::uint8_t> codes(sites);
    for (std::size_t s = 0; s < sites; ++s)
      codes[s] = code_for_state(model.type, node_states[tip][s]);
    alignment.add_encoded(tree.taxon_name(tip), std::move(codes));
  }
  return alignment;
}

}  // namespace plfoc
