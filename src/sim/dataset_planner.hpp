// Dataset geometry planning for the Fig. 5 experiment: the paper simulated
// 8192-taxon DNA datasets "of variable width s" chosen so the ancestral
// probability vectors need 1-32 GB. These helpers invert the Sec. 3.1
// formulas to pick s for a target footprint and bundle the generation of a
// ready-to-use simulated dataset.
#pragma once

#include <cstdint>

#include "likelihood/memory_model.hpp"
#include "msa/alignment.hpp"
#include "sim/simulate.hpp"
#include "tree/random_tree.hpp"

namespace plfoc {

/// Smallest s such that (n-2) * 8 * states * categories * s >= target_bytes.
std::size_t sites_for_ancestral_bytes(std::size_t num_taxa, unsigned states,
                                      unsigned categories,
                                      std::uint64_t target_bytes);

struct PlannedDataset {
  Tree tree;
  Alignment alignment;  ///< uncompressed
  MemoryModel memory;   ///< geometry of the uncompressed data
};

struct DatasetPlan {
  std::size_t num_taxa = 128;
  /// Either give sites directly...
  std::size_t num_sites = 0;
  /// ...or a target ancestral-vector footprint (used when num_sites == 0).
  std::uint64_t target_ancestral_bytes = 0;
  unsigned categories = 4;
  double alpha = 1.0;
  double mean_branch_length = 0.1;
  std::uint64_t seed = 42;
};

/// Simulate a GTR+Γ DNA dataset on a random tree per the plan.
PlannedDataset make_dna_dataset(const DatasetPlan& plan);

/// A fixed, realistic GTR model used by benchmarks and examples
/// (heterogeneous rates and frequencies; deterministic).
SubstitutionModel benchmark_gtr();

}  // namespace plfoc
