// Bounded FIFO job queue with backpressure, cancellation and drain-on-close.
//
// The intake side of the service: submitters block (or get kFull from
// try_push) once `capacity` jobs are waiting, which bounds the RAM held by
// queued specs and propagates overload back to the caller instead of
// accepting unbounded work. close() stops intake while letting workers pop
// the remainder — the mechanism behind Service::drain()'s graceful shutdown.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>

#include "service/job.hpp"
#include "util/mutex.hpp"

namespace plfoc {

enum class PushResult {
  kAccepted,
  kFull,    ///< try_push only: queue at capacity
  kClosed,  ///< close() was called; job not accepted
};

class JobQueue {
 public:
  struct Pending {
    JobId id = 0;
    JobSpec spec;
    std::chrono::steady_clock::time_point enqueued;
  };

  explicit JobQueue(std::size_t capacity);

  /// Blocks while the queue is full (backpressure); kAccepted or kClosed.
  PushResult push(Pending job);
  /// Never blocks; kFull when at capacity.
  PushResult try_push(Pending job);

  /// Pop the oldest job; blocks while the queue is empty and open. Returns
  /// nullopt once the queue is closed *and* drained — the worker-loop exit
  /// condition.
  std::optional<Pending> pop();

  /// Remove a still-queued job. False if `id` was already popped (running or
  /// finished) or was never queued.
  bool cancel(JobId id);

  /// Stop intake; queued jobs remain poppable. Idempotent.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Pending> jobs_ PLFOC_GUARDED_BY(mutex_);
  bool closed_ PLFOC_GUARDED_BY(mutex_) = false;
};

}  // namespace plfoc
