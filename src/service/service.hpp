// The embedded batch-evaluation service core.
//
// The paper's out-of-core layer makes one PLF evaluation fit a fixed RAM
// budget; this subsystem serves *many* evaluations at once under the same
// kind of budget. Architecture (see docs/service.md, docs/serving.md):
//
//   submit() -> FairJobQueue (bounded, backpressure, cancellation,
//              weighted-fair dequeue across tenants — service/tenant.hpp)
//           -> ResultCache probe (optional; topologically equivalent
//              queries dedupe via Phylo2Vec canonicalization, concurrent
//              identical queries single-flight — cache/result_cache.hpp)
//           -> Scheduler (admission against the global slot-memory budget
//              plus the tenant's RAM share, degrading jobs instead of
//              rejecting them)
//           -> WorkerPool (each worker builds a private Session per job)
//           -> JobResult (logL + per-job OocStats + timings), merged
//              aggregate stats, drain()/destructor graceful shutdown.
//
// Determinism contract: a job's log likelihood depends only on its spec
// (data, model, seed) — never on worker count, admission order or the
// degradation the scheduler applied — because every backend computes
// bit-identical likelihoods (Sec. 4.1). tests/test_service.cpp enforces
// this across 1/2/8 workers. With the cache enabled the tree is first
// canonicalized (decode(encode(T))), so equivalent rotations are not just
// equal in topology but evaluate bit-identically — which is what makes a
// cached value indistinguishable from a fresh traversal.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/result_cache.hpp"
#include "ooc/aio.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "service/worker_pool.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct ServiceOptions {
  std::size_t workers = 1;
  /// Bounded intake: submit() blocks (try_submit() fails) beyond this many
  /// queued jobs.
  std::size_t queue_capacity = 64;
  /// Aggregate slot-memory budget across all running jobs, in bytes
  /// (0 = unlimited). The scheduler degrades jobs to keep the sum of
  /// admitted slot memory under this.
  std::uint64_t ram_budget_bytes = 0;
  /// When > 0, workers attach a Prefetcher with this lookahead to each
  /// out-of-core job's store (torn down before the session, exercising the
  /// Prefetcher::stop() lifecycle).
  std::size_t prefetch_lookahead = 0;
  /// Kernel threads per worker (the batch --threads default), applied to
  /// every job whose spec left SessionOptions::threads at 0 (a jobfile line
  /// pins its own count with threads=). Total OS compute threads is roughly
  /// workers × kernel_threads; the --ram-budget admission math is unchanged
  /// because kernel threads share the job's already-pinned working triple
  /// (Sec. 3 invariant) — see docs/parallelism.md.
  unsigned kernel_threads = 1;
  /// Service-wide async I/O engine default (docs/async-io.md), applied to
  /// every job whose spec left SessionOptions::io_engine at kSync — the
  /// same inheritance rule as kernel_threads, with kSync playing the role
  /// of "unset" (a jobfile line pins a non-default engine with io-engine=;
  /// pinning sync under a non-sync service default is not expressible, by
  /// design: the service default exists to move a whole batch off the sync
  /// path at once).
  AioEngineKind io_engine = AioEngineKind::kSync;
  /// Submission-queue depth applied together with the io_engine default.
  unsigned io_depth = 8;
  /// Re-admit a job exactly once after a typed I/O failure (IoError: retry
  /// budget exhausted). The retry reuses the same admission charge and bumps
  /// FaultConfig::nonce so an injected schedule behaves like a real transient
  /// fault (it does not deterministically repeat). JobResult::attempts
  /// reports 2 for re-admitted jobs.
  bool readmit_io_failures = false;
  /// Result-cache capacity in entries; 0 disables caching. With the cache
  /// on, job trees are canonicalized through Phylo2Vec before evaluation
  /// (value-transparent; see the determinism note above) and failed jobs
  /// are never cached.
  std::size_t result_cache_entries = 0;
  std::size_t result_cache_shards = 8;
  /// Per-tenant scheduling policies, applied before the workers start.
  /// Tenants absent from the map run under the unconstrained default.
  std::map<std::string, TenantPolicy> tenants;
  /// Invoked outside all service locks after a job reaches kDone or
  /// kFailed through the worker path (not for cancellations). The serving
  /// tier uses this to push responses without polling wait().
  std::function<void(const JobResult&)> on_complete;
};

/// How drain() treats still-queued jobs.
enum class DrainMode {
  kComplete,     ///< run everything queued to completion (the default)
  kFlushQueued,  ///< cancel queued-but-unadmitted jobs; finish running ones
};

/// drain(DrainMode) summary: every result plus per-tenant terminal counts,
/// so server shutdown is observable per tenant (docs/serving.md).
struct DrainReport {
  struct TenantCounts {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
  };
  std::vector<JobResult> results;  ///< submission order
  std::map<std::string, TenantCounts> per_tenant;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  /// Drains (kComplete): finishes queued jobs, joins workers. Use
  /// drain(DrainMode::kFlushQueued) first to abandon queued work instead.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueue a job; blocks while the queue is full (backpressure). Throws
  /// plfoc::Error after drain() has closed intake.
  JobId submit(JobSpec spec);
  /// Non-blocking submit; nullopt when the queue is full.
  std::optional<JobId> try_submit(JobSpec spec);

  /// Remove a still-queued job. True: the job will never run and its result
  /// reads kCancelled. False: a worker already picked it up (it will run to
  /// completion; mid-evaluation cancellation is not supported).
  bool cancel(JobId id);

  /// Block until `id` reaches a terminal status and return its result.
  JobResult wait(JobId id);

  /// Graceful shutdown: close intake, run every queued job to completion,
  /// join the workers, and return all results in submission order.
  /// Idempotent — later calls return the same snapshot.
  std::vector<JobResult> drain();

  /// Shutdown with a per-tenant report. kComplete matches drain();
  /// kFlushQueued first cancels everything still queued (per-tenant FIFO
  /// flush, results read kCancelled) so shutdown does not wait on a deep
  /// backlog — only on the jobs workers already picked up. Idempotent like
  /// drain(); the first call's mode wins.
  DrainReport drain(DrainMode mode);

  /// High-water mark of concurrently charged slot memory (the acceptance
  /// check against ram_budget_bytes).
  std::uint64_t peak_charged_bytes() const;
  /// All finished jobs' store counters merged (operator+= under the service
  /// mutex — the thread-safe merge path).
  OocStats merged_stats() const;
  /// Result-cache counters (identity-checked); zeros when caching is off.
  CacheStats cache_stats() const;
  /// Per-tenant counters (submitted/completed/failed/cancelled/cache_hits).
  std::map<std::string, TenantStats> tenant_stats() const;
  /// Install or replace one tenant's policy at runtime (server admin path).
  void set_tenant_policy(const std::string& tenant,
                         const TenantPolicy& policy);
  std::size_t queued_jobs() const { return queue_.size(); }
  const ServiceOptions& options() const { return options_; }

 private:
  void worker_loop(std::size_t worker);
  JobResult run_job(JobId id, JobSpec spec, const Admission& admission,
                    unsigned attempt);
  JobId register_job(JobSpec& spec) PLFOC_EXCLUDES(mutex_);
  /// Record a terminal worker-path result and fire the notifications +
  /// on_complete. Consumes `result`.
  void finish_job(JobId id, JobResult result);
  /// True when `tenant` may charge `bytes` against its RAM share right
  /// now. A tenant with nothing charged is always admitted (progress
  /// guarantee mirroring the scheduler's sole-job floor).
  bool tenant_share_allows(const std::string& tenant, std::uint64_t bytes)
      PLFOC_REQUIRES(mutex_);

  ServiceOptions options_;
  /// One async-I/O engine shared by every worker session (null under the
  /// kSync default). Built once in the constructor and handed to each job's
  /// SessionOptions: N workers then feed one submission queue / worker pool
  /// instead of spawning N engines. Immutable after construction; the
  /// handle's own mutex serialises whole batches (ooc/aio.hpp).
  std::shared_ptr<AioEngineHandle> shared_aio_;
  TenantRegistry registry_;  ///< internally synchronised (its own Mutex)
  FairJobQueue queue_;       ///< internally synchronised (its own Mutex)
  /// Null when result_cache_entries == 0; internally synchronised.
  std::unique_ptr<ResultCache> cache_;
  mutable Mutex mutex_;
  CondVar admission_cv_;
  CondVar done_cv_;
  Scheduler scheduler_ PLFOC_GUARDED_BY(mutex_);
  /// Slot memory currently charged per tenant (the RAM-share ledger).
  std::map<std::string, std::uint64_t> tenant_charged_
      PLFOC_GUARDED_BY(mutex_);
  /// Ordered: drain() reports by id.
  std::map<JobId, JobResult> results_ PLFOC_GUARDED_BY(mutex_);
  OocStats merged_ PLFOC_GUARDED_BY(mutex_);
  JobId next_id_ PLFOC_GUARDED_BY(mutex_) = 1;
  bool drained_ PLFOC_GUARDED_BY(mutex_) = false;
  std::vector<JobResult> drain_snapshot_ PLFOC_GUARDED_BY(mutex_);
  std::unique_ptr<WorkerPool> pool_;  ///< last member: threads die first
};

}  // namespace plfoc
