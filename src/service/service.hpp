// The embedded batch-evaluation service core.
//
// The paper's out-of-core layer makes one PLF evaluation fit a fixed RAM
// budget; this subsystem serves *many* evaluations at once under the same
// kind of budget. Architecture (see docs/service.md, docs/serving.md):
//
//   submit() -> FairJobQueue (bounded, backpressure, cancellation,
//              weighted-fair dequeue across tenants — service/tenant.hpp)
//           -> ResultCache probe (optional; topologically equivalent
//              queries dedupe via Phylo2Vec canonicalization, concurrent
//              identical queries single-flight — cache/result_cache.hpp)
//           -> Scheduler (admission against the global slot-memory budget
//              plus the tenant's RAM share, degrading jobs instead of
//              rejecting them)
//           -> WorkerPool (each worker builds a private Session per job)
//           -> JobResult (logL + per-job OocStats + timings), merged
//              aggregate stats, drain()/destructor graceful shutdown.
//
// Determinism contract: a job's log likelihood depends only on its spec
// (data, model, seed) — never on worker count, admission order or the
// degradation the scheduler applied — because every backend computes
// bit-identical likelihoods (Sec. 4.1). tests/test_service.cpp enforces
// this across 1/2/8 workers. With the cache enabled the tree is first
// canonicalized (decode(encode(T))), so equivalent rotations are not just
// equal in topology but evaluate bit-identically — which is what makes a
// cached value indistinguishable from a fresh traversal.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "ooc/aio.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "service/worker_pool.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct ServiceOptions {
  std::size_t workers = 1;
  /// Bounded intake: submit() blocks (try_submit() fails) beyond this many
  /// queued jobs.
  std::size_t queue_capacity = 64;
  /// Aggregate slot-memory budget across all running jobs, in bytes
  /// (0 = unlimited). The scheduler degrades jobs to keep the sum of
  /// admitted slot memory under this.
  std::uint64_t ram_budget_bytes = 0;
  /// When > 0, workers attach a Prefetcher with this lookahead to each
  /// out-of-core job's store (torn down before the session, exercising the
  /// Prefetcher::stop() lifecycle).
  std::size_t prefetch_lookahead = 0;
  /// Kernel threads per worker (the batch --threads default), applied to
  /// every job whose spec left SessionOptions::threads at 0 (a jobfile line
  /// pins its own count with threads=). Total OS compute threads is roughly
  /// workers × kernel_threads; the --ram-budget admission math is unchanged
  /// because kernel threads share the job's already-pinned working triple
  /// (Sec. 3 invariant) — see docs/parallelism.md.
  unsigned kernel_threads = 1;
  /// Service-wide async I/O engine default (docs/async-io.md), applied to
  /// every job whose spec left SessionOptions::io_engine at kSync — the
  /// same inheritance rule as kernel_threads, with kSync playing the role
  /// of "unset" (a jobfile line pins a non-default engine with io-engine=;
  /// pinning sync under a non-sync service default is not expressible, by
  /// design: the service default exists to move a whole batch off the sync
  /// path at once).
  AioEngineKind io_engine = AioEngineKind::kSync;
  /// Submission-queue depth applied together with the io_engine default.
  unsigned io_depth = 8;
  /// Re-admit a job exactly once after a typed I/O failure (IoError: retry
  /// budget exhausted). The retry reuses the same admission charge and bumps
  /// FaultConfig::nonce so an injected schedule behaves like a real transient
  /// fault (it does not deterministically repeat). JobResult::attempts
  /// reports 2 for re-admitted jobs.
  bool readmit_io_failures = false;
  /// Result-cache capacity in entries; 0 disables caching. With the cache
  /// on, job trees are canonicalized through Phylo2Vec before evaluation
  /// (value-transparent; see the determinism note above) and failed jobs
  /// are never cached.
  std::size_t result_cache_entries = 0;
  std::size_t result_cache_shards = 8;
  /// Per-tenant scheduling policies, applied before the workers start.
  /// Tenants absent from the map run under the unconstrained default.
  std::map<std::string, TenantPolicy> tenants;
  /// Worker watchdog stall budget in seconds (0 = watchdog off). Every
  /// check point a job passes bumps its token's progress counter; when the
  /// counter of a running job stays frozen longer than this budget, the
  /// watchdog trips the token with kWatchdog and the evaluation unwinds at
  /// its next check point exactly like an explicit cancel. This catches
  /// *wedged* jobs (a hung I/O path, a livelocked loop between check
  /// points), not merely slow ones — a slow job keeps bumping progress.
  double watchdog_stall_seconds = 0;
  /// Overload shedding: a popped job that waited in the queue longer than
  /// this many seconds is rejected with kOverloaded instead of run
  /// (0 = off). Under sustained offered load above capacity this bounds
  /// the latency of the jobs that DO run — see bench/service_throughput's
  /// overload phase and docs/robustness.md.
  double shed_queue_seconds = 0;
  /// Invoked outside all service locks after a job reaches a terminal
  /// status through the worker path: kDone, kFailed, and the typed drops
  /// kDeadlineExceeded / kOverloaded / mid-evaluation kCancelled. Not
  /// fired for queue-removal cancellations (Service::cancel of a
  /// still-queued job, drain flush) — those resolve synchronously at the
  /// call site. The serving tier uses this to push responses without
  /// polling wait().
  std::function<void(const JobResult&)> on_complete;
};

/// How drain() treats still-queued jobs.
enum class DrainMode {
  kComplete,     ///< run everything queued to completion (the default)
  kFlushQueued,  ///< cancel queued-but-unadmitted jobs; finish running ones
};

/// drain(DrainMode) summary: every result plus per-tenant terminal counts,
/// so server shutdown is observable per tenant (docs/serving.md).
struct DrainReport {
  struct TenantCounts {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;  ///< kDeadlineExceeded
    std::uint64_t shed = 0;     ///< kOverloaded
  };
  std::vector<JobResult> results;  ///< submission order
  std::map<std::string, TenantCounts> per_tenant;
  /// Socket front-end only (Server::stop): response frames still sitting in
  /// connection outboxes when the drain-flush window closed, and how many
  /// connections held them. Always 0 for in-process Service::drain calls.
  std::uint64_t unsent_frames = 0;
  std::uint64_t unsent_connections = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  /// Drains (kComplete): finishes queued jobs, joins workers. Use
  /// drain(DrainMode::kFlushQueued) first to abandon queued work instead.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueue a job; blocks while the queue is full (backpressure). Throws
  /// plfoc::Error after drain() has closed intake.
  JobId submit(JobSpec spec);
  /// Non-blocking submit; nullopt when the queue is full.
  std::optional<JobId> try_submit(JobSpec spec);

  /// Cancel a job. Still queued: it is removed, never runs, and its result
  /// reads kCancelled immediately. Already picked up by a worker: the
  /// job's cancellation token is tripped (kExplicit) and the evaluation
  /// unwinds cooperatively at its next check point — wait(id) then reports
  /// kCancelled with the store left audit-clean. Returns false only when
  /// the job is already terminal (or the id is unknown) — the pop race
  /// that used to yield a false return now lands in the mid-evaluation
  /// branch. Best-effort at the finish line: a job that completes its
  /// last check point concurrently with the trip still reports kDone.
  bool cancel(JobId id);

  /// Block until `id` reaches a terminal status and return its result.
  JobResult wait(JobId id);

  /// Graceful shutdown: close intake, run every queued job to completion,
  /// join the workers, and return all results in submission order.
  /// Idempotent — later calls return the same snapshot.
  std::vector<JobResult> drain();

  /// Shutdown with a per-tenant report. kComplete matches drain();
  /// kFlushQueued first cancels everything still queued (per-tenant FIFO
  /// flush, results read kCancelled) so shutdown does not wait on a deep
  /// backlog — only on the jobs workers already picked up. Idempotent like
  /// drain(); the first call's mode wins.
  DrainReport drain(DrainMode mode);

  /// High-water mark of concurrently charged slot memory (the acceptance
  /// check against ram_budget_bytes).
  std::uint64_t peak_charged_bytes() const;
  /// All finished jobs' store counters merged (operator+= under the service
  /// mutex — the thread-safe merge path).
  OocStats merged_stats() const;
  /// Result-cache counters (identity-checked); zeros when caching is off.
  CacheStats cache_stats() const;
  /// Per-tenant counters (submitted/completed/failed/cancelled/cache_hits).
  std::map<std::string, TenantStats> tenant_stats() const;
  /// Install or replace one tenant's policy at runtime (server admin path).
  void set_tenant_policy(const std::string& tenant,
                         const TenantPolicy& policy);
  std::size_t queued_jobs() const { return queue_.size(); }
  const ServiceOptions& options() const { return options_; }

 private:
  void worker_loop(std::size_t worker);
  void watchdog_loop();
  JobResult run_job(JobId id, JobSpec spec, const Admission& admission,
                    unsigned attempt);
  JobId register_job(JobSpec& spec) PLFOC_EXCLUDES(mutex_);
  /// Record a terminal worker-path result and fire the notifications +
  /// on_complete. Consumes `result`. `popped` says whether the job was
  /// dequeued through pop() and so holds an in-flight slot to release via
  /// job_finished(); jobs harvested by the expired-at-pop drop never
  /// held one and pass false.
  void finish_job(JobId id, JobResult result, bool popped);
  /// Build the terminal result for a job dropped without running (expired
  /// at pop, shed, or cancelled while waiting for admission).
  JobResult dropped_result(const FairJobQueue::Pending& pending,
                           JobStatus status, CancelReason reason,
                           double queue_seconds) const;
  /// True when `tenant` may charge `bytes` against its RAM share right
  /// now. A tenant with nothing charged is always admitted (progress
  /// guarantee mirroring the scheduler's sole-job floor).
  bool tenant_share_allows(const std::string& tenant, std::uint64_t bytes)
      PLFOC_REQUIRES(mutex_);

  ServiceOptions options_;
  /// One async-I/O engine shared by every worker session (null under the
  /// kSync default). Built once in the constructor and handed to each job's
  /// SessionOptions: N workers then feed one submission queue / worker pool
  /// instead of spawning N engines. Immutable after construction; the
  /// handle's own mutex serialises whole batches (ooc/aio.hpp).
  std::shared_ptr<AioEngineHandle> shared_aio_;
  TenantRegistry registry_;  ///< internally synchronised (its own Mutex)
  FairJobQueue queue_;       ///< internally synchronised (its own Mutex)
  /// Null when result_cache_entries == 0; internally synchronised.
  std::unique_ptr<ResultCache> cache_;
  mutable Mutex mutex_;
  CondVar admission_cv_;
  CondVar done_cv_;
  Scheduler scheduler_ PLFOC_GUARDED_BY(mutex_);
  /// Slot memory currently charged per tenant (the RAM-share ledger).
  std::map<std::string, std::uint64_t> tenant_charged_
      PLFOC_GUARDED_BY(mutex_);
  /// Ordered: drain() reports by id.
  std::map<JobId, JobResult> results_ PLFOC_GUARDED_BY(mutex_);
  /// Cancellation token of every non-terminal job (created at submit, armed
  /// with the spec's deadline). cancel() trips tokens of running jobs
  /// through this map; entries die with their job.
  std::map<JobId, CancelToken> tokens_ PLFOC_GUARDED_BY(mutex_);
  /// Watchdog ledger: one entry per job currently inside run_job.
  struct RunningWatch {
    CancelToken token;
    std::uint64_t last_progress = 0;
    std::chrono::steady_clock::time_point last_change;
  };
  std::map<JobId, RunningWatch> running_ PLFOC_GUARDED_BY(mutex_);
  OocStats merged_ PLFOC_GUARDED_BY(mutex_);
  JobId next_id_ PLFOC_GUARDED_BY(mutex_) = 1;
  bool drained_ PLFOC_GUARDED_BY(mutex_) = false;
  bool watchdog_stop_ PLFOC_GUARDED_BY(mutex_) = false;
  CondVar watchdog_cv_;
  std::vector<JobResult> drain_snapshot_ PLFOC_GUARDED_BY(mutex_);
  std::unique_ptr<WorkerPool> pool_;  ///< near-last: worker threads die first
  /// Joined explicitly by the destructor (after drain); only scans
  /// running_ under mutex_, so its ordering relative to pool_ is free.
  std::thread watchdog_;
};

}  // namespace plfoc
