// The embedded batch-evaluation service core.
//
// The paper's out-of-core layer makes one PLF evaluation fit a fixed RAM
// budget; this subsystem serves *many* evaluations at once under the same
// kind of budget. Architecture (see docs/service.md):
//
//   submit() -> JobQueue (bounded, backpressure, cancellation)
//           -> Scheduler (admission against the global slot-memory budget,
//              degrading jobs instead of rejecting them)
//           -> WorkerPool (each worker builds a private Session per job)
//           -> JobResult (logL + per-job OocStats + timings), merged
//              aggregate stats, drain()/destructor graceful shutdown.
//
// Determinism contract: a job's log likelihood depends only on its spec
// (data, model, seed) — never on worker count, admission order or the
// degradation the scheduler applied — because every backend computes
// bit-identical likelihoods (Sec. 4.1). tests/test_service.cpp enforces
// this across 1/2/8 workers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "service/job.hpp"
#include "service/job_queue.hpp"
#include "service/scheduler.hpp"
#include "service/worker_pool.hpp"
#include "util/mutex.hpp"

namespace plfoc {

struct ServiceOptions {
  std::size_t workers = 1;
  /// Bounded intake: submit() blocks (try_submit() fails) beyond this many
  /// queued jobs.
  std::size_t queue_capacity = 64;
  /// Aggregate slot-memory budget across all running jobs, in bytes
  /// (0 = unlimited). The scheduler degrades jobs to keep the sum of
  /// admitted slot memory under this.
  std::uint64_t ram_budget_bytes = 0;
  /// When > 0, workers attach a Prefetcher with this lookahead to each
  /// out-of-core job's store (torn down before the session, exercising the
  /// Prefetcher::stop() lifecycle).
  std::size_t prefetch_lookahead = 0;
  /// Kernel threads per worker (the batch --threads default), applied to
  /// every job whose spec left SessionOptions::threads at 0 (a jobfile line
  /// pins its own count with threads=). Total OS compute threads is roughly
  /// workers × kernel_threads; the --ram-budget admission math is unchanged
  /// because kernel threads share the job's already-pinned working triple
  /// (Sec. 3 invariant) — see docs/parallelism.md.
  unsigned kernel_threads = 1;
  /// Re-admit a job exactly once after a typed I/O failure (IoError: retry
  /// budget exhausted). The retry reuses the same admission charge and bumps
  /// FaultConfig::nonce so an injected schedule behaves like a real transient
  /// fault (it does not deterministically repeat). JobResult::attempts
  /// reports 2 for re-admitted jobs.
  bool readmit_io_failures = false;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  /// Drains: completes queued jobs, joins workers. Cancel first via drain()
  /// + your own policy if you need to abandon queued work.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueue a job; blocks while the queue is full (backpressure). Throws
  /// plfoc::Error after drain() has closed intake.
  JobId submit(JobSpec spec);
  /// Non-blocking submit; nullopt when the queue is full.
  std::optional<JobId> try_submit(JobSpec spec);

  /// Remove a still-queued job. True: the job will never run and its result
  /// reads kCancelled. False: a worker already picked it up (it will run to
  /// completion; mid-evaluation cancellation is not supported).
  bool cancel(JobId id);

  /// Block until `id` reaches a terminal status and return its result.
  JobResult wait(JobId id);

  /// Graceful shutdown: close intake, run every queued job to completion,
  /// join the workers, and return all results in submission order.
  /// Idempotent — later calls return the same snapshot.
  std::vector<JobResult> drain();

  /// High-water mark of concurrently charged slot memory (the acceptance
  /// check against ram_budget_bytes).
  std::uint64_t peak_charged_bytes() const;
  /// All finished jobs' store counters merged (operator+= under the service
  /// mutex — the thread-safe merge path).
  OocStats merged_stats() const;
  std::size_t queued_jobs() const { return queue_.size(); }
  const ServiceOptions& options() const { return options_; }

 private:
  void worker_loop(std::size_t worker);
  JobResult run_job(JobId id, JobSpec spec, const Admission& admission,
                    unsigned attempt);

  ServiceOptions options_;
  JobQueue queue_;  ///< internally synchronised (its own Mutex)
  mutable Mutex mutex_;
  CondVar admission_cv_;
  CondVar done_cv_;
  Scheduler scheduler_ PLFOC_GUARDED_BY(mutex_);
  /// Ordered: drain() reports by id.
  std::map<JobId, JobResult> results_ PLFOC_GUARDED_BY(mutex_);
  OocStats merged_ PLFOC_GUARDED_BY(mutex_);
  JobId next_id_ PLFOC_GUARDED_BY(mutex_) = 1;
  bool drained_ PLFOC_GUARDED_BY(mutex_) = false;
  std::vector<JobResult> drain_snapshot_ PLFOC_GUARDED_BY(mutex_);
  std::unique_ptr<WorkerPool> pool_;  ///< last member: threads die first
};

}  // namespace plfoc
