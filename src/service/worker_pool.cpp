#include "service/worker_pool.hpp"

#include <utility>

namespace plfoc {

WorkerPool::WorkerPool(std::size_t workers,
                       std::function<void(std::size_t)> body) {
  const std::size_t count = workers == 0 ? 1 : workers;
  threads_.reserve(count);
  for (std::size_t index = 0; index < count; ++index)
    threads_.emplace_back([body, index] { body(index); });
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
}

}  // namespace plfoc
