// Job vocabulary of the batch-evaluation service (src/service/service.hpp).
//
// A JobSpec is one independent likelihood evaluation: its own alignment,
// tree, model and SessionOptions (including the per-job seed). Jobs never
// share mutable state — each service worker builds a private Session per job
// — which is what lets the single-threaded out-of-core store run under a
// multi-worker service without locking, and what makes results bit-identical
// regardless of worker count or admission order.
//
// Note the memory asymmetry: queued specs hold their (tip) alignments in
// RAM, but tips are negligible next to ancestral vectors (Sec. 3.1: 1 byte
// per site per taxon vs. 8 * states * categories bytes per site per inner
// node). The budget the scheduler arbitrates covers the dominant term, the
// per-job slot memory.
#pragma once

#include <cstdint>
#include <string>

#include "model/rate_matrix.hpp"
#include "msa/alignment.hpp"
#include "ooc/stats.hpp"
#include "session.hpp"
#include "tree/tree.hpp"

namespace plfoc {

/// Monotonically increasing handle assigned by Service::submit().
using JobId = std::uint64_t;

/// Aggregate-initialise: {name, alignment, tree, model, session}. There is
/// deliberately no default constructor (Tree has none — a spec without a
/// real tree is meaningless).
struct JobSpec {
  std::string name;  ///< label for reports; defaults to "job-<id>"
  Alignment alignment;
  Tree tree;
  SubstitutionModel model;
  /// Requested configuration (backend, memory limit, seed, ...). The
  /// scheduler may degrade the memory-limit fields — never the seed or the
  /// model — to fit the service's global RAM budget.
  SessionOptions session;
  /// Owning tenant for fair scheduling and quotas (service/tenant.hpp);
  /// empty = the default tenant. Trails the established 5-element
  /// aggregate init `{name, alignment, tree, model, session}` so
  /// in-process batch callers can ignore tenancy entirely.
  std::string tenant;
  /// Relative deadline in seconds, measured from submit() (0 = none). The
  /// service arms the job's cancellation token with it: a job whose deadline
  /// expires while queued is dropped at pop (kDeadlineExceeded, no Session
  /// ever built); one that expires mid-evaluation unwinds cooperatively at
  /// the next pattern-block / traversal-step / AIO-batch check point. Over
  /// the wire this is SubmitRequest::deadline_ms (protocol v2).
  double deadline_seconds = 0;
};

enum class JobStatus {
  kQueued,     ///< accepted, waiting in the JobQueue
  kRunning,    ///< popped by a worker (possibly waiting for admission)
  kDone,       ///< evaluated successfully
  kFailed,     ///< Session construction or evaluation threw plfoc::Error
  kCancelled,  ///< cancelled: dequeued before running, or unwound mid-run
               ///< by Service::cancel / the worker watchdog
  /// The job's deadline expired — while still queued (dropped at pop, no
  /// Session built) or mid-evaluation (cooperative unwind via CancelledError).
  kDeadlineExceeded,
  /// Shed at pop: the job waited in the queue longer than the service's
  /// shed_queue_seconds overload budget, so running it would only add load
  /// with no chance of a timely answer. Never ran.
  kOverloaded,
};

inline const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExceeded: return "deadline-exceeded";
    case JobStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

struct JobResult {
  JobId id = 0;
  std::string name;
  std::string tenant;  ///< copied from the spec
  JobStatus status = JobStatus::kQueued;
  /// Log likelihood at the default root branch; bit-identical to a
  /// sequential Session::evaluate() with the same spec (backend degradation
  /// changes I/O behaviour, never values).
  double log_likelihood = 0.0;
  OocStats stats;              ///< the job's own store counters
  double wall_seconds = 0.0;   ///< session construction + evaluation
  double queue_seconds = 0.0;  ///< submit -> popped by a worker
  Backend admitted_backend = Backend::kInRam;
  std::uint64_t charged_bytes = 0;  ///< slot memory charged to the budget
  bool degraded = false;  ///< scheduler shrank the limit / switched backend
  /// Diagnostic text: non-empty for kFailed and for the typed drops
  /// (kDeadlineExceeded / kOverloaded / mid-evaluation kCancelled).
  std::string error;
  /// The failure was a typed storage error (IoError: retry budget exhausted),
  /// as opposed to a bad spec or an internal error. Only ever true together
  /// with status == kFailed.
  bool io_failure = false;
  /// The failure was an unrecoverable vector-record corruption
  /// (IntegrityError: checksum/generation mismatch that self-healing could
  /// not repair). Only ever true together with status == kFailed; disjoint
  /// from io_failure.
  bool integrity_failure = false;
  /// Evaluation attempts the service made: 1 normally, 2 when an I/O or
  /// integrity failure was re-admitted (ServiceOptions::readmit_io_failures).
  unsigned attempts = 1;
  /// Human-readable per-job fault report (op, errno, offset, robustness
  /// counters, fault spec for reproduction). Non-empty iff io_failure or
  /// integrity_failure.
  std::string fault_report;
  /// The log likelihood came from the result cache (cache/result_cache.hpp)
  /// instead of a fresh traversal. Bit-identical either way — the cache key
  /// covers every value-affecting input and the determinism contract covers
  /// the rest — so this is observability, not a semantic difference.
  bool cache_hit = false;
  /// Why the job's cancellation token tripped (util/cancel.hpp): kExplicit
  /// (Service::cancel), kDeadline, or kWatchdog. kNone for every other
  /// terminal status, including kOverloaded (shedding is a scheduling
  /// decision, not a token trip).
  CancelReason cancel_reason = CancelReason::kNone;
};

}  // namespace plfoc
