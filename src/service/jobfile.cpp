#include "service/jobfile.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "msa/fasta.hpp"
#include "msa/phylip.hpp"
#include "ooc/aio.hpp"
#include "ooc/replacement.hpp"
#include "search/stepwise.hpp"
#include "tree/newick.hpp"
#include "util/checks.hpp"
#include "util/rng.hpp"

namespace plfoc {
namespace {

Error line_error(std::size_t line, const std::string& what) {
  return Error("jobfile line " + std::to_string(line) + ": " + what);
}

double parse_double(std::size_t line, const std::string& key,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw line_error(line, "bad numeric value '" + value + "' for " + key);
}

std::uint64_t parse_uint(std::size_t line, const std::string& key,
                         const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used == value.size()) return parsed;
  } catch (const std::exception&) {
  }
  throw line_error(line, "bad integer value '" + value + "' for " + key);
}

void apply_key(JobFileEntry* entry, const std::string& key,
               const std::string& value) {
  const std::size_t line = entry->line;
  if (key == "name") {
    entry->name = value;
  } else if (key == "seed") {
    entry->seed = parse_uint(line, key, value);
  } else if (key == "format") {
    entry->format = value;
  } else if (key == "data-type") {
    entry->data_type = value;
  } else if (key == "kappa") {
    entry->kappa = parse_double(line, key, value);
  } else if (key == "categories") {
    entry->categories =
        static_cast<unsigned>(parse_uint(line, key, value));
  } else if (key == "alpha") {
    entry->alpha = parse_double(line, key, value);
  } else if (key == "strategy") {
    entry->strategy = value;
  } else if (key == "budget") {
    entry->budget_bytes = parse_uint(line, key, value);
  } else if (key == "faults") {
    entry->faults = value;
  } else if (key == "io-retries") {
    entry->io_retries =
        static_cast<long long>(parse_uint(line, key, value));
  } else if (key == "threads") {
    entry->threads = static_cast<unsigned>(parse_uint(line, key, value));
  } else if (key == "io-engine") {
    entry->io_engine = value;
  } else if (key == "io-depth") {
    entry->io_depth = static_cast<long long>(parse_uint(line, key, value));
  } else if (key == "deadline") {
    entry->deadline_seconds = parse_double(line, key, value);
    if (entry->deadline_seconds < 0)
      throw line_error(line, "deadline must be >= 0 seconds");
  } else {
    throw line_error(line, "unknown option '" + key + "'");
  }
}

}  // namespace

Backend parse_backend_name(const std::string& name) {
  if (name == "inram") return Backend::kInRam;
  if (name == "ooc") return Backend::kOutOfCore;
  if (name == "paged") return Backend::kPaged;
  if (name == "tiered") return Backend::kTiered;
  if (name == "mmap") return Backend::kMmap;
  throw Error("unknown backend '" + name +
              "' (inram | ooc | paged | tiered | mmap)");
}

DataType parse_data_type_name(const std::string& name) {
  if (name == "dna") return DataType::kDna;
  if (name == "protein") return DataType::kProtein;
  throw Error("unknown data type '" + name + "' (dna | protein)");
}

SubstitutionModel build_named_model(const std::string& model, double kappa,
                                    const Alignment& alignment) {
  if (model == "jc") return jc69();
  if (model == "k80") return k80(kappa);
  if (model == "hky") return hky85(kappa, alignment.empirical_frequencies());
  if (model == "gtr")
    return gtr({1.0, 2.0, 1.0, 1.0, 2.0, 1.0},
               alignment.empirical_frequencies());
  if (model == "poisson") return poisson_protein();
  throw Error("unknown model '" + model +
              "' (jc | k80 | hky | gtr | poisson)");
}

std::vector<JobFileEntry> parse_job_lines(std::istream& in) {
  std::vector<JobFileEntry> entries;
  std::string raw;
  std::size_t line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream fields(raw);
    JobFileEntry entry;
    entry.line = line;
    std::string fraction;
    if (!(fields >> entry.msa_path)) continue;  // blank / comment-only line
    if (!(fields >> entry.tree_path >> entry.model >> entry.backend >>
          fraction))
      throw line_error(line,
                       "expected '<msa> <tree> <model> <backend> <f>'");
    if (fraction != "-") {
      entry.ram_fraction = parse_double(line, "f", fraction);
      if (entry.ram_fraction <= 0.0 || entry.ram_fraction > 1.0)
        throw line_error(line, "f must be in (0, 1] or '-'");
    }
    std::string option;
    while (fields >> option) {
      const std::size_t eq = option.find('=');
      if (eq == std::string::npos || eq == 0)
        throw line_error(line, "expected key=value, got '" + option + "'");
      apply_key(&entry, option.substr(0, eq), option.substr(eq + 1));
    }
    // Fail on vocabulary typos at parse time, before any file I/O.
    try {
      parse_backend_name(entry.backend);
      parse_data_type_name(entry.data_type);
      parse_policy(entry.strategy);
      if (!entry.faults.empty()) FaultConfig::parse(entry.faults);
      if (!entry.io_engine.empty()) parse_aio_engine(entry.io_engine);
    } catch (const Error& error) {
      throw line_error(line, error.what());
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<JobFileEntry> read_job_file(const std::string& path) {
  std::ifstream in(path);
  PLFOC_REQUIRE(in.good(), "cannot open jobfile '" + path + "'");
  return parse_job_lines(in);
}

Alignment load_entry_alignment(const JobFileEntry& entry) {
  try {
    const DataType data_type = parse_data_type_name(entry.data_type);
    if (entry.format == "fasta")
      return read_fasta_file(entry.msa_path, data_type);
    if (entry.format == "phylip")
      return read_phylip_file(entry.msa_path, data_type);
    throw Error("unknown format '" + entry.format + "' (fasta | phylip)");
  } catch (const Error& error) {
    throw line_error(entry.line, error.what());
  }
}

JobSpec make_job_spec(const JobFileEntry& entry, Alignment alignment,
                      Tree tree) {
  try {
    PLFOC_REQUIRE(tree.num_taxa() == alignment.num_taxa(),
                  "tree and alignment have different taxon counts");
    SubstitutionModel model =
        build_named_model(entry.model, entry.kappa, alignment);
    JobSpec spec{entry.name, std::move(alignment), std::move(tree),
                 std::move(model), SessionOptions{}, /*tenant=*/""};
    spec.session.categories = entry.categories;
    spec.session.alpha = entry.alpha;
    spec.session.backend = parse_backend_name(entry.backend);
    spec.session.ram_fraction = entry.ram_fraction;
    spec.session.ram_budget_bytes = entry.budget_bytes;
    spec.session.policy = parse_policy(entry.strategy);
    spec.session.seed = entry.seed;
    // 0 = "inherit": the service substitutes its kernel_threads default at
    // admission time; the Session itself normalises a remaining 0 to 1.
    spec.session.threads = entry.threads;
    if (!entry.faults.empty())
      spec.session.faults = FaultConfig::parse(entry.faults);
    if (entry.io_retries >= 0)
      spec.session.io_retry.max_retries =
          static_cast<unsigned>(entry.io_retries);
    if (!entry.io_engine.empty())
      spec.session.io_engine = parse_aio_engine(entry.io_engine);
    if (entry.io_depth >= 0)
      spec.session.io_depth = static_cast<unsigned>(entry.io_depth);
    spec.deadline_seconds = entry.deadline_seconds;
    return spec;
  } catch (const Error& error) {
    throw line_error(entry.line, error.what());
  }
}

JobSpec load_job(const JobFileEntry& entry) {
  Alignment alignment = load_entry_alignment(entry);
  try {
    Tree tree = [&] {
      if (entry.tree_path != "-") return read_newick_file(entry.tree_path);
      Rng rng(entry.seed);
      return stepwise_addition_tree(alignment, rng);
    }();
    return make_job_spec(entry, std::move(alignment), std::move(tree));
  } catch (const Error& error) {
    // make_job_spec tags its own errors; only tag the tree-loading path,
    // identified by the absence of the line prefix.
    const std::string what = error.what();
    const std::string prefix =
        "jobfile line " + std::to_string(entry.line) + ":";
    if (what.compare(0, prefix.size(), prefix) == 0) throw;
    throw line_error(entry.line, what);
  }
}

}  // namespace plfoc
