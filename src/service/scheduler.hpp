// Memory-budget admission control for the batch-evaluation service.
//
// One global `--ram-budget` covers the slot memory of *all* concurrently
// running jobs; the Sec. 3.1 memory model prices each job's demand before
// its Session exists. Admission never rejects a job — the whole point of
// the out-of-core layer is that any evaluation fits any budget — it degrades
// instead, in this order:
//
//   1. the requested configuration fits the remaining budget: admit as-is;
//   2. shrink: grant the job an out-of-core store budgeted at exactly the
//      remaining bytes (>= the 3-slot minimum), whatever backend it asked
//      for (paged jobs shrink within the paged backend);
//   3. remaining bytes below the backend's floor but other jobs are
//      running: wait — their release will wake us;
//   4. alone and still over budget: admit at the backend's floor (3
//      out-of-core slots / the paged working-set minimum). charged_bytes
//      then exceeds the budget; it is reported, never hidden.
//
// Degradation changes I/O behaviour only. Log likelihoods are bit-identical
// across backends and slot counts (the paper's Sec. 4.1 correctness
// property), which is why the scheduler may degrade freely without breaking
// the service's determinism contract.
//
// The Scheduler itself is deliberately unsynchronised: decide() is a pure
// function of the demand and the current ledger, and the Service calls
// decide/reserve/release under its own mutex. That keeps the admission math
// unit-testable without threads.
#pragma once

#include <cstdint>

#include "likelihood/memory_model.hpp"
#include "service/job.hpp"
#include "util/checks.hpp"

namespace plfoc {

/// A job's slot-memory demand, derived from its spec before the Session is
/// built. `memory.num_sites` is the uncompressed site count — a conservative
/// upper bound on the post-compression pattern count, so every charge is an
/// upper bound on the store's actual allocation.
struct JobDemand {
  MemoryModel memory;
  Backend backend = Backend::kInRam;
  double ram_fraction = 0.0;
  std::uint64_t ram_budget_bytes = 0;
  std::size_t page_bytes = 4096;
  std::size_t tiered_fast_slots = 0;
  std::size_t tiered_ram_slots = 0;

  static JobDemand from_spec(const JobSpec& spec);

  /// Bytes the requested configuration would pin in RAM.
  std::uint64_t desired_bytes() const;
  /// Bytes of the smallest configuration the backend family can run with.
  std::uint64_t minimum_bytes() const;
};

/// The scheduler's verdict for one job.
struct Admission {
  bool admit = false;     ///< false: wait until running jobs release memory
  bool degraded = false;  ///< memory-limit fields differ from the request
  Backend backend = Backend::kInRam;
  double ram_fraction = 0.0;
  std::uint64_t ram_budget_bytes = 0;
  std::uint64_t charged_bytes = 0;  ///< ledger charge while the job runs
};

class Scheduler {
 public:
  /// `global_budget_bytes` == 0 means unlimited (admit everything as-is).
  explicit Scheduler(std::uint64_t global_budget_bytes)
      : budget_(global_budget_bytes) {}

  /// Decide admission for `demand` against the current ledger. Pure: does
  /// not mutate the ledger — the caller applies the verdict via reserve().
  Admission decide(const JobDemand& demand) const;

  /// Charge an admitted job's bytes; pairs with exactly one release().
  void reserve(std::uint64_t bytes) {
    in_use_ += bytes;
    ++running_;
    if (in_use_ > peak_) peak_ = in_use_;
  }
  void release(std::uint64_t bytes) {
    PLFOC_DCHECK(running_ > 0 && in_use_ >= bytes);
    in_use_ -= bytes;
    --running_;
  }

  std::uint64_t budget() const { return budget_; }
  std::uint64_t in_use() const { return in_use_; }
  /// High-water mark of concurrent charges — the acceptance check that the
  /// service respected its budget.
  std::uint64_t peak_bytes() const { return peak_; }
  std::size_t running() const { return running_; }

 private:
  std::uint64_t budget_;
  std::uint64_t in_use_ = 0;
  std::uint64_t peak_ = 0;
  std::size_t running_ = 0;
};

}  // namespace plfoc
