// Multi-tenant fairness layer of the serving tier (docs/serving.md).
//
// Two pieces, both layered *under* the existing RAM-budget admission
// controller (service/scheduler.hpp) rather than replacing it:
//
//   TenantRegistry — per-tenant policy (DRR weight, max in-flight jobs,
//   RAM share) and monotonic per-tenant counters. Internally synchronized;
//   safe to consult from the queue, the workers and the server thread.
//
//   FairJobQueue — a bounded multi-queue replacing the service's FIFO
//   intake. One FIFO per tenant; dequeue order is weighted deficit round
//   robin: each tenant in the active round gets `weight` pops before the
//   round advances, so under saturation tenants complete work proportional
//   to their weights (the 3:1 acceptance test in bench/service_throughput)
//   while an idle tenant costs nothing and a newly-active one joins the
//   round at the tail with a fresh deficit — no credit hoarding. Tenants
//   at their max_in_flight quota are skipped (not starved: job_finished()
//   re-wakes the poppers); global capacity backpressure is unchanged from
//   JobQueue. flush() supports Service::drain()'s flush mode: close intake
//   and hand back everything still queued with per-tenant counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/job_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace plfoc {

/// Per-tenant scheduling policy. The zero defaults mean "unconstrained":
/// weight 0 is normalised to 1, max_in_flight 0 is unlimited, and
/// ram_share_bytes 0 puts no per-tenant cap on reserved slot memory (the
/// global budget still applies).
struct TenantPolicy {
  unsigned weight = 1;
  std::size_t max_in_flight = 0;
  std::uint64_t ram_share_bytes = 0;
};

/// Monotonic per-tenant counters (merged into the serve-mode stats).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< kDone results, cache hits included
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;  ///< explicit cancel() + drain-flushed jobs
  std::uint64_t cache_hits = 0;
  std::uint64_t expired = 0;  ///< kDeadlineExceeded (queued or mid-run)
  std::uint64_t shed = 0;     ///< kOverloaded (dropped by overload shedding)
};

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  void set_policy(const std::string& tenant, const TenantPolicy& policy);
  /// The configured policy, or the unconstrained default for tenants never
  /// configured (unknown tenants are admitted, not rejected).
  TenantPolicy policy(const std::string& tenant) const;

  void record_submitted(const std::string& tenant);
  void record_completed(const std::string& tenant, bool cache_hit);
  void record_failed(const std::string& tenant);
  void record_cancelled(const std::string& tenant);
  void record_expired(const std::string& tenant);
  void record_shed(const std::string& tenant);

  std::map<std::string, TenantStats> stats() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, TenantPolicy> policies_ PLFOC_GUARDED_BY(mutex_);
  std::map<std::string, TenantStats> stats_ PLFOC_GUARDED_BY(mutex_);
};

/// Bounded per-tenant queue with weighted deficit-round-robin dequeue.
/// Interface mirrors JobQueue (push/try_push/pop/cancel/close) so the
/// Service swaps it in without touching the worker loop's shape; the
/// additions are job_finished() (quota bookkeeping) and flush().
class FairJobQueue {
 public:
  using Pending = JobQueue::Pending;

  /// Everything drain(kFlushQueued) pulled out of the queue.
  struct FlushReport {
    std::vector<Pending> jobs;
    std::map<std::string, std::size_t> per_tenant;
  };

  FairJobQueue(std::size_t capacity, TenantRegistry& registry);
  FairJobQueue(const FairJobQueue&) = delete;
  FairJobQueue& operator=(const FairJobQueue&) = delete;

  /// Blocks while the queue is full (backpressure); kAccepted or kClosed.
  PushResult push(Pending job);
  /// Never blocks; kFull when at capacity.
  PushResult try_push(Pending job);

  /// Weighted-fair pop. Blocks while no tenant is eligible (queue empty,
  /// or every non-empty tenant is at its max_in_flight quota) and the
  /// queue is open; nullopt once closed *and* drained. The popped job
  /// counts against its tenant's in-flight quota until job_finished().
  ///
  /// With `expired` non-null, queued jobs whose cancellation token has
  /// tripped (deadline passed, or cancelled through a caller-held token)
  /// are moved into *expired instead of being returned: they consume
  /// neither round deficit nor an in-flight slot — do NOT call
  /// job_finished() for them. If jobs were harvested this call and no
  /// runnable job remains, pop returns nullopt WITHOUT blocking so the
  /// caller can report the drops promptly. Caller contract: process
  /// *expired after every call, and treat nullopt as shutdown only when
  /// *expired did not grow — a nullopt that delivered harvested jobs means
  /// "call pop again".
  std::optional<Pending> pop(std::vector<Pending>* expired = nullptr);

  /// Release one in-flight slot for `tenant` and re-wake poppers that may
  /// have been quota-blocked on it. Call once per popped job, on any
  /// terminal outcome.
  void job_finished(const std::string& tenant);

  /// Remove a still-queued job. False if already popped or never queued.
  bool cancel(JobId id);

  /// Stop intake; queued jobs remain poppable. Idempotent.
  void close();

  /// close() + remove everything still queued (per-tenant FIFO order).
  /// Jobs already popped by workers are unaffected.
  FlushReport flush();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  struct TenantQueue {
    std::deque<Pending> jobs;
    unsigned deficit = 0;      ///< pops left in the current round
    std::size_t in_flight = 0;
    bool in_round = false;     ///< queued in round_
  };

  PushResult enqueue_locked(Pending&& job) PLFOC_REQUIRES(mutex_);

  const std::size_t capacity_;
  TenantRegistry& registry_;
  mutable Mutex mutex_;
  CondVar not_full_;
  /// Signalled on push, job_finished and close — every event that can make
  /// a blocked pop() eligible again.
  CondVar dequeueable_;
  std::map<std::string, TenantQueue> tenants_ PLFOC_GUARDED_BY(mutex_);
  /// Round-robin order over tenants with queued jobs.
  std::deque<std::string> round_ PLFOC_GUARDED_BY(mutex_);
  std::size_t size_ PLFOC_GUARDED_BY(mutex_) = 0;
  bool closed_ PLFOC_GUARDED_BY(mutex_) = false;
};

}  // namespace plfoc
