#include "service/tenant.hpp"

#include <algorithm>
#include <utility>

#include "util/checks.hpp"

namespace plfoc {

void TenantRegistry::set_policy(const std::string& tenant,
                                const TenantPolicy& policy) {
  MutexLock lock(mutex_);
  policies_[tenant] = policy;
}

TenantPolicy TenantRegistry::policy(const std::string& tenant) const {
  MutexLock lock(mutex_);
  const auto it = policies_.find(tenant);
  return it == policies_.end() ? TenantPolicy{} : it->second;
}

void TenantRegistry::record_submitted(const std::string& tenant) {
  MutexLock lock(mutex_);
  ++stats_[tenant].submitted;
}

void TenantRegistry::record_completed(const std::string& tenant,
                                      bool cache_hit) {
  MutexLock lock(mutex_);
  TenantStats& stats = stats_[tenant];
  ++stats.completed;
  if (cache_hit) ++stats.cache_hits;
}

void TenantRegistry::record_failed(const std::string& tenant) {
  MutexLock lock(mutex_);
  ++stats_[tenant].failed;
}

void TenantRegistry::record_cancelled(const std::string& tenant) {
  MutexLock lock(mutex_);
  ++stats_[tenant].cancelled;
}

void TenantRegistry::record_expired(const std::string& tenant) {
  MutexLock lock(mutex_);
  ++stats_[tenant].expired;
}

void TenantRegistry::record_shed(const std::string& tenant) {
  MutexLock lock(mutex_);
  ++stats_[tenant].shed;
}

std::map<std::string, TenantStats> TenantRegistry::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

FairJobQueue::FairJobQueue(std::size_t capacity, TenantRegistry& registry)
    : capacity_(capacity == 0 ? 1 : capacity), registry_(registry) {}

PushResult FairJobQueue::enqueue_locked(Pending&& job) {
  // Bind the map's own key, not job.spec.tenant: the job (and its tenant
  // string) is moved into the queue on the next line.
  const auto entry = tenants_.try_emplace(job.spec.tenant).first;
  const std::string& tenant = entry->first;
  TenantQueue& queue = entry->second;
  queue.jobs.push_back(std::move(job));
  if (!queue.in_round) {
    queue.in_round = true;
    queue.deficit = 0;  // joins the round with fresh credit, no hoarding
    round_.push_back(tenant);
  }
  ++size_;
  dequeueable_.notify_all();
  return PushResult::kAccepted;
}

PushResult FairJobQueue::push(Pending job) {
  MutexLock lock(mutex_);
  while (size_ >= capacity_ && !closed_) not_full_.wait(lock);
  if (closed_) return PushResult::kClosed;
  return enqueue_locked(std::move(job));
}

PushResult FairJobQueue::try_push(Pending job) {
  MutexLock lock(mutex_);
  if (closed_) return PushResult::kClosed;
  if (size_ >= capacity_) return PushResult::kFull;
  return enqueue_locked(std::move(job));
}

std::optional<FairJobQueue::Pending> FairJobQueue::pop(
    std::vector<Pending>* expired) {
  MutexLock lock(mutex_);
  bool harvested = false;
  for (;;) {
    if (size_ == 0 && closed_) return std::nullopt;
    // One pass over the active round looking for an eligible tenant.
    // round_ only shrinks (empty tenants leave) or rotates inside the
    // pass, so bounding by the entry size terminates it.
    std::size_t scanned = 0;
    std::size_t round_size = round_.size();
    while (scanned < round_size) {
      const std::string tenant = round_.front();
      TenantQueue& queue = tenants_[tenant];
      // Drop deadline-expired (or caller-cancelled) head jobs before they
      // cost a worker a Session build: harvested jobs charge no deficit and
      // no in-flight slot — dropping is not this tenant's turn.
      while (expired != nullptr && !queue.jobs.empty() &&
             queue.jobs.front().spec.session.cancel.cancelled_or_expired()) {
        expired->push_back(std::move(queue.jobs.front()));
        queue.jobs.pop_front();
        --size_;
        harvested = true;
        not_full_.notify_all();
      }
      if (queue.jobs.empty()) {
        // Drained by pops or cancellations: leave the round; credit does
        // not survive idleness.
        queue.in_round = false;
        queue.deficit = 0;
        round_.pop_front();
        --round_size;
        continue;
      }
      const TenantPolicy policy = registry_.policy(tenant);
      if (policy.max_in_flight != 0 &&
          queue.in_flight >= policy.max_in_flight) {
        // Quota-blocked: rotate past, job_finished() will re-wake us.
        round_.pop_front();
        round_.push_back(tenant);
        ++scanned;
        continue;
      }
      if (queue.deficit == 0)
        queue.deficit = std::max(1u, policy.weight);
      Pending job = std::move(queue.jobs.front());
      queue.jobs.pop_front();
      --queue.deficit;
      ++queue.in_flight;
      --size_;
      if (queue.jobs.empty()) {
        queue.in_round = false;
        queue.deficit = 0;
        round_.pop_front();
      } else if (queue.deficit == 0) {
        // Round share spent: move to the tail, next tenant's turn.
        round_.pop_front();
        round_.push_back(tenant);
      }
      not_full_.notify_all();
      return job;
    }
    // Harvested expired jobs must reach the caller promptly — return
    // instead of blocking; the caller reports them and pops again.
    if (harvested) return std::nullopt;
    // Nothing eligible: either empty, or every queued tenant is at its
    // in-flight quota (some job is running, so a job_finished() wake-up
    // is guaranteed — no deadlock even after close()).
    dequeueable_.wait(lock);
  }
}

void FairJobQueue::job_finished(const std::string& tenant) {
  MutexLock lock(mutex_);
  TenantQueue& queue = tenants_[tenant];
  PLFOC_CHECK(queue.in_flight > 0);
  --queue.in_flight;
  dequeueable_.notify_all();
}

bool FairJobQueue::cancel(JobId id) {
  MutexLock lock(mutex_);
  for (auto& [tenant, queue] : tenants_) {
    for (auto it = queue.jobs.begin(); it != queue.jobs.end(); ++it) {
      if (it->id != id) continue;
      queue.jobs.erase(it);
      --size_;
      not_full_.notify_all();
      return true;
    }
  }
  return false;
}

void FairJobQueue::close() {
  MutexLock lock(mutex_);
  closed_ = true;
  not_full_.notify_all();
  dequeueable_.notify_all();
}

FairJobQueue::FlushReport FairJobQueue::flush() {
  MutexLock lock(mutex_);
  closed_ = true;
  FlushReport report;
  for (auto& [tenant, queue] : tenants_) {
    while (!queue.jobs.empty()) {
      ++report.per_tenant[tenant];
      report.jobs.push_back(std::move(queue.jobs.front()));
      queue.jobs.pop_front();
      --size_;
    }
    queue.in_round = false;
    queue.deficit = 0;
  }
  round_.clear();
  PLFOC_CHECK(size_ == 0);
  not_full_.notify_all();
  dequeueable_.notify_all();
  return report;
}

std::size_t FairJobQueue::size() const {
  MutexLock lock(mutex_);
  return size_;
}

bool FairJobQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace plfoc
