#include "service/job_queue.hpp"

#include <algorithm>

#include "util/checks.hpp"

namespace plfoc {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

PushResult JobQueue::push(Pending job) {
  MutexLock lock(mutex_);
  while (!closed_ && jobs_.size() >= capacity_) not_full_.wait(lock);
  if (closed_) return PushResult::kClosed;
  jobs_.push_back(std::move(job));
  lock.unlock();
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

PushResult JobQueue::try_push(Pending job) {
  {
    MutexLock lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (jobs_.size() >= capacity_) return PushResult::kFull;
    jobs_.push_back(std::move(job));
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

std::optional<JobQueue::Pending> JobQueue::pop() {
  MutexLock lock(mutex_);
  while (!closed_ && jobs_.empty()) not_empty_.wait(lock);
  if (jobs_.empty()) return std::nullopt;  // closed and drained
  Pending job = std::move(jobs_.front());
  jobs_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return job;
}

bool JobQueue::cancel(JobId id) {
  {
    MutexLock lock(mutex_);
    const auto it =
        std::find_if(jobs_.begin(), jobs_.end(),
                     [id](const Pending& job) { return job.id == id; });
    if (it == jobs_.end()) return false;
    jobs_.erase(it);
  }
  not_full_.notify_one();
  return true;
}

void JobQueue::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  // Wake every waiter: blocked pushers return kClosed, idle poppers see the
  // closed+empty exit condition.
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t JobQueue::size() const {
  MutexLock lock(mutex_);
  return jobs_.size();
}

bool JobQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace plfoc
