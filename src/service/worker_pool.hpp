// Fixed-size thread pool for the service workers.
//
// Deliberately minimal: workers are plain std::threads running the service's
// worker loop to completion (the loop exits when the JobQueue is closed and
// drained). Each worker owns every Session it builds — no likelihood state
// is ever shared between threads, so the single-threaded out-of-core store
// needs no extra locking.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace plfoc {

class WorkerPool {
 public:
  /// Spawns `workers` (>= 1) threads, each running `body(worker_index)`.
  WorkerPool(std::size_t workers, std::function<void(std::size_t)> body);
  ~WorkerPool();  ///< joins (idempotent with an earlier join())
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Block until every worker's body returns. Idempotent; not safe to call
  /// concurrently from two threads.
  void join();

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace plfoc
