#include "service/scheduler.hpp"

#include <algorithm>

namespace plfoc {

JobDemand JobDemand::from_spec(const JobSpec& spec) {
  JobDemand demand;
  demand.memory.num_taxa = spec.alignment.num_taxa();
  demand.memory.num_sites = spec.alignment.num_sites();
  demand.memory.states = spec.model.states();
  demand.memory.categories = spec.session.categories;
  demand.backend = spec.session.backend;
  demand.ram_fraction = spec.session.ram_fraction;
  demand.ram_budget_bytes = spec.session.ram_budget_bytes;
  demand.page_bytes = spec.session.page_bytes;
  demand.tiered_fast_slots = spec.session.tiered_fast_slots;
  demand.tiered_ram_slots = spec.session.tiered_ram_slots;
  return demand;
}

std::uint64_t JobDemand::desired_bytes() const {
  const std::size_t count = static_cast<std::size_t>(memory.vector_count());
  switch (backend) {
    case Backend::kInRam:
      return memory.ancestral_bytes();
    case Backend::kOutOfCore:
      if (ram_fraction > 0.0)
        return memory.ooc_bytes_for_fraction(ram_fraction);
      // Charge the requested cap, not the slot-quantised estimate: the
      // store's real width (post-compression) may differ from the estimate,
      // but its allocation never exceeds the byte budget it was given.
      return ram_budget_bytes;
    case Backend::kPaged:
      return ram_budget_bytes;
    case Backend::kTiered:
      return memory.ooc_slot_bytes(std::min(tiered_fast_slots, count) +
                                   std::min(tiered_ram_slots, count));
    case Backend::kMmap:
      return 0;  // OS page cache; not slot memory this service manages
  }
  return 0;
}

std::uint64_t JobDemand::minimum_bytes() const {
  switch (backend) {
    case Backend::kPaged:
      return memory.min_paged_bytes(page_bytes);
    case Backend::kMmap:
      return 0;
    default:
      return memory.min_ooc_bytes();
  }
}

Admission Scheduler::decide(const JobDemand& demand) const {
  Admission verdict;
  verdict.backend = demand.backend;
  verdict.ram_fraction = demand.ram_fraction;
  verdict.ram_budget_bytes = demand.ram_budget_bytes;

  const std::uint64_t desired = demand.desired_bytes();
  if (budget_ == 0) {  // unlimited: charge for accounting only
    verdict.admit = true;
    verdict.charged_bytes = desired;
    return verdict;
  }

  const std::uint64_t available = budget_ > in_use_ ? budget_ - in_use_ : 0;
  if (desired <= available) {
    verdict.admit = true;
    verdict.charged_bytes = desired;
    return verdict;
  }

  // Degrade rather than reject: grant whatever fits, as a byte budget.
  const std::uint64_t minimum = demand.minimum_bytes();
  if (minimum <= available) {
    verdict.admit = true;
    verdict.degraded = true;
    // A store never allocates more than all-vectors-resident, so charging
    // past ancestral_bytes() would only starve later admissions.
    verdict.charged_bytes =
        std::min(available, demand.memory.ancestral_bytes());
    verdict.ram_fraction = 0.0;
    verdict.ram_budget_bytes = available;
    if (demand.backend != Backend::kPaged)
      verdict.backend = Backend::kOutOfCore;
    return verdict;
  }

  // Below the backend's floor. If anything is running its release will free
  // memory — wait. Alone, waiting would deadlock: admit at the floor and
  // report the overrun through charged_bytes.
  if (running_ > 0) return verdict;
  verdict.admit = true;
  verdict.degraded = true;
  verdict.charged_bytes = minimum;
  verdict.ram_fraction = 0.0;
  verdict.ram_budget_bytes = minimum;
  if (demand.backend != Backend::kPaged)
    verdict.backend = Backend::kOutOfCore;
  return verdict;
}

}  // namespace plfoc
