#include "service/service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ooc/prefetch.hpp"
#include "tree/phylo2vec.hpp"
#include "util/checks.hpp"
#include "util/timer.hpp"

namespace plfoc {
namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

bool terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled ||
         status == JobStatus::kDeadlineExceeded ||
         status == JobStatus::kOverloaded;
}

/// Map a tripped token's reason to the job's terminal status: deadlines get
/// their own typed status, everything else (explicit, watchdog) is a
/// cancellation.
JobStatus status_for_reason(CancelReason reason) {
  return reason == CancelReason::kDeadline ? JobStatus::kDeadlineExceeded
                                           : JobStatus::kCancelled;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity, registry_),
      scheduler_(options_.ram_budget_bytes) {
  // One engine for the whole service: worker sessions adopt it instead of
  // each spawning a private submission/completion pool (second-wave sharing,
  // docs/async-io.md). Jobs that pin a different engine/depth — or carry
  // fault injection — fail the backend's adoption check and transparently
  // fall back to a private engine.
  shared_aio_ = make_shared_aio_engine(options_.io_engine, options_.io_depth);
  for (const auto& [tenant, policy] : options_.tenants)
    registry_.set_policy(tenant, policy);
  if (options_.result_cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options_.result_cache_entries,
                                           options_.result_cache_shards);
  }
  pool_ = std::make_unique<WorkerPool>(
      options_.workers, [this](std::size_t worker) { worker_loop(worker); });
  if (options_.watchdog_stall_seconds > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

Service::~Service() {
  drain();
  {
    MutexLock lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

JobId Service::register_job(JobSpec& spec) {
  MutexLock lock(mutex_);
  PLFOC_REQUIRE(!queue_.closed(), "service intake is closed (drained)");
  const JobId id = next_id_++;
  if (spec.name.empty()) spec.name = "job-" + std::to_string(id);
  // Every accepted job gets a live token (a caller-supplied one is kept):
  // it is what cancel() trips for running jobs and what the watchdog
  // monitors. The relative deadline is armed here, at accept time, so time
  // spent queued counts against it — that is the "end-to-end" in
  // end-to-end deadlines.
  if (!spec.session.cancel.valid()) spec.session.cancel = CancelToken::make();
  if (spec.deadline_seconds > 0)
    spec.session.cancel.set_deadline_after(spec.deadline_seconds);
  JobResult placeholder;
  placeholder.id = id;
  placeholder.name = spec.name;
  placeholder.tenant = spec.tenant;
  placeholder.status = JobStatus::kQueued;
  results_.emplace(id, std::move(placeholder));
  tokens_.emplace(id, spec.session.cancel);
  return id;
}

JobId Service::submit(JobSpec spec) {
  const std::string tenant = spec.tenant;
  const JobId id = register_job(spec);
  const PushResult pushed =
      queue_.push({id, std::move(spec), std::chrono::steady_clock::now()});
  if (pushed == PushResult::kClosed) {
    // drain() raced us between the check and the push: the job never ran.
    {
      MutexLock lock(mutex_);
      results_[id].status = JobStatus::kCancelled;
      tokens_.erase(id);
    }
    done_cv_.notify_all();
    throw Error("service intake closed while submitting job " +
                std::to_string(id));
  }
  registry_.record_submitted(tenant);
  return id;
}

std::optional<JobId> Service::try_submit(JobSpec spec) {
  const std::string tenant = spec.tenant;
  const JobId id = register_job(spec);
  const PushResult pushed =
      queue_.try_push({id, std::move(spec), std::chrono::steady_clock::now()});
  if (pushed == PushResult::kAccepted) {
    registry_.record_submitted(tenant);
    return id;
  }
  {
    MutexLock lock(mutex_);
    if (pushed == PushResult::kFull) {
      results_.erase(id);  // backpressure: pretend the submit never happened
    } else {
      results_[id].status = JobStatus::kCancelled;
    }
    tokens_.erase(id);
  }
  if (pushed == PushResult::kClosed) done_cv_.notify_all();
  return std::nullopt;
}

bool Service::cancel(JobId id) {
  if (queue_.cancel(id)) {
    std::string tenant;
    {
      MutexLock lock(mutex_);
      const auto it = results_.find(id);
      PLFOC_CHECK(it != results_.end());
      it->second.status = JobStatus::kCancelled;
      it->second.cancel_reason = CancelReason::kExplicit;
      tenant = it->second.tenant;
      tokens_.erase(id);
    }
    registry_.record_cancelled(tenant);
    done_cv_.notify_all();
    return true;
  }
  // Not in the queue: a worker popped it (or is popping it right now).
  // Trip the token so the evaluation unwinds at its next check point —
  // this closes the submit/pop race that used to make cancel() return
  // false for a job that had produced nothing yet.
  CancelToken token;
  {
    MutexLock lock(mutex_);
    const auto it = results_.find(id);
    if (it == results_.end() || terminal(it->second.status)) return false;
    const auto entry = tokens_.find(id);
    if (entry == tokens_.end()) return false;
    token = entry->second;
  }
  token.cancel(CancelReason::kExplicit);
  return true;
}

JobResult Service::wait(JobId id) {
  MutexLock lock(mutex_);
  const auto it = results_.find(id);
  PLFOC_REQUIRE(it != results_.end(), "unknown job id");
  while (!terminal(it->second.status)) done_cv_.wait(lock);
  return it->second;
}

std::vector<JobResult> Service::drain() {
  {
    MutexLock lock(mutex_);
    if (drained_) return drain_snapshot_;
  }
  queue_.close();
  pool_->join();
  MutexLock lock(mutex_);
  if (!drained_) {
    drained_ = true;
    drain_snapshot_.reserve(results_.size());
    for (auto& [id, result] : results_) {
      // Jobs cancelled by queue close between submit and push stay
      // kCancelled; everything popped by a worker is terminal by now.
      if (result.status == JobStatus::kQueued)
        result.status = JobStatus::kCancelled;
      drain_snapshot_.push_back(result);
    }
    tokens_.clear();  // workers are gone; nothing left to trip
  }
  return drain_snapshot_;
}

DrainReport Service::drain(DrainMode mode) {
  if (mode == DrainMode::kFlushQueued) {
    // Pull everything still queued out before closing; the flush marks the
    // queue closed, so workers finish only what they already popped. On a
    // second call the queue is empty and this is a no-op — drain() below
    // returns the first call's snapshot either way.
    FairJobQueue::FlushReport flushed = queue_.flush();
    if (!flushed.jobs.empty()) {
      {
        MutexLock lock(mutex_);
        for (const FairJobQueue::Pending& pending : flushed.jobs) {
          results_[pending.id].status = JobStatus::kCancelled;
          tokens_.erase(pending.id);
        }
      }
      for (const FairJobQueue::Pending& pending : flushed.jobs)
        registry_.record_cancelled(pending.spec.tenant);
      done_cv_.notify_all();
    }
  }
  DrainReport report;
  report.results = drain();
  for (const JobResult& result : report.results) {
    DrainReport::TenantCounts& counts = report.per_tenant[result.tenant];
    switch (result.status) {
      case JobStatus::kDone: ++counts.completed; break;
      case JobStatus::kFailed: ++counts.failed; break;
      case JobStatus::kCancelled: ++counts.cancelled; break;
      case JobStatus::kDeadlineExceeded: ++counts.expired; break;
      case JobStatus::kOverloaded: ++counts.shed; break;
      default: break;
    }
  }
  return report;
}

std::uint64_t Service::peak_charged_bytes() const {
  MutexLock lock(mutex_);
  return scheduler_.peak_bytes();
}

OocStats Service::merged_stats() const {
  MutexLock lock(mutex_);
  return merged_;
}

CacheStats Service::cache_stats() const {
  return cache_ ? cache_->stats() : CacheStats{};
}

std::map<std::string, TenantStats> Service::tenant_stats() const {
  return registry_.stats();
}

void Service::set_tenant_policy(const std::string& tenant,
                                const TenantPolicy& policy) {
  registry_.set_policy(tenant, policy);
}

bool Service::tenant_share_allows(const std::string& tenant,
                                  std::uint64_t bytes) {
  const std::uint64_t share = registry_.policy(tenant).ram_share_bytes;
  if (share == 0) return true;
  const auto it = tenant_charged_.find(tenant);
  const std::uint64_t charged = it == tenant_charged_.end() ? 0 : it->second;
  // Progress guarantee: a tenant with nothing running may always start one
  // job even if it alone exceeds the share (mirrors the scheduler's
  // sole-job floor — shares throttle concurrency, they never starve).
  if (charged == 0) return true;
  return charged + bytes <= share;
}

void Service::finish_job(JobId id, JobResult result, bool popped) {
  const std::string tenant = result.tenant;
  const JobStatus status = result.status;
  const bool cache_hit = result.cache_hit;
  JobResult callback_copy;
  const bool has_callback = static_cast<bool>(options_.on_complete);
  {
    MutexLock lock(mutex_);
    merged_ += result.stats;
    results_[id] = std::move(result);
    if (has_callback) callback_copy = results_[id];
    running_.erase(id);
    tokens_.erase(id);
  }
  switch (status) {
    case JobStatus::kDone:
      registry_.record_completed(tenant, cache_hit);
      break;
    case JobStatus::kCancelled:
      registry_.record_cancelled(tenant);
      break;
    case JobStatus::kDeadlineExceeded:
      registry_.record_expired(tenant);
      break;
    case JobStatus::kOverloaded:
      registry_.record_shed(tenant);
      break;
    default:
      registry_.record_failed(tenant);
      break;
  }
  // Jobs harvested by the expired-at-pop drop never held an in-flight
  // slot, so releasing one for them would trip the queue's accounting.
  if (popped) queue_.job_finished(tenant);
  admission_cv_.notify_all();
  done_cv_.notify_all();
  if (has_callback) options_.on_complete(callback_copy);
}

JobResult Service::dropped_result(const FairJobQueue::Pending& pending,
                                  JobStatus status, CancelReason reason,
                                  double queue_seconds) const {
  JobResult result;
  result.id = pending.id;
  result.name = pending.spec.name;
  result.tenant = pending.spec.tenant;
  result.status = status;
  result.cancel_reason = reason;
  result.admitted_backend = pending.spec.session.backend;
  result.queue_seconds = queue_seconds;
  result.error = status == JobStatus::kOverloaded
                     ? "shed: queue wait exceeded the overload budget"
                     : std::string("dropped before evaluation: ") +
                           cancel_reason_name(reason);
  return result;
}

void Service::watchdog_loop() {
  // Scan at a quarter of the budget (floored) so a frozen job is caught
  // within ~1.25 stall budgets of freezing.
  const double interval = std::max(0.01, options_.watchdog_stall_seconds / 4);
  MutexLock lock(mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, interval);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, watch] : running_) {
      const std::uint64_t progress = watch.token.progress();
      if (progress != watch.last_progress) {
        watch.last_progress = progress;
        watch.last_change = now;
        continue;
      }
      if (std::chrono::duration<double>(now - watch.last_change).count() >
          options_.watchdog_stall_seconds)
        watch.token.cancel(CancelReason::kWatchdog);
    }
  }
}

void Service::worker_loop(std::size_t /*worker*/) {
  std::vector<FairJobQueue::Pending> expired;
  for (;;) {
    expired.clear();
    std::optional<FairJobQueue::Pending> pending = queue_.pop(&expired);
    // Jobs the queue dropped because their token tripped while queued:
    // report them typed without ever building a Session. They hold no
    // in-flight slot (popped=false).
    for (const FairJobQueue::Pending& dropped : expired) {
      const CancelReason reason = dropped.spec.session.cancel.reason();
      finish_job(dropped.id,
                 dropped_result(dropped, status_for_reason(reason), reason,
                                seconds_between(
                                    dropped.enqueued,
                                    std::chrono::steady_clock::now())),
                 /*popped=*/false);
    }
    if (!pending.has_value()) {
      // nullopt with harvested jobs is pop's "report these now" early
      // return; nullopt with none is closed-and-drained.
      if (!expired.empty()) continue;
      break;
    }
    const auto popped = std::chrono::steady_clock::now();
    const std::string tenant = pending->spec.tenant;
    const CancelToken cancel = pending->spec.session.cancel;
    const double queue_wait = seconds_between(pending->enqueued, popped);
    {
      MutexLock lock(mutex_);
      results_[pending->id].status = JobStatus::kRunning;
    }

    // Overload shedding: under sustained offered load above capacity the
    // queue wait grows without bound; beyond the budget, running this job
    // would burn a worker on an answer nobody is waiting for anymore.
    if (options_.shed_queue_seconds > 0 &&
        queue_wait > options_.shed_queue_seconds) {
      finish_job(pending->id,
                 dropped_result(*pending, JobStatus::kOverloaded,
                                CancelReason::kNone, queue_wait),
                 /*popped=*/true);
      continue;
    }
    // A token tripped between the queue's harvest scan and here (e.g. a
    // cancel() racing the pop) drops the job before the cache probe.
    if (cancel.cancelled_or_expired()) {
      const CancelReason reason = cancel.reason();
      finish_job(pending->id,
                 dropped_result(*pending, status_for_reason(reason), reason,
                                queue_wait),
                 /*popped=*/true);
      continue;
    }

    // Result-cache probe. Encoding canonicalizes the tree, so equivalent
    // rotations share a key AND evaluate bit-identically on a miss; the
    // lookup is single-flight — a concurrent identical job blocks here and
    // coalesces onto the leader's result instead of re-evaluating.
    std::optional<CacheKey> cache_key;
    if (cache_ != nullptr) {
      try {
        const Phylo2Vec encoded = phylo2vec_encode(pending->spec.tree);
        cache_key = plf_cache_key(pending->spec.alignment, encoded,
                                  pending->spec.model,
                                  pending->spec.session);
        pending->spec.tree = phylo2vec_decode(encoded);
      } catch (const Error&) {
        cache_key.reset();  // uncacheable spec: evaluate as-is
      }
    }
    if (cache_key.has_value()) {
      Timer probe_timer;
      if (const std::optional<double> hit = cache_->lookup(*cache_key)) {
        JobResult result;
        result.id = pending->id;
        result.name = pending->spec.name;
        result.tenant = tenant;
        result.status = JobStatus::kDone;
        result.log_likelihood = *hit;
        result.cache_hit = true;
        result.admitted_backend = pending->spec.session.backend;
        result.wall_seconds = probe_timer.seconds();
        result.queue_seconds = queue_wait;
        finish_job(pending->id, std::move(result), /*popped=*/true);
        continue;
      }
      // Miss: this worker is now the leader for the key and must publish
      // or abandon below — never neither, or waiters would block forever.
    }

    const JobDemand demand = JobDemand::from_spec(pending->spec);
    Admission admission;
    bool admitted = true;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop (not a predicate lambda): the admission decision
      // reads scheduler_ state guarded by mutex_, and the analysis checks
      // loop bodies but not lambda captures — see util/mutex.hpp. The wait
      // is timed because nothing signals admission_cv_ when a token trips:
      // a cancelled or deadline-expired job must not wedge here.
      for (;;) {
        if (cancel.cancelled_or_expired()) {
          admitted = false;
          break;
        }
        admission = scheduler_.decide(demand);
        if (admission.admit &&
            tenant_share_allows(tenant, admission.charged_bytes))
          break;
        admission_cv_.wait_for(lock, 0.05);
      }
      if (admitted) {
        scheduler_.reserve(admission.charged_bytes);
        tenant_charged_[tenant] += admission.charged_bytes;
      }
    }
    if (!admitted) {
      // Cache-miss leaders must abandon their key or coalesced waiters
      // block forever (the publish-or-abandon contract).
      if (cache_key.has_value()) cache_->abandon(*cache_key);
      const CancelReason reason = cancel.reason();
      finish_job(pending->id,
                 dropped_result(*pending, status_for_reason(reason), reason,
                                queue_wait),
                 /*popped=*/true);
      continue;
    }
    // Register with the watchdog for the whole run_job span (admission is
    // already behind us — an admission wait is not a stall, the timed loop
    // above owns that phase); finish_job deregisters.
    if (options_.watchdog_stall_seconds > 0) {
      MutexLock lock(mutex_);
      running_[pending->id] = RunningWatch{cancel, cancel.progress(),
                                           std::chrono::steady_clock::now()};
    }
    // Copy the spec up front when re-admission is on: run_job consumes it.
    std::optional<JobSpec> retry_spec;
    if (options_.readmit_io_failures) retry_spec = pending->spec;
    JobResult result =
        run_job(pending->id, std::move(pending->spec), admission, 1);
    if ((result.io_failure || result.integrity_failure) &&
        retry_spec.has_value()) {
      // One re-admission under the same admission charge. Bumping the nonce
      // re-keys an injected fault schedule, modelling a transient fault (or
      // corruption burst) that does not recur; a deterministic failure
      // (rate=1 / flip=1) fails again and the second, final result is what
      // the job reports.
      retry_spec->session.faults.nonce += 1;
      const std::string first_report = result.fault_report;
      result = run_job(pending->id, std::move(*retry_spec), admission, 2);
      if ((result.io_failure || result.integrity_failure) &&
          !first_report.empty())
        result.fault_report = "attempt 1: " + first_report +
                              "\nattempt 2: " + result.fault_report;
    }
    if (cache_key.has_value()) {
      // Leader resolution: successful values are published for the
      // coalesced waiters, failures are abandoned so the key stays
      // uncached (IoError/IntegrityError must not poison the cache).
      if (result.status == JobStatus::kDone) {
        cache_->publish(*cache_key, result.log_likelihood);
      } else {
        cache_->abandon(*cache_key);
      }
    }
    result.tenant = tenant;
    result.queue_seconds = queue_wait;
    {
      MutexLock lock(mutex_);
      scheduler_.release(admission.charged_bytes);
      std::uint64_t& charged = tenant_charged_[tenant];
      PLFOC_CHECK(charged >= admission.charged_bytes);
      charged -= admission.charged_bytes;
    }
    finish_job(pending->id, std::move(result), /*popped=*/true);
  }
}

JobResult Service::run_job(JobId id, JobSpec spec, const Admission& admission,
                           unsigned attempt) {
  JobResult result;
  result.id = id;
  result.name = spec.name;
  result.tenant = spec.tenant;
  result.admitted_backend = admission.backend;
  result.charged_bytes = admission.charged_bytes;
  result.degraded = admission.degraded;
  result.attempts = attempt;
  Timer timer;
  // Both live outside the try so the IoError handler can still read the
  // store's counters for the fault report. Declaration order matters: the
  // prefetcher is destroyed (joining its worker thread) before the session
  // and its store go away — the lifecycle contract in ooc/prefetch.hpp.
  std::unique_ptr<Session> session;
  std::unique_ptr<Prefetcher> prefetcher;
  try {
    // Surface an inconsistent *request* even when degradation would have
    // papered over it with a valid admitted configuration.
    spec.session.validate();
    SessionOptions session_options = spec.session;
    session_options.backend = admission.backend;
    session_options.ram_fraction = admission.ram_fraction;
    session_options.ram_budget_bytes = admission.ram_budget_bytes;
    // threads == 0 means the job did not pin a kernel-thread count; give it
    // the service-wide default (kernel threads never change the job's slot
    // memory demand, so admission needs no adjustment).
    if (session_options.threads == 0)
      session_options.threads = options_.kernel_threads;
    // io_engine == kSync means the job did not pin an engine; give it the
    // service-wide default (engine choice never changes the logL, so the
    // admission math is untouched — see docs/async-io.md).
    if (session_options.io_engine == AioEngineKind::kSync &&
        options_.io_engine != AioEngineKind::kSync) {
      session_options.io_engine = options_.io_engine;
      session_options.io_depth = options_.io_depth;
    }
    // Offer the service-wide engine to every job; the backend adopts it only
    // when the job's resolved kind/depth match and nothing (fault injection,
    // a permuted deterministic schedule) requires a private engine.
    session_options.shared_aio_engine = shared_aio_;
    session = std::make_unique<Session>(
        std::move(spec.alignment), std::move(spec.tree), std::move(spec.model),
        std::move(session_options));
    if (options_.prefetch_lookahead > 0) {
      if (OutOfCoreStore* ooc = session->out_of_core()) {
        prefetcher = std::make_unique<Prefetcher>(
            *ooc, options_.prefetch_lookahead);
        session->engine().attach_prefetcher(prefetcher.get());
      }
    }
    const EvalResult eval = session->evaluate();
    if (prefetcher != nullptr) {
      session->engine().attach_prefetcher(nullptr);
      prefetcher->stop();
    }
    result.log_likelihood = eval.log_likelihood;
    result.stats = eval.stats;
    result.status = JobStatus::kDone;
  } catch (const CancelledError& error) {
    // Cooperative unwind: the token tripped (explicit cancel, deadline, or
    // watchdog) and the evaluation threw at a check point *before* mutating
    // anything at that point — leases released, no partial install, the
    // store audit-clean. Typed like the IoError path so nothing has to
    // string-match.
    if (prefetcher != nullptr) {
      session->engine().attach_prefetcher(nullptr);
      prefetcher->stop();
    }
    result.status = error.reason() == CancelReason::kDeadline
                        ? JobStatus::kDeadlineExceeded
                        : JobStatus::kCancelled;
    result.cancel_reason = error.reason();
    result.error = error.what();
    if (session != nullptr)
      result.stats = session->store().stats_snapshot();
  } catch (const IoError& error) {
    // Typed storage failure: the retry budget of one transfer was exhausted.
    // Fail this job with a reproduction-grade fault report; the worker (and
    // any sibling jobs) keep running.
    if (prefetcher != nullptr) {
      session->engine().attach_prefetcher(nullptr);
      prefetcher->stop();
    }
    result.status = JobStatus::kFailed;
    result.io_failure = true;
    result.error = error.what();
    std::string report = error.op() + " errno=" +
                         std::to_string(error.errno_value()) + " offset=" +
                         std::to_string(error.offset()) + " attempts=" +
                         std::to_string(error.attempts()) +
                         (error.injected() ? " injected" : " device");
    if (session != nullptr) {
      // Snapshot straight from the store: the failed transfer's counters
      // never made it into an EvalResult.
      result.stats = session->store().stats_snapshot();
      report += " | " + result.stats.summary();
      if (session->options().faults.enabled())
        report += " | faults-spec: " + session->options().faults.spec();
    }
    result.fault_report = std::move(report);
  } catch (const IntegrityError& error) {
    // Unrecoverable corruption: a record failed its checksum and the
    // self-healing recomputation could not repair it. Same job boundary as
    // IoError — the job fails typed, the worker and sibling jobs survive.
    if (prefetcher != nullptr) {
      session->engine().attach_prefetcher(nullptr);
      prefetcher->stop();
    }
    result.status = JobStatus::kFailed;
    result.integrity_failure = true;
    result.error = error.what();
    std::string report =
        error.op() + " record=" + std::to_string(error.index()) +
        " generation-expected=" + std::to_string(error.expected_generation()) +
        " generation-found=" + std::to_string(error.found_generation()) +
        (error.injected() ? " injected" : " media");
    if (session != nullptr) {
      result.stats = session->store().stats_snapshot();
      report += " | " + result.stats.summary();
      if (session->options().faults.enabled())
        report += " | faults-spec: " + session->options().faults.spec();
    }
    result.fault_report = std::move(report);
  } catch (const std::exception& error) {
    // Error (the expected case: validation, I/O) and anything else the
    // evaluation throws; a worker thread must never die on a bad job.
    result.status = JobStatus::kFailed;
    result.error = error.what();
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace plfoc
