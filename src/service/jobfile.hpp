// Jobfile parsing for `plfoc batch` and the service benchmarks.
//
// A jobfile describes one evaluation job per line:
//
//   <msa> <tree> <model> <backend> <f> [key=value ...]
//
//   msa      alignment file path
//   tree     Newick file path, or '-' for a stepwise-addition starting tree
//   model    jc | k80 | hky | gtr | poisson
//   backend  inram | ooc | paged | tiered | mmap
//   f        RAM fraction in (0,1], or '-' when unset (pair with budget=)
//
// Optional keys: name=, seed=, format= (fasta|phylip), data-type=
// (dna|protein), kappa=, categories=, alpha=, strategy= (random|lru|lfu|
// topological), budget= (ram_budget_bytes, RAxML's -L), faults= (a
// FaultConfig spec, e.g. faults=seed=7,rate=0.05 — commas are safe because
// jobfile fields split on whitespace), io-retries= (per-job retry budget;
// 0 disables retrying), threads= (kernel threads for this job; unset lines
// inherit the batch --threads default — see docs/parallelism.md),
// io-engine= (sync|threads|uring|deterministic; unset lines inherit the
// batch --io-engine default), io-depth= (async submission-queue depth;
// unset lines inherit --io-depth — see docs/async-io.md) and deadline=
// (relative deadline in seconds, armed when the service accepts the job;
// 0 = none — see docs/robustness.md "Deadlines, cancellation, and
// overload"). Blank lines and `#` comments are skipped. See docs/service.md for worked
// examples and docs/robustness.md for the fault model.
//
// The file also exports the name -> enum/model helpers shared with the CLI
// driver, so `--backend ooc` on the command line and `ooc` in a jobfile can
// never drift apart.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "model/rate_matrix.hpp"
#include "msa/alignment.hpp"
#include "service/job.hpp"

namespace plfoc {

/// One parsed (not yet loaded) jobfile line.
struct JobFileEntry {
  std::size_t line = 0;  ///< 1-based line number, for error messages
  std::string msa_path;
  std::string tree_path;  ///< "-": stepwise-addition tree seeded by `seed`
  std::string model = "gtr";
  std::string backend = "inram";
  double ram_fraction = 0.0;  ///< 0 when the f column was '-'
  std::string name;           ///< empty: service default "job-<id>"
  std::string format = "fasta";
  std::string data_type = "dna";
  std::string strategy = "lru";
  double kappa = 2.0;
  unsigned categories = 4;
  double alpha = 1.0;
  std::uint64_t seed = 42;
  std::uint64_t budget_bytes = 0;  ///< budget= key (bytes, RAxML's -L)
  std::string faults;     ///< faults= key, FaultConfig spec ('' = inherit)
  long long io_retries = -1;  ///< io-retries= key; -1 = inherit batch default
  unsigned threads = 0;  ///< threads= key; 0 = inherit the service default
  std::string io_engine;  ///< io-engine= key ('' = inherit batch default)
  long long io_depth = -1;  ///< io-depth= key; -1 = inherit batch default
  double deadline_seconds = 0;  ///< deadline= key (seconds; 0 = none)
};

/// Shared CLI/jobfile vocabulary. All throw plfoc::Error on unknown names.
Backend parse_backend_name(const std::string& name);
DataType parse_data_type_name(const std::string& name);
/// `kappa` feeds k80/hky; frequency-parameterised models use the
/// alignment's empirical base frequencies (the CLI driver's convention).
SubstitutionModel build_named_model(const std::string& model, double kappa,
                                    const Alignment& alignment);

/// Parse jobfile lines from a stream; throws plfoc::Error with the line
/// number on malformed input.
std::vector<JobFileEntry> parse_job_lines(std::istream& in);
std::vector<JobFileEntry> read_job_file(const std::string& path);

/// Load the entry's files and build the submittable spec. Throws
/// plfoc::Error (file, parse, or model problems) tagged with the line.
JobSpec load_job(const JobFileEntry& entry);

/// Load just the entry's alignment (format / data-type applied). The
/// serving tier uses this to bind a wire-decoded Phylo2Vec tree against
/// the alignment's taxa before assembling the spec.
Alignment load_entry_alignment(const JobFileEntry& entry);

/// Assemble the submittable spec from already-loaded pieces. Applies the
/// entry's model/backend/session keys exactly like load_job; throws
/// plfoc::Error tagged with the entry's line.
JobSpec make_job_spec(const JobFileEntry& entry, Alignment alignment,
                      Tree tree);

}  // namespace plfoc
