// Deterministic random number generation.
//
// The whole library uses this generator (never std::rand / random_device in
// library code) so that, given a seed, simulation, starting trees, the search
// and the Random replacement strategy are bit-reproducible. Determinism is what
// lets the tests assert exact log-likelihood equality between the in-RAM and
// the out-of-core code paths — the paper's correctness criterion (Sec. 4.1).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace plfoc {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface, so <random> distributions work too.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard exponential deviate with the given rate (rate > 0).
  double exponential(double rate);

  /// Standard normal deviate (Box-Muller, no cached spare for determinism).
  double normal();

  /// Gamma(shape, scale) deviate, Marsaglia-Tsang method.
  double gamma(double shape, double scale);

  /// Pick an index in [0, n) proportionally to the given weights.
  std::size_t categorical(const double* weights, std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace plfoc
