// Annotated locking primitives — the capability layer under -Wthread-safety.
//
// std::mutex and std::condition_variable carry no thread-safety attributes
// (libstdc++ ships them unannotated), so clang's analysis cannot see through
// them. These thin wrappers restore visibility without changing behaviour:
//
//   plfoc::Mutex      — std::mutex as a PLFOC_CAPABILITY, so members can be
//                       PLFOC_GUARDED_BY(mutex_) and helpers
//                       PLFOC_REQUIRES(mutex_);
//   plfoc::MutexLock  — scoped acquisition (std::unique_lock underneath) the
//                       analysis tracks across mid-scope unlock()/lock(),
//                       the shape recover_or_throw-style re-entrant
//                       callbacks need;
//   plfoc::CondVar    — std::condition_variable bound to MutexLock. There is
//                       deliberately NO predicate-lambda wait: the analysis
//                       checks lambda bodies as unannotated functions, so
//                       predicates reading guarded state would either warn
//                       or silently escape checking. Callers write the
//                       explicit `while (!cond) cv.wait(lock);` loop, which
//                       the analysis sees in full.
//
// Everything is header-only and inlines to exactly the std calls it wraps;
// there is no runtime cost over the raw primitives.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace plfoc {

class MutexLock;
class CondVar;

/// std::mutex with a capability attribute. Lock through MutexLock; direct
/// lock()/unlock() exist for completeness but scoped acquisition is the
/// house style (exception-safe and visible to the analysis as a region).
class PLFOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLFOC_ACQUIRE() { impl_.lock(); }
  void unlock() PLFOC_RELEASE() { impl_.unlock(); }
  bool try_lock() PLFOC_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex impl_;
};

/// Scoped lock on a plfoc::Mutex. Tracks mid-scope unlock()/lock() (the
/// analysis models the managed capability through both), which is how
/// recovery hooks get the lock dropped around their re-entrant callbacks.
class PLFOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PLFOC_ACQUIRE(mutex)
      : lock_(mutex.impl_) {}
  ~MutexLock() PLFOC_RELEASE() = default;  // unique_lock releases if held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire after unlock() — the tail half of a hook-callback window.
  void lock() PLFOC_ACQUIRE() { lock_.lock(); }
  /// Drop the lock mid-scope (e.g. around a callback that re-enters the
  /// owning object). The destructor copes either way.
  void unlock() PLFOC_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to MutexLock. wait() atomically releases
/// and re-acquires the lock internally; from the analysis' point of view the
/// capability is held across the call, which matches what callers may assume
/// (guarded state must be re-checked after every wake-up — hence the
/// explicit while-loop idiom).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { impl_.wait(lock.lock_); }
  /// Timed wait: false on timeout, true when notified. Same re-check-the-
  /// predicate contract as wait(); the timeout exists so waiters can poll a
  /// cancellation token while blocked (service admission, watchdog).
  bool wait_for(MutexLock& lock, double seconds) {
    return impl_.wait_for(lock.lock_,
                          std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }
  void notify_one() noexcept { impl_.notify_one(); }
  void notify_all() noexcept { impl_.notify_all(); }

 private:
  std::condition_variable impl_;
};

}  // namespace plfoc
