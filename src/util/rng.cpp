#include "util/rng.hpp"

#include <cmath>

#include "util/checks.hpp"

namespace plfoc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // xoshiro must not start from the all-zero state; splitmix64 guarantees
  // a well-mixed non-degenerate seed expansion.
  for (auto& word : s_) word = splitmix64(seed);
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PLFOC_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double rate) {
  PLFOC_DCHECK(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::gamma(double shape, double scale) {
  PLFOC_DCHECK(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with u^(1/shape) (Marsaglia-Tsang).
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::size_t Rng::categorical(const double* weights, std::size_t n) {
  PLFOC_DCHECK(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  PLFOC_DCHECK(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return n - 1;
}

}  // namespace plfoc
