#include "util/aligned_buffer.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/checks.hpp"

namespace plfoc {

AlignedBuffer::AlignedBuffer(std::size_t count, double fill) : size_(count) {
  if (count == 0) return;
  // Round the byte size up to an alignment multiple as required by aligned_alloc.
  std::size_t bytes = count * sizeof(double);
  bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  data_ = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
  if (data_ == nullptr) throw std::bad_alloc();
  std::fill_n(data_, count, fill);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace plfoc
