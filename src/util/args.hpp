// Minimal declarative command-line parsing for the plfoc tool and examples.
//
// Flags are registered with a name, help text and a typed binding; parse()
// consumes "--name value" / "--name=value" pairs and boolean "--name"
// switches, validates required flags and produces usage text.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace plfoc {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description);

  ArgParser& add_string(const std::string& name, std::string* target,
                        const std::string& help, bool required = false);
  ArgParser& add_uint(const std::string& name, std::uint64_t* target,
                      const std::string& help, bool required = false);
  ArgParser& add_double(const std::string& name, double* target,
                        const std::string& help, bool required = false);
  ArgParser& add_flag(const std::string& name, bool* target,
                      const std::string& help);

  /// Parse argv (excluding argv[0]). Throws plfoc::Error with a message that
  /// includes usage on unknown flags, missing values, bad numbers or missing
  /// required flags. "--help" throws a special Error carrying usage only.
  void parse(int argc, const char* const* argv) const;

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    bool required;
    bool is_switch;
    std::function<void(const std::string&)> apply;
  };

  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace plfoc
