// Minimal leveled logging. Off by default below `warn` so library code can
// narrate (e.g. search progress, swap decisions) without polluting benchmark
// output; tests and examples can raise the level.
#pragma once

#include <sstream>
#include <string>

namespace plfoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Globally set the minimum level that is emitted (thread-safe).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace plfoc

#define PLFOC_LOG(level) ::plfoc::detail::LogMessage(::plfoc::LogLevel::level)
