#include "util/args.hpp"

#include <charconv>
#include <set>
#include <sstream>

#include "util/checks.hpp"

namespace plfoc {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_string(const std::string& name, std::string* target,
                                 const std::string& help, bool required) {
  PLFOC_CHECK(target != nullptr && find(name) == nullptr);
  options_.push_back({name, help, required, false,
                      [target](const std::string& value) { *target = value; }});
  return *this;
}

ArgParser& ArgParser::add_uint(const std::string& name, std::uint64_t* target,
                               const std::string& help, bool required) {
  PLFOC_CHECK(target != nullptr && find(name) == nullptr);
  options_.push_back(
      {name, help, required, false, [target, name](const std::string& value) {
         std::uint64_t parsed = 0;
         const auto [ptr, ec] =
             std::from_chars(value.data(), value.data() + value.size(), parsed);
         PLFOC_REQUIRE(ec == std::errc() && ptr == value.data() + value.size(),
                       "--" + name + ": '" + value +
                           "' is not a non-negative integer");
         *target = parsed;
       }});
  return *this;
}

ArgParser& ArgParser::add_double(const std::string& name, double* target,
                                 const std::string& help, bool required) {
  PLFOC_CHECK(target != nullptr && find(name) == nullptr);
  options_.push_back(
      {name, help, required, false, [target, name](const std::string& value) {
         try {
           std::size_t consumed = 0;
           *target = std::stod(value, &consumed);
           PLFOC_REQUIRE(consumed == value.size(),
                         "--" + name + ": '" + value + "' is not a number");
         } catch (const std::logic_error&) {
           throw Error("--" + name + ": '" + value + "' is not a number");
         }
       }});
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name, bool* target,
                               const std::string& help) {
  PLFOC_CHECK(target != nullptr && find(name) == nullptr);
  options_.push_back({name, help, false, true,
                      [target](const std::string&) { *target = true; }});
  return *this;
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const Option& option : options_)
    if (option.name == name) return &option;
  return nullptr;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const Option& option : options_) {
    out << "  --" << option.name;
    if (!option.is_switch) out << " <value>";
    if (option.required) out << "  (required)";
    out << "\n      " << option.help << "\n";
  }
  return out.str();
}

void ArgParser::parse(int argc, const char* const* argv) const {
  std::set<std::string> seen;
  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    PLFOC_REQUIRE(token.rfind("--", 0) == 0,
                  "unexpected argument '" + token + "'\n" + usage());
    token = token.substr(2);
    if (token == "help") throw Error(usage());
    std::string value;
    bool has_value = false;
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      value = token.substr(eq + 1);
      token = token.substr(0, eq);
      has_value = true;
    }
    const Option* option = find(token);
    PLFOC_REQUIRE(option != nullptr,
                  "unknown flag '--" + token + "'\n" + usage());
    if (option->is_switch) {
      PLFOC_REQUIRE(!has_value, "--" + token + " takes no value");
      option->apply("");
    } else {
      if (!has_value) {
        PLFOC_REQUIRE(i + 1 < argc, "--" + token + " expects a value");
        value = argv[++i];
      }
      option->apply(value);
    }
    seen.insert(token);
  }
  for (const Option& option : options_)
    PLFOC_REQUIRE(!option.required || seen.count(option.name) > 0,
                  "missing required flag --" + option.name + "\n" + usage());
}

}  // namespace plfoc
