// Cache-line / SIMD-aligned owning buffer for probability vectors.
//
// Ancestral probability vectors are large contiguous double arrays that the
// likelihood kernels stream through; 64-byte alignment keeps them friendly to
// vectorised loads and avoids cache-line splits at slot boundaries.
#pragma once

#include <cstddef>
#include <span>

namespace plfoc {

/// 64-byte-aligned heap buffer of doubles with RAII ownership.
/// Non-copyable (these buffers are big); movable.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t count, double fill = 0.0);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  double* data() { return data_; }
  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  std::span<double> span() { return {data_, size_}; }
  std::span<const double> span() const { return {data_, size_}; }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace plfoc
