// Cooperative cancellation and deadlines (docs/robustness.md "Deadlines,
// cancellation, and overload").
//
// A CancelToken is a cheap shared handle to one evaluation's cancellation
// state. The default-constructed token is *null*: every query is false and
// check() is a no-op, so code paths that never got a token pay nothing.
// A live token is threaded from JobSpec through Session into the store,
// the likelihood engine, and the kernel pool; each layer calls check() at
// its natural batching boundary:
//
//   AncestralStore::acquire()  — before any slot mutation (every backend);
//   LikelihoodEngine::execute  — once per traversal step;
//   KernelPool::run_blocks     — before each pattern-block claim;
//   OutOfCoreStore/TieredStore — between AIO prefetch batches (advisory:
//                                prefetch paths return early instead of
//                                throwing, because they run on the
//                                Prefetcher's worker thread).
//
// check() throws CancelledError, a typed plfoc::Error that unwinds through
// the normal lease/RAII machinery — slots are unpinned, no partial install
// happens, and the store stays audit-clean. The throw happens *before* any
// state changes at each check point, which is what makes the granularity
// claim ("within one pattern block / AIO batch") hold.
//
// Three parties may trip a token: the owner (explicit cancel), the deadline
// (a monotonic-clock instant checked inside check()), and the service
// watchdog (a stalled progress counter — check() bumps `progress` on every
// call, so a frozen counter means the evaluation is wedged, not slow).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/checks.hpp"

namespace plfoc {

/// Why a token fired. Resolved at trip time and carried on the error so the
/// service can map the unwind to a typed JobStatus.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kExplicit,  ///< Service::cancel or the caller's own cancel()
  kDeadline,  ///< the token's monotonic deadline passed
  kWatchdog,  ///< the service watchdog saw a frozen progress counter
};

inline const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kExplicit:
      return "cancelled";
    case CancelReason::kDeadline:
      return "deadline exceeded";
    case CancelReason::kWatchdog:
      return "watchdog stall";
  }
  return "?";
}

/// Thrown by CancelToken::check() on a cancelled evaluation. A sibling of
/// IoError / IntegrityError: typed so the service can classify the unwind
/// without string matching.
class CancelledError : public Error {
 public:
  explicit CancelledError(CancelReason reason)
      : Error(std::string("evaluation cancelled: ") +
              cancel_reason_name(reason)),
        reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  std::atomic<std::uint8_t> reason{
      static_cast<std::uint8_t>(CancelReason::kNone)};
  /// Monotonic (steady_clock) deadline in ns since the clock's epoch;
  /// 0 = no deadline.
  std::atomic<std::int64_t> deadline_ns{0};
  /// Bumped by every check(); the watchdog's liveness signal.
  std::atomic<std::uint64_t> progress{0};
  /// Deterministic test hook: auto-cancel (kExplicit) when `progress`
  /// reaches this count. 0 = off.
  std::atomic<std::uint64_t> trip_at{0};
};
}  // namespace detail

class CancelToken {
 public:
  /// Null token: never cancels, check() is free. The library-wide default.
  CancelToken() = default;

  /// A live token with no deadline.
  static CancelToken make() {
    CancelToken token;
    token.state_ = std::make_shared<detail::CancelState>();
    return token;
  }

  /// A live token whose deadline is `seconds` from now (monotonic clock).
  /// seconds <= 0 means "already expired" — the first check() throws.
  static CancelToken with_deadline(double seconds) {
    CancelToken token = make();
    token.set_deadline_after(seconds);
    return token;
  }

  bool valid() const { return state_ != nullptr; }

  /// Trip the token. Idempotent; the first reason wins.
  void cancel(CancelReason reason = CancelReason::kExplicit) {
    if (!state_) return;
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::kNone);
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_relaxed);
    state_->cancelled.store(true, std::memory_order_release);
  }

  void set_deadline_after(double seconds) {
    if (!state_) return;
    state_->deadline_ns.store(now_ns() + seconds_to_ns(seconds),
                              std::memory_order_relaxed);
  }

  /// True once the token has been tripped (explicitly or by a deadline a
  /// previous query observed). Does not itself evaluate the deadline.
  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_acquire);
  }

  /// True when a deadline is set and has passed (whether or not the token
  /// was tripped yet).
  bool expired() const {
    if (!state_) return false;
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    return deadline != 0 && now_ns() >= deadline;
  }

  /// Non-throwing advisory query for paths that must not unwind (prefetch
  /// workers). Trips the token on an observed expiry so a later check()
  /// reports kDeadline.
  bool cancelled_or_expired() const {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_acquire)) return true;
    if (expired()) {
      const_cast<CancelToken*>(this)->cancel(CancelReason::kDeadline);
      return true;
    }
    return false;
  }

  /// The reason recorded at trip time (kNone while untripped).
  CancelReason reason() const {
    if (!state_) return CancelReason::kNone;
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
  }

  /// check() calls so far — the watchdog's liveness counter.
  std::uint64_t progress() const {
    return state_ ? state_->progress.load(std::memory_order_relaxed) : 0;
  }

  /// Deterministic test hook: auto-cancel when progress reaches `count`.
  void set_trip_at(std::uint64_t count) {
    if (state_) state_->trip_at.store(count, std::memory_order_relaxed);
  }

  /// The cooperative check point: bump progress, then throw CancelledError
  /// if the token has been tripped or its deadline has passed. Called
  /// *before* the work unit it guards, so nothing is half-done on throw.
  void check() {
    if (!state_) return;
    const std::uint64_t done =
        state_->progress.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t trip = state_->trip_at.load(std::memory_order_relaxed);
    if (trip != 0 && done >= trip) cancel(CancelReason::kExplicit);
    if (state_->cancelled.load(std::memory_order_acquire))
      throw CancelledError(reason());
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline != 0 && now_ns() >= deadline) {
      cancel(CancelReason::kDeadline);
      throw CancelledError(CancelReason::kDeadline);
    }
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  static std::int64_t seconds_to_ns(double seconds) {
    return static_cast<std::int64_t>(seconds * 1e9);
  }

  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace plfoc
