// Lightweight assertion / error machinery shared across the library.
//
// PLFOC_CHECK is always active (release included): the library manipulates
// on-disk state and a silently-violated invariant can corrupt the vector file.
// PLFOC_DCHECK compiles out in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace plfoc {

/// Thrown for user-facing recoverable errors (bad input files, bad parameters).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "plfoc: internal invariant violated: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

}  // namespace plfoc

#define PLFOC_CHECK(expr) \
  ((expr) ? (void)0 : ::plfoc::fail_check(#expr, __FILE__, __LINE__))

#ifdef NDEBUG
// The expression must not be evaluated, but it must still count as *used*:
// a plain ((void)0) leaves variables referenced only in debug checks
// triggering -Wunused-variable / -Wunused-but-set-variable under -Werror.
// sizeof keeps the operand unevaluated while marking its operands used.
#define PLFOC_DCHECK(expr) ((void)sizeof((expr) ? 1 : 0))
#else
#define PLFOC_DCHECK(expr) PLFOC_CHECK(expr)
#endif

/// Throw a plfoc::Error for recoverable, user-correctable conditions.
#define PLFOC_REQUIRE(expr, msg) \
  ((expr) ? (void)0 : throw ::plfoc::Error(msg))
