// Compile-time concurrency contracts: Clang thread-safety-analysis macros.
//
// The runtime substrate (StoreAuditor, the TSan CI legs, the differential
// fuzzer) only validates schedules that actually execute; these macros move
// the lock-discipline contracts to compile time, where clang's
// -Wthread-safety proves them for *every* schedule. The spelling follows the
// attribute names of the official analysis documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); under any other
// compiler (the GCC tier-1 build included) every macro expands to nothing,
// so the annotations are pure documentation there.
//
// Usage conventions (see docs/static-analysis.md):
//  * lock members are plfoc::Mutex (util/mutex.hpp), never raw std::mutex —
//    std::mutex carries no capability attribute, so the analysis cannot see
//    it (plfoc-lint's raw-capability rule enforces this in the locking
//    subsystems);
//  * data members touched by more than one thread carry PLFOC_GUARDED_BY;
//  * private helpers that expect the lock already held are named *_locked()
//    or otherwise documented, and carry PLFOC_REQUIRES;
//  * the rare function that must juggle a lock mid-body (unlock around a
//    re-entrant callback) keeps its PLFOC_REQUIRES contract for callers and
//    opts its *body* out with PLFOC_NO_THREAD_SAFETY_ANALYSIS, with a
//    comment explaining why.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PLFOC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PLFOC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define PLFOC_CAPABILITY(x) PLFOC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (plfoc::MutexLock).
#define PLFOC_SCOPED_CAPABILITY PLFOC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define PLFOC_GUARDED_BY(x) PLFOC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define PLFOC_PT_GUARDED_BY(x) PLFOC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held on entry (and
/// still held on exit). The `_locked()` helper contract.
#define PLFOC_REQUIRES(...) \
  PLFOC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define PLFOC_ACQUIRE(...) \
  PLFOC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define PLFOC_RELEASE(...) \
  PLFOC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; `b` is the success return value.
#define PLFOC_TRY_ACQUIRE(...) \
  PLFOC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (guards
/// against self-deadlock on non-recursive mutexes).
#define PLFOC_EXCLUDES(...) PLFOC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares lock-ordering edges checked by -Wthread-safety-beta.
#define PLFOC_ACQUIRED_BEFORE(...) \
  PLFOC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PLFOC_ACQUIRED_AFTER(...) \
  PLFOC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to a value guarded by `x`.
#define PLFOC_RETURN_CAPABILITY(x) PLFOC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the body is exempt from analysis (annotations on the
/// declaration still bind callers). Every use must carry a justifying
/// comment — see docs/static-analysis.md for the policy.
#define PLFOC_NO_THREAD_SAFETY_ANALYSIS \
  PLFOC_THREAD_ANNOTATION(no_thread_safety_analysis)
