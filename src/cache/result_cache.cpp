#include "cache/result_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

#include "msa/alignment.hpp"
#include "model/rate_matrix.hpp"
#include "ooc/file_backend.hpp"
#include "session.hpp"
#include "tree/phylo2vec.hpp"
#include "util/checks.hpp"

namespace plfoc {
namespace {

// Domain-separation seeds for the two digest chains of the 128-bit key.
constexpr std::uint64_t kKeySeedHi = 0x504c464f43434b31ull;  // "PLFOCCK1"
constexpr std::uint64_t kKeySeedLo = 0x504c464f43434b32ull;  // "PLFOCCK2"

/// Two independent mix64/checksum64 chains absorbing the same material.
struct KeyHasher {
  std::uint64_t hi = kKeySeedHi;
  std::uint64_t lo = kKeySeedLo;

  void absorb_u64(std::uint64_t word) {
    hi = mix64(hi ^ word);
    lo = mix64(lo ^ mix64(word));
  }
  void absorb_f64(double value) {
    absorb_u64(std::bit_cast<std::uint64_t>(value));
  }
  void absorb_bytes(const void* data, std::size_t bytes) {
    hi = checksum64(hi, data, bytes);
    lo = checksum64(mix64(lo), data, bytes);
  }
  void absorb_string(const std::string& text) {
    absorb_u64(text.size());
    absorb_bytes(text.data(), text.size());
  }
  void absorb_f64_vector(const std::vector<double>& values) {
    absorb_u64(values.size());
    absorb_bytes(values.data(), values.size() * sizeof(double));
  }
};

}  // namespace

void CacheStats::check_identities() const {
  PLFOC_CHECK(hits + misses == lookups);
  PLFOC_CHECK(coalesced <= hits);
  PLFOC_CHECK(inserts + abandoned <= misses);
  PLFOC_CHECK(evictions <= inserts);
}

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  misses += other.misses;
  coalesced += other.coalesced;
  inserts += other.inserts;
  abandoned += other.abandoned;
  evictions += other.evictions;
  return *this;
}

CacheKey plf_cache_key(const Alignment& alignment, const Phylo2Vec& tree,
                       const SubstitutionModel& model,
                       const SessionOptions& options) {
  KeyHasher hasher;

  // Alignment: data type, dimensions, then per-taxon name + encoded row.
  hasher.absorb_u64(static_cast<std::uint64_t>(alignment.data_type()));
  hasher.absorb_u64(alignment.num_taxa());
  hasher.absorb_u64(alignment.num_sites());
  for (std::size_t taxon = 0; taxon < alignment.num_taxa(); ++taxon) {
    hasher.absorb_string(alignment.name(taxon));
    const auto row = alignment.row(taxon);
    hasher.absorb_bytes(row.data(), row.size());
  }
  hasher.absorb_f64_vector(alignment.weights());

  // Canonical tree: topology vector + canonical-order branch lengths. The
  // taxon binding is positional (label = rank in sorted name order), and
  // the names themselves are already absorbed via the alignment above.
  hasher.absorb_u64(tree.v.size());
  for (const std::uint32_t entry : tree.v) hasher.absorb_u64(entry);
  hasher.absorb_f64_vector(tree.lengths);

  // Model by content; the display name is cosmetic.
  hasher.absorb_u64(static_cast<std::uint64_t>(model.type));
  hasher.absorb_f64_vector(model.frequencies);
  hasher.absorb_f64_vector(model.exchangeabilities);

  // Session options that change the logL bit pattern. Backend, threads,
  // budget, policy, read-skipping are value-transparent by the determinism
  // contract and intentionally excluded.
  hasher.absorb_u64(options.categories);
  hasher.absorb_f64(options.alpha);
  hasher.absorb_u64(options.compress_patterns ? 1 : 0);
  hasher.absorb_u64(options.single_precision_disk ? 1 : 0);

  return CacheKey{hasher.hi, hasher.lo};
}

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t count =
      std::clamp<std::size_t>(shards, 1, capacity_);
  shard_capacity_ = (capacity_ + count - 1) / count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::optional<double> ResultCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  ++shard.stats.lookups;
  bool waited = false;
  for (;;) {
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      // Leader: install the in-flight placeholder (pinned — not in the
      // LRU list, so eviction cannot drop it before publish/abandon).
      shard.entries.emplace(key, Entry{});
      ++shard.stats.misses;
      return std::nullopt;
    }
    if (it->second.ready) {
      ++shard.stats.hits;
      if (waited) ++shard.stats.coalesced;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      return it->second.value;
    }
    // Someone else is computing this key: coalesce onto their result.
    waited = true;
    shard.resolved.wait(lock);
  }
}

void ResultCache::publish(const CacheKey& key, double value) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  PLFOC_CHECK(it != shard.entries.end() && !it->second.ready);
  it->second.value = value;
  it->second.ready = true;
  shard.lru.push_front(key);
  it->second.lru_pos = shard.lru.begin();
  ++shard.stats.inserts;
  while (shard.lru.size() > shard_capacity_) {
    const CacheKey victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    ++shard.stats.evictions;
  }
  shard.resolved.notify_all();
}

void ResultCache::abandon(const CacheKey& key) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  PLFOC_CHECK(it != shard.entries.end() && !it->second.ready);
  shard.entries.erase(it);
  ++shard.stats.abandoned;
  shard.resolved.notify_all();
}

CacheStats ResultCache::stats() const {
  CacheStats merged;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    merged += shard->stats;
  }
  merged.check_identities();
  return merged;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace plfoc
