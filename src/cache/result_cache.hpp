// Content-addressed result cache for the serving tier (docs/serving.md).
//
// The cache maps a 128-bit content key — derived from the canonical
// Phylo2Vec encoding of the query tree, its branch lengths, the alignment,
// the substitution model and the value-affecting session options — to the
// evaluated log likelihood. Because the key is content-addressed over the
// *canonical* encoding, topologically equivalent submissions (any Newick
// rotation of the same unrooted tree) collapse onto one entry, and because
// the determinism contract (docs/parallelism.md) makes logL bit-identical
// across backends/threads/budgets, a hit is indistinguishable from a fresh
// out-of-core traversal.
//
// Concurrency: sharded by key, one plfoc::Mutex per shard, LRU over the
// ready entries of each shard. Lookups are single-flight: the first miss
// for a key installs an in-flight placeholder and tells the caller to
// compute (the "leader"); concurrent lookups for the same key block on the
// shard's condition variable until the leader publishes (a coalesced hit)
// or abandons (a failed job never publishes — one blocked waiter is then
// promoted to leader). In-flight entries are pinned: eviction only ever
// removes ready entries.
//
// Counter identities (enforced by CacheStats::check_identities, the
// auditor-style gate the cache-stats-audit lint rule pins to this pair of
// files):  hits + misses == lookups,  coalesced <= hits,
// inserts + abandoned <= misses,  evictions <= inserts.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace plfoc {

class Alignment;
struct SubstitutionModel;
struct SessionOptions;
struct Phylo2Vec;

/// 128-bit content-addressed cache key (two independent 64-bit digest
/// chains over the same material; entries compare the full key, so a
/// collision needs both chains to collide at once).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
};

/// Monotonic cache counters. All identities are checked, not assumed:
/// stats() runs check_identities() on the merged snapshot on every call.
struct CacheStats {
  std::uint64_t lookups = 0;    ///< lookup() calls
  std::uint64_t hits = 0;       ///< lookups resolved from a ready entry
  std::uint64_t misses = 0;     ///< lookups that made the caller the leader
  std::uint64_t coalesced = 0;  ///< hits that waited on an in-flight leader
  std::uint64_t inserts = 0;    ///< publish() calls (leader succeeded)
  std::uint64_t abandoned = 0;  ///< abandon() calls (leader failed)
  std::uint64_t evictions = 0;  ///< ready entries dropped by LRU pressure

  /// Aborts (PLFOC_CHECK) unless the counter identities hold.
  void check_identities() const;
  CacheStats& operator+=(const CacheStats& other);
};

/// Derive the cache key for one evaluation job. `tree` must be the
/// canonical encoding (phylo2vec_encode output); the alignment is hashed
/// in row order (names, encoded rows, weights), the model by content
/// (type, frequencies, exchangeabilities — the display name is cosmetic),
/// and of the session options exactly the value-affecting fields:
/// categories, alpha, compress_patterns, single_precision_disk. Backend,
/// thread count, budget and replacement policy are deliberately excluded —
/// the determinism contract makes them value-transparent, which is what
/// lets a cached result stand in for any backend's traversal.
CacheKey plf_cache_key(const Alignment& alignment, const Phylo2Vec& tree,
                       const SubstitutionModel& model,
                       const SessionOptions& options);

class ResultCache {
 public:
  /// `capacity` bounds the number of *ready* entries across all shards
  /// (in-flight placeholders are pinned and uncounted); it is split evenly
  /// over `shards`, each shard holding at least one entry.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Single-flight lookup. A ready entry returns its value (and refreshes
  /// its LRU position). A missing key installs an in-flight placeholder
  /// and returns nullopt: the caller is now the leader and MUST later call
  /// exactly one of publish() or abandon() for this key. An in-flight key
  /// blocks until the leader resolves it; waiters on a published value
  /// return it as a coalesced hit, waiters on an abandoned key re-enter
  /// the miss path (one of them becomes the new leader).
  std::optional<double> lookup(const CacheKey& key);

  /// Leader success: make the in-flight entry ready with `value`, wake
  /// waiters, apply LRU eviction.
  void publish(const CacheKey& key, double value);

  /// Leader failure: drop the in-flight entry and wake waiters so the job
  /// can be retried by whoever asks next. Failed evaluations are never
  /// cached (docs/serving.md on IoError / IntegrityError).
  void abandon(const CacheKey& key);

  /// Merged counter snapshot; runs check_identities() before returning.
  CacheStats stats() const;

  /// Ready entries currently held (in-flight placeholders excluded).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    double value = 0.0;
    bool ready = false;
    /// Valid only when ready: position in the shard's LRU list.
    std::list<CacheKey>::iterator lru_pos;
  };

  struct Shard {
    mutable Mutex mutex;
    /// Signalled on publish() and abandon(); waiters re-check the map.
    CondVar resolved;
    std::map<CacheKey, Entry> entries PLFOC_GUARDED_BY(mutex);
    /// Ready keys, most recently used first.
    std::list<CacheKey> lru PLFOC_GUARDED_BY(mutex);
    CacheStats stats PLFOC_GUARDED_BY(mutex);
  };

  Shard& shard_for(const CacheKey& key) const {
    return *shards_[key.lo % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace plfoc
