// Persistent thread team for block-parallel PLF kernels.
//
// A KernelPool is created once per Session (sized by --threads) and reused
// for every newview / evaluate_branch / per_pattern_log_likelihoods call, so
// the kernels never pay thread creation on the hot path. Work is handed out
// as pattern-block indices from an atomic counter: WHICH thread runs WHICH
// block is nondeterministic, but callers only write block-disjoint outputs
// and reduce per-block partials serially in block order, so every result is
// independent of the thread count (see docs/parallelism.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/mutex.hpp"

namespace plfoc {

class KernelPool {
 public:
  /// `threads` is the TOTAL parallelism including the calling thread; the
  /// pool spawns threads - 1 workers (none for threads <= 1).
  explicit KernelPool(unsigned threads);
  ~KernelPool();

  KernelPool(const KernelPool&) = delete;
  KernelPool& operator=(const KernelPool&) = delete;

  unsigned threads() const { return threads_; }

  /// Runs fn(b) for every b in [0, blocks), distributing blocks across the
  /// team (the caller participates), and returns when all blocks are done.
  /// Rethrows the first exception any invocation of fn raised. Not
  /// re-entrant: one job at a time, submitted from one thread (each Session
  /// owns its pool, so this holds by construction).
  void run_blocks(std::size_t blocks,
                  const std::function<void(std::size_t)>& fn);

  /// Attach a cancellation token, consulted before every pattern-block
  /// claim (caller and workers alike). A tripped token surfaces as a
  /// CancelledError rethrown by run_blocks through the existing
  /// first-exception machinery. Set between jobs only (the pool is
  /// quiescent between run_blocks calls by the non-re-entrancy contract).
  void set_cancel_token(CancelToken token);

 private:
  void worker_loop();

  unsigned threads_;
  std::vector<std::thread> workers_;

  // Generation-condvar dispatch state. Everything a worker reads to decide
  // whether (and what) to run is guarded; the block counter is the only
  // cross-thread state touched outside the lock, and it is atomic.
  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  bool stop_ PLFOC_GUARDED_BY(mutex_) = false;
  /// Bumped per job; workers wait on it.
  std::uint64_t generation_ PLFOC_GUARDED_BY(mutex_) = 0;
  std::size_t blocks_ PLFOC_GUARDED_BY(mutex_) = 0;
  const std::function<void(std::size_t)>* job_ PLFOC_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t busy_workers_ PLFOC_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ PLFOC_GUARDED_BY(mutex_);
  /// Copied into each job's dispatch under mutex_; workers read their copy.
  CancelToken cancel_ PLFOC_GUARDED_BY(mutex_);

  std::atomic<std::size_t> next_block_{0};
};

}  // namespace plfoc
