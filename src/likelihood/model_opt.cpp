#include "likelihood/model_opt.hpp"

#include <algorithm>
#include <cmath>

#include "util/checks.hpp"
#include "util/logging.hpp"

namespace plfoc {

double brent_minimize(const std::function<double(double)>& f, double lower,
                      double upper, double tolerance, int max_iterations,
                      double* fmin) {
  PLFOC_CHECK(lower < upper);
  constexpr double kGolden = 0.3819660112501051;
  double a = lower;
  double b = upper;
  double x = a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const double midpoint = 0.5 * (a + b);
    const double tol1 = tolerance * std::abs(x) + 1e-12;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - midpoint) <= tol2 - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic interpolation through (x, w, v).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_old = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2)
          d = (midpoint > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < midpoint) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u =
        (std::abs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u < x)
        b = x;
      else
        a = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  if (fmin != nullptr) *fmin = fx;
  return x;
}

double optimize_alpha(LikelihoodEngine& engine, double lower, double upper,
                      double tolerance) {
  // Optimise in log(alpha): the likelihood surface is far better conditioned.
  const auto objective = [&engine](double log_alpha) {
    engine.set_alpha(std::exp(log_alpha));
    return -engine.log_likelihood();
  };
  double neg_ll = 0.0;
  const double best = brent_minimize(objective, std::log(lower),
                                     std::log(upper), tolerance, 60, &neg_ll);
  engine.set_alpha(std::exp(best));
  // Re-evaluate so the engine's vectors reflect the final alpha.
  const double ll = engine.log_likelihood();
  PLFOC_LOG(kInfo) << "alpha optimised to " << std::exp(best)
                   << " (logL = " << ll << ")";
  return ll;
}

namespace {

double optimize_gtr_rates(LikelihoodEngine& engine, int cycles,
                          double tolerance) {
  double ll = engine.log_likelihood();
  const unsigned s = engine.states();
  const std::size_t num_rates = engine.config().substitution.exchangeabilities.size();
  PLFOC_CHECK(num_rates >= 1);
  (void)s;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Coordinate descent: optimise each exchangeability (log scale), keeping
    // the last one fixed at its value as the reference rate.
    for (std::size_t k = 0; k + 1 < num_rates; ++k) {
      const auto objective = [&engine, k](double log_rate) {
        SubstitutionModel model = engine.config().substitution;
        model.exchangeabilities[k] = std::exp(log_rate);
        engine.set_substitution_model(std::move(model));
        return -engine.log_likelihood();
      };
      double neg_ll = 0.0;
      const double best = brent_minimize(objective, std::log(1e-3),
                                         std::log(1e3), tolerance, 40, &neg_ll);
      SubstitutionModel model = engine.config().substitution;
      model.exchangeabilities[k] = std::exp(best);
      engine.set_substitution_model(std::move(model));
      ll = -neg_ll;
    }
  }
  return ll;
}

}  // namespace

double optimize_model(LikelihoodEngine& engine, const ModelOptOptions& options) {
  double ll = engine.log_likelihood();
  if (options.optimize_alpha && engine.config().categories > 1)
    ll = optimize_alpha(engine, options.alpha_lower, options.alpha_upper,
                        options.tolerance);
  if (options.optimize_rates)
    ll = optimize_gtr_rates(engine, options.rate_cycles, options.tolerance);
  return ll;
}

}  // namespace plfoc
