// AVX2 specialisation of the 4-state newview kernel.
//
// One __m256d holds the four states of a (pattern, category) block; the
// child propagation SUM_y P[x][y] * v[y] is computed per x-lane by
// broadcasting v[y] against the transposed matrix column — the identical
// left-to-right multiply/add sequence the scalar kernel performs, so the
// results are bit-for-bit equal (deliberately no FMA: fused rounding would
// break the equality, and with it the suite's cross-configuration
// bit-identity checks).
#include <immintrin.h>

#include "likelihood/kernels_internal.hpp"
#include "util/checks.hpp"

namespace plfoc::detail {

bool cpu_has_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

namespace {

/// Transposed 4x4 transition matrix: column y as a vector over x.
struct TransposedP {
  __m256d col[4];
};

__attribute__((target("avx2"))) inline TransposedP transpose(
    const double* p) {
  TransposedP out;
  for (int y = 0; y < 4; ++y)
    out.col[y] = _mm256_set_pd(p[3 * 4 + y], p[2 * 4 + y], p[1 * 4 + y],
                               p[0 * 4 + y]);
  return out;
}

/// (0 + P[:,0]*v0 + P[:,1]*v1 + P[:,2]*v2 + P[:,3]*v3) — the scalar order.
__attribute__((target("avx2"))) inline __m256d propagate(
    const TransposedP& pt, const double* child) {
  __m256d acc = _mm256_setzero_pd();
  for (int y = 0; y < 4; ++y) {
    const __m256d vy = _mm256_set1_pd(child[y]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(pt.col[y], vy));
  }
  return acc;
}

}  // namespace

__attribute__((target("avx2"))) std::size_t newview4_avx2(
    const KernelDims& dims, const NewviewChild& left,
    const NewviewChild& right, double* parent, std::int32_t* parent_scale,
    std::size_t p_begin, std::size_t p_end) {
  PLFOC_CHECK(dims.states == 4);
  const unsigned cats = dims.categories;
  PLFOC_CHECK(cats <= 16);
  const std::size_t block = static_cast<std::size_t>(cats) * 4;
  const __m256d threshold = _mm256_set1_pd(kScaleThreshold);
  const __m256d multiplier = _mm256_set1_pd(kScaleMultiplier);
  std::size_t scaled = 0;

  TransposedP left_t[16];
  TransposedP right_t[16];
  if (!left.is_tip())
    for (unsigned c = 0; c < cats; ++c)
      left_t[c] = transpose(left.pmat + static_cast<std::size_t>(c) * 16);
  if (!right.is_tip())
    for (unsigned c = 0; c < cats; ++c)
      right_t[c] = transpose(right.pmat + static_cast<std::size_t>(c) * 16);

  for (std::size_t p = p_begin; p < p_end; ++p) {
    double* parent_block = parent + p * block;
    // all_small lane-mask: 1 where the value is below the scaling threshold.
    bool all_small = true;
    for (unsigned c = 0; c < cats; ++c) {
      __m256d l;
      if (left.is_tip()) {
        l = _mm256_loadu_pd(left.lookup +
                            (static_cast<std::size_t>(left.codes[p]) * cats +
                             c) *
                                4);
      } else {
        l = propagate(left_t[c],
                      left.vector + p * block + static_cast<std::size_t>(c) * 4);
      }
      __m256d r;
      if (right.is_tip()) {
        r = _mm256_loadu_pd(right.lookup +
                            (static_cast<std::size_t>(right.codes[p]) * cats +
                             c) *
                                4);
      } else {
        r = propagate(right_t[c], right.vector + p * block +
                                      static_cast<std::size_t>(c) * 4);
      }
      const __m256d out = _mm256_mul_pd(l, r);
      _mm256_storeu_pd(parent_block + static_cast<std::size_t>(c) * 4, out);
      // v >= threshold on any lane => not all small.
      const __m256d below = _mm256_cmp_pd(out, threshold, _CMP_LT_OQ);
      if (_mm256_movemask_pd(below) != 0xF) all_small = false;
    }
    std::int32_t count =
        (left.scale_counts != nullptr ? left.scale_counts[p] : 0) +
        (right.scale_counts != nullptr ? right.scale_counts[p] : 0);
    if (all_small) {
      ++scaled;
      // Repeat until the largest entry clears the threshold (see the scalar
      // kernel for the rationale).
      while (all_small) {
        all_small = true;
        bool any_positive = false;
        for (unsigned c = 0; c < cats; ++c) {
          double* out = parent_block + static_cast<std::size_t>(c) * 4;
          const __m256d scaled_block =
              _mm256_mul_pd(_mm256_loadu_pd(out), multiplier);
          _mm256_storeu_pd(out, scaled_block);
          const __m256d below =
              _mm256_cmp_pd(scaled_block, threshold, _CMP_LT_OQ);
          if (_mm256_movemask_pd(below) != 0xF) all_small = false;
          const __m256d positive =
              _mm256_cmp_pd(scaled_block, _mm256_setzero_pd(), _CMP_GT_OQ);
          if (_mm256_movemask_pd(positive) != 0) any_positive = true;
        }
        ++count;
        // Matches the scalar kernel's max_value == 0.0 break: an all-zero
        // block never clears the threshold, so stop instead of spinning.
        if (!any_positive) break;
      }
    }
    parent_scale[p] = count;
  }
  return scaled;
}

}  // namespace plfoc::detail
