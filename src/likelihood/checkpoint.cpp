#include "likelihood/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/checks.hpp"

namespace plfoc {
namespace {

constexpr char kMagic[4] = {'P', 'L', 'F', 'C'};

// Little-endian primitive serialisation; doubles round-trip bit-exactly.
void put_u32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i)
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  out.write(bytes, 4);
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  PLFOC_REQUIRE(in.good(), "checkpoint: truncated file");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{bytes[i]} << (8 * i);
  return value;
}

void put_double(std::ostream& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, 8);
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
  out.write(bytes, 8);
}

double get_double(std::istream& in) {
  unsigned char bytes[8];
  in.read(reinterpret_cast<char*>(bytes), 8);
  PLFOC_REQUIRE(in.good(), "checkpoint: truncated file");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= std::uint64_t{bytes[i]} << (8 * i);
  double value = 0.0;
  std::memcpy(&value, &bits, 8);
  return value;
}

void put_string(std::ostream& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string get_string(std::istream& in) {
  const std::uint32_t size = get_u32(in);
  PLFOC_REQUIRE(size <= (1u << 20), "checkpoint: implausible string length");
  std::string value(size, '\0');
  in.read(value.data(), size);
  PLFOC_REQUIRE(in.good(), "checkpoint: truncated file");
  return value;
}

}  // namespace

Checkpoint make_checkpoint(const LikelihoodEngine& engine) {
  Checkpoint checkpoint;
  checkpoint.model = engine.config().substitution;
  checkpoint.categories = engine.config().categories;
  checkpoint.alpha = engine.config().alpha;
  const Tree& tree = engine.tree();
  checkpoint.taxon_names.reserve(tree.num_taxa());
  for (NodeId tip = 0; tip < tree.num_taxa(); ++tip)
    checkpoint.taxon_names.push_back(tree.taxon_name(tip));
  for (const auto& [a, b] : tree.edges())
    checkpoint.edges.push_back({a, b, tree.branch_length(a, b)});
  return checkpoint;
}

void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint) {
  out.write(kMagic, 4);
  put_u32(out, checkpoint.version);
  put_u32(out, checkpoint.model.type == DataType::kDna ? 0u : 1u);
  put_string(out, checkpoint.model.name);
  put_u32(out, static_cast<std::uint32_t>(checkpoint.model.frequencies.size()));
  for (double f : checkpoint.model.frequencies) put_double(out, f);
  put_u32(out,
          static_cast<std::uint32_t>(checkpoint.model.exchangeabilities.size()));
  for (double r : checkpoint.model.exchangeabilities) put_double(out, r);
  put_u32(out, checkpoint.categories);
  put_double(out, checkpoint.alpha);
  put_u32(out, static_cast<std::uint32_t>(checkpoint.taxon_names.size()));
  for (const std::string& name : checkpoint.taxon_names) put_string(out, name);
  put_u32(out, static_cast<std::uint32_t>(checkpoint.edges.size()));
  for (const Checkpoint::Edge& edge : checkpoint.edges) {
    put_u32(out, edge.a);
    put_u32(out, edge.b);
    put_double(out, edge.length);
  }
  PLFOC_REQUIRE(out.good(), "checkpoint: write failed");
}

Checkpoint read_checkpoint(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  PLFOC_REQUIRE(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                "checkpoint: bad magic (not a plfoc checkpoint)");
  Checkpoint checkpoint;
  checkpoint.version = get_u32(in);
  PLFOC_REQUIRE(checkpoint.version == 1, "checkpoint: unsupported version");
  checkpoint.model.type = get_u32(in) == 0 ? DataType::kDna : DataType::kProtein;
  checkpoint.model.name = get_string(in);
  checkpoint.model.frequencies.resize(get_u32(in));
  for (double& f : checkpoint.model.frequencies) f = get_double(in);
  checkpoint.model.exchangeabilities.resize(get_u32(in));
  for (double& r : checkpoint.model.exchangeabilities) r = get_double(in);
  checkpoint.categories = get_u32(in);
  checkpoint.alpha = get_double(in);
  checkpoint.model.validate();
  checkpoint.taxon_names.resize(get_u32(in));
  for (std::string& name : checkpoint.taxon_names) name = get_string(in);
  checkpoint.edges.resize(get_u32(in));
  for (Checkpoint::Edge& edge : checkpoint.edges) {
    edge.a = get_u32(in);
    edge.b = get_u32(in);
    edge.length = get_double(in);
  }
  return checkpoint;
}

Tree restore_tree(const Checkpoint& checkpoint) {
  Tree tree(checkpoint.taxon_names);
  PLFOC_REQUIRE(checkpoint.edges.size() == tree.num_edges(),
                "checkpoint: edge count does not match taxon count");
  for (const Checkpoint::Edge& edge : checkpoint.edges)
    tree.connect(edge.a, edge.b, edge.length);
  tree.validate();
  return tree;
}

void restore_model(const Checkpoint& checkpoint, LikelihoodEngine& engine) {
  PLFOC_REQUIRE(engine.config().categories == checkpoint.categories,
                "checkpoint: rate-category count mismatch");
  engine.set_substitution_model(checkpoint.model);
  engine.set_alpha(checkpoint.alpha);
}

void save_checkpoint_file(const std::string& path,
                          const LikelihoodEngine& engine) {
  std::ofstream out(path, std::ios::binary);
  PLFOC_REQUIRE(out.good(), "cannot open checkpoint file '" + path + "'");
  write_checkpoint(out, make_checkpoint(engine));
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PLFOC_REQUIRE(in.good(), "cannot open checkpoint file '" + path + "'");
  return read_checkpoint(in);
}

}  // namespace plfoc
