// Analysis checkpointing.
//
// The paper's conclusion: "given enough execution time and disk space, the
// out-of-core version can be deployed to essentially infer trees on datasets
// of arbitrary size". Runs of that scale need restartability. A checkpoint
// captures everything required to resume an analysis bit-exactly:
//
//   * the tree (topology + branch lengths, exact binary doubles),
//   * the model (type, frequencies, exchangeabilities, alpha, categories),
//   * optionally a named RNG state position is the *caller's* job (the
//     library's Rng is reseedable; record your seed + draw count).
//
// Ancestral vectors are deliberately NOT stored: they are a pure function of
// tree + model + data, and the engine rebuilds them lazily on first use
// (orientation starts invalid), which is cheaper than writing the multi-GB
// vector file twice and keeps checkpoints tiny.
#pragma once

#include <iosfwd>
#include <string>

#include "likelihood/engine.hpp"

namespace plfoc {

struct Checkpoint {
  std::uint32_t version = 1;
  SubstitutionModel model;
  unsigned categories = 4;
  double alpha = 1.0;
  /// Taxon names in tip-id order plus topology and exact branch lengths.
  std::vector<std::string> taxon_names;
  /// Edges as (a, b, length) with a < b; doubles bit-exact.
  struct Edge {
    NodeId a;
    NodeId b;
    double length;
  };
  std::vector<Edge> edges;
};

/// Capture the engine's resumable state.
Checkpoint make_checkpoint(const LikelihoodEngine& engine);

/// Serialise / parse the binary checkpoint format (magic, version, LE).
void write_checkpoint(std::ostream& out, const Checkpoint& checkpoint);
Checkpoint read_checkpoint(std::istream& in);

void save_checkpoint_file(const std::string& path,
                          const LikelihoodEngine& engine);

/// Rebuild the tree recorded in the checkpoint (validated).
Tree restore_tree(const Checkpoint& checkpoint);

/// Restore model parameters into an engine whose alignment/tree match the
/// checkpoint (tree topology must have been restored first; throws on
/// mismatched taxa or data type).
void restore_model(const Checkpoint& checkpoint, LikelihoodEngine& engine);

Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace plfoc
