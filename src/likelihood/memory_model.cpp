#include "likelihood/memory_model.hpp"

#include "ooc/ooc_store.hpp"

namespace plfoc {

// Defined out of line so the header does not pull in the ooc layer: the slot
// rounding must match OocStoreOptions exactly or the scheduler's charge and
// the store's allocation drift apart.
std::uint64_t MemoryModel::ooc_bytes_for_fraction(double fraction) const {
  return ooc_slot_bytes(OocStoreOptions::slots_from_fraction(
      fraction, static_cast<std::size_t>(vector_count())));
}

std::uint64_t MemoryModel::ooc_bytes_for_budget(
    std::uint64_t budget_bytes) const {
  const std::uint64_t w = vector_bytes();
  const std::uint64_t slots = budget_bytes / (w == 0 ? 1 : w);
  return ooc_slot_bytes(static_cast<std::size_t>(slots < 3 ? 3 : slots));
}

}  // namespace plfoc
