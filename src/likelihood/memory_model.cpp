// MemoryModel is header-only arithmetic; this TU exists so the build has a
// home for future non-inline additions and keeps one-definition hygiene.
#include "likelihood/memory_model.hpp"
