#include "likelihood/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "model/transition.hpp"
#include "util/checks.hpp"
#include "util/logging.hpp"

namespace plfoc {

std::size_t LikelihoodEngine::vector_width(const Alignment& alignment,
                                           unsigned categories) {
  return alignment.num_sites() * categories *
         num_states(alignment.data_type());
}

LikelihoodEngine::LikelihoodEngine(const Alignment& alignment, Tree& tree,
                                   ModelConfig config, AncestralStore& store)
    : alignment_(alignment),
      tree_(tree),
      config_(std::move(config)),
      store_(store),
      tips_(alignment, tree),
      dims_{alignment.num_sites(), config_.categories,
            num_states(alignment.data_type())},
      orientation_(tree),
      scale_counts_(tree.num_inner() * alignment.num_sites(), 0) {
  PLFOC_REQUIRE(config_.categories >= 1 && config_.categories <= 16,
                "1..16 rate categories supported");
  PLFOC_REQUIRE(config_.substitution.type == alignment.data_type(),
                "substitution model data type does not match the alignment");
  PLFOC_REQUIRE(store_.count() == tree.num_inner(),
                "store vector count must equal the number of inner nodes");
  PLFOC_REQUIRE(store_.width() == vector_width(alignment, config_.categories),
                "store vector width does not match patterns*categories*states");
  PLFOC_CHECK(tree.is_fully_connected());
  weights_.assign(alignment.num_sites(), 1.0);
  if (!alignment.weights().empty())
    weights_ = alignment.weights();
  rebuild_eigen();
}

void LikelihoodEngine::rebuild_eigen() {
  eigen_ = decompose(config_.substitution);
  rates_ = discrete_gamma_rates(config_.alpha, config_.categories);
}

void LikelihoodEngine::set_alpha(double alpha) {
  PLFOC_REQUIRE(alpha > 0.0, "alpha must be positive");
  config_.alpha = alpha;
  rates_ = discrete_gamma_rates(alpha, config_.categories);
  orientation_.invalidate_all();
}

void LikelihoodEngine::set_substitution_model(SubstitutionModel model) {
  PLFOC_REQUIRE(model.type == config_.substitution.type,
                "cannot change the data type of a live engine");
  config_.substitution = std::move(model);
  rebuild_eigen();
  orientation_.invalidate_all();
}

void LikelihoodEngine::submit_prefetch(std::span<const TraversalStep> steps) {
  if (prefetcher_ == nullptr) return;
  std::vector<std::uint32_t> upcoming;
  upcoming.reserve(steps.size());
  for (const TraversalStep& step : steps) {
    if (tree_.is_inner(step.left)) upcoming.push_back(vector_index(step.left));
    if (tree_.is_inner(step.right)) upcoming.push_back(vector_index(step.right));
  }
  prefetcher_->submit(std::move(upcoming));
}

void LikelihoodEngine::execute(std::span<const TraversalStep> steps) {
  submit_prefetch(steps);
  // Planning marked every step's parent as oriented (plan_subtree updates
  // Orientation at PLAN time), so an exception that stops this loop early —
  // a CancelledError from a check point, an unrecovered IoError — would
  // leave never-computed vectors marked valid. Track how far we got and
  // re-invalidate the unexecuted tail before rethrowing: completed steps
  // stay valid (their vectors really are on disk/RAM), so the next
  // evaluation resumes incrementally and stays bit-identical.
  std::size_t completed = 0;
  try {
    execute_steps(steps, completed);
  } catch (...) {
    for (std::size_t i = completed; i < steps.size(); ++i)
      orientation_.invalidate(steps[i].parent);
    throw;
  }
}

void LikelihoodEngine::execute_steps(std::span<const TraversalStep> steps,
                                     std::size_t& completed) {
  std::size_t reads_consumed = 0;
  for (const TraversalStep& step : steps) {
    PLFOC_DCHECK(tree_.is_inner(step.parent));
    // Per-traversal-step cancellation point — the serial-path granularity
    // bound (with a kernel pool, run_blocks checks per pattern block too).
    cancel_.check();
    if (journal_ != nullptr) journal_->push_back(step.parent);
    // Let the prefetch worker run ahead of this step's reads.
    if (prefetcher_ != nullptr) prefetcher_->notify_progress(reads_consumed);
    // Acquire order: children (reads) before the parent (write). Leases pin
    // all three vectors for the duration of the kernel — the paper's
    // requirement that the working triple resides in RAM.
    NewviewChild left{};
    NewviewChild right{};
    VectorLease left_lease;
    VectorLease right_lease;

    category_transition_matrices(eigen_, step.length_left, rates_, pmat_left_);
    category_transition_matrices(eigen_, step.length_right, rates_,
                                 pmat_right_);

    if (tree_.is_tip(step.left)) {
      tips_.build_branch_lookup(pmat_left_.data(), dims_.categories,
                                lookup_left_);
      left.codes = tips_.tip_codes(step.left);
      left.lookup = lookup_left_.data();
    } else {
      left_lease = store_.acquire(vector_index(step.left), AccessMode::kRead);
      left.vector = left_lease.data();
      left.scale_counts = scale_data(step.left);
      left.pmat = pmat_left_.data();
      ++reads_consumed;
    }
    if (tree_.is_tip(step.right)) {
      tips_.build_branch_lookup(pmat_right_.data(), dims_.categories,
                                lookup_right_);
      right.codes = tips_.tip_codes(step.right);
      right.lookup = lookup_right_.data();
    } else {
      right_lease = store_.acquire(vector_index(step.right), AccessMode::kRead);
      right.vector = right_lease.data();
      right.scale_counts = scale_data(step.right);
      right.pmat = pmat_right_.data();
      ++reads_consumed;
    }

    VectorLease parent_lease =
        store_.acquire(vector_index(step.parent), AccessMode::kWrite);
    newview(dims_, left, right, parent_lease.data(), scale_data(step.parent),
            kernel_pool_);
    ++completed;
  }
}

BranchValue LikelihoodEngine::evaluate_at(NodeId a, NodeId b, double t,
                                          bool with_derivatives) {
  PLFOC_CHECK(tree_.has_edge(a, b));
  // The near side contributes raw conditionals; the far side is propagated
  // across the branch. A tip can serve either role; when exactly one side is
  // a tip we put it near (cheap indicator gather).
  NodeId near = a;
  NodeId far = b;
  if (tree_.is_tip(far) && !tree_.is_tip(near)) std::swap(near, far);
  PLFOC_CHECK(!tree_.is_tip(far));  // n >= 3 has no tip-tip edges

  category_transition_matrices(eigen_, t, rates_, pmat_left_);
  if (with_derivatives) {
    const unsigned s = dims_.states;
    dmat_.resize(static_cast<std::size_t>(dims_.categories) * s * s);
    d2mat_.resize(dmat_.size());
    for (unsigned c = 0; c < dims_.categories; ++c) {
      // d/dt P(r_c t) = r_c P'(r_c t): chain rule over the category rate.
      transition_derivatives(eigen_, t * rates_[c], nullptr,
                             dmat_.data() + static_cast<std::size_t>(c) * s * s,
                             d2mat_.data() + static_cast<std::size_t>(c) * s * s);
      const double r = rates_[c];
      double* d1 = dmat_.data() + static_cast<std::size_t>(c) * s * s;
      double* d2 = d2mat_.data() + static_cast<std::size_t>(c) * s * s;
      for (unsigned i = 0; i < s * s; ++i) {
        d1[i] *= r;
        d2[i] *= r * r;
      }
    }
  }

  EvalSide near_side{};
  EvalSide far_side{};
  VectorLease near_lease;
  VectorLease far_lease;

  if (tree_.is_tip(near)) {
    near_side.codes = tips_.tip_codes(near);
    near_side.indicator = tips_.indicator(0);  // base of the indicator table
    // indicator(code) rows are contiguous: kernel indexes codes[p]*states.
  } else {
    near_lease = store_.acquire(vector_index(near), AccessMode::kRead);
    near_side.vector = near_lease.data();
    near_side.scale_counts = scale_data(near);
  }
  far_lease = store_.acquire(vector_index(far), AccessMode::kRead);
  far_side.vector = far_lease.data();
  far_side.scale_counts = scale_data(far);

  return evaluate_branch(dims_, config_.substitution.frequencies.data(),
                         weights_.data(), near_side, far_side,
                         pmat_left_.data(),
                         with_derivatives ? dmat_.data() : nullptr,
                         with_derivatives ? d2mat_.data() : nullptr,
                         with_derivatives, kernel_pool_);
}

double LikelihoodEngine::log_likelihood(NodeId a, NodeId b) {
  const std::vector<TraversalStep> steps =
      plan_for_branch(tree_, orientation_, a, b, /*full=*/false);
  execute(steps);
  return evaluate_at(a, b, tree_.branch_length(a, b), false).log_likelihood;
}

std::vector<double> LikelihoodEngine::pattern_log_likelihoods(NodeId a,
                                                              NodeId b) {
  const std::vector<TraversalStep> steps =
      plan_for_branch(tree_, orientation_, a, b, /*full=*/false);
  execute(steps);
  // Same near/far assignment as evaluate_at.
  NodeId near = a;
  NodeId far = b;
  if (tree_.is_tip(far) && !tree_.is_tip(near)) std::swap(near, far);
  PLFOC_CHECK(!tree_.is_tip(far));
  category_transition_matrices(eigen_, tree_.branch_length(a, b), rates_,
                               pmat_left_);
  EvalSide near_side{};
  EvalSide far_side{};
  VectorLease near_lease;
  if (tree_.is_tip(near)) {
    near_side.codes = tips_.tip_codes(near);
    near_side.indicator = tips_.indicator(0);
  } else {
    near_lease = store_.acquire(vector_index(near), AccessMode::kRead);
    near_side.vector = near_lease.data();
    near_side.scale_counts = scale_data(near);
  }
  VectorLease far_lease =
      store_.acquire(vector_index(far), AccessMode::kRead);
  far_side.vector = far_lease.data();
  far_side.scale_counts = scale_data(far);
  std::vector<double> out(dims_.patterns);
  per_pattern_log_likelihoods(dims_, config_.substitution.frequencies.data(),
                              near_side, far_side, pmat_left_.data(),
                              out.data(), kernel_pool_);
  return out;
}

double LikelihoodEngine::log_likelihood() {
  const auto [a, b] = tree_.default_root_branch();
  return log_likelihood(a, b);
}

double LikelihoodEngine::full_traversal_log_likelihood() {
  const auto [a, b] = tree_.default_root_branch();
  const std::vector<TraversalStep> steps =
      plan_for_branch(tree_, orientation_, a, b, /*full=*/true);
  execute(steps);
  return evaluate_at(a, b, tree_.branch_length(a, b), false).log_likelihood;
}

BranchValue LikelihoodEngine::branch_value(NodeId a, NodeId b, double t,
                                           bool with_derivatives) {
  return evaluate_at(a, b, t, with_derivatives);
}

double LikelihoodEngine::optimize_branch(NodeId a, NodeId b,
                                         int max_iterations,
                                         bool update_invalidation) {
  // Validate the endpoint vectors once; Newton iterations then touch only
  // the two vectors at the branch ends (the paper's Sec. 4.2 locality).
  const std::vector<TraversalStep> steps =
      plan_for_branch(tree_, orientation_, a, b, /*full=*/false);
  execute(steps);

  const double t_initial = tree_.branch_length(a, b);
  double t = t_initial;
  double best_t = t;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const BranchValue value = evaluate_at(a, b, t, true);
    if (value.log_likelihood > best_ll) {
      best_ll = value.log_likelihood;
      best_t = t;
    }
    double next;
    if (value.d2 < 0.0) {
      next = t - value.d1 / value.d2;
    } else {
      // Not in a concave region: march in the uphill direction.
      next = value.d1 > 0.0 ? t * 2.0 : t * 0.5;
    }
    // Keep steps bounded and inside the admissible branch-length range.
    next = std::clamp(next, t / 8.0, t * 8.0);
    next = std::clamp(next, kMinBranchLength, kMaxBranchLength);
    if (std::abs(next - t) <= 1e-10 * (1.0 + t)) break;
    t = next;
  }
  if (best_t != t_initial) {
    tree_.set_branch_length(a, b, best_t);
    if (update_invalidation) invalidate_length_change(a, b);
  }
  return best_ll;
}

void LikelihoodEngine::collect_edges_tree_walk(
    std::vector<std::pair<NodeId, NodeId>>& out) {
  // Depth-first tree walk from the default root branch so consecutive
  // optimised branches are topologically adjacent (access locality).
  out.clear();
  out.reserve(tree_.num_edges());
  const auto [root_a, root_b] = tree_.default_root_branch();
  std::vector<std::pair<NodeId, NodeId>> stack;  // (node, parent)
  out.emplace_back(root_a, root_b);
  stack.emplace_back(root_a, root_b);
  stack.emplace_back(root_b, root_a);
  while (!stack.empty()) {
    const auto [node, parent] = stack.back();
    stack.pop_back();
    for (NodeId nbr : tree_.neighbors(node)) {
      if (nbr == parent) continue;
      out.emplace_back(node, nbr);
      stack.emplace_back(nbr, node);
    }
  }
  PLFOC_CHECK(out.size() == tree_.num_edges());
}

double LikelihoodEngine::optimize_all_branches(int passes) {
  PLFOC_CHECK(passes >= 1);
  double ll = -std::numeric_limits<double>::infinity();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int pass = 0; pass < passes; ++pass) {
    collect_edges_tree_walk(edges);
    for (const auto& [a, b] : edges) ll = optimize_branch(a, b);
  }
  return ll;
}

std::uint64_t LikelihoodEngine::recover_vector(std::uint32_t index,
                                               double* dst) {
  const NodeId node = tree_.inner_node(index);
  const NodeId toward = orientation_.towards(node);
  // An unoriented vector has no defined content — nothing to recover (and
  // nothing a future computation would read without recomputing it anyway).
  if (toward == kNoNode) return 0;

  // Same child enumeration as plan_subtree: neighbors order minus the parent,
  // so left/right keep their transition-matrix association and the recomputed
  // bytes match the originals bit for bit.
  NodeId children[2] = {kNoNode, kNoNode};
  int count = 0;
  for (NodeId nbr : tree_.neighbors(node))
    if (nbr != toward) children[count++] = nbr;
  PLFOC_CHECK(count == 2);
  for (NodeId child : children)
    if (tree_.is_inner(child) && !orientation_.valid_towards(child, node))
      return 0;  // child summarises another direction: recurrence undefined

  // Local scratch: the member pmat/lookup buffers are live in the interrupted
  // operation's frame (recovery runs from inside a store acquire).
  std::vector<double> pmat_left;
  std::vector<double> pmat_right;
  std::vector<double> lookup_left;
  std::vector<double> lookup_right;
  try {
    category_transition_matrices(
        eigen_, tree_.branch_length(node, children[0]), rates_, pmat_left);
    category_transition_matrices(
        eigen_, tree_.branch_length(node, children[1]), rates_, pmat_right);
    NewviewChild left{};
    NewviewChild right{};
    VectorLease left_lease;
    VectorLease right_lease;
    if (tree_.is_tip(children[0])) {
      tips_.build_branch_lookup(pmat_left.data(), dims_.categories,
                                lookup_left);
      left.codes = tips_.tip_codes(children[0]);
      left.lookup = lookup_left.data();
    } else {
      // May recurse into recovery of the child; recursion depth is bounded
      // by the tree height and each level pins at most two more vectors.
      left_lease = store_.acquire(vector_index(children[0]), AccessMode::kRead);
      left.vector = left_lease.data();
      left.scale_counts = scale_data(children[0]);
      left.pmat = pmat_left.data();
    }
    if (tree_.is_tip(children[1])) {
      tips_.build_branch_lookup(pmat_right.data(), dims_.categories,
                                lookup_right);
      right.codes = tips_.tip_codes(children[1]);
      right.lookup = lookup_right.data();
    } else {
      right_lease =
          store_.acquire(vector_index(children[1]), AccessMode::kRead);
      right.vector = right_lease.data();
      right.scale_counts = scale_data(children[1]);
      right.pmat = pmat_right.data();
    }
    // Scale counts are RAM-resident and recomputed to identical values.
    newview(dims_, left, right, dst, scale_data(node), kernel_pool_);
  } catch (const Error&) {
    // Nested unrecoverable corruption, pinned-slot exhaustion, or I/O retry
    // exhaustion: report "not recomputable" and let the store throw typed.
    return 0;
  }
  return 1;
}

std::span<const std::int32_t> LikelihoodEngine::scale_counts(
    NodeId inner) const {
  PLFOC_CHECK(tree_.is_inner(inner));
  return {scale_counts_.data() +
              static_cast<std::size_t>(tree_.inner_index(inner)) *
                  dims_.patterns,
          dims_.patterns};
}

}  // namespace plfoc
