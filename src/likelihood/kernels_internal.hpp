// Internal kernel-dispatch seam between the portable kernels and the
// vectorised specialisations. Not part of the public API.
#pragma once

#include "likelihood/kernels.hpp"

namespace plfoc::detail {

/// True if this CPU supports the AVX2 newview path (checked once).
bool cpu_has_avx2();

/// AVX2 implementation of the 4-state newview over patterns
/// [p_begin, p_end) — the block-parallel driver hands each pattern block to
/// one call. Performs per-lane exactly the same multiply/add sequence as the
/// scalar kernel (no FMA contraction), so results are bit-identical — the
/// cross-backend determinism guarantee is unaffected by dispatch. Compiled
/// with a per-function target attribute; only call when cpu_has_avx2().
std::size_t newview4_avx2(const KernelDims& dims, const NewviewChild& left,
                          const NewviewChild& right, double* parent,
                          std::int32_t* parent_scale, std::size_t p_begin,
                          std::size_t p_end);

}  // namespace plfoc::detail
