// The phylogenetic likelihood engine.
//
// Ties together the substrates: a pattern-compressed alignment, an unrooted
// binary tree, a substitution model with Γ rate heterogeneity, and — crucially
// — an AncestralStore. Every ancestral probability vector access goes through
// `store.acquire()`, so the same engine runs unchanged on top of the in-RAM
// baseline, the paper's out-of-core slot manager, or the paged baseline: the
// out-of-core functionality is "transparently encapsulated" exactly as
// Sec. 3.3 prescribes. The engine holds at most three vector leases at any
// time (a target and its two children), which is the paper's m >= 3
// constraint on RAM slots.
#pragma once

#include <span>
#include <vector>

#include "likelihood/kernels.hpp"
#include "likelihood/tip_states.hpp"
#include "model/eigen.hpp"
#include "model/gamma.hpp"
#include "ooc/prefetch.hpp"
#include "ooc/storage.hpp"
#include "tree/traversal.hpp"
#include "tree/tree.hpp"

namespace plfoc {

inline constexpr double kMinBranchLength = 1e-8;
inline constexpr double kMaxBranchLength = 50.0;

struct ModelConfig {
  SubstitutionModel substitution;
  /// Γ rate categories (1 = rate homogeneity; the paper runs with 4).
  unsigned categories = 4;
  /// Γ shape parameter α.
  double alpha = 1.0;
};

class LikelihoodEngine {
 public:
  /// `alignment` must be pattern-compressed (or at least carry weights);
  /// `store` must have count == tree.num_inner() and
  /// width == vector_width(alignment, config.categories). All references
  /// must outlive the engine.
  LikelihoodEngine(const Alignment& alignment, Tree& tree, ModelConfig config,
                   AncestralStore& store);

  /// Doubles per ancestral vector: patterns × categories × states.
  static std::size_t vector_width(const Alignment& alignment,
                                  unsigned categories);

  Tree& tree() { return tree_; }
  const Tree& tree() const { return tree_; }
  AncestralStore& store() { return store_; }
  Orientation& orientation() { return orientation_; }
  const ModelConfig& config() const { return config_; }
  const std::vector<double>& gamma_rates() const { return rates_; }
  std::size_t patterns() const { return dims_.patterns; }
  unsigned states() const { return dims_.states; }

  /// Change the Γ shape parameter; invalidates every ancestral vector (the
  /// next evaluation is a full traversal, as the paper notes for model-
  /// parameter optimisation).
  void set_alpha(double alpha);
  /// Swap the substitution model (same data type); re-decomposes Q and
  /// invalidates every ancestral vector.
  void set_substitution_model(SubstitutionModel model);

  /// Notify the engine of a topology edit touching `at` (adjacency changed).
  void invalidate_topology_change(NodeId at) {
    invalidate_for_change(tree_, orientation_, at);
  }
  /// Notify the engine that branch (a, b) changed length.
  void invalidate_length_change(NodeId a, NodeId b) {
    invalidate_for_length_change(tree_, orientation_, a, b);
  }

  /// Run the pruning operations of a traversal descriptor.
  void execute(std::span<const TraversalStep> steps);

  /// Log likelihood evaluated across branch (a, b); plans and executes the
  /// partial traversal needed to validate both endpoint vectors.
  double log_likelihood(NodeId a, NodeId b);

  /// Per-pattern log likelihoods (scaling applied, pattern weights NOT
  /// applied — combine with alignment().weights() for totals or RELL
  /// bootstrap resampling). Plans/executes the traversal like
  /// log_likelihood(a, b).
  std::vector<double> pattern_log_likelihoods(NodeId a, NodeId b);
  /// Log likelihood at the default root branch.
  double log_likelihood();
  /// Recompute *every* ancestral vector (the paper's -f z worst case), then
  /// evaluate. Equivalent to log_likelihood() after invalidating everything.
  double full_traversal_log_likelihood();

  /// Likelihood and branch-length derivatives across (a, b) at length t.
  /// Requires both endpoint vectors valid (call after plan/execute or use
  /// optimize_branch / log_likelihood first).
  BranchValue branch_value(NodeId a, NodeId b, double t, bool with_derivatives);

  /// Newton-Raphson optimisation of one branch length (Sec. 4.2: iterates
  /// access only the two vectors at the branch ends). Returns the log
  /// likelihood at the optimised length. With `update_invalidation` false the
  /// engine does NOT mark vectors containing the branch stale — callers that
  /// immediately roll the change back (lazy SPR trials) handle staleness
  /// themselves via the recompute journal.
  double optimize_branch(NodeId a, NodeId b, int max_iterations = 32,
                         bool update_invalidation = true);

  /// One or more smoothing passes over all branches in tree-walk order.
  /// Returns the final log likelihood.
  double optimize_all_branches(int passes = 1);

  /// Attach (or detach with nullptr) a prefetcher; execute() then submits the
  /// upcoming inner-child read sequence of each descriptor before computing.
  void attach_prefetcher(Prefetcher* prefetcher) { prefetcher_ = prefetcher; }

  /// Attach (or detach with nullptr) a kernel-thread pool; the PLF kernels
  /// then run pattern-block parallel on its team. Results are bit-identical
  /// with and without a pool (see docs/parallelism.md). The pool must
  /// outlive the engine's kernel calls; the Session owns both.
  void attach_kernel_pool(KernelPool* pool) { kernel_pool_ = pool; }

  /// Attach a cancellation token (util/cancel.hpp), checked once per
  /// traversal step in execute(). Because plan_subtree marks orientation at
  /// PLAN time, a cancelled execute() re-invalidates the parents of every
  /// step it did not complete before rethrowing — completed steps stay
  /// valid, so a re-evaluation after cancellation resumes incrementally and
  /// stays bit-identical to an uninterrupted run.
  void set_cancel_token(CancelToken token) { cancel_ = std::move(token); }

  /// While set, execute() appends the parent node of every pruning operation
  /// it performs. The lazy-SPR search uses this to invalidate exactly the
  /// vectors a trial move recomputed when the move is rolled back.
  void set_recompute_journal(std::vector<NodeId>* journal) {
    journal_ = journal;
  }

  /// Per-pattern scaling counters of an inner node (RAM-resident; see
  /// DESIGN.md — they are <= 1/32 of vector memory under DNA Γ4).
  std::span<const std::int32_t> scale_counts(NodeId inner) const;

  /// Self-healing backend for AncestralStore::RecoveryHook: recompute the
  /// ancestral vector `index` into `dst` (store width doubles) by one
  /// Felsenstein pruning step over its current children, exactly as the
  /// interrupted traversal would have produced it (same child order, same
  /// kernel pool — bit-identical). Child vectors are acquired through the
  /// store, so a corrupt child heals recursively (bounded by tree height;
  /// tips are always RAM-resident). Returns 1 on success, 0 when the record
  /// is not recomputable: the node's orientation is invalid (its content was
  /// never defined), a child summarises the wrong direction, or a child
  /// acquire fails (nested unrecoverable corruption, pinned-slot exhaustion,
  /// I/O retry exhaustion). Uses only local scratch — the engine's member
  /// buffers belong to the interrupted operation's stack frame.
  std::uint64_t recover_vector(std::uint32_t index, double* dst);

 private:
  void rebuild_eigen();
  std::uint32_t vector_index(NodeId inner) const {
    return tree_.inner_index(inner);
  }
  std::int32_t* scale_data(NodeId inner) {
    return scale_counts_.data() +
           static_cast<std::size_t>(tree_.inner_index(inner)) * dims_.patterns;
  }
  /// Evaluate across (a, b), assuming valid endpoint vectors.
  BranchValue evaluate_at(NodeId a, NodeId b, double t, bool with_derivatives);
  /// execute()'s loop body; bumps `completed` after each finished step so
  /// the catch block knows which planned parents never materialised.
  void execute_steps(std::span<const TraversalStep> steps,
                     std::size_t& completed);
  void submit_prefetch(std::span<const TraversalStep> steps);
  void collect_edges_tree_walk(std::vector<std::pair<NodeId, NodeId>>& out);

  const Alignment& alignment_;
  Tree& tree_;
  ModelConfig config_;
  AncestralStore& store_;
  TipStates tips_;
  KernelDims dims_;
  EigenSystem eigen_;
  std::vector<double> rates_;
  std::vector<double> weights_;
  Orientation orientation_;
  std::vector<std::int32_t> scale_counts_;  ///< num_inner × patterns
  Prefetcher* prefetcher_ = nullptr;
  KernelPool* kernel_pool_ = nullptr;
  std::vector<NodeId>* journal_ = nullptr;
  CancelToken cancel_;  ///< null by default: per-step checks are free

  // Scratch buffers reused across operations (sized on first use).
  std::vector<double> pmat_left_;
  std::vector<double> pmat_right_;
  std::vector<double> dmat_;
  std::vector<double> d2mat_;
  std::vector<double> lookup_left_;
  std::vector<double> lookup_right_;
  std::vector<double> lookup_d1_;
  std::vector<double> lookup_d2_;
};

}  // namespace plfoc
