// The Sec. 3.1 memory arithmetic, as code.
//
// Ancestral probability vectors dominate PLF memory: (n-2) vectors of
// sites × categories × states doubles. The paper's worked example —
// n = s = 10,000 DNA, Γ4 — gives 9,998 vectors of 1.28 MB. These helpers are
// used by the dataset planner (choose s for a target footprint, Fig. 5), by
// the -L-style slot budgeting, and by the memory_model bench that prints the
// paper's table of formulas.
#pragma once

#include <cstdint>

#include "msa/datatype.hpp"

namespace plfoc {

struct MemoryModel {
  std::size_t num_taxa = 0;
  std::size_t num_sites = 0;  ///< patterns after compression
  unsigned states = 4;
  unsigned categories = 4;

  /// Doubles in one ancestral probability vector.
  std::uint64_t vector_width() const {
    return static_cast<std::uint64_t>(num_sites) * categories * states;
  }
  /// Bytes in one ancestral probability vector (the slot width w).
  std::uint64_t vector_bytes() const { return vector_width() * 8; }
  /// Number of ancestral vectors: n - 2.
  std::uint64_t vector_count() const { return num_taxa - 2; }
  /// Total bytes of all ancestral vectors: (n-2) * 8 * states*cats * s.
  std::uint64_t ancestral_bytes() const {
    return vector_count() * vector_bytes();
  }
  /// Bytes for tip sequences (1 code byte per site per taxon; the paper
  /// packs 8 nucleotides in a 32-bit int, either way tips are negligible).
  std::uint64_t tip_bytes() const {
    return static_cast<std::uint64_t>(num_taxa) * num_sites;
  }
  /// RAM-resident per-site scaling counters: (n-2) * s * 4 bytes.
  std::uint64_t scale_counter_bytes() const {
    return vector_count() * num_sites * 4;
  }

  // --- Aggregate-budget helpers -------------------------------------------
  // Used by the service scheduler (src/service/scheduler.hpp) to arbitrate a
  // single global RAM budget across concurrently running jobs: each job's
  // slot-memory demand is computed from its geometry before its Session is
  // built, charged against the budget while it runs, and released when it
  // finishes. When `num_sites` is the *uncompressed* site count, the values
  // are conservative upper bounds on the store's actual allocation (pattern
  // compression only shrinks the vector width).

  /// Slot memory of an out-of-core store with `slots` RAM slots.
  std::uint64_t ooc_slot_bytes(std::size_t slots) const {
    return static_cast<std::uint64_t>(slots) * vector_bytes();
  }
  /// Smallest admissible out-of-core footprint: the m >= 3 slot minimum.
  std::uint64_t min_ooc_bytes() const { return ooc_slot_bytes(3); }
  /// Slot memory implied by the paper's fraction parameter f
  /// (m = max(3, round(f * (n-2))); matches OocStoreOptions).
  std::uint64_t ooc_bytes_for_fraction(double fraction) const;
  /// Slot memory an out-of-core store actually allocates under a byte budget
  /// (floor to whole slots, clamped to the 3-slot minimum).
  std::uint64_t ooc_bytes_for_budget(std::uint64_t budget_bytes) const;
  /// Smallest paged-store budget that satisfies its 3-vector working-set
  /// requirement (see PagedStore's constructor check).
  std::uint64_t min_paged_bytes(std::size_t page_bytes = 4096) const {
    const std::uint64_t pages_per_vector =
        (vector_bytes() + page_bytes - 1) / page_bytes + 1;
    return (3 * pages_per_vector + 2) * page_bytes;
  }

  static MemoryModel dna(std::size_t taxa, std::size_t sites,
                         unsigned categories = 4) {
    return {taxa, sites, 4, categories};
  }
  static MemoryModel protein(std::size_t taxa, std::size_t sites,
                             unsigned categories = 4) {
    return {taxa, sites, 20, categories};
  }
};

}  // namespace plfoc
