// The PLF inner loops: newview (Felsenstein pruning step) and the branch
// likelihood/derivative evaluation, with RAxML-style numerical scaling.
//
// Data layout of an ancestral probability vector: pattern-major,
//   v[p * C * S + c * S + x]
// for pattern p, rate category c, state x. Tips enter either through a
// per-branch lookup table (newview / cross-branch side of evaluate) or the
// raw 0/1 indicator (near side of evaluate); see likelihood/tip_states.hpp.
#pragma once

#include <cmath>
#include <cstdint>

namespace plfoc {

/// Numerical scaling constants (RAxML-style): when every entry of a site
/// block falls below the threshold, the block is multiplied by the (power of
/// two, hence exact) multiplier — repeatedly, until the largest entry clears
/// the threshold — and the site's scaling counter counts the applications;
/// log-likelihoods add count * kLogScaleUnit at the root.
///
/// RAxML uses 2^-256; we use 2^-64 so that the largest entry of every stored
/// block stays far above IEEE float range (~1.2e-38): that is what makes the
/// optional single-precision on-disk representation (DiskPrecision::kSingle)
/// safe. Because scaling by powers of two is exact, the choice of threshold
/// does not perturb double-precision results beyond the rounding of the
/// final log() accumulation.
inline const double kScaleThreshold = std::ldexp(1.0, -64);
inline const double kScaleMultiplier = std::ldexp(1.0, 64);
inline const double kLogScaleUnit = -64.0 * M_LN2;

class KernelPool;

/// Patterns per parallel work block. The partition of a kernel call into
/// blocks is a function of the pattern count ONLY — never of the thread
/// count — and per-block partial sums are combined serially in block order,
/// so every kernel result is bit-identical across --threads 1..N (the
/// determinism contract; see docs/parallelism.md).
inline constexpr std::size_t kPatternBlock = 256;

inline constexpr std::size_t pattern_block_count(std::size_t patterns) {
  return (patterns + kPatternBlock - 1) / kPatternBlock;
}

struct KernelDims {
  std::size_t patterns;
  unsigned categories;
  unsigned states;
};

/// One child of a newview operation. Exactly one of {vector, lookup} is set:
///  * inner child: `vector` + `scale_counts` + `pmat` (C×S×S for its branch);
///  * tip child:   `codes` (per pattern) + `lookup` (codes×C×S, already
///    folded with the branch's transition matrices).
struct NewviewChild {
  const double* vector = nullptr;
  const std::int32_t* scale_counts = nullptr;
  const double* pmat = nullptr;
  const std::uint8_t* codes = nullptr;
  const double* lookup = nullptr;

  bool is_tip() const { return lookup != nullptr; }
};

/// parent[p,c,x] = L(p,c,x) * R(p,c,x) where L/R are the children's
/// likelihoods propagated across their branches. Writes parent (P*C*S) and
/// parent_scale (per pattern, = children's counts + fresh scalings).
/// Returns the number of patterns scaled in this call.
/// Dispatches to an AVX2 path for 4-state data when the CPU supports it;
/// the vector path performs the identical multiply/add sequence, so results
/// are bit-identical to the portable kernel. When `pool` is non-null the
/// pattern blocks run in parallel on its thread team (block writes are
/// disjoint and the scaled-pattern count is an exact integer sum, so the
/// result does not depend on the thread count).
std::size_t newview(const KernelDims& dims, const NewviewChild& left,
                    const NewviewChild& right, double* parent,
                    std::int32_t* parent_scale, KernelPool* pool = nullptr);

/// The portable kernel, bypassing SIMD dispatch (reference for tests/benches).
std::size_t newview_scalar(const KernelDims& dims, const NewviewChild& left,
                           const NewviewChild& right, double* parent,
                           std::int32_t* parent_scale);

/// One side of a branch likelihood evaluation.
///  * inner: `vector` + `scale_counts`;
///  * tip: `codes` + `indicator` (near side, codes×S) and — when this side
///    sits across the branch from the root — `lookup_*` tables (codes×C×S)
///    folded with P, dP, d²P respectively (lookup_d1/d2 only for derivatives).
struct EvalSide {
  const double* vector = nullptr;
  const std::int32_t* scale_counts = nullptr;
  const std::uint8_t* codes = nullptr;
  const double* indicator = nullptr;
  const double* lookup_p = nullptr;
  const double* lookup_d1 = nullptr;
  const double* lookup_d2 = nullptr;

  bool is_tip() const { return codes != nullptr; }
};

struct BranchValue {
  double log_likelihood = 0.0;
  double d1 = 0.0;  ///< d log L / d t
  double d2 = 0.0;  ///< d² log L / d t²
};

/// Per-pattern log likelihoods across a branch (scaling corrections applied,
/// site weights NOT applied — callers combine with their weight vector, e.g.
/// for RELL bootstrapping). `out` must hold dims.patterns doubles.
void per_pattern_log_likelihoods(const KernelDims& dims, const double* freqs,
                                 const EvalSide& near_side,
                                 const EvalSide& far_side, const double* pmats,
                                 double* out, KernelPool* pool = nullptr);

/// Log likelihood (and optionally its first two branch-length derivatives)
/// across a branch with per-category transition matrices pmats (C×S×S) and,
/// when `with_derivatives`, dmats/d2mats. `near_side` is conditioned on data
/// on its side only; `far_side` is propagated across the branch. `weights`
/// are per-pattern multiplicities, `freqs` the equilibrium frequencies.
/// The sums are always reduced per pattern block in serial block order
/// (whether or not `pool` is supplied), which pins the floating-point
/// association to the partition and keeps the value bit-identical for any
/// thread count.
BranchValue evaluate_branch(const KernelDims& dims, const double* freqs,
                            const double* weights, const EvalSide& near_side,
                            const EvalSide& far_side, const double* pmats,
                            const double* dmats, const double* d2mats,
                            bool with_derivatives, KernelPool* pool = nullptr);

}  // namespace plfoc
