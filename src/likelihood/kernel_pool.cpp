#include "likelihood/kernel_pool.hpp"

namespace plfoc {

KernelPool::KernelPool(unsigned threads)
    : threads_(threads == 0 ? 1u : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

KernelPool::~KernelPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void KernelPool::set_cancel_token(CancelToken token) {
  MutexLock lock(mutex_);
  cancel_ = std::move(token);
}

void KernelPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    std::size_t blocks;
    CancelToken cancel;
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen) work_cv_.wait(lock);
      if (stop_) return;
      seen = generation_;
      job = job_;
      blocks = blocks_;
      cancel = cancel_;
    }
    try {
      for (;;) {
        // Per-pattern-block cancellation point: a tripped token stops this
        // worker before it claims another block; the CancelledError rides
        // the first-exception slot out of run_blocks.
        cancel.check();
        const std::size_t b =
            next_block_.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) break;
        (*job)(b);
      }
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (--busy_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void KernelPool::run_blocks(std::size_t blocks,
                            const std::function<void(std::size_t)>& fn) {
  if (blocks == 0) return;
  CancelToken cancel;
  if (workers_.empty() || blocks == 1) {
    {
      MutexLock lock(mutex_);
      cancel = cancel_;
    }
    for (std::size_t b = 0; b < blocks; ++b) {
      cancel.check();
      fn(b);
    }
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    blocks_ = blocks;
    error_ = nullptr;
    next_block_.store(0, std::memory_order_relaxed);
    busy_workers_ = workers_.size();
    ++generation_;
    cancel = cancel_;
  }
  work_cv_.notify_all();
  try {
    for (;;) {
      cancel.check();
      const std::size_t b = next_block_.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) break;
      fn(b);
    }
  } catch (...) {
    MutexLock lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  MutexLock lock(mutex_);
  while (busy_workers_ != 0) done_cv_.wait(lock);
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace plfoc
