#include "likelihood/tip_states.hpp"

#include "util/checks.hpp"

namespace plfoc {

TipStates::TipStates(const Alignment& alignment, const Tree& tree)
    : states_(num_states(alignment.data_type())),
      codes_(num_codes(alignment.data_type())),
      patterns_(alignment.num_sites()),
      rows_(tree.num_taxa(), nullptr) {
  PLFOC_REQUIRE(alignment.num_taxa() >= tree.num_taxa(),
                "alignment has fewer taxa than the tree");
  for (NodeId tip = 0; tip < tree.num_taxa(); ++tip) {
    const long row = alignment.find_taxon(tree.taxon_name(tip));
    PLFOC_REQUIRE(row >= 0, "tree taxon '" + tree.taxon_name(tip) +
                                "' not found in the alignment");
    rows_[tip] = alignment.row(static_cast<std::size_t>(row)).data();
  }
  indicators_.assign(static_cast<std::size_t>(codes_) * states_, 0.0);
  for (unsigned code = 0; code < codes_; ++code) {
    const std::uint32_t mask =
        (alignment.data_type() == DataType::kDna && code == 0)
            ? 0u  // DNA code 0 is invalid and never produced by encode_char
            : code_state_mask(alignment.data_type(),
                              static_cast<std::uint8_t>(code));
    for (unsigned s = 0; s < states_; ++s)
      indicators_[static_cast<std::size_t>(code) * states_ + s] =
          ((mask >> s) & 1u) ? 1.0 : 0.0;
  }
}

const std::uint8_t* TipStates::tip_codes(NodeId tip) const {
  PLFOC_DCHECK(tip < rows_.size() && rows_[tip] != nullptr);
  return rows_[tip];
}

void TipStates::build_branch_lookup(const double* pmats, unsigned categories,
                                    std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(codes_) * categories * states_);
  for (unsigned code = 0; code < codes_; ++code) {
    const double* ind = indicator(static_cast<std::uint8_t>(code));
    for (unsigned c = 0; c < categories; ++c) {
      const double* p = pmats + static_cast<std::size_t>(c) * states_ * states_;
      double* row = out.data() +
                    (static_cast<std::size_t>(code) * categories + c) * states_;
      for (unsigned x = 0; x < states_; ++x) {
        double sum = 0.0;
        for (unsigned y = 0; y < states_; ++y)
          if (ind[y] != 0.0) sum += p[x * states_ + y];
        row[x] = sum;
      }
    }
  }
}

}  // namespace plfoc
