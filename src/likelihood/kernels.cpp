#include "likelihood/kernels.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "likelihood/kernel_pool.hpp"
#include "likelihood/kernels_internal.hpp"

#include "util/checks.hpp"

namespace plfoc {
namespace {

/// Propagated child likelihood L(x) for one (pattern, category) block.
/// S is the compile-time state count (0 = generic/runtime).
template <unsigned S>
inline void propagate_inner(const double* pmat_c, const double* child_block,
                            unsigned states, double* out) {
  const unsigned s = S != 0 ? S : states;
  for (unsigned x = 0; x < s; ++x) {
    double sum = 0.0;
    const double* row = pmat_c + static_cast<std::size_t>(x) * s;
    for (unsigned y = 0; y < s; ++y) sum += row[y] * child_block[y];
    out[x] = sum;
  }
}

template <unsigned S>
std::size_t newview_impl(const KernelDims& dims, const NewviewChild& left,
                         const NewviewChild& right, double* parent,
                         std::int32_t* parent_scale, std::size_t p_begin,
                         std::size_t p_end) {
  const unsigned states = S != 0 ? S : dims.states;
  const unsigned cats = dims.categories;
  const std::size_t block = static_cast<std::size_t>(cats) * states;
  std::size_t scaled = 0;

  double lbuf[32];
  double rbuf[32];
  PLFOC_CHECK(states <= 32);

  for (std::size_t p = p_begin; p < p_end; ++p) {
    double* parent_block = parent + p * block;
    bool all_small = true;
    for (unsigned c = 0; c < cats; ++c) {
      const double* l;
      if (left.is_tip()) {
        l = left.lookup +
            (static_cast<std::size_t>(left.codes[p]) * cats + c) * states;
      } else {
        propagate_inner<S>(left.pmat + static_cast<std::size_t>(c) * states * states,
                           left.vector + p * block + static_cast<std::size_t>(c) * states,
                           states, lbuf);
        l = lbuf;
      }
      const double* r;
      if (right.is_tip()) {
        r = right.lookup +
            (static_cast<std::size_t>(right.codes[p]) * cats + c) * states;
      } else {
        propagate_inner<S>(right.pmat + static_cast<std::size_t>(c) * states * states,
                           right.vector + p * block + static_cast<std::size_t>(c) * states,
                           states, rbuf);
        r = rbuf;
      }
      double* out = parent_block + static_cast<std::size_t>(c) * states;
      for (unsigned x = 0; x < states; ++x) {
        const double v = l[x] * r[x];
        out[x] = v;
        if (v >= kScaleThreshold) all_small = false;
      }
    }
    std::int32_t count = (left.scale_counts != nullptr ? left.scale_counts[p] : 0) +
                         (right.scale_counts != nullptr ? right.scale_counts[p] : 0);
    if (all_small) {
      ++scaled;
      // Scale repeatedly until the largest entry clears the threshold: a
      // single application is not enough when one pruning step shrinks the
      // site by more than the multiplier, and the single-precision disk
      // representation relies on max >= threshold.
      while (all_small) {
        all_small = false;
        double max_value = 0.0;
        for (std::size_t i = 0; i < block; ++i) {
          parent_block[i] *= kScaleMultiplier;
          if (parent_block[i] > max_value) max_value = parent_block[i];
        }
        ++count;
        // A block that underflowed to exactly zero stays zero under the
        // (power of two, exact) multiplier; without this break the loop
        // spins forever while count overflows. The AVX2 kernel applies the
        // identical rule, preserving scalar/AVX2 bit-identity.
        if (max_value == 0.0) break;
        all_small = max_value < kScaleThreshold;
      }
    }
    parent_scale[p] = count;
  }
  return scaled;
}

template <unsigned S>
BranchValue evaluate_impl(const KernelDims& dims, const double* freqs,
                          const double* weights, const EvalSide& near_side,
                          const EvalSide& far_side, const double* pmats,
                          const double* dmats, const double* d2mats,
                          bool with_derivatives, std::size_t p_begin,
                          std::size_t p_end) {
  const unsigned states = S != 0 ? S : dims.states;
  const unsigned cats = dims.categories;
  const std::size_t block = static_cast<std::size_t>(cats) * states;
  const double cat_weight = 1.0 / cats;

  double fb[32];
  double dfb[32];
  double d2fb[32];
  PLFOC_CHECK(states <= 32);

  BranchValue result;
  for (std::size_t p = p_begin; p < p_end; ++p) {
    double site_l = 0.0;
    double site_d1 = 0.0;
    double site_d2 = 0.0;
    for (unsigned c = 0; c < cats; ++c) {
      // Far side propagated across the branch (and its t-derivatives).
      const double* far;
      const double* dfar = nullptr;
      const double* d2far = nullptr;
      if (far_side.is_tip()) {
        const std::size_t at =
            (static_cast<std::size_t>(far_side.codes[p]) * cats + c) * states;
        far = far_side.lookup_p + at;
        if (with_derivatives) {
          dfar = far_side.lookup_d1 + at;
          d2far = far_side.lookup_d2 + at;
        }
      } else {
        const double* vec = far_side.vector + p * block +
                            static_cast<std::size_t>(c) * states;
        propagate_inner<S>(pmats + static_cast<std::size_t>(c) * states * states,
                           vec, states, fb);
        far = fb;
        if (with_derivatives) {
          propagate_inner<S>(dmats + static_cast<std::size_t>(c) * states * states,
                             vec, states, dfb);
          propagate_inner<S>(d2mats + static_cast<std::size_t>(c) * states * states,
                             vec, states, d2fb);
          dfar = dfb;
          d2far = d2fb;
        }
      }
      // Near side values at this (pattern, category).
      const double* near;
      if (near_side.is_tip()) {
        near = near_side.indicator +
               static_cast<std::size_t>(near_side.codes[p]) * states;
      } else {
        near = near_side.vector + p * block + static_cast<std::size_t>(c) * states;
      }
      double lc = 0.0;
      double d1c = 0.0;
      double d2c = 0.0;
      for (unsigned x = 0; x < states; ++x) {
        const double base = freqs[x] * near[x];
        lc += base * far[x];
        if (with_derivatives) {
          d1c += base * dfar[x];
          d2c += base * d2far[x];
        }
      }
      site_l += lc;
      site_d1 += d1c;
      site_d2 += d2c;
    }
    site_l *= cat_weight;
    site_d1 *= cat_weight;
    site_d2 *= cat_weight;

    const std::int32_t scale =
        (near_side.scale_counts != nullptr ? near_side.scale_counts[p] : 0) +
        (far_side.scale_counts != nullptr ? far_side.scale_counts[p] : 0);
    const double w = weights != nullptr ? weights[p] : 1.0;
    const double guarded = std::max(site_l, std::numeric_limits<double>::min());
    result.log_likelihood += w * (std::log(guarded) + scale * kLogScaleUnit);
    if (with_derivatives) {
      const double d1_term = site_d1 / guarded;
      const double d2_term = site_d2 / guarded - d1_term * d1_term;
      // When site_l clamps to numeric_limits::min() (underflowed site) the
      // ratios can overflow to Inf and poison d2 with NaN, derailing the
      // Newton step in optimize_branch. An underflowed site carries no
      // usable curvature signal, so drop its derivative contribution.
      if (std::isfinite(d1_term) && std::isfinite(d2_term)) {
        result.d1 += w * d1_term;
        result.d2 += w * d2_term;
      }
    }
  }
  return result;
}

template <unsigned S>
void per_pattern_impl(const KernelDims& dims, const double* freqs,
                      const EvalSide& near_side, const EvalSide& far_side,
                      const double* pmats, double* out, std::size_t p_begin,
                      std::size_t p_end) {
  const unsigned states = S != 0 ? S : dims.states;
  const unsigned cats = dims.categories;
  const std::size_t block = static_cast<std::size_t>(cats) * states;
  const double cat_weight = 1.0 / cats;
  double fb[32];
  PLFOC_CHECK(states <= 32);
  for (std::size_t p = p_begin; p < p_end; ++p) {
    double site_l = 0.0;
    for (unsigned c = 0; c < cats; ++c) {
      const double* far;
      if (far_side.is_tip()) {
        far = far_side.lookup_p +
              (static_cast<std::size_t>(far_side.codes[p]) * cats + c) * states;
      } else {
        propagate_inner<S>(pmats + static_cast<std::size_t>(c) * states * states,
                           far_side.vector + p * block +
                               static_cast<std::size_t>(c) * states,
                           states, fb);
        far = fb;
      }
      const double* near;
      if (near_side.is_tip()) {
        near = near_side.indicator +
               static_cast<std::size_t>(near_side.codes[p]) * states;
      } else {
        near = near_side.vector + p * block + static_cast<std::size_t>(c) * states;
      }
      double lc = 0.0;
      for (unsigned x = 0; x < states; ++x) lc += freqs[x] * near[x] * far[x];
      site_l += lc;
    }
    site_l *= cat_weight;
    const std::int32_t scale =
        (near_side.scale_counts != nullptr ? near_side.scale_counts[p] : 0) +
        (far_side.scale_counts != nullptr ? far_side.scale_counts[p] : 0);
    const double guarded = std::max(site_l, std::numeric_limits<double>::min());
    out[p] = std::log(guarded) + scale * kLogScaleUnit;
  }
}

std::size_t newview_range(const KernelDims& dims, const NewviewChild& left,
                          const NewviewChild& right, double* parent,
                          std::int32_t* parent_scale, std::size_t p_begin,
                          std::size_t p_end) {
  switch (dims.states) {
    case 4:
      return newview_impl<4>(dims, left, right, parent, parent_scale, p_begin,
                             p_end);
    case 20:
      return newview_impl<20>(dims, left, right, parent, parent_scale, p_begin,
                              p_end);
    default:
      return newview_impl<0>(dims, left, right, parent, parent_scale, p_begin,
                             p_end);
  }
}

BranchValue evaluate_range(const KernelDims& dims, const double* freqs,
                           const double* weights, const EvalSide& near_side,
                           const EvalSide& far_side, const double* pmats,
                           const double* dmats, const double* d2mats,
                           bool with_derivatives, std::size_t p_begin,
                           std::size_t p_end) {
  switch (dims.states) {
    case 4:
      return evaluate_impl<4>(dims, freqs, weights, near_side, far_side, pmats,
                              dmats, d2mats, with_derivatives, p_begin, p_end);
    case 20:
      return evaluate_impl<20>(dims, freqs, weights, near_side, far_side,
                               pmats, dmats, d2mats, with_derivatives, p_begin,
                               p_end);
    default:
      return evaluate_impl<0>(dims, freqs, weights, near_side, far_side, pmats,
                              dmats, d2mats, with_derivatives, p_begin, p_end);
  }
}

void per_pattern_range(const KernelDims& dims, const double* freqs,
                       const EvalSide& near_side, const EvalSide& far_side,
                       const double* pmats, double* out, std::size_t p_begin,
                       std::size_t p_end) {
  switch (dims.states) {
    case 4:
      per_pattern_impl<4>(dims, freqs, near_side, far_side, pmats, out,
                          p_begin, p_end);
      break;
    case 20:
      per_pattern_impl<20>(dims, freqs, near_side, far_side, pmats, out,
                           p_begin, p_end);
      break;
    default:
      per_pattern_impl<0>(dims, freqs, near_side, far_side, pmats, out,
                          p_begin, p_end);
      break;
  }
}

inline std::size_t block_begin(std::size_t b) { return b * kPatternBlock; }

inline std::size_t block_end(std::size_t b, std::size_t patterns) {
  return std::min(patterns, (b + 1) * kPatternBlock);
}

bool pool_active(const KernelPool* pool, std::size_t blocks) {
  return pool != nullptr && pool->threads() > 1 && blocks > 1;
}

}  // namespace

void per_pattern_log_likelihoods(const KernelDims& dims, const double* freqs,
                                 const EvalSide& near_side,
                                 const EvalSide& far_side, const double* pmats,
                                 double* out, KernelPool* pool) {
  const std::size_t blocks = pattern_block_count(dims.patterns);
  if (!pool_active(pool, blocks)) {
    per_pattern_range(dims, freqs, near_side, far_side, pmats, out, 0,
                      dims.patterns);
    return;
  }
  // Each block writes a disjoint slice of out; no reduction needed.
  pool->run_blocks(blocks, [&](std::size_t b) {
    per_pattern_range(dims, freqs, near_side, far_side, pmats, out,
                      block_begin(b), block_end(b, dims.patterns));
  });
}

std::size_t newview_scalar(const KernelDims& dims, const NewviewChild& left,
                           const NewviewChild& right, double* parent,
                           std::int32_t* parent_scale) {
  return newview_range(dims, left, right, parent, parent_scale, 0,
                       dims.patterns);
}

std::size_t newview(const KernelDims& dims, const NewviewChild& left,
                    const NewviewChild& right, double* parent,
                    std::int32_t* parent_scale, KernelPool* pool) {
  const bool use_avx2 =
      dims.states == 4 && dims.categories <= 16 && detail::cpu_has_avx2();
  const auto run_range = [&](std::size_t p_begin, std::size_t p_end) {
    return use_avx2 ? detail::newview4_avx2(dims, left, right, parent,
                                            parent_scale, p_begin, p_end)
                    : newview_range(dims, left, right, parent, parent_scale,
                                    p_begin, p_end);
  };
  const std::size_t blocks = pattern_block_count(dims.patterns);
  if (!pool_active(pool, blocks)) return run_range(0, dims.patterns);
  // Block outputs (parent slices, scale counts) are disjoint and the
  // scaled-pattern tally is an exact integer sum, so any execution order
  // yields the identical result.
  std::vector<std::size_t> partials(blocks, 0);
  pool->run_blocks(blocks, [&](std::size_t b) {
    partials[b] = run_range(block_begin(b), block_end(b, dims.patterns));
  });
  std::size_t scaled = 0;
  for (const std::size_t partial : partials) scaled += partial;
  return scaled;
}

BranchValue evaluate_branch(const KernelDims& dims, const double* freqs,
                            const double* weights, const EvalSide& near_side,
                            const EvalSide& far_side, const double* pmats,
                            const double* dmats, const double* d2mats,
                            bool with_derivatives, KernelPool* pool) {
  if (with_derivatives)
    PLFOC_CHECK((dmats != nullptr && d2mats != nullptr) || far_side.is_tip());
  const std::size_t blocks = pattern_block_count(dims.patterns);
  if (blocks <= 1)
    return evaluate_range(dims, freqs, weights, near_side, far_side, pmats,
                          dmats, d2mats, with_derivatives, 0, dims.patterns);
  // Per-block partials are ALWAYS computed and combined serially in block
  // order — also on the single-threaded path — so the floating-point
  // association depends only on the pattern count, never the thread count.
  std::vector<BranchValue> partials(blocks);
  const auto body = [&](std::size_t b) {
    partials[b] =
        evaluate_range(dims, freqs, weights, near_side, far_side, pmats, dmats,
                       d2mats, with_derivatives, block_begin(b),
                       block_end(b, dims.patterns));
  };
  if (pool_active(pool, blocks)) {
    pool->run_blocks(blocks, body);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  }
  BranchValue result = partials[0];
  for (std::size_t b = 1; b < blocks; ++b) {
    result.log_likelihood += partials[b].log_likelihood;
    result.d1 += partials[b].d1;
    result.d2 += partials[b].d2;
  }
  return result;
}

}  // namespace plfoc
