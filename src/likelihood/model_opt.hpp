// Model parameter optimisation: Brent's method on the Γ shape α and the GTR
// exchangeabilities. Every objective evaluation changes a global model
// parameter and therefore invalidates all ancestral vectors — model
// optimisation is the full-tree-traversal workload the paper's Fig. 5 -f z
// experiment stands in for.
#pragma once

#include <functional>

#include "likelihood/engine.hpp"

namespace plfoc {

/// Brent's derivative-free 1-D minimiser on [lower, upper].
/// Returns the minimising x; *fmin (optional) receives f(x).
double brent_minimize(const std::function<double(double)>& f, double lower,
                      double upper, double tolerance = 1e-6,
                      int max_iterations = 100, double* fmin = nullptr);

struct ModelOptOptions {
  double alpha_lower = 0.02;
  double alpha_upper = 100.0;
  double tolerance = 1e-3;   ///< relative tolerance in parameter space
  int rate_cycles = 1;       ///< coordinate-descent sweeps over GTR rates
  bool optimize_alpha = true;
  bool optimize_rates = false;  ///< GTR exchangeabilities (expensive)
};

/// Optimise α (and optionally the substitution rates) in place.
/// Returns the final log likelihood.
double optimize_model(LikelihoodEngine& engine,
                      const ModelOptOptions& options = {});

/// Optimise only α; returns the final log likelihood.
double optimize_alpha(LikelihoodEngine& engine, double lower = 0.02,
                      double upper = 100.0, double tolerance = 1e-3);

}  // namespace plfoc
