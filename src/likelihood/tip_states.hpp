// Tip sequence handling for the PLF.
//
// Tips never occupy ancestral-vector slots (Sec. 3.1: tip storage "is not
// problematic"). Each tip keeps its encoded code bytes; for a concrete branch
// the engine builds a per-code lookup table
//   table[code][c][x] = Σ_y P_c(t)[x][y] · 1{state y compatible with code}
// so the newview/evaluate kernels handle a tip child with one table row
// gather per site instead of an S-element dot product.
#pragma once

#include <cstdint>
#include <vector>

#include "msa/alignment.hpp"
#include "tree/tree.hpp"

namespace plfoc {

class TipStates {
 public:
  /// Binds alignment rows to tree tips by taxon name (every tree taxon must
  /// exist in the alignment). The alignment must outlive this object.
  TipStates(const Alignment& alignment, const Tree& tree);

  unsigned states() const { return states_; }
  unsigned codes() const { return codes_; }
  std::size_t patterns() const { return patterns_; }

  /// Encoded pattern codes of a tip node (length = patterns()).
  const std::uint8_t* tip_codes(NodeId tip) const;

  /// 0/1 indicator row of a code over the model states (length = states()).
  const double* indicator(std::uint8_t code) const {
    return indicators_.data() + static_cast<std::size_t>(code) * states_;
  }

  /// Build the branch lookup table: for `categories` transition matrices
  /// pmats (categories × S × S), fill `out` with codes() × categories × S
  /// entries as described above.
  void build_branch_lookup(const double* pmats, unsigned categories,
                           std::vector<double>& out) const;

 private:
  unsigned states_;
  unsigned codes_;
  std::size_t patterns_;
  std::vector<const std::uint8_t*> rows_;  ///< per tip NodeId
  std::vector<double> indicators_;         ///< codes × states
};

}  // namespace plfoc
