// Random tree topologies and branch lengths for simulation and testing.
#pragma once

#include <string>
#include <vector>

#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plfoc {

struct RandomTreeOptions {
  /// Mean of the exponential branch-length distribution.
  double mean_branch_length = 0.1;
  /// Lower clamp so the PLF never sees a degenerate branch.
  double min_branch_length = 1e-6;
};

/// Uniform random unrooted binary topology over the given taxa, built by
/// random sequential addition (each new tip subdivides a uniformly chosen
/// existing edge). Branch lengths ~ Exp(1/mean).
Tree random_tree(std::vector<std::string> taxon_names, Rng& rng,
                 const RandomTreeOptions& options = {});

/// Convenience: taxa named "t0".."t{n-1}".
Tree random_tree(std::size_t num_taxa, Rng& rng,
                 const RandomTreeOptions& options = {});

/// Generate the default taxon label set "t0".."t{n-1}".
std::vector<std::string> default_taxon_names(std::size_t num_taxa);

}  // namespace plfoc
