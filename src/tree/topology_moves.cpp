#include "tree/topology_moves.hpp"

#include <algorithm>

#include "util/checks.hpp"

namespace plfoc {
namespace {

constexpr double kMinLength = 1e-8;

}  // namespace

SprMove apply_spr(Tree& tree, NodeId s, NodeId r, NodeId x, NodeId y) {
  PLFOC_CHECK(tree.is_inner(s));
  PLFOC_CHECK(tree.has_edge(s, r));
  PLFOC_CHECK(tree.has_edge(x, y));
  PLFOC_CHECK(x != s && y != s);

  SprMove move{};
  move.s = s;
  move.r = r;
  move.x = x;
  move.y = y;

  // Identify u and v: the neighbours of s other than r.
  NodeId others[2];
  int count = 0;
  for (NodeId nbr : tree.neighbors(s))
    if (nbr != r) others[count++] = nbr;
  PLFOC_CHECK(count == 2);
  move.u = others[0];
  move.v = others[1];
  PLFOC_CHECK(!(move.u == x && move.v == y) && !(move.u == y && move.v == x));

  move.len_su = tree.branch_length(s, move.u);
  move.len_sv = tree.branch_length(s, move.v);
  move.len_xy = tree.branch_length(x, y);

  // Prune: detach s, heal the u-v gap.
  tree.disconnect(s, move.u);
  tree.disconnect(s, move.v);
  tree.connect(move.u, move.v, move.len_su + move.len_sv);

  // Regraft: splice s into (x, y).
  tree.disconnect(x, y);
  const double half = std::max(move.len_xy * 0.5, kMinLength);
  tree.connect(s, x, half);
  tree.connect(s, y, half);
  return move;
}

void undo_spr(Tree& tree, const SprMove& move) {
  tree.disconnect(move.s, move.x);
  tree.disconnect(move.s, move.y);
  tree.connect(move.x, move.y, move.len_xy);
  tree.disconnect(move.u, move.v);
  tree.connect(move.s, move.u, move.len_su);
  tree.connect(move.s, move.v, move.len_sv);
}

NniMove apply_nni(Tree& tree, NodeId a, NodeId b, int variant) {
  PLFOC_CHECK(tree.is_inner(a) && tree.is_inner(b));
  PLFOC_CHECK(tree.has_edge(a, b));
  PLFOC_CHECK(variant == 0 || variant == 1);

  NodeId a_children[2];
  NodeId b_children[2];
  int na = 0;
  int nb = 0;
  for (NodeId nbr : tree.neighbors(a))
    if (nbr != b) a_children[na++] = nbr;
  for (NodeId nbr : tree.neighbors(b))
    if (nbr != a) b_children[nb++] = nbr;
  PLFOC_CHECK(na == 2 && nb == 2);

  NniMove move{};
  move.a = a;
  move.b = b;
  move.moved_from_a = a_children[0];
  move.moved_from_b = b_children[variant];
  move.len_a_child = tree.branch_length(a, move.moved_from_a);
  move.len_b_child = tree.branch_length(b, move.moved_from_b);

  tree.disconnect(a, move.moved_from_a);
  tree.disconnect(b, move.moved_from_b);
  tree.connect(a, move.moved_from_b, move.len_b_child);
  tree.connect(b, move.moved_from_a, move.len_a_child);
  return move;
}

void undo_nni(Tree& tree, const NniMove& move) {
  tree.disconnect(move.a, move.moved_from_b);
  tree.disconnect(move.b, move.moved_from_a);
  tree.connect(move.a, move.moved_from_a, move.len_a_child);
  tree.connect(move.b, move.moved_from_b, move.len_b_child);
}

void redo_nni(Tree& tree, const NniMove& move) {
  PLFOC_CHECK(tree.has_edge(move.a, move.moved_from_a));
  PLFOC_CHECK(tree.has_edge(move.b, move.moved_from_b));
  tree.disconnect(move.a, move.moved_from_a);
  tree.disconnect(move.b, move.moved_from_b);
  tree.connect(move.a, move.moved_from_b, move.len_b_child);
  tree.connect(move.b, move.moved_from_a, move.len_a_child);
}

}  // namespace plfoc
