// Tree comparison: bipartitions and the Robinson-Foulds distance.
//
// Every inner edge of an unrooted tree splits the taxa into two sets; the
// Robinson-Foulds distance counts the splits present in one tree but not the
// other. Used by tests and examples to quantify how close an inferred
// topology is to the truth (0 = identical topologies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tree/tree.hpp"

namespace plfoc {

/// One bipartition as a bitset over a reference taxon order, normalised so
/// the bit of taxon 0 is always clear (a split and its complement are the
/// same bipartition).
using Split = std::vector<std::uint64_t>;

/// The non-trivial splits (inner edges only) of `tree`, with bit i
/// corresponding to `taxon_order[i]`. Throws if the tree's taxa do not
/// exactly match `taxon_order`. Sorted for set comparison.
std::vector<Split> tree_splits(const Tree& tree,
                               const std::vector<std::string>& taxon_order);

/// Robinson-Foulds distance: |splits(a) Δ splits(b)|. Throws when the trees
/// are over different taxon sets.
unsigned robinson_foulds(const Tree& a, const Tree& b);

/// RF scaled to [0, 1] by the maximum 2(n-3).
double normalized_robinson_foulds(const Tree& a, const Tree& b);

}  // namespace plfoc
