#include "tree/random_tree.hpp"

#include <algorithm>

#include "util/checks.hpp"

namespace plfoc {
namespace {

double draw_length(Rng& rng, const RandomTreeOptions& options) {
  const double length = rng.exponential(1.0 / options.mean_branch_length);
  return std::max(length, options.min_branch_length);
}

}  // namespace

std::vector<std::string> default_taxon_names(std::size_t num_taxa) {
  std::vector<std::string> names;
  names.reserve(num_taxa);
  for (std::size_t i = 0; i < num_taxa; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

Tree random_tree(std::vector<std::string> taxon_names, Rng& rng,
                 const RandomTreeOptions& options) {
  const std::size_t n = taxon_names.size();
  PLFOC_REQUIRE(n >= 3, "random_tree needs at least 3 taxa");
  Tree tree(std::move(taxon_names));

  // Start from the 3-taxon star around the first inner node.
  const NodeId first_inner = tree.inner_node(0);
  for (NodeId tip = 0; tip < 3; ++tip)
    tree.connect(tip, first_inner, draw_length(rng, options));

  // Grow: tip k (k >= 3) subdivides a uniformly random existing edge with a
  // fresh inner node. After adding tip k, the tree has 2k - 1 edges.
  std::vector<std::pair<NodeId, NodeId>> edge_list = {
      {0, first_inner}, {1, first_inner}, {2, first_inner}};
  for (std::size_t k = 3; k < n; ++k) {
    const std::size_t pick = rng.below(edge_list.size());
    const auto [a, b] = edge_list[pick];
    const double old_len = tree.branch_length(a, b);
    const NodeId inner = tree.inner_node(static_cast<std::uint32_t>(k) - 2);
    const NodeId tip = static_cast<NodeId>(k);
    tree.disconnect(a, b);
    // Split the subdivided branch proportionally at a uniform point.
    const double split = rng.uniform(0.1, 0.9);
    const double len_a =
        std::max(old_len * split, options.min_branch_length);
    const double len_b =
        std::max(old_len * (1.0 - split), options.min_branch_length);
    tree.connect(a, inner, len_a);
    tree.connect(inner, b, len_b);
    tree.connect(tip, inner, draw_length(rng, options));
    edge_list[pick] = {a, inner};
    edge_list.emplace_back(inner, b);
    edge_list.emplace_back(tip, inner);
  }
  tree.validate();
  return tree;
}

Tree random_tree(std::size_t num_taxa, Rng& rng,
                 const RandomTreeOptions& options) {
  return random_tree(default_taxon_names(num_taxa), rng, options);
}

}  // namespace plfoc
