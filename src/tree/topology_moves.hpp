// Topology-editing moves: SPR (subtree pruning and regrafting) and NNI
// (nearest-neighbour interchange), both with exact undo records.
//
// The miss-rate experiments (Figs. 2-4) are driven by a lazy-SPR tree search;
// these moves produce exactly the local-edit access patterns the paper
// exploits (Sec. 3.1: "A large number of topological changes that are
// evaluated are local changes").
#pragma once

#include "tree/tree.hpp"

namespace plfoc {

/// Undo record for one SPR move.
///
/// Before: inner node `s` carries the pruned subtree through neighbour `r`
/// and connects to `u` and `v`; edge (x, y) exists elsewhere.
/// After:  u-v are joined directly; s is spliced into (x, y).
struct SprMove {
  NodeId s, r, u, v, x, y;
  double len_su, len_sv;  ///< original lengths of s-u and s-v
  double len_xy;          ///< original length of x-y
};

/// Prune the subtree hanging off `s` on the `r` side and regraft `s` into
/// edge (x, y). Requirements (checked): s inner with neighbours {r, u, v};
/// (x, y) an existing edge not incident to s. The rejoined u-v branch gets
/// length len(s,u)+len(s,v); the split halves of (x, y) each get half its
/// length, clamped to a positive minimum.
SprMove apply_spr(Tree& tree, NodeId s, NodeId r, NodeId x, NodeId y);

/// Restore the exact pre-move tree (topology and branch lengths).
void undo_spr(Tree& tree, const SprMove& move);

/// Undo record for one NNI move across inner edge (a, b).
struct NniMove {
  NodeId a, b;
  NodeId moved_from_a;  ///< neighbour of a that was swapped to b
  NodeId moved_from_b;  ///< neighbour of b that was swapped to a
  double len_a_child, len_b_child;
};

/// Swap one non-shared neighbour of `a` with one of `b` across inner edge
/// (a, b). `variant` in {0, 1} selects which of b's two candidates is used.
/// NOTE: the variant -> physical-move mapping depends on the current
/// neighbour slot order, which disconnect/connect cycles permute. To repeat
/// a specific move later (e.g. re-applying the best of several trialled
/// moves), replay the recorded NniMove with redo_nni instead of trusting a
/// variant index.
NniMove apply_nni(Tree& tree, NodeId a, NodeId b, int variant);

void undo_nni(Tree& tree, const NniMove& move);

/// Re-apply exactly the physical swap recorded in `move` (the tree must be
/// in the same pre-move state, e.g. right after undo_nni).
void redo_nni(Tree& tree, const NniMove& move);

}  // namespace plfoc
