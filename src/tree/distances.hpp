// Topological node distances.
//
// The paper's Topological replacement strategy evicts the in-RAM vector whose
// node is *most distant* from the currently requested node, distance being
// the number of nodes along the unique connecting path (Sec. 3.3). Hop count
// orders nodes identically.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace plfoc {

/// BFS hop distance from `source` to every node (indexed by NodeId).
std::vector<std::uint32_t> node_distances(const Tree& tree, NodeId source);

/// Hop distance between two nodes (O(nodes) BFS; use node_distances for many
/// queries from the same source).
std::uint32_t node_distance(const Tree& tree, NodeId a, NodeId b);

}  // namespace plfoc
