// Phylo2Vec: canonical integer-vector encoding of tree topologies
// (Penn et al., arXiv 2304.12693), extended with a canonical branch-length
// ordering so a full (topology, lengths) pair round-trips losslessly.
//
// The encoding is defined over *rooted* binary trees grown leaf by leaf:
// start from a root whose children are leaves 0 and 1; at step i the tree
// has leaves 0..i-1 and internal nodes c_1..c_{i-1} (c_j was created at
// step j; c_1 is the starting root), and v[i] names the edge that leaf i's
// new parent c_i splits:
//
//   edge above leaf j      -> name j            (0 <= j < i)
//   edge above internal c_j -> name i + (j - 1)  (1 <= j < i; the current
//                                                 root's virtual parent edge
//                                                 included, so splitting it
//                                                 re-roots)
//
// which gives v[i] in [0, 2i-2] and makes v -> rooted tree a bijection
// ((2n-3)!! vectors of length n, one per topology).
//
// plfoc trees are unrooted, so canonical form fixes both the leaf labels
// and the rooting:
//   * leaf label = rank of the taxon name in sorted order;
//   * the root subdivides the pendant edge of leaf 0 (rank-0 taxon).
// Two Newick strings for the same unrooted topology — any rotation, any
// root placement — therefore encode to the same vector, which is what the
// result cache keys on (docs/serving.md).
//
// Branch lengths travel in a canonical order derived from the same node
// identities: entry 0 is the merged root edge (leaf 0's full pendant
// length), then one parent-edge length per node — leaves by rank, then
// internals by creation index — skipping the root and its two children
// (their two half edges are the merged entry 0).
//
// decode(encode(T)) reproduces the topology exactly (same logical tree,
// node ids renumbered canonically) and every branch length bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tree/tree.hpp"

namespace plfoc {

/// A canonically encoded tree: sorted taxon names, the Phylo2Vec topology
/// vector (size n, v[0] = v[1] = 0, v[i] <= 2i-2) and the branch lengths in
/// canonical order (size 2n-3).
struct Phylo2Vec {
  std::vector<std::string> taxa;
  std::vector<std::uint32_t> v;
  std::vector<double> lengths;

  std::size_t num_taxa() const { return v.size(); }
};

/// Encode an unrooted tree canonically. The tree must be fully connected
/// and have >= 3 taxa with unique names; violations throw plfoc::Error.
Phylo2Vec phylo2vec_encode(const Tree& tree);

/// Rebuild the unrooted tree. Accepts any structurally valid encoding (the
/// wire path feeds untrusted vectors through this); malformed input —
/// v[i] out of range, wrong lengths arity, non-positive or non-finite
/// lengths, duplicate or unsorted taxa — throws plfoc::Error.
Tree phylo2vec_decode(const Phylo2Vec& encoding);

/// Structural validation shared by decode and the wire decoder: throws
/// plfoc::Error unless taxa are unique and sorted, v has the Phylo2Vec
/// shape, and lengths has 2n-3 positive finite entries.
void phylo2vec_validate(const Phylo2Vec& encoding);

/// decode(encode(tree)): same topology and branch lengths, canonical node
/// numbering. Idempotent; the service canonicalizes cached jobs through
/// this so topologically equivalent submissions evaluate bit-identically.
Tree phylo2vec_canonical(const Tree& tree);

/// Order-insensitive digest of a taxon set (hashes the sorted names). The
/// wire format sends this instead of the names themselves; the server
/// checks it against the alignment's taxa to catch tree/MSA mismatches.
std::uint64_t phylo2vec_taxa_digest(const std::vector<std::string>& taxa);

}  // namespace plfoc
