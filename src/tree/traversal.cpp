#include "tree/traversal.hpp"

#include <queue>

#include "util/checks.hpp"

namespace plfoc {

void plan_subtree(const Tree& tree, Orientation& orientation, NodeId node,
                  NodeId parent, bool full, std::vector<TraversalStep>& out) {
  if (tree.is_tip(node)) return;
  // Iterative post-order: a frame is expanded once (pushing children that
  // need work), then emitted. Recursion is avoided because caterpillar-ish
  // trees over thousands of taxa would produce deep stacks.
  struct Frame {
    NodeId node;
    NodeId parent;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({node, parent, false});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (tree.is_tip(frame.node)) continue;
    if (!full && orientation.valid_towards(frame.node, frame.parent)) continue;
    if (!frame.expanded) {
      stack.push_back({frame.node, frame.parent, true});
      for (NodeId nbr : tree.neighbors(frame.node))
        if (nbr != frame.parent) stack.push_back({nbr, frame.node, false});
    } else {
      NodeId children[2];
      int count = 0;
      for (NodeId nbr : tree.neighbors(frame.node))
        if (nbr != frame.parent) children[count++] = nbr;
      PLFOC_CHECK(count == 2);
      out.push_back({frame.node, children[0], children[1],
                     tree.branch_length(frame.node, children[0]),
                     tree.branch_length(frame.node, children[1])});
      orientation.set(frame.node, frame.parent);
    }
  }
}

std::vector<TraversalStep> plan_for_branch(const Tree& tree,
                                           Orientation& orientation, NodeId a,
                                           NodeId b, bool full) {
  PLFOC_CHECK(tree.has_edge(a, b));
  std::vector<TraversalStep> out;
  plan_subtree(tree, orientation, a, b, full, out);
  plan_subtree(tree, orientation, b, a, full, out);
  return out;
}

namespace {

/// Invalidate every vector whose summarised subtree contains `origin`,
/// excluding `origin` itself (callers decide what happens to it). A vector at
/// inner node u, oriented towards o_u, summarises the subtree *away* from
/// o_u; it contains `origin` iff the walk from `origin` reaches u through a
/// neighbour other than o_u. BFS tracking the arrival direction gives the
/// exact stale set in O(nodes).
void invalidate_containing(const Tree& tree, Orientation& orientation,
                           NodeId origin) {
  std::queue<std::pair<NodeId, NodeId>> queue;  // (node, arrived_from)
  for (NodeId nbr : tree.neighbors(origin)) queue.emplace(nbr, origin);
  while (!queue.empty()) {
    const auto [node, from] = queue.front();
    queue.pop();
    if (tree.is_inner(node) && orientation.towards(node) != from)
      orientation.invalidate(node);
    for (NodeId nbr : tree.neighbors(node))
      if (nbr != from) queue.emplace(nbr, node);
  }
}

}  // namespace

void invalidate_for_change(const Tree& tree, Orientation& orientation,
                           NodeId changed_at) {
  // The node's own adjacency changed, so whatever its vector summarised is
  // gone regardless of orientation.
  if (tree.is_inner(changed_at)) orientation.invalidate(changed_at);
  invalidate_containing(tree, orientation, changed_at);
}

void invalidate_for_length_change(const Tree& tree, Orientation& orientation,
                                  NodeId a, NodeId b) {
  PLFOC_CHECK(tree.has_edge(a, b));
  // a's vector includes branch (a, b) unless it is oriented towards b; the
  // BFS from a covers b and everything else with the standard rule.
  if (tree.is_inner(a) && orientation.towards(a) != b)
    orientation.invalidate(a);
  invalidate_containing(tree, orientation, a);
}

}  // namespace plfoc
