#include "tree/tree.hpp"

#include <cmath>
#include <queue>

#include "util/checks.hpp"

namespace plfoc {

Tree::Tree(std::vector<std::string> taxon_names)
    : num_taxa_(taxon_names.size()), names_(std::move(taxon_names)) {
  PLFOC_REQUIRE(num_taxa_ >= 3,
                "an unrooted binary tree needs at least 3 taxa");
  nodes_.resize(num_nodes());
}

std::uint32_t Tree::inner_index(NodeId node) const {
  PLFOC_DCHECK(is_inner(node));
  return node - static_cast<NodeId>(num_taxa_);
}

NodeId Tree::inner_node(std::uint32_t inner_idx) const {
  PLFOC_DCHECK(inner_idx < num_inner());
  return static_cast<NodeId>(num_taxa_) + inner_idx;
}

const std::string& Tree::taxon_name(NodeId tip) const {
  PLFOC_CHECK(is_tip(tip));
  return names_[tip];
}

NodeId Tree::find_taxon(std::string_view name) const {
  for (std::size_t i = 0; i < num_taxa_; ++i)
    if (names_[i] == name) return static_cast<NodeId>(i);
  return kNoNode;
}

std::span<const NodeId> Tree::neighbors(NodeId node) const {
  PLFOC_DCHECK(node < num_nodes());
  const Slots& s = nodes_[node];
  return {s.nbr.data(), s.count};
}

std::size_t Tree::degree(NodeId node) const {
  PLFOC_DCHECK(node < num_nodes());
  return nodes_[node].count;
}

int Tree::slot_of(NodeId node, NodeId neighbor) const {
  const Slots& s = nodes_[node];
  for (int i = 0; i < s.count; ++i)
    if (s.nbr[static_cast<std::size_t>(i)] == neighbor) return i;
  return -1;
}

bool Tree::has_edge(NodeId a, NodeId b) const {
  PLFOC_DCHECK(a < num_nodes() && b < num_nodes());
  return slot_of(a, b) >= 0;
}

double Tree::branch_length(NodeId a, NodeId b) const {
  const int slot = slot_of(a, b);
  PLFOC_CHECK(slot >= 0);
  return nodes_[a].len[static_cast<std::size_t>(slot)];
}

void Tree::set_branch_length(NodeId a, NodeId b, double length) {
  PLFOC_CHECK(std::isfinite(length) && length > 0.0);
  const int sa = slot_of(a, b);
  const int sb = slot_of(b, a);
  PLFOC_CHECK(sa >= 0 && sb >= 0);
  nodes_[a].len[static_cast<std::size_t>(sa)] = length;
  nodes_[b].len[static_cast<std::size_t>(sb)] = length;
}

void Tree::connect(NodeId a, NodeId b, double length) {
  PLFOC_CHECK(a < num_nodes() && b < num_nodes() && a != b);
  PLFOC_CHECK(std::isfinite(length) && length > 0.0);
  PLFOC_CHECK(slot_of(a, b) < 0);
  PLFOC_CHECK(nodes_[a].count < max_degree(a));
  PLFOC_CHECK(nodes_[b].count < max_degree(b));
  auto attach = [length](Slots& s, NodeId other) {
    s.nbr[s.count] = other;
    s.len[s.count] = length;
    ++s.count;
  };
  attach(nodes_[a], b);
  attach(nodes_[b], a);
}

void Tree::disconnect(NodeId a, NodeId b) {
  auto detach = [this](NodeId node, NodeId other) {
    const int slot = slot_of(node, other);
    PLFOC_CHECK(slot >= 0);
    Slots& s = nodes_[node];
    // Keep remaining neighbours compact; order may change, which is fine —
    // nothing in the library depends on neighbour order.
    const std::size_t last = static_cast<std::size_t>(s.count - 1);
    s.nbr[static_cast<std::size_t>(slot)] = s.nbr[last];
    s.len[static_cast<std::size_t>(slot)] = s.len[last];
    s.nbr[last] = kNoNode;
    s.len[last] = 0.0;
    --s.count;
  };
  detach(a, b);
  detach(b, a);
}

bool Tree::is_fully_connected() const {
  for (NodeId node = 0; node < num_nodes(); ++node)
    if (degree(node) != max_degree(node)) return false;
  return true;
}

void Tree::validate() const {
  PLFOC_CHECK(is_fully_connected());
  // Symmetry of adjacency and lengths.
  for (NodeId node = 0; node < num_nodes(); ++node) {
    for (NodeId nbr : neighbors(node)) {
      PLFOC_CHECK(nbr < num_nodes());
      PLFOC_CHECK(slot_of(nbr, node) >= 0);
      const double forward = branch_length(node, nbr);
      const double backward = branch_length(nbr, node);
      PLFOC_CHECK(forward == backward);
      PLFOC_CHECK(std::isfinite(forward) && forward > 0.0);
    }
  }
  // Connectivity: BFS from node 0 must reach all 2n-2 nodes.
  std::vector<bool> seen(num_nodes(), false);
  std::queue<NodeId> queue;
  queue.push(0);
  seen[0] = true;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop();
    ++reached;
    for (NodeId nbr : neighbors(node))
      if (!seen[nbr]) {
        seen[nbr] = true;
        queue.push(nbr);
      }
  }
  PLFOC_CHECK(reached == num_nodes());
}

std::pair<NodeId, NodeId> Tree::default_root_branch() const {
  PLFOC_CHECK(is_fully_connected());
  for (NodeId node = static_cast<NodeId>(num_taxa_); node < num_nodes(); ++node)
    for (NodeId nbr : neighbors(node))
      if (is_inner(nbr)) return {node, nbr};
  // 3-taxon tree: single inner node, all neighbours are tips.
  const NodeId inner = static_cast<NodeId>(num_taxa_);
  return {inner, neighbors(inner)[0]};
}

std::vector<std::pair<NodeId, NodeId>> Tree::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId node = 0; node < num_nodes(); ++node)
    for (NodeId nbr : neighbors(node))
      if (node < nbr) out.emplace_back(node, nbr);
  return out;
}

}  // namespace plfoc
