#include "tree/compare.hpp"

#include <algorithm>

#include "util/checks.hpp"

namespace plfoc {
namespace {

/// Taxa below `node` seen from `parent`, as a bitset over taxon_index.
void collect_side(const Tree& tree, NodeId node, NodeId parent,
                  const std::vector<std::size_t>& taxon_index, Split& out) {
  if (tree.is_tip(node)) {
    const std::size_t bit = taxon_index[node];
    out[bit / 64] |= std::uint64_t{1} << (bit % 64);
    return;
  }
  for (NodeId nbr : tree.neighbors(node))
    if (nbr != parent) collect_side(tree, nbr, node, taxon_index, out);
}

}  // namespace

std::vector<Split> tree_splits(const Tree& tree,
                               const std::vector<std::string>& taxon_order) {
  PLFOC_REQUIRE(taxon_order.size() == tree.num_taxa(),
                "tree_splits: taxon count mismatch");
  // Map tree tip ids to positions in the reference order.
  std::vector<std::size_t> taxon_index(tree.num_taxa());
  for (NodeId tip = 0; tip < tree.num_taxa(); ++tip) {
    const auto it = std::find(taxon_order.begin(), taxon_order.end(),
                              tree.taxon_name(tip));
    PLFOC_REQUIRE(it != taxon_order.end(),
                  "tree_splits: taxon '" + tree.taxon_name(tip) +
                      "' missing from the reference order");
    taxon_index[tip] =
        static_cast<std::size_t>(std::distance(taxon_order.begin(), it));
  }

  const std::size_t blocks = (tree.num_taxa() + 63) / 64;
  // Full mask for complementing (trailing bits beyond n stay zero).
  Split full(blocks, 0);
  for (std::size_t i = 0; i < tree.num_taxa(); ++i)
    full[i / 64] |= std::uint64_t{1} << (i % 64);

  std::vector<Split> splits;
  for (const auto& [a, b] : tree.edges()) {
    if (!tree.is_inner(a) || !tree.is_inner(b)) continue;  // trivial split
    Split side(blocks, 0);
    collect_side(tree, a, b, taxon_index, side);
    // Normalise: the block containing taxon_order[0]'s bit must be clear.
    if (side[0] & 1u)
      for (std::size_t k = 0; k < blocks; ++k) side[k] = full[k] & ~side[k];
    splits.push_back(std::move(side));
  }
  std::sort(splits.begin(), splits.end());
  return splits;
}

unsigned robinson_foulds(const Tree& a, const Tree& b) {
  PLFOC_REQUIRE(a.num_taxa() == b.num_taxa(),
                "robinson_foulds: trees have different taxon counts");
  std::vector<std::string> order;
  order.reserve(a.num_taxa());
  for (NodeId tip = 0; tip < a.num_taxa(); ++tip)
    order.push_back(a.taxon_name(tip));
  const std::vector<Split> sa = tree_splits(a, order);
  const std::vector<Split> sb = tree_splits(b, order);  // throws on mismatch
  // Symmetric difference of two sorted sets.
  unsigned distance = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++distance;
      ++i;
    } else {
      ++distance;
      ++j;
    }
  }
  distance += static_cast<unsigned>((sa.size() - i) + (sb.size() - j));
  return distance;
}

double normalized_robinson_foulds(const Tree& a, const Tree& b) {
  PLFOC_REQUIRE(a.num_taxa() >= 4,
                "normalized RF needs at least 4 taxa (no inner edges below)");
  const double max_rf = 2.0 * (static_cast<double>(a.num_taxa()) - 3.0);
  return static_cast<double>(robinson_foulds(a, b)) / max_rf;
}

}  // namespace plfoc
