#include "tree/newick.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/checks.hpp"

namespace plfoc {
namespace {

struct ParsedNode {
  std::string label;
  double length = kDefaultBranchLength;
  std::vector<std::size_t> children;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Returns the index of the root ParsedNode.
  std::size_t run() {
    skip_space();
    const std::size_t root = parse_node();
    skip_space();
    PLFOC_REQUIRE(pos_ < text_.size() && text_[pos_] == ';',
                  "Newick: expected ';' at end of tree");
    return root;
  }

  std::vector<ParsedNode>& nodes() { return nodes_; }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::size_t parse_node() {
    skip_space();
    const std::size_t node = nodes_.size();
    nodes_.emplace_back();
    if (peek() == '(') {
      ++pos_;  // '('
      for (;;) {
        const std::size_t child = parse_node();
        nodes_[node].children.push_back(child);
        skip_space();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      PLFOC_REQUIRE(peek() == ')', "Newick: expected ')'");
      ++pos_;
    }
    skip_space();
    nodes_[node].label = parse_label();
    skip_space();
    if (peek() == ':') {
      ++pos_;
      nodes_[node].length = parse_number();
    }
    return node;
  }

  std::string parse_label() {
    std::string label;
    if (peek() == '\'') {  // quoted label
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'')
        label.push_back(text_[pos_++]);
      PLFOC_REQUIRE(peek() == '\'', "Newick: unterminated quoted label");
      ++pos_;
      return label;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ':' || c == ',' || c == ')' || c == '(' || c == ';' ||
          std::isspace(static_cast<unsigned char>(c)))
        break;
      label.push_back(c);
      ++pos_;
    }
    return label;
  }

  double parse_number() {
    skip_space();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    PLFOC_REQUIRE(ec == std::errc() && ptr != begin,
                  "Newick: malformed branch length");
    pos_ += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::vector<ParsedNode> nodes_;
};

double sanitize_length(double length) {
  // Zero / missing / negative lengths are clamped to a tiny positive value;
  // the PLF requires strictly positive branch lengths.
  constexpr double kMin = 1e-8;
  return (length > kMin) ? length : kMin;
}

}  // namespace

Tree parse_newick(const std::string& text) {
  Parser parser(text);
  const std::size_t root = parser.run();
  auto& nodes = parser.nodes();

  std::vector<std::string> taxon_names;
  for (const ParsedNode& node : nodes)
    if (node.children.empty()) {
      PLFOC_REQUIRE(!node.label.empty(), "Newick: unnamed leaf");
      taxon_names.push_back(node.label);
    }
  PLFOC_REQUIRE(taxon_names.size() >= 3, "Newick: need at least 3 taxa");
  for (std::size_t i = 0; i < taxon_names.size(); ++i)
    for (std::size_t j = i + 1; j < taxon_names.size(); ++j)
      PLFOC_REQUIRE(taxon_names[i] != taxon_names[j],
                    "Newick: duplicate taxon '" + taxon_names[i] + "'");

  Tree tree(taxon_names);

  // Map ParsedNode index -> NodeId, assigning tips and inner nodes in
  // encounter order. A rooted (2-child) outermost node is suppressed.
  const bool rooted = nodes[root].children.size() == 2;
  PLFOC_REQUIRE(nodes[root].children.size() == 3 || rooted,
                "Newick: outermost node must have 2 or 3 children "
                "(strictly bifurcating trees only)");

  std::vector<NodeId> id_of(nodes.size(), kNoNode);
  NodeId next_tip = 0;
  NodeId next_inner = static_cast<NodeId>(tree.num_taxa());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (rooted && i == root) continue;  // suppressed
    if (nodes[i].children.empty()) {
      id_of[i] = next_tip++;
    } else {
      PLFOC_REQUIRE(i == root || nodes[i].children.size() == 2,
                    "Newick: multifurcating inner node (strictly bifurcating "
                    "trees only)");
      PLFOC_REQUIRE(next_inner < tree.num_nodes(),
                    "Newick: tree has more inner nodes than 2n-2 allows");
      id_of[i] = next_inner++;
    }
  }
  PLFOC_REQUIRE(next_inner == tree.num_nodes(),
                "Newick: inner node count mismatch (tree not binary?)");

  // Wire child edges.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (rooted && i == root) continue;
    for (std::size_t child : nodes[i].children)
      tree.connect(id_of[i], id_of[child],
                   sanitize_length(nodes[child].length));
  }
  if (rooted) {
    const std::size_t a = nodes[root].children[0];
    const std::size_t b = nodes[root].children[1];
    tree.connect(id_of[a], id_of[b],
                 sanitize_length(nodes[a].length + nodes[b].length));
  }
  tree.validate();
  return tree;
}

Tree read_newick_file(const std::string& path) {
  std::ifstream in(path);
  PLFOC_REQUIRE(in.good(), "cannot open Newick file '" + path + "'");
  std::string text;
  std::getline(in, text, ';');
  text.push_back(';');
  return parse_newick(text);
}

namespace {

void append_subtree(std::ostream& out, const Tree& tree, NodeId node,
                    NodeId parent, int precision) {
  if (tree.is_tip(node)) {
    out << tree.taxon_name(node);
  } else {
    out << '(';
    bool first = true;
    for (NodeId nbr : tree.neighbors(node)) {
      if (nbr == parent) continue;
      if (!first) out << ',';
      first = false;
      append_subtree(out, tree, nbr, node, precision);
    }
    out << ')';
  }
  out.precision(precision);
  out << ':' << tree.branch_length(node, parent);
}

}  // namespace

std::string to_newick(const Tree& tree, int precision) {
  const NodeId root = tree.default_root_branch().first;
  std::ostringstream out;
  out << '(';
  bool first = true;
  for (NodeId nbr : tree.neighbors(root)) {
    if (!first) out << ',';
    first = false;
    append_subtree(out, tree, nbr, root, precision);
  }
  out << ");";
  return out.str();
}

void write_newick_file(const std::string& path, const Tree& tree) {
  std::ofstream out(path);
  PLFOC_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << to_newick(tree) << '\n';
}

}  // namespace plfoc
