#include "tree/phylo2vec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ooc/file_backend.hpp"
#include "util/checks.hpp"

namespace plfoc {
namespace {

// Seed for the taxon-set digest; an arbitrary constant that keeps the
// digest domain-separated from the vector-file checksum streams.
constexpr std::uint64_t kTaxaDigestSeed = 0x5048594c4f325641ull;

/// Sorted taxon names + the tip-id <-> rank maps for one tree. Canonical
/// leaf label = rank of the taxon name in sorted order.
struct LeafRanks {
  std::vector<std::string> sorted_names;
  std::vector<NodeId> rank_of_tip;  // tree tip id -> canonical label
  std::vector<NodeId> tip_of_rank;  // canonical label -> tree tip id
};

LeafRanks rank_leaves(const Tree& tree) {
  const std::size_t n = tree.num_taxa();
  LeafRanks ranks;
  ranks.sorted_names.reserve(n);
  for (NodeId tip = 0; tip < n; ++tip)
    ranks.sorted_names.push_back(tree.taxon_name(tip));
  std::sort(ranks.sorted_names.begin(), ranks.sorted_names.end());
  for (std::size_t i = 0; i + 1 < n; ++i) {
    PLFOC_REQUIRE(ranks.sorted_names[i] != ranks.sorted_names[i + 1],
                  "phylo2vec: duplicate taxon name '" + ranks.sorted_names[i] +
                      "'");
  }
  ranks.rank_of_tip.resize(n);
  ranks.tip_of_rank.resize(n);
  for (NodeId tip = 0; tip < n; ++tip) {
    const auto it =
        std::lower_bound(ranks.sorted_names.begin(), ranks.sorted_names.end(),
                         tree.taxon_name(tip));
    const NodeId rank =
        static_cast<NodeId>(it - ranks.sorted_names.begin());
    ranks.rank_of_tip[tip] = rank;
    ranks.tip_of_rank[rank] = tip;
  }
  return ranks;
}

/// Swap `from` for `to` in a two-slot child array.
void replace_child(std::array<NodeId, 2>& slots, NodeId from, NodeId to) {
  if (slots[0] == from) {
    slots[0] = to;
  } else {
    PLFOC_CHECK(slots[1] == from);
    slots[1] = to;
  }
}

}  // namespace

Phylo2Vec phylo2vec_encode(const Tree& tree) {
  const std::size_t n = tree.num_taxa();
  PLFOC_REQUIRE(n >= 3, "phylo2vec: need at least 3 taxa");
  PLFOC_REQUIRE(tree.is_fully_connected(),
                "phylo2vec: tree is not fully connected");
  const LeafRanks ranks = rank_leaves(tree);

  // Rooted view of the unrooted tree: the synthetic root R subdivides the
  // pendant edge of the rank-0 taxon. Handles are the tree's own NodeIds
  // plus R = num_nodes(); every node except R has a parent and a
  // parent-edge length (the lengths of R's two children are jointly the
  // merged pendant edge, recorded separately).
  const NodeId root = static_cast<NodeId>(tree.num_nodes());
  const std::size_t handles = tree.num_nodes() + 1;
  std::vector<NodeId> parent(handles, kNoNode);
  std::vector<std::array<NodeId, 2>> children(
      handles, std::array<NodeId, 2>{kNoNode, kNoNode});
  std::vector<double> parent_len(handles, 0.0);

  const NodeId leaf0 = ranks.tip_of_rank[0];
  const NodeId anchor = tree.neighbors(leaf0)[0];  // inner for n >= 3
  parent[leaf0] = root;
  parent[anchor] = root;
  children[root] = {leaf0, anchor};
  const double root_edge_len = tree.branch_length(leaf0, anchor);

  // Orient everything below `anchor` away from the pendant edge.
  std::vector<std::pair<NodeId, NodeId>> stack;  // (node, neighbor toward R)
  stack.emplace_back(anchor, leaf0);
  while (!stack.empty()) {
    const auto [node, toward_root] = stack.back();
    stack.pop_back();
    int slot = 0;
    for (const NodeId next : tree.neighbors(node)) {
      if (next == toward_root) continue;
      PLFOC_CHECK(slot < 2);
      children[node][slot++] = next;
      parent[next] = node;
      parent_len[next] = tree.branch_length(node, next);
      if (tree.is_inner(next)) stack.emplace_back(next, node);
    }
  }

  // Prune pass: detach leaves n-1 .. 2 (by canonical label). Leaf i's
  // parent at its prune step is exactly the internal node the growth
  // process created at step i, which assigns every internal node its
  // creation index; the final root R is c_1. The pruned leaf's sibling
  // determines v[i], but an internal sibling's creation index is only
  // known once the whole pass finishes — hence the second pass below.
  std::vector<NodeId> sibling_node(n, kNoNode);
  std::vector<std::uint32_t> creation_index(handles, 0);
  std::vector<NodeId> node_of_index(n, kNoNode);  // creation index -> node
  for (std::size_t i = n - 1; i >= 2; --i) {
    const NodeId leaf = ranks.tip_of_rank[i];
    const NodeId p = parent[leaf];
    PLFOC_CHECK(p != root && tree.is_inner(p));
    const NodeId sibling =
        children[p][0] == leaf ? children[p][1] : children[p][0];
    const NodeId grand = parent[p];
    sibling_node[i] = sibling;
    creation_index[p] = static_cast<std::uint32_t>(i);
    node_of_index[i] = p;
    replace_child(children[grand], p, sibling);
    parent[sibling] = grand;
  }
  creation_index[root] = 1;
  node_of_index[1] = root;

  Phylo2Vec out;
  out.taxa = ranks.sorted_names;
  out.v.assign(n, 0);
  for (std::size_t i = 2; i < n; ++i) {
    const NodeId sibling = sibling_node[i];
    if (tree.is_tip(sibling)) {
      out.v[i] = ranks.rank_of_tip[sibling];
    } else {
      PLFOC_CHECK(creation_index[sibling] != 0 && creation_index[sibling] < i);
      out.v[i] =
          static_cast<std::uint32_t>(i) + creation_index[sibling] - 1;
    }
    PLFOC_DCHECK(out.v[i] <= 2 * i - 2);
  }

  // Canonical length order: merged root edge, then parent edges for leaves
  // by rank and internals by creation index, skipping the root and its two
  // children (leaf 0 and the anchor, whose half edges are entry 0).
  out.lengths.reserve(2 * n - 3);
  out.lengths.push_back(root_edge_len);
  for (std::size_t r = 1; r < n; ++r)
    out.lengths.push_back(parent_len[ranks.tip_of_rank[r]]);
  for (std::size_t j = 2; j < n; ++j) {
    const NodeId node = node_of_index[j];
    if (node == anchor) continue;
    out.lengths.push_back(parent_len[node]);
  }
  PLFOC_CHECK(out.lengths.size() == 2 * n - 3);
  return out;
}

void phylo2vec_validate(const Phylo2Vec& encoding) {
  const std::size_t n = encoding.v.size();
  PLFOC_REQUIRE(n >= 3, "phylo2vec: need at least 3 taxa");
  PLFOC_REQUIRE(encoding.taxa.size() == n,
                "phylo2vec: taxa/vector size mismatch");
  for (std::size_t i = 0; i + 1 < n; ++i) {
    PLFOC_REQUIRE(encoding.taxa[i] < encoding.taxa[i + 1],
                  "phylo2vec: taxa must be unique and sorted");
  }
  PLFOC_REQUIRE(encoding.v[0] == 0 && encoding.v[1] == 0,
                "phylo2vec: v[0] and v[1] must be 0");
  for (std::size_t i = 2; i < n; ++i) {
    PLFOC_REQUIRE(encoding.v[i] <= 2 * i - 2,
                  "phylo2vec: v entry out of range");
  }
  PLFOC_REQUIRE(encoding.lengths.size() == 2 * n - 3,
                "phylo2vec: need 2n-3 branch lengths");
  for (const double len : encoding.lengths) {
    PLFOC_REQUIRE(std::isfinite(len) && len > 0.0,
                  "phylo2vec: branch lengths must be positive and finite");
  }
}

Tree phylo2vec_decode(const Phylo2Vec& encoding) {
  phylo2vec_validate(encoding);
  const std::size_t n = encoding.v.size();

  // Grow the rooted tree. Handles: leaves 0..n-1 (canonical labels),
  // internal c_j -> n-1+j for creation index j in 1..n-1.
  const auto inner = [n](std::size_t j) {
    return static_cast<NodeId>(n - 1 + j);
  };
  const std::size_t handles = 2 * n;  // leaves + internals + 1 spare slot
  std::vector<NodeId> parent(handles, kNoNode);
  std::vector<std::array<NodeId, 2>> children(
      handles, std::array<NodeId, 2>{kNoNode, kNoNode});

  NodeId root = inner(1);
  children[root] = {0, 1};
  parent[0] = root;
  parent[1] = root;
  for (std::size_t i = 2; i < n; ++i) {
    const std::uint32_t name = encoding.v[i];
    // name < i: the edge above leaf `name`; otherwise the edge above the
    // internal created at step name-i+1 (the current root's virtual parent
    // edge included, in which case the new node becomes the root).
    const NodeId below =
        name < i ? static_cast<NodeId>(name) : inner(name - i + 1);
    const NodeId fresh = inner(i);
    const NodeId above = parent[below];
    if (above == kNoNode) {
      root = fresh;
    } else {
      replace_child(children[above], below, fresh);
    }
    parent[fresh] = above;
    children[fresh] = {below, static_cast<NodeId>(i)};
    parent[below] = fresh;
    parent[static_cast<NodeId>(i)] = fresh;
  }

  // Distribute branch lengths by the canonical order (see encode).
  const NodeId child_a = children[root][0];
  const NodeId child_b = children[root][1];
  std::vector<double> parent_len(handles, 0.0);
  std::size_t next = 1;
  for (std::size_t r = 0; r < n; ++r) {
    const NodeId leaf = static_cast<NodeId>(r);
    if (leaf == child_a || leaf == child_b) continue;
    parent_len[leaf] = encoding.lengths[next++];
  }
  for (std::size_t j = 1; j < n; ++j) {
    const NodeId node = inner(j);
    if (node == root || node == child_a || node == child_b) continue;
    parent_len[node] = encoding.lengths[next++];
  }
  PLFOC_CHECK(next == encoding.lengths.size());

  // Suppress the root into an unrooted plfoc::Tree: tips keep their
  // canonical labels (taxa are sorted, so tip id == rank), non-root
  // internals map to n..2n-3 in creation-index order, and the root's two
  // child edges merge into one edge carrying lengths[0].
  Tree tree(encoding.taxa);
  std::vector<NodeId> mapped(handles, kNoNode);
  for (std::size_t r = 0; r < n; ++r)
    mapped[r] = static_cast<NodeId>(r);
  NodeId next_inner = static_cast<NodeId>(n);
  for (std::size_t j = 1; j < n; ++j) {
    if (inner(j) == root) continue;
    mapped[inner(j)] = next_inner++;
  }
  PLFOC_CHECK(next_inner == tree.num_nodes());

  for (std::size_t h = 0; h < handles; ++h) {
    const NodeId node = static_cast<NodeId>(h);
    if (mapped[node] == kNoNode || node == root) continue;
    if (node == child_a || node == child_b) continue;
    tree.connect(mapped[node], mapped[parent[node]], parent_len[node]);
  }
  tree.connect(mapped[child_a], mapped[child_b], encoding.lengths[0]);
  tree.validate();
  return tree;
}

Tree phylo2vec_canonical(const Tree& tree) {
  return phylo2vec_decode(phylo2vec_encode(tree));
}

std::uint64_t phylo2vec_taxa_digest(const std::vector<std::string>& taxa) {
  std::vector<std::string> sorted = taxa;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t digest = mix64(kTaxaDigestSeed ^ sorted.size());
  for (const std::string& name : sorted)
    digest = checksum64(mix64(digest), name.data(), name.size());
  return digest;
}

}  // namespace plfoc
