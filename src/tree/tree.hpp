// Unrooted binary (strictly bifurcating) phylogenetic trees.
//
// Node numbering follows the RAxML convention the paper relies on: over n
// taxa there are n tip nodes (ids 0..n-1) and n-2 inner nodes
// (ids n..2n-3). Each inner node owns one ancestral probability vector; the
// out-of-core layer addresses vectors by `inner_index(node) = node - n`
// (0..n-3). Tips have exactly one neighbour, inner nodes exactly three.
//
// Branch lengths are stored symmetrically on both directed half-edges, so
// `branch_length(a, b) == branch_length(b, a)` always holds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace plfoc {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

class Tree {
 public:
  /// An unconnected forest of n tips and n-2 inner nodes; callers (Newick
  /// parser, random generator, stepwise addition) wire up edges.
  explicit Tree(std::vector<std::string> taxon_names);

  std::size_t num_taxa() const { return num_taxa_; }
  std::size_t num_inner() const { return num_taxa_ - 2; }
  std::size_t num_nodes() const { return 2 * num_taxa_ - 2; }
  /// Edges in a fully connected unrooted binary tree: 2n - 3.
  std::size_t num_edges() const { return 2 * num_taxa_ - 3; }

  bool is_tip(NodeId node) const { return node < num_taxa_; }
  bool is_inner(NodeId node) const {
    return node >= num_taxa_ && node < num_nodes();
  }
  /// Dense 0-based index of an inner node (its ancestral-vector id).
  std::uint32_t inner_index(NodeId node) const;
  NodeId inner_node(std::uint32_t inner_idx) const;

  const std::string& taxon_name(NodeId tip) const;
  /// Tip id for a taxon name, or kNoNode.
  NodeId find_taxon(std::string_view name) const;

  /// Current neighbours of a node (0..3 entries; order is wiring order).
  std::span<const NodeId> neighbors(NodeId node) const;
  std::size_t degree(NodeId node) const;
  bool has_edge(NodeId a, NodeId b) const;

  double branch_length(NodeId a, NodeId b) const;
  void set_branch_length(NodeId a, NodeId b, double length);

  /// Add edge (a, b) with the given length. Tips accept one edge, inner
  /// nodes three; violating that is a checked internal error.
  // plfoc-lint: allow(raw-socket): Tree::connect member decl, not connect(2)
  void connect(NodeId a, NodeId b, double length);
  /// Remove edge (a, b); the edge must exist.
  void disconnect(NodeId a, NodeId b);

  /// True once every tip has degree 1 and every inner node degree 3.
  bool is_fully_connected() const;

  /// Checked structural validation: degrees, symmetry, connectivity, positive
  /// finite branch lengths. Aborts on violation (internal invariant).
  void validate() const;

  /// Some canonical inner branch (both endpoints inner) to place the virtual
  /// root on; falls back to any branch for 3-taxon trees.
  std::pair<NodeId, NodeId> default_root_branch() const;

  /// All undirected edges as (a, b) pairs with a < b.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  struct Slots {
    std::array<NodeId, 3> nbr{kNoNode, kNoNode, kNoNode};
    std::array<double, 3> len{0.0, 0.0, 0.0};
    std::uint8_t count = 0;
  };

  int slot_of(NodeId node, NodeId neighbor) const;
  std::size_t max_degree(NodeId node) const { return is_tip(node) ? 1 : 3; }

  std::size_t num_taxa_;
  std::vector<std::string> names_;
  std::vector<Slots> nodes_;
};

}  // namespace plfoc
