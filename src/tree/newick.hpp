// Newick tree serialisation.
//
// The parser accepts strictly bifurcating trees, either in unrooted form
// (trifurcation at the outermost level) or rooted form (bifurcation, which is
// collapsed into a single branch, making the tree unrooted). Taxon tip ids
// are assigned in order of appearance in the string.
#pragma once

#include <string>

#include "tree/tree.hpp"

namespace plfoc {

inline constexpr double kDefaultBranchLength = 0.1;

/// Parse a Newick string ("(...);"). Throws plfoc::Error on malformed input,
/// multifurcations (other than the outermost trifurcation), duplicate taxon
/// names, or fewer than 3 taxa. Missing branch lengths get
/// kDefaultBranchLength.
Tree parse_newick(const std::string& text);

/// Read a Newick tree from a file (the first ';'-terminated tree in it).
Tree read_newick_file(const std::string& path);

/// Serialise as unrooted Newick with a trifurcation at an inner node.
std::string to_newick(const Tree& tree, int precision = 9);

void write_newick_file(const std::string& path, const Tree& tree);

}  // namespace plfoc
