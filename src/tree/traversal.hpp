// Traversal descriptors: the precomputed vector-access plans of the PLF.
//
// The likelihood of a tree is computed by Felsenstein's pruning algorithm:
// a post-order sweep that combines the two child vectors of each inner node
// (Sec. 3.1 of the paper). RAxML materialises the sweep as a *traversal
// descriptor* — an ordered list of (parent, left, right) operations — before
// touching any vector. Two properties of the descriptor drive the whole
// out-of-core design:
//
//  * the access pattern is known a priori, so the first access to each
//    `parent` vector is write-only → its stale on-disk bytes need not be read
//    ("read skipping", Sec. 3.4);
//  * after local tree changes only a small suffix of vectors is stale, so
//    partial traversals touch few vectors → high access locality (Sec. 4.2).
//
// `Orientation` tracks, per inner node, which neighbour its current vector
// is conditioned "towards"; a vector is valid for a computation only if it is
// oriented towards that computation's root side and nothing below it changed.
#pragma once

#include <vector>

#include "tree/tree.hpp"
#include "util/checks.hpp"

namespace plfoc {

/// One pruning operation: recompute `parent`'s ancestral vector from the
/// vectors/tips `left` and `right` over the given branch lengths.
struct TraversalStep {
  NodeId parent;
  NodeId left;
  NodeId right;
  double length_left;
  double length_right;
};

/// Per-inner-node record of the direction the node's current ancestral
/// vector is conditioned towards (kNoNode = vector not valid).
class Orientation {
 public:
  explicit Orientation(const Tree& tree)
      : num_taxa_(static_cast<NodeId>(tree.num_taxa())),
        towards_(tree.num_inner(), kNoNode) {}

  NodeId towards(NodeId inner_node) const {
    return towards_[index(inner_node)];
  }
  void set(NodeId inner_node, NodeId parent) {
    towards_[index(inner_node)] = parent;
  }
  void invalidate(NodeId inner_node) { set(inner_node, kNoNode); }
  void invalidate_all() {
    for (NodeId& t : towards_) t = kNoNode;
  }
  bool valid_towards(NodeId inner_node, NodeId parent) const {
    return towards(inner_node) == parent;
  }

 private:
  std::size_t index(NodeId inner_node) const {
    PLFOC_DCHECK(inner_node >= num_taxa_);
    return inner_node - num_taxa_;
  }

  NodeId num_taxa_;
  std::vector<NodeId> towards_;
};

/// Append (post-order) the steps required so that `node`'s vector is valid
/// towards `parent`. With `full`, every inner node in the subtree is
/// recomputed regardless of current orientation (the paper's worst-case full
/// tree traversal, `-f z`). Updates `orientation` as steps are planned.
void plan_subtree(const Tree& tree, Orientation& orientation, NodeId node,
                  NodeId parent, bool full, std::vector<TraversalStep>& out);

/// Plan so that the likelihood can be evaluated across branch (a, b): both
/// endpoint vectors valid towards each other.
std::vector<TraversalStep> plan_for_branch(const Tree& tree,
                                           Orientation& orientation, NodeId a,
                                           NodeId b, bool full = false);

/// After a topological change touching `changed_at` (a node whose adjacency
/// was edited), invalidate exactly those ancestral vectors whose summarised
/// subtree contains `changed_at`. O(nodes) walk, no vector I/O.
void invalidate_for_change(const Tree& tree, Orientation& orientation,
                           NodeId changed_at);

/// After changing the *length* of branch (a, b) (topology unchanged),
/// invalidate exactly the vectors whose summarised subtree contains that
/// branch. The endpoint vectors conditioned away from the branch stay valid.
void invalidate_for_length_change(const Tree& tree, Orientation& orientation,
                                  NodeId a, NodeId b);

}  // namespace plfoc
