#include "tree/distances.hpp"

#include <limits>
#include <queue>

#include "util/checks.hpp"

namespace plfoc {

std::vector<std::uint32_t> node_distances(const Tree& tree, NodeId source) {
  PLFOC_CHECK(source < tree.num_nodes());
  constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(tree.num_nodes(), kUnreached);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop();
    for (NodeId nbr : tree.neighbors(node))
      if (dist[nbr] == kUnreached) {
        dist[nbr] = dist[node] + 1;
        queue.push(nbr);
      }
  }
  return dist;
}

std::uint32_t node_distance(const Tree& tree, NodeId a, NodeId b) {
  return node_distances(tree, a)[b];
}

}  // namespace plfoc
