#include "cli/driver.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <optional>
#include <ostream>

#include "likelihood/checkpoint.hpp"
#include "likelihood/model_opt.hpp"
#include "msa/fasta.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "msa/phylip.hpp"
#include "search/mcmc.hpp"
#include "search/search.hpp"
#include "search/stepwise.hpp"
#include "service/jobfile.hpp"
#include "service/service.hpp"
#include "session.hpp"
#include "tree/newick.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

namespace plfoc {
namespace {

const char* backend_label(Backend backend) {
  switch (backend) {
    case Backend::kInRam: return "inram";
    case Backend::kOutOfCore: return "ooc";
    case Backend::kPaged: return "paged";
    case Backend::kTiered: return "tiered";
    case Backend::kMmap: return "mmap";
  }
  return "?";
}

}  // namespace

CliConfig parse_cli(int argc, const char* const* argv) {
  CliConfig config;
  ArgParser parser(
      "plfoc", "compute the phylogenetic likelihood function out-of-core");
  parser.add_string("msa", &config.msa_path, "alignment file", true)
      .add_string("format", &config.format, "alignment format: fasta | phylip")
      .add_string("data-type", &config.data_type, "dna | protein")
      .add_string("tree", &config.tree_path,
                  "Newick starting tree (default: stepwise addition)")
      .add_string("model", &config.model, "jc | k80 | hky | gtr | poisson")
      .add_double("kappa", &config.kappa, "transition/transversion ratio")
      .add_uint("categories", &config.categories, "discrete-Γ categories")
      .add_double("alpha", &config.alpha, "initial Γ shape parameter")
      .add_string("backend", &config.backend,
                  "storage backend: inram | ooc | paged | tiered | mmap")
      .add_uint("memory-limit", &config.memory_limit,
                "ancestral-vector RAM budget in bytes (RAxML's -L)")
      .add_double("ram-fraction", &config.ram_fraction,
                  "fraction f of vectors kept in RAM (paper experiments)")
      .add_string("strategy", &config.strategy,
                  "replacement: random | lru | lfu | topological")
      .add_flag("no-read-skipping", &config.no_read_skipping,
                "disable the read-skipping optimisation")
      .add_string("vector-file", &config.vector_file,
                  "explicit backing file path (default: temp file)")
      .add_string("inject-faults", &config.inject_faults,
                  std::string("seeded I/O fault + corruption schedule: ") +
                      FaultConfig::grammar())
      .add_uint("io-retries", &config.io_retries,
                "transient I/O retry budget per transfer (0 = fail fast)")
      .add_flag("no-integrity", &config.no_integrity,
                "disable per-vector checksums and self-healing recovery")
      .add_string("io-engine", &config.io_engine,
                  "backing-file I/O engine: sync | threads | uring | "
                  "deterministic (uring degrades to threads when the host "
                  "lacks io_uring)")
      .add_uint("io-depth", &config.io_depth,
                "submission-queue depth for async I/O engines")
      .add_flag("direct-io", &config.direct_io,
                "route 512-byte-aligned transfers through O_DIRECT "
                "(best effort; misaligned transfers stay buffered)")
      .add_uint("threads", &config.threads,
                "kernel threads for block-parallel PLF kernels (1 = serial; "
                "logL is bit-identical for every value)")
      .add_string("mode", &config.mode,
                  "evaluate | search | traverse | mcmc")
      .add_uint("traversals", &config.traversals,
                "full traversals in traverse mode (paper's -f z)")
      .add_uint("spr-rounds", &config.spr_rounds, "SPR rounds in search mode")
      .add_uint("mcmc-iterations", &config.mcmc_iterations,
                "chain length in mcmc mode")
      .add_uint("seed", &config.seed, "random seed (full determinism)")
      .add_string("out-tree", &config.out_tree_path,
                  "write the final tree to this file")
      .add_string("save-checkpoint", &config.save_checkpoint_path,
                  "write a resumable checkpoint (tree + model) after the run")
      .add_string("load-checkpoint", &config.load_checkpoint_path,
                  "resume tree and model parameters from a checkpoint")
      .add_flag("stats", &config.print_stats, "print storage statistics");
  parser.parse(argc, argv);
  return config;
}

int run_cli(const CliConfig& config, std::ostream& out) {
  Timer total;
  const DataType data_type = parse_data_type_name(config.data_type);
  Alignment alignment = [&] {
    if (config.format == "fasta")
      return read_fasta_file(config.msa_path, data_type);
    if (config.format == "phylip")
      return read_phylip_file(config.msa_path, data_type);
    throw Error("unknown --format '" + config.format + "' (fasta | phylip)");
  }();
  out << "alignment: " << alignment.num_taxa() << " taxa x "
      << alignment.num_sites() << " sites (" << datatype_name(data_type)
      << ")\n";

  Rng rng(config.seed);
  std::optional<Checkpoint> resume;
  if (!config.load_checkpoint_path.empty())
    resume = load_checkpoint_file(config.load_checkpoint_path);

  Tree tree = [&] {
    if (resume.has_value()) {
      out << "resuming from checkpoint " << config.load_checkpoint_path
          << "\n";
      return restore_tree(*resume);
    }
    if (!config.tree_path.empty()) return read_newick_file(config.tree_path);
    out << "building stepwise-addition starting tree...\n";
    return stepwise_addition_tree(alignment, rng);
  }();
  PLFOC_REQUIRE(tree.num_taxa() == alignment.num_taxa(),
                "tree and alignment have different taxon counts");

  SubstitutionModel model =
      resume.has_value()
          ? resume->model
          : build_named_model(config.model, config.kappa, alignment);
  out << "model: " << model.name << " + G" << config.categories << "\n";

  SessionOptions options;
  options.categories = resume.has_value()
                           ? resume->categories
                           : static_cast<unsigned>(config.categories);
  options.alpha = resume.has_value() ? resume->alpha : config.alpha;
  options.backend = parse_backend_name(config.backend);
  options.ram_budget_bytes = config.memory_limit;
  options.ram_fraction = config.ram_fraction;
  options.policy = parse_policy(config.strategy);
  options.read_skipping = !config.no_read_skipping;
  options.seed = config.seed;
  options.vector_file = config.vector_file;
  if (!config.inject_faults.empty())
    options.faults = FaultConfig::parse(config.inject_faults);
  options.integrity = !config.no_integrity;
  options.io_retry.max_retries = static_cast<unsigned>(config.io_retries);
  options.io_engine = parse_aio_engine(config.io_engine);
  options.io_depth = static_cast<unsigned>(config.io_depth);
  options.direct_io = config.direct_io;
  options.threads = static_cast<unsigned>(config.threads);
  Session session(std::move(alignment), std::move(tree), std::move(model),
                  options);
  if (options.faults.enabled())
    out << "fault injection: " << options.faults.spec() << " (retries "
        << config.io_retries << ")\n";
  out << "backend: " << session.store().backend_name() << " ("
      << session.patterns() << " patterns, vector width "
      << session.vector_width() * sizeof(double) << " B)\n";
  if (options.io_engine != AioEngineKind::kSync) {
    // Report the engine that actually got built (uring degrades to the
    // thread pool on hosts without io_uring support).
    const FileBackend* backing = nullptr;
    if (const OutOfCoreStore* ooc = session.out_of_core())
      backing = &ooc->file();
    else if (const PagedStore* paged = session.paged())
      backing = &paged->file();
    else if (const TieredStore* tiered = session.tiered())
      backing = &tiered->file();
    if (backing != nullptr)
      out << "io engine: " << backing->io_engine_name() << " (depth "
          << backing->io_depth() << (config.direct_io ? ", O_DIRECT" : "")
          << ")\n";
  }

  if (config.mode == "evaluate") {
    out << "logL = " << session.engine().log_likelihood() << "\n";
  } else if (config.mode == "traverse") {
    double ll = 0.0;
    Timer timer;
    for (std::uint64_t i = 0; i < config.traversals; ++i)
      ll = session.engine().full_traversal_log_likelihood();
    out << config.traversals << " full traversals in " << timer.seconds()
        << " s; logL = " << ll << "\n";
  } else if (config.mode == "search") {
    SearchOptions search;
    search.spr.rounds = static_cast<int>(config.spr_rounds);
    const SearchResult result = run_search(session.engine(), search);
    out << "search: logL " << result.starting_log_likelihood << " -> "
        << result.final_log_likelihood << " (alpha "
        << session.engine().config().alpha << ", "
        << result.spr.moves_accepted << " SPR moves)\n";
  } else if (config.mode == "mcmc") {
    McmcOptions mcmc;
    mcmc.iterations = config.mcmc_iterations;
    Rng chain_rng(config.seed + 1);
    const McmcResult result = run_mcmc(session.engine(), chain_rng, mcmc);
    out << "mcmc: log posterior " << result.initial_log_posterior << " -> "
        << result.final_log_posterior << " (best "
        << result.best_log_posterior << "); acceptance branch "
        << result.branch_acceptance() << ", NNI " << result.nni_acceptance()
        << "\n";
  } else {
    throw Error("unknown --mode '" + config.mode +
                "' (evaluate | search | traverse | mcmc)");
  }

  if (config.print_stats) {
    // Snapshot rather than stats(): the robustness counters live in backend
    // atomics and are only overlaid by stats_snapshot().
    out << "storage: " << session.store().stats_snapshot().summary() << "\n";
    if (TieredStore* tiered = session.tiered()) {
      const TierStats& tier = tiered->tier_stats();
      out << "tiers: " << tier.promotions << " promotions, "
          << tier.demotions << " demotions, "
          << (tier.bytes_transferred >> 20) << " MiB host<->device\n";
    }
  }
  if (!config.save_checkpoint_path.empty()) {
    save_checkpoint_file(config.save_checkpoint_path, session.engine());
    out << "checkpoint written to " << config.save_checkpoint_path << "\n";
  }
  if (!config.out_tree_path.empty()) {
    write_newick_file(config.out_tree_path, session.tree());
    out << "tree written to " << config.out_tree_path << "\n";
  }
  out << "total wall time: " << total.seconds() << " s\n";
  return 0;
}

BatchConfig parse_batch_cli(int argc, const char* const* argv) {
  BatchConfig config;
  ArgParser parser("plfoc batch",
                   "run a jobfile of likelihood evaluations through the "
                   "memory-budgeted batch service");
  parser
      .add_string("jobs", &config.jobfile_path,
                  "jobfile, one job per line (see docs/service.md)")
      .add_uint("workers", &config.workers, "concurrent evaluation workers")
      .add_uint("ram-budget", &config.ram_budget,
                "aggregate slot-memory budget in bytes across all running "
                "jobs (0 = unlimited)")
      .add_uint("queue", &config.queue_capacity,
                "bounded intake capacity; submission blocks beyond this")
      .add_uint("prefetch", &config.prefetch,
                "prefetcher lookahead for out-of-core jobs (0 = off)")
      .add_flag("stats", &config.print_stats,
                "print per-job and merged storage statistics")
      .add_string("inject-faults", &config.inject_faults,
                  std::string("batch-default fault + corruption schedule ") +
                      FaultConfig::grammar() + " (a job's faults= key "
                      "overrides)")
      .add_uint("io-retries", &config.io_retries,
                "batch-default transient I/O retry budget "
                "(a job's io-retries= key overrides; 0 = fail fast)")
      .add_string("io-engine", &config.io_engine,
                  "batch-default backing-file I/O engine: sync | threads | "
                  "uring | deterministic (a job's io-engine= key overrides)")
      .add_uint("io-depth", &config.io_depth,
                "batch-default async submission-queue depth "
                "(a job's io-depth= key overrides)")
      .add_uint("threads", &config.threads,
                "batch-default kernel threads per worker "
                "(a job's threads= key overrides; logL is unaffected)")
      .add_flag("readmit", &config.readmit,
                "re-admit a job once after a typed I/O or integrity failure")
      .add_uint("cache", &config.cache,
                "result-cache entries (0 = off); equivalent trees dedupe "
                "via Phylo2Vec canonicalization — see docs/serving.md")
      .add_uint("cache-shards", &config.cache_shards,
                "result-cache shard count");
  // The jobfile may lead as a positional: `plfoc batch jobs.txt --workers 4`.
  int start = 0;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '-') {
    config.jobfile_path = argv[0];
    start = 1;
  }
  parser.parse(argc - start, argv + start);
  PLFOC_REQUIRE(!config.jobfile_path.empty(),
                "batch mode needs a jobfile: plfoc batch <jobfile> "
                "[flags], or --jobs <jobfile>\n" +
                    parser.usage());
  return config;
}

int run_batch_cli(const BatchConfig& config, std::ostream& out) {
  Timer total;
  const std::vector<JobFileEntry> entries =
      read_job_file(config.jobfile_path);
  PLFOC_REQUIRE(!entries.empty(),
                "jobfile '" + config.jobfile_path + "' contains no jobs");
  out << "batch: " << entries.size() << " jobs, " << config.workers
      << (config.workers == 1 ? " worker" : " workers") << ", ram budget ";
  if (config.ram_budget == 0)
    out << "unlimited\n";
  else
    out << config.ram_budget << " B\n";

  // Validate the batch-wide fault spec before any job is submitted.
  const FaultConfig batch_faults = config.inject_faults.empty()
                                       ? FaultConfig{}
                                       : FaultConfig::parse(config.inject_faults);
  if (batch_faults.enabled())
    out << "fault injection: " << batch_faults.spec() << " (retries "
        << config.io_retries << (config.readmit ? ", readmit" : "") << ")\n";
  // Validate the batch-default engine name before any job is submitted.
  const AioEngineKind batch_engine = parse_aio_engine(config.io_engine);
  if (batch_engine != AioEngineKind::kSync)
    out << "io engine: " << aio_engine_name(batch_engine) << " (depth "
        << config.io_depth << ")\n";

  ServiceOptions options;
  options.workers = static_cast<std::size_t>(config.workers);
  options.queue_capacity = static_cast<std::size_t>(config.queue_capacity);
  options.ram_budget_bytes = config.ram_budget;
  options.prefetch_lookahead = static_cast<std::size_t>(config.prefetch);
  options.readmit_io_failures = config.readmit;
  options.kernel_threads = static_cast<unsigned>(config.threads);
  options.result_cache_entries = static_cast<std::size_t>(config.cache);
  options.result_cache_shards = static_cast<std::size_t>(config.cache_shards);
  Service service(options);
  for (const JobFileEntry& entry : entries) {
    JobSpec spec = load_job(entry);
    // Batch-wide robustness defaults; per-line keys take precedence.
    if (entry.faults.empty()) spec.session.faults = batch_faults;
    if (entry.io_retries < 0)
      spec.session.io_retry.max_retries =
          static_cast<unsigned>(config.io_retries);
    if (entry.io_engine.empty()) spec.session.io_engine = batch_engine;
    if (entry.io_depth < 0)
      spec.session.io_depth = static_cast<unsigned>(config.io_depth);
    service.submit(std::move(spec));
  }
  const std::vector<JobResult> results = service.drain();

  std::size_t failed = 0;
  for (const JobResult& result : results) {
    out << result.name << ": ";
    switch (result.status) {
      case JobStatus::kDone:
        out << "logL = " << result.log_likelihood << " ["
            << backend_label(result.admitted_backend)
            << (result.degraded ? ", degraded" : "") << "] "
            << result.wall_seconds << " s";
        if (config.print_stats)
          out << "; storage: " << result.stats.summary();
        break;
      case JobStatus::kFailed:
        ++failed;
        out << "FAILED: " << result.error;
        if (result.io_failure || result.integrity_failure) {
          out << " (" << (result.io_failure ? "io" : "integrity")
              << " failure after " << result.attempts
              << (result.attempts == 1 ? " attempt)" : " attempts)");
          if (!result.fault_report.empty())
            out << "\n  fault report: " << result.fault_report;
        }
        break;
      default:
        ++failed;
        out << job_status_name(result.status);
        break;
    }
    out << "\n";
  }
  const double wall = total.seconds();
  out << "batch done: " << results.size() - failed << "/" << results.size()
      << " jobs in " << wall << " s";
  if (wall > 0.0) out << " (" << results.size() / wall << " jobs/s)";
  out << "; peak charged slot memory " << service.peak_charged_bytes()
      << " B\n";
  if (config.print_stats)
    out << "merged storage: " << service.merged_stats().summary() << "\n";
  if (config.print_stats && config.cache > 0) {
    const CacheStats cache = service.cache_stats();
    out << "result cache: " << cache.lookups << " lookups, " << cache.hits
        << " hits, " << cache.coalesced << " coalesced, " << cache.evictions
        << " evictions\n";
  }
  return failed == 0 ? 0 : 1;
}

FsckConfig parse_fsck_cli(int argc, const char* const* argv) {
  FsckConfig config;
  ArgParser parser("plfoc fsck",
                   "offline integrity scan of a plfoc vector file: verify "
                   "every record against its checksum table entry");
  parser
      .add_string("file", &config.vector_file,
                  "vector-file stripe to scan (see docs/file-formats.md)")
      .add_flag("verbose", &config.verbose,
                "list every damaged record (default: first 10 + summary)");
  // The file may lead as a positional: `plfoc fsck vectors.bin`.
  int start = 0;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '-') {
    config.vector_file = argv[0];
    start = 1;
  }
  parser.parse(argc - start, argv + start);
  PLFOC_REQUIRE(!config.vector_file.empty(),
                "fsck mode needs a vector file: plfoc fsck <vector-file>, "
                "or --file <vector-file>\n" +
                    parser.usage());
  return config;
}

int run_fsck_cli(const FsckConfig& config, std::ostream& out) {
  const FsckReport report = FileBackend::fsck(config.vector_file);
  out << "fsck " << config.vector_file << "\n";
  if (!report.header_ok) {
    out << "header: INVALID — " << report.header_error << "\n";
    return 1;
  }
  out << "header: ok (" << report.block_count << " blocks of "
      << report.block_bytes << " B, payload " << report.payload_bytes
      << " B)\n";
  out << "records: " << report.checked << " verified, "
      << report.skipped_unwritten << " never written\n";
  if (report.clean()) {
    out << "clean\n";
    return 0;
  }
  const std::size_t shown =
      config.verbose ? report.issues.size()
                     : std::min<std::size_t>(report.issues.size(), 10);
  for (std::size_t i = 0; i < shown; ++i)
    out << "  block " << report.issues[i].block << ": "
        << report.issues[i].what << "\n";
  if (shown < report.issues.size())
    out << "  ... " << report.issues.size() - shown
        << " more (use --verbose)\n";
  out << "DAMAGED: " << report.issues.size()
      << (report.issues.size() == 1 ? " record" : " records")
      << " failed verification\n";
  return 1;
}

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  PLFOC_REQUIRE(colon != std::string::npos && colon > 0,
                "expected host:port, got '" + spec + "'");
  HostPort result;
  result.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  try {
    std::size_t used = 0;
    const unsigned long port = std::stoul(port_text, &used);
    PLFOC_REQUIRE(used == port_text.size() && port <= 65535,
                  "bad port in '" + spec + "'");
    result.port = static_cast<std::uint16_t>(port);
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("bad port in '" + spec + "'");
  }
  return result;
}

std::map<std::string, TenantPolicy> parse_tenant_policies(
    const std::string& spec) {
  std::map<std::string, TenantPolicy> policies;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    // name:weight[:max_inflight[:ram_share_bytes]]
    std::vector<std::string> fields;
    std::size_t field_start = 0;
    while (field_start <= entry.size()) {
      std::size_t field_end = entry.find(':', field_start);
      if (field_end == std::string::npos) field_end = entry.size();
      fields.push_back(entry.substr(field_start, field_end - field_start));
      field_start = field_end + 1;
    }
    PLFOC_REQUIRE(fields.size() >= 2 && fields.size() <= 4 &&
                      !fields[0].empty(),
                  "bad tenant entry '" + entry +
                      "' (want name:weight[:max_inflight[:ram_share]])");
    PLFOC_REQUIRE(policies.find(fields[0]) == policies.end(),
                  "duplicate tenant '" + fields[0] + "'");
    const auto parse_u64 = [&entry](const std::string& text) {
      try {
        std::size_t used = 0;
        const unsigned long long value = std::stoull(text, &used);
        PLFOC_REQUIRE(used == text.size(), "bad number in '" + entry + "'");
        return static_cast<std::uint64_t>(value);
      } catch (const Error&) {
        throw;
      } catch (const std::exception&) {
        throw Error("bad number in tenant entry '" + entry + "'");
      }
    };
    TenantPolicy policy;
    policy.weight = static_cast<unsigned>(parse_u64(fields[1]));
    if (fields.size() >= 3)
      policy.max_in_flight = static_cast<std::size_t>(parse_u64(fields[2]));
    if (fields.size() >= 4) policy.ram_share_bytes = parse_u64(fields[3]);
    policies.emplace(fields[0], policy);
  }
  return policies;
}

ServeConfig parse_serve_cli(int argc, const char* const* argv) {
  ServeConfig config;
  ArgParser parser("plfoc serve",
                   "serve likelihood evaluations over a TCP socket: the "
                   "batch service behind the length-prefixed wire protocol "
                   "(docs/serving.md)");
  parser
      .add_string("listen", &config.listen,
                  "host:port to bind (port 0 = kernel-assigned ephemeral)")
      .add_uint("workers", &config.workers, "concurrent evaluation workers")
      .add_uint("ram-budget", &config.ram_budget,
                "aggregate slot-memory budget in bytes (0 = unlimited)")
      .add_uint("queue", &config.queue_capacity,
                "bounded intake capacity; submits beyond it answer busy")
      .add_uint("prefetch", &config.prefetch,
                "prefetcher lookahead for out-of-core jobs (0 = off)")
      .add_uint("threads", &config.threads,
                "kernel threads per worker (jobfile threads= overrides)")
      .add_string("io-engine", &config.io_engine,
                  "service-default backing-file I/O engine: sync | threads | "
                  "uring | deterministic (jobfile io-engine= overrides)")
      .add_uint("io-depth", &config.io_depth,
                "service-default async submission-queue depth")
      .add_flag("readmit", &config.readmit,
                "re-admit a job once after a typed I/O or integrity failure")
      .add_uint("cache", &config.cache,
                "result-cache entries (0 = off); topologically equivalent "
                "trees dedupe via Phylo2Vec canonicalization")
      .add_uint("cache-shards", &config.cache_shards,
                "result-cache shard count")
      .add_string("tenants", &config.tenants,
                  "per-tenant policies: name:weight[:max_inflight"
                  "[:ram_share_bytes]],... (absent tenants run "
                  "unconstrained at weight 1)")
      .add_double("idle-timeout", &config.idle_timeout,
                  "close connections idle for this many seconds (0 = never)")
      .add_uint("max-connections", &config.max_connections,
                "refuse accepts beyond this many live connections")
      .add_flag("stats", &config.print_stats,
                "print cache counters with the shutdown drain report")
      .add_double("watchdog-stall", &config.watchdog_stall,
                  "cancel a running job whose progress counter freezes for "
                  "this many seconds (0 = watchdog off)")
      .add_double("shed-queue", &config.shed_queue,
                  "shed a job that waited in the queue longer than this "
                  "many seconds (typed 'overloaded' answer; 0 = off)")
      .add_double("drain-flush", &config.drain_flush,
                  "shutdown: seconds to keep flushing finished responses "
                  "before closing connections");
  parser.parse(argc, argv);
  parse_host_port(config.listen);        // validate early
  parse_tenant_policies(config.tenants); // validate early
  parse_aio_engine(config.io_engine);    // validate early
  return config;
}

int run_serve_cli(const ServeConfig& config, std::istream& in,
                  std::ostream& out) {
  const HostPort listen = parse_host_port(config.listen);
  ServerOptions options;
  options.host = listen.host;
  options.port = listen.port;
  options.max_connections = static_cast<std::size_t>(config.max_connections);
  options.idle_timeout_seconds = config.idle_timeout;
  options.service.workers = static_cast<std::size_t>(config.workers);
  options.service.queue_capacity =
      static_cast<std::size_t>(config.queue_capacity);
  options.service.ram_budget_bytes = config.ram_budget;
  options.service.prefetch_lookahead =
      static_cast<std::size_t>(config.prefetch);
  options.service.kernel_threads = static_cast<unsigned>(config.threads);
  options.service.io_engine = parse_aio_engine(config.io_engine);
  options.service.io_depth = static_cast<unsigned>(config.io_depth);
  options.service.readmit_io_failures = config.readmit;
  options.service.result_cache_entries =
      static_cast<std::size_t>(config.cache);
  options.service.result_cache_shards =
      static_cast<std::size_t>(config.cache_shards);
  options.service.tenants = parse_tenant_policies(config.tenants);
  options.service.watchdog_stall_seconds = config.watchdog_stall;
  options.service.shed_queue_seconds = config.shed_queue;
  options.drain_flush_seconds = config.drain_flush;

  Server server(std::move(options));
  server.start();
  out << "serving on " << listen.host << ":" << server.port() << "\n";
  out.flush();

  // Block until operator EOF (or an explicit "stop" line) — the server
  // runs on its own threads.
  std::string line;
  while (std::getline(in, line)) {
    if (line == "stop" || line == "quit") break;
  }

  const DrainReport report = server.stop();
  out << "drained " << report.results.size()
      << (report.results.size() == 1 ? " job" : " jobs") << "\n";
  for (const auto& [tenant, counts] : report.per_tenant) {
    out << "  tenant " << (tenant.empty() ? "<default>" : tenant) << ": "
        << counts.completed << " completed, " << counts.failed << " failed, "
        << counts.cancelled << " cancelled, " << counts.expired
        << " expired, " << counts.shed << " shed\n";
  }
  if (report.unsent_frames > 0) {
    out << "  undelivered: " << report.unsent_frames << " response"
        << (report.unsent_frames == 1 ? "" : "s") << " on "
        << report.unsent_connections << " connection"
        << (report.unsent_connections == 1 ? "" : "s")
        << " (flush window closed first)\n";
  }
  if (config.print_stats && config.cache > 0) {
    const CacheStats cache = server.service().cache_stats();
    out << "result cache: " << cache.lookups << " lookups, " << cache.hits
        << " hits, " << cache.coalesced << " coalesced, " << cache.evictions
        << " evictions\n";
  }
  return 0;
}

ClientConfig parse_client_cli(int argc, const char* const* argv) {
  ClientConfig config;
  ArgParser parser("plfoc-client",
                   "submit a jobfile to a running `plfoc serve` over the "
                   "wire protocol and print per-job results "
                   "(docs/serving.md)");
  parser
      .add_string("connect", &config.connect,
                  "host:port of the server", /*required=*/false)
      .add_string("jobs", &config.jobfile_path,
                  "jobfile, one job per line (see docs/service.md)")
      .add_string("tenant", &config.tenant,
                  "tenant id to submit under (fair-scheduling identity)")
      .add_uint("request-base", &config.request_base,
                "first request id; ids increase per job")
      .add_flag("stats", &config.print_stats,
                "also fetch and print the server's cache/tenant stats")
      .add_double("deadline", &config.deadline,
                  "default per-job deadline in seconds, armed when the "
                  "server accepts the job (jobfile deadline= overrides; "
                  "0 = none)");
  // The jobfile may lead as a positional, mirroring `plfoc batch`.
  int start = 0;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '-') {
    config.jobfile_path = argv[0];
    start = 1;
  }
  parser.parse(argc - start, argv + start);
  PLFOC_REQUIRE(!config.jobfile_path.empty(),
                "plfoc-client needs a jobfile: plfoc-client <jobfile> "
                "--connect host:port\n" +
                    parser.usage());
  PLFOC_REQUIRE(!config.connect.empty(),
                "plfoc-client needs --connect host:port\n" + parser.usage());
  return config;
}

int run_client_cli(const ClientConfig& config, std::ostream& out) {
  const HostPort remote = parse_host_port(config.connect);
  const std::vector<JobFileEntry> entries =
      read_job_file(config.jobfile_path);
  PLFOC_REQUIRE(!entries.empty(),
                "jobfile '" + config.jobfile_path + "' contains no jobs");

  BlockingClient client(remote.host, remote.port);
  std::vector<std::uint64_t> request_ids;
  request_ids.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t request_id = config.request_base + i;
    SubmitRequest request =
        submit_request_from_entry(entries[i], config.tenant, request_id);
    if (request.deadline_ms == 0 && config.deadline > 0)
      request.deadline_ms = deadline_ms_from_seconds(config.deadline);
    client.submit(request);
    request_ids.push_back(request_id);
  }

  std::size_t failed = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ClientResponse response = client.wait(request_ids[i]);
    const std::string label =
        entries[i].name.empty() ? "job-" + std::to_string(request_ids[i])
                                : entries[i].name;
    out << label << ": ";
    if (response.error) {
      ++failed;
      out << "REJECTED: " << response.error->message << "\n";
      continue;
    }
    const ResultResponse& result = *response.result;
    if (result.status == static_cast<std::uint8_t>(JobStatus::kDone)) {
      out << "logL = " << std::bit_cast<double>(result.logl_bits) << " ["
          << result.backend
          << ((result.flags & kResultDegraded) ? ", degraded" : "")
          << ((result.flags & kResultCacheHit) ? ", cached" : "") << "] "
          << result.wall_seconds << " s\n";
    } else {
      ++failed;
      const char* verdict = "FAILED";
      if (result.flags & kResultDeadlineExceeded) verdict = "DEADLINE";
      else if (result.flags & kResultOverloaded) verdict = "SHED";
      else if (result.flags & kResultCancelled) verdict = "CANCELLED";
      out << verdict << ": " << result.error << "\n";
    }
  }
  if (config.print_stats) {
    const StatsResponse stats = client.stats();
    out << "server cache: " << stats.cache_lookups << " lookups, "
        << stats.cache_hits << " hits, " << stats.cache_misses
        << " misses, " << stats.cache_coalesced << " coalesced\n";
    for (const StatsResponse::TenantRow& row : stats.tenants) {
      out << "tenant " << (row.tenant.empty() ? "<default>" : row.tenant)
          << ": " << row.submitted << " submitted, " << row.completed
          << " completed, " << row.failed << " failed, " << row.cancelled
          << " cancelled, " << row.expired << " expired, " << row.shed
          << " shed, " << row.cache_hits << " cache hits\n";
    }
  }
  out << "client done: " << entries.size() - failed << "/" << entries.size()
      << " jobs ok\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace plfoc
