// The plfoc command-line driver — the library's counterpart of the paper's
// modified RAxML binary. Thin `tools/plfoc_main.cpp` wraps run_cli() /
// run_batch_cli() so the whole driver is unit-testable.
//
// Modes (--mode):
//   evaluate  log likelihood of the given (or stepwise-addition) tree
//   search    branch smoothing + alpha optimisation + lazy-SPR rounds
//   traverse  N full tree traversals (the paper's -f z worst case, Fig. 5)
//   mcmc      Metropolis-Hastings sampling (Bayesian workload)
//
// Memory control mirrors the paper: --memory-limit <bytes> is RAxML's -L
// flag; --ram-fraction <f> is the experiments' fraction parameter.
//
// `plfoc batch <jobfile>` is a separate subcommand: it feeds a jobfile (one
// evaluation per line, src/service/jobfile.hpp) through the concurrent
// batch-evaluation service under one global --ram-budget. docs/service.md
// describes the format and the admission-control math.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "service/tenant.hpp"

namespace plfoc {

struct CliConfig {
  // input
  std::string msa_path;
  std::string format = "fasta";      // fasta | phylip
  std::string data_type = "dna";     // dna | protein
  std::string tree_path;             // empty: stepwise-addition starting tree
  // model
  std::string model = "gtr";         // jc | k80 | hky | gtr | poisson
  double kappa = 2.0;                // k80 / hky
  std::uint64_t categories = 4;
  double alpha = 1.0;
  // storage
  std::string backend = "inram";     // inram | ooc | paged | tiered
  std::uint64_t memory_limit = 0;    // bytes (-L)
  double ram_fraction = 0.0;         // f
  std::string strategy = "lru";      // random | lru | lfu | topological
  bool no_read_skipping = false;
  std::string vector_file;           // optional explicit backing file
  // robustness (docs/robustness.md)
  std::string inject_faults;         // FaultConfig spec "seed=N,rate=P,..."
  std::uint64_t io_retries = 4;      // transient-error retry budget (0 = off)
  bool no_integrity = false;         // disable per-vector checksums
  // async I/O (docs/async-io.md)
  std::string io_engine = "sync";    // sync | threads | uring | deterministic
  std::uint64_t io_depth = 8;        // submission-queue depth (async engines)
  bool direct_io = false;            // O_DIRECT for 512-aligned transfers
  // parallelism (docs/parallelism.md)
  std::uint64_t threads = 1;         // kernel threads (1 = serial)
  // workload
  std::string mode = "evaluate";     // evaluate | search | traverse | mcmc
  std::uint64_t traversals = 5;      // traverse mode
  std::uint64_t spr_rounds = 1;      // search mode
  std::uint64_t mcmc_iterations = 2000;
  std::uint64_t seed = 42;
  // output
  std::string out_tree_path;
  bool print_stats = false;
  // checkpointing
  std::string save_checkpoint_path;  ///< write tree+model state after the run
  std::string load_checkpoint_path;  ///< resume tree+model state before it
};

/// Parse argv into a config; throws plfoc::Error (message includes usage)
/// on bad input or --help.
CliConfig parse_cli(int argc, const char* const* argv);

/// Execute the configured run, writing the report to `out`.
/// Returns a process exit code.
int run_cli(const CliConfig& config, std::ostream& out);

/// Configuration of the `plfoc batch` subcommand.
struct BatchConfig {
  std::string jobfile_path;           ///< positional or --jobs
  std::uint64_t workers = 1;          ///< concurrent evaluation workers
  std::uint64_t ram_budget = 0;       ///< aggregate slot-memory bytes; 0 = ∞
  std::uint64_t queue_capacity = 64;  ///< bounded intake (backpressure)
  std::uint64_t prefetch = 0;         ///< prefetcher lookahead; 0 = off
  bool print_stats = false;           ///< per-job + merged store counters
  /// Batch-wide defaults; a job line's own faults= / io-retries= / threads=
  /// keys win.
  std::string inject_faults;          ///< FaultConfig spec "seed=N,rate=P,..."
  std::uint64_t io_retries = 4;       ///< transient-error retry budget
  std::string io_engine = "sync";     ///< batch-default I/O engine
  std::uint64_t io_depth = 8;         ///< batch-default submission-queue depth
  std::uint64_t threads = 1;          ///< kernel threads per worker
  bool readmit = false;               ///< re-admit I/O-failed jobs once
  /// Result-cache entries (0 = off). With the cache on, trees are
  /// Phylo2Vec-canonicalized before evaluation — same contract as `plfoc
  /// serve --cache`, so batch and loopback runs stay bit-comparable.
  std::uint64_t cache = 0;
  std::uint64_t cache_shards = 8;     ///< result-cache shard count
};

/// Parse the argv that follows the `batch` keyword. The jobfile may be the
/// first positional argument (`plfoc batch jobs.txt --workers 4`) or given
/// via --jobs. Throws plfoc::Error on bad input or --help.
BatchConfig parse_batch_cli(int argc, const char* const* argv);

/// Run every job in the jobfile through the service and report per-job
/// results in submission order (deterministic regardless of --workers).
/// Returns 0 when every job evaluated, 1 when any failed.
int run_batch_cli(const BatchConfig& config, std::ostream& out);

/// Configuration of the `plfoc fsck` subcommand: offline integrity scan of
/// one vector-file stripe (docs/file-formats.md). Header + record walk only —
/// no engine, no store, no recovery.
struct FsckConfig {
  std::string vector_file;  ///< positional or --file
  bool verbose = false;     ///< list every damaged record, not just a summary
};

/// Parse the argv that follows the `fsck` keyword. The file may be the first
/// positional argument (`plfoc fsck vectors.bin`) or given via --file.
FsckConfig parse_fsck_cli(int argc, const char* const* argv);

/// Scan the file, report per-record checksum/generation damage to `out`.
/// Returns 0 for a clean file, 1 when any record is damaged or the header is
/// invalid.
int run_fsck_cli(const FsckConfig& config, std::ostream& out);

/// "host:port" split for --listen / --connect (port may be 0 for an
/// ephemeral listen port). Throws plfoc::Error on a malformed spec.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
HostPort parse_host_port(const std::string& spec);

/// Parse a `--tenants` spec: comma-separated
/// `name:weight[:max_inflight[:ram_share_bytes]]` entries
/// (e.g. "alice:3,bob:1:2:1073741824"). Throws plfoc::Error on malformed
/// input or duplicate tenants.
std::map<std::string, TenantPolicy> parse_tenant_policies(
    const std::string& spec);

/// Configuration of the `plfoc serve` subcommand: the socket front-end of
/// the batch service (docs/serving.md).
struct ServeConfig {
  std::string listen = "127.0.0.1:0";  ///< host:port; port 0 = ephemeral
  std::uint64_t workers = 1;
  std::uint64_t ram_budget = 0;        ///< aggregate slot-memory bytes; 0 = ∞
  std::uint64_t queue_capacity = 64;
  std::uint64_t prefetch = 0;
  std::uint64_t threads = 1;           ///< kernel threads per worker
  std::string io_engine = "sync";      ///< service-default I/O engine
  std::uint64_t io_depth = 8;          ///< service-default queue depth
  bool readmit = false;
  std::uint64_t cache = 0;             ///< result-cache entries; 0 = off
  std::uint64_t cache_shards = 8;
  std::string tenants;                 ///< parse_tenant_policies() spec
  double idle_timeout = 300.0;         ///< seconds; 0 disables the sweep
  std::uint64_t max_connections = 64;
  bool print_stats = false;            ///< drain report + cache counters
  double watchdog_stall = 0.0;  ///< cancel jobs frozen this long; 0 = off
  double shed_queue = 0.0;      ///< shed jobs queued this long; 0 = off
  double drain_flush = 2.0;     ///< stop(): response flush window (seconds)
};

/// Parse the argv that follows the `serve` keyword. Throws plfoc::Error on
/// bad input or --help.
ServeConfig parse_serve_cli(int argc, const char* const* argv);

/// Start the server, print "serving on <host>:<port>" to `out`, then block
/// until `in` reaches EOF (or a line reading "stop"); shut down and print
/// the per-tenant drain report. Returns 0.
int run_serve_cli(const ServeConfig& config, std::istream& in,
                  std::ostream& out);

/// Configuration of the `plfoc-client` tool: submit a jobfile over the
/// socket and print results — the wire-transport twin of `plfoc batch`.
struct ClientConfig {
  std::string connect;       ///< host:port of a running `plfoc serve`
  std::string jobfile_path;  ///< positional or --jobs
  std::string tenant = "default";
  std::uint64_t request_base = 1;  ///< first request id (then sequential)
  bool print_stats = false;        ///< also fetch + print server stats
  /// Default per-job deadline in seconds (0 = none); a jobfile line's own
  /// deadline= key wins over this batch-wide default.
  double deadline = 0.0;
};

/// Parse plfoc-client argv (excluding argv[0]). The jobfile may lead as a
/// positional argument. Throws plfoc::Error on bad input or --help.
ClientConfig parse_client_cli(int argc, const char* const* argv);

/// Submit every jobfile entry over the socket, wait for all responses and
/// report them in submission order (same line format as `plfoc batch`).
/// Returns 0 when every job evaluated, 1 when any failed or was rejected.
int run_client_cli(const ClientConfig& config, std::ostream& out);

}  // namespace plfoc
