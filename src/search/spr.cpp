#include "search/spr.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "tree/topology_moves.hpp"
#include "util/checks.hpp"
#include "util/logging.hpp"

namespace plfoc {
namespace {

constexpr double kTinyLength = 1e-8;

/// Insertion candidates: edges of the component containing the healed edge
/// (u, v) whose endpoint hop distance from {u, v} lies in
/// [radius_min, radius_max]. The healed edge itself (distance 0) is the
/// identity re-insertion and is excluded by radius_min >= 1.
std::vector<std::pair<NodeId, NodeId>> insertion_candidates(
    const Tree& tree, NodeId u, NodeId v, unsigned radius_min,
    unsigned radius_max) {
  std::vector<std::uint32_t> dist(tree.num_nodes(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::queue<NodeId> queue;
  dist[u] = 0;
  dist[v] = 0;
  queue.push(u);
  queue.push(v);
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop();
    if (dist[node] >= radius_max) continue;
    for (NodeId nbr : tree.neighbors(node))
      if (dist[nbr] > dist[node] + 1) {
        dist[nbr] = dist[node] + 1;
        queue.push(nbr);
      }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> reached;
  // Walk only the reached region for the edge scan.
  for (NodeId node = 0; node < tree.num_nodes(); ++node) {
    if (dist[node] == std::numeric_limits<std::uint32_t>::max()) continue;
    for (NodeId nbr : tree.neighbors(node)) {
      if (node >= nbr) continue;
      if (dist[nbr] == std::numeric_limits<std::uint32_t>::max()) continue;
      const std::uint32_t edge_distance = std::max(dist[node], dist[nbr]);
      if (edge_distance >= radius_min && edge_distance <= radius_max)
        edges.emplace_back(node, nbr);
    }
  }
  return edges;
}

}  // namespace

SprResult spr_search(LikelihoodEngine& engine, const SprOptions& options) {
  PLFOC_CHECK(options.rounds >= 1 && options.prune_stride >= 1);
  PLFOC_CHECK(options.radius_min >= 1 && options.radius_min <= options.radius_max);
  Tree& tree = engine.tree();
  Orientation& orientation = engine.orientation();

  SprResult result;
  double current_ll = engine.log_likelihood();
  result.initial_log_likelihood = current_ll;

  std::vector<NodeId> journal;
  std::vector<TraversalStep> steps;

  for (int round = 0; round < options.rounds; ++round) {
    const std::uint64_t accepted_before = result.moves_accepted;
    for (std::uint32_t idx = 0; idx < tree.num_inner();
         idx += options.prune_stride) {
      const NodeId s = tree.inner_node(idx);
      // Copy: the adjacency of s changes when a move is accepted.
      std::vector<NodeId> directions(tree.neighbors(s).begin(),
                                     tree.neighbors(s).end());
      for (const NodeId r : directions) {
        if (!tree.has_edge(s, r)) continue;  // stale after an accepted move
        ++result.prune_candidates;

        // --- prune: detach {s + clade behind r}, heal u-v ------------------
        NodeId others[2];
        int count = 0;
        for (NodeId nbr : tree.neighbors(s))
          if (nbr != r) others[count++] = nbr;
        PLFOC_CHECK(count == 2);
        const NodeId u = others[0];
        const NodeId v = others[1];
        const double len_su = tree.branch_length(s, u);
        const double len_sv = tree.branch_length(s, v);
        const double len_sr = tree.branch_length(s, r);
        tree.disconnect(s, u);
        tree.disconnect(s, v);
        tree.connect(u, v, len_su + len_sv);
        orientation.invalidate(s);
        invalidate_for_change(tree, orientation, u);

        // Pre-validate the pruned clade's root vector once (outside the
        // journal: the clade is identical before and after the prune).
        if (tree.is_inner(r)) {
          steps.clear();
          plan_subtree(tree, orientation, r, s, /*full=*/false, steps);
          engine.execute(steps);
        }

        const auto candidates = insertion_candidates(
            tree, u, v, options.radius_min, options.radius_max);

        double best_ll = -std::numeric_limits<double>::infinity();
        std::pair<NodeId, NodeId> best_edge{kNoNode, kNoNode};

        engine.set_recompute_journal(&journal);
        for (const auto& [x, y] : candidates) {
          ++result.insertions_tried;
          journal.clear();
          // --- try: splice s into (x, y) -----------------------------------
          const double len_xy = tree.branch_length(x, y);
          const double half = std::max(len_xy * 0.5, kTinyLength);
          tree.disconnect(x, y);
          tree.connect(s, x, half);
          tree.connect(s, y, half);
          orientation.invalidate(s);
          if (tree.is_inner(x)) orientation.invalidate(x);
          if (tree.is_inner(y)) orientation.invalidate(y);

          // Lazy scoring: only the three branches around the insertion are
          // optimised (Sec. 4.2); optimize_branch returns the tree's log
          // likelihood at its branch, so the last call scores the move.
          engine.optimize_branch(s, x, options.lazy_newton_iterations, false);
          engine.optimize_branch(s, y, options.lazy_newton_iterations, false);
          const double ll =
              engine.optimize_branch(s, r, options.lazy_newton_iterations,
                                     false);
          if (ll > best_ll) {
            best_ll = ll;
            best_edge = {x, y};
          }

          // --- roll back ---------------------------------------------------
          tree.disconnect(s, x);
          tree.disconnect(s, y);
          tree.connect(x, y, len_xy);
          tree.set_branch_length(s, r, len_sr);
          for (NodeId node : journal) orientation.invalidate(node);
          orientation.invalidate(s);
          if (tree.is_inner(x)) orientation.invalidate(x);
          if (tree.is_inner(y)) orientation.invalidate(y);
        }
        engine.set_recompute_journal(nullptr);

        // --- undo the prune -----------------------------------------------
        tree.disconnect(u, v);
        tree.connect(s, u, len_su);
        tree.connect(s, v, len_sv);
        invalidate_for_change(tree, orientation, s);

        // --- accept the best insertion if it improves ----------------------
        if (best_edge.first != kNoNode &&
            best_ll > current_ll + options.epsilon) {
          const SprMove move =
              apply_spr(tree, s, r, best_edge.first, best_edge.second);
          invalidate_for_change(tree, orientation, s);
          invalidate_for_change(tree, orientation, move.u);
          engine.optimize_branch(s, best_edge.first,
                                 options.smooth_accepted_iterations);
          engine.optimize_branch(s, best_edge.second,
                                 options.smooth_accepted_iterations);
          current_ll = engine.optimize_branch(
              s, r, options.smooth_accepted_iterations);
          ++result.moves_accepted;
          PLFOC_LOG(kDebug) << "SPR accepted: logL " << current_ll;
          break;  // adjacency of s changed; move to the next prune candidate
        }
      }
    }
    PLFOC_LOG(kInfo) << "SPR round " << (round + 1) << ": logL " << current_ll
                     << ", " << result.moves_accepted << " moves accepted";
    // Converged: a full pass without an accepted move cannot improve further
    // (the scan is deterministic), so later rounds would only repeat it.
    if (result.moves_accepted == accepted_before) break;
  }
  result.final_log_likelihood = current_ll;
  return result;
}

}  // namespace plfoc
