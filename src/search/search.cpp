#include "search/search.hpp"

#include "util/logging.hpp"

namespace plfoc {

SearchResult run_search(LikelihoodEngine& engine, const SearchOptions& options) {
  SearchResult result;
  result.starting_log_likelihood = engine.log_likelihood();
  PLFOC_LOG(kInfo) << "search: starting logL " << result.starting_log_likelihood;

  result.after_smoothing = result.starting_log_likelihood;
  if (options.initial_smoothing_passes > 0)
    result.after_smoothing =
        engine.optimize_all_branches(options.initial_smoothing_passes);

  result.after_model_opt = result.after_smoothing;
  if (options.optimize_model)
    result.after_model_opt = optimize_model(engine, options.model);

  result.spr = spr_search(engine, options.spr);

  result.final_log_likelihood = result.spr.final_log_likelihood;
  if (options.nni_polish) {
    result.nni = nni_search(engine, options.nni);
    result.final_log_likelihood = result.nni.final_log_likelihood;
  }
  if (options.final_smoothing_passes > 0)
    result.final_log_likelihood =
        engine.optimize_all_branches(options.final_smoothing_passes);
  PLFOC_LOG(kInfo) << "search: final logL " << result.final_log_likelihood;
  return result;
}

}  // namespace plfoc
