// NNI hill climbing — the cheapest PLF-based topology search.
//
// Nearest-neighbour interchange evaluates the two alternative resolutions of
// every inner edge; its working set is even smaller than lazy SPR's (the
// four subtrees around one edge), which makes it the friendliest workload
// for the out-of-core layer. Typically used to polish an SPR result or as a
// fast search on its own.
#pragma once

#include <cstdint>

#include "likelihood/engine.hpp"

namespace plfoc {

struct NniOptions {
  int max_rounds = 50;          ///< scan rounds == max accepted moves (early stop)
  double epsilon = 0.01;        ///< log-likelihood gain required to accept
  int newton_iterations = 8;    ///< branch-length polish per evaluated variant
};

struct NniResult {
  double initial_log_likelihood = 0.0;
  double final_log_likelihood = 0.0;
  std::uint64_t variants_tried = 0;
  std::uint64_t moves_accepted = 0;
  int rounds_run = 0;
};

/// Deterministic first-improvement NNI hill climb; the tree is modified in
/// place. Results are bit-identical across storage backends.
NniResult nni_search(LikelihoodEngine& engine, const NniOptions& options = {});

}  // namespace plfoc
