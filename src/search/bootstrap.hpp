// RELL bootstrap (Kishino, Miyata & Hasegawa 1990): topology support by
// resampling per-site log likelihoods instead of re-optimising each
// replicate. The natural consumer of LikelihoodEngine::
// pattern_log_likelihoods() — and a realistic multi-tree PLF workload for
// the out-of-core layer (each candidate tree's vectors stream through the
// same slots).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace plfoc {

struct RellResult {
  /// Per input tree: fraction of replicates in which it had the highest
  /// resampled log likelihood (ties split evenly). Sums to 1.
  std::vector<double> support;
  /// Per input tree: mean resampled log likelihood across replicates.
  std::vector<double> mean_log_likelihood;
  std::size_t replicates = 0;
};

/// `pattern_log_likelihoods[t][p]` is tree t's log likelihood of pattern p
/// (weights NOT applied); `weights[p]` is the pattern multiplicity. Each
/// replicate draws round(sum(weights)) sites multinomially proportional to
/// the weights and scores every tree on the resampled counts. Deterministic
/// for a given RNG state.
RellResult rell_bootstrap(
    const std::vector<std::vector<double>>& pattern_log_likelihoods,
    const std::vector<double>& weights, std::size_t replicates, Rng& rng);

}  // namespace plfoc
