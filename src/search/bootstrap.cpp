#include "search/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/checks.hpp"

namespace plfoc {

RellResult rell_bootstrap(
    const std::vector<std::vector<double>>& pattern_log_likelihoods,
    const std::vector<double>& weights, std::size_t replicates, Rng& rng) {
  const std::size_t trees = pattern_log_likelihoods.size();
  PLFOC_REQUIRE(trees >= 1, "RELL needs at least one tree");
  const std::size_t patterns = weights.size();
  PLFOC_REQUIRE(patterns >= 1, "RELL needs at least one pattern");
  for (const auto& row : pattern_log_likelihoods)
    PLFOC_REQUIRE(row.size() == patterns,
                  "RELL: per-tree pattern vectors must match the weights");
  PLFOC_REQUIRE(replicates >= 1, "RELL needs at least one replicate");

  // Cumulative weights for O(log P) multinomial draws.
  std::vector<double> cumulative(patterns);
  std::partial_sum(weights.begin(), weights.end(), cumulative.begin());
  const double total_weight = cumulative.back();
  PLFOC_REQUIRE(total_weight > 0.0, "RELL: weights must be positive");
  const std::size_t draws =
      static_cast<std::size_t>(std::llround(total_weight));

  RellResult result;
  result.replicates = replicates;
  result.support.assign(trees, 0.0);
  result.mean_log_likelihood.assign(trees, 0.0);

  std::vector<double> counts(patterns);
  std::vector<double> scores(trees);
  for (std::size_t replicate = 0; replicate < replicates; ++replicate) {
    std::fill(counts.begin(), counts.end(), 0.0);
    for (std::size_t d = 0; d < draws; ++d) {
      const double u = rng.uniform() * total_weight;
      const auto it =
          std::upper_bound(cumulative.begin(), cumulative.end(), u);
      const std::size_t pattern = std::min<std::size_t>(
          static_cast<std::size_t>(it - cumulative.begin()), patterns - 1);
      counts[pattern] += 1.0;
    }
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < trees; ++t) {
      double score = 0.0;
      const auto& row = pattern_log_likelihoods[t];
      for (std::size_t p = 0; p < patterns; ++p)
        if (counts[p] != 0.0) score += counts[p] * row[p];
      scores[t] = score;
      result.mean_log_likelihood[t] += score;
      best = std::max(best, score);
    }
    // Ties share the replicate evenly.
    std::size_t winners = 0;
    for (double score : scores)
      if (score == best) ++winners;
    for (std::size_t t = 0; t < trees; ++t)
      if (scores[t] == best)
        result.support[t] += 1.0 / static_cast<double>(winners);
  }
  for (std::size_t t = 0; t < trees; ++t) {
    result.support[t] /= static_cast<double>(replicates);
    result.mean_log_likelihood[t] /= static_cast<double>(replicates);
  }
  return result;
}

}  // namespace plfoc
