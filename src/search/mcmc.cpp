#include "search/mcmc.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "tree/topology_moves.hpp"
#include "util/checks.hpp"
#include "util/logging.hpp"

namespace plfoc {

double log_branch_prior(const Tree& tree, double prior_mean) {
  PLFOC_CHECK(prior_mean > 0.0);
  const double rate = 1.0 / prior_mean;
  double total = 0.0;
  for (const auto& [a, b] : tree.edges())
    total += std::log(rate) - rate * tree.branch_length(a, b);
  return total;
}

namespace {

/// Exponential log-density difference for one branch changing t -> t_new.
double branch_prior_delta(double t_new, double t_old, double prior_mean) {
  return -(t_new - t_old) / prior_mean;
}

}  // namespace

McmcResult run_mcmc(LikelihoodEngine& engine, Rng& rng,
                    const McmcOptions& options) {
  PLFOC_CHECK(options.iterations >= 1);
  PLFOC_CHECK(options.nni_probability >= 0.0 && options.nni_probability <= 1.0);
  Tree& tree = engine.tree();

  // Edge list for uniform branch proposals; NNI proposals need inner-inner
  // edges. Both are refreshed after accepted topology changes.
  std::vector<std::pair<NodeId, NodeId>> edges = tree.edges();
  std::vector<std::pair<NodeId, NodeId>> inner_edges;
  const auto refresh_inner = [&] {
    inner_edges.clear();
    for (const auto& [a, b] : edges)
      if (tree.is_inner(a) && tree.is_inner(b)) inner_edges.emplace_back(a, b);
  };
  refresh_inner();

  McmcResult result;
  double log_likelihood = engine.log_likelihood();
  double log_posterior =
      log_likelihood + log_branch_prior(tree, options.branch_prior_mean);
  result.initial_log_posterior = log_posterior;
  result.best_log_posterior = log_posterior;

  for (std::uint64_t iteration = 0; iteration < options.iterations;
       ++iteration) {
    const bool do_nni =
        !inner_edges.empty() && rng.uniform() < options.nni_probability;
    if (!do_nni) {
      // --- branch-length multiplier move --------------------------------
      ++result.branch_proposals;
      const auto [a, b] = edges[rng.below(edges.size())];
      const double t_old = tree.branch_length(a, b);
      const double factor =
          std::exp(options.multiplier_lambda * (rng.uniform() - 0.5));
      const double t_new =
          std::clamp(t_old * factor, kMinBranchLength, kMaxBranchLength);

      tree.set_branch_length(a, b, t_new);
      // The endpoint vectors do not depend on the branch between them, so
      // this evaluation touches exactly two vectors (the Bayesian locality
      // the paper's out-of-core design exploits).
      const double ll_new = engine.log_likelihood(a, b);
      const double log_ratio =
          (ll_new - log_likelihood) +
          branch_prior_delta(t_new, t_old, options.branch_prior_mean) +
          std::log(t_new / t_old);  // multiplier-proposal Hastings term
      if (std::log(rng.uniform() + 1e-300) < log_ratio) {
        ++result.branch_accepts;
        log_likelihood = ll_new;
        log_posterior =
            ll_new + log_branch_prior(tree, options.branch_prior_mean);
        engine.invalidate_length_change(a, b);
      } else {
        tree.set_branch_length(a, b, t_old);
        // Nothing to invalidate: no vector conditioned on this branch was
        // recomputed during the evaluation.
      }
    } else {
      // --- NNI topology move ---------------------------------------------
      ++result.nni_proposals;
      const auto [a, b] = inner_edges[rng.below(inner_edges.size())];
      const int variant = static_cast<int>(rng.below(2));
      const NniMove move = apply_nni(tree, a, b, variant);
      engine.invalidate_topology_change(a);
      engine.invalidate_topology_change(b);
      const double ll_new = engine.log_likelihood(a, b);
      const double log_ratio = ll_new - log_likelihood;  // symmetric proposal
      if (std::log(rng.uniform() + 1e-300) < log_ratio) {
        ++result.nni_accepts;
        log_likelihood = ll_new;
        log_posterior =
            ll_new + log_branch_prior(tree, options.branch_prior_mean);
        edges = tree.edges();
        refresh_inner();
      } else {
        undo_nni(tree, move);
        engine.invalidate_topology_change(a);
        engine.invalidate_topology_change(b);
      }
    }

    result.best_log_posterior =
        std::max(result.best_log_posterior, log_posterior);
    if (options.sample_every != 0 &&
        (iteration + 1) % options.sample_every == 0) {
      result.trace.push_back(log_posterior);
      if (options.sample_topologies) {
        std::vector<std::string> order;
        order.reserve(tree.num_taxa());
        for (NodeId tip = 0; tip < tree.num_taxa(); ++tip)
          order.push_back(tree.taxon_name(tip));
        result.sampled_splits.push_back(tree_splits(tree, order));
      }
    }
  }
  result.final_log_posterior = log_posterior;
  PLFOC_LOG(kInfo) << "mcmc: " << options.iterations << " iterations, "
                   << result.branch_accepts << "/" << result.branch_proposals
                   << " branch, " << result.nni_accepts << "/"
                   << result.nni_proposals << " NNI accepts";
  return result;
}

std::vector<std::pair<Split, double>> split_frequencies(
    const std::vector<std::vector<Split>>& sampled_splits) {
  std::map<Split, std::size_t> counts;
  for (const auto& sample : sampled_splits)
    for (const Split& split : sample) ++counts[split];
  std::vector<std::pair<Split, double>> out;
  out.reserve(counts.size());
  const double total = static_cast<double>(sampled_splits.size());
  for (const auto& [split, count] : counts)
    out.emplace_back(split, static_cast<double>(count) / total);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace plfoc
