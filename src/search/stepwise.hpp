// Starting trees by randomised stepwise addition.
//
// RAxML seeds ML searches with randomised-addition parsimony trees; the
// miss-rate experiments run a tree search from such a "fixed starting tree"
// (Sec. 4.1). Taxa are inserted in a random order; each insertion either
// greedily minimises the Fitch parsimony increase over a sampled set of
// candidate edges, or picks a uniformly random edge.
#pragma once

#include "msa/alignment.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace plfoc {

struct StepwiseOptions {
  /// Guide insertions with parsimony (true) or insert uniformly at random.
  bool use_parsimony = true;
  /// Candidate edges scored per insertion; 0 = all edges (O(n² · sites) —
  /// only for small trees). Sampling keeps large builds tractable while
  /// preserving tree quality (the best of k random edges).
  std::size_t max_candidates = 64;
  double mean_branch_length = 0.1;
  double min_branch_length = 1e-6;
};

/// Build an unrooted binary tree over all alignment taxa by stepwise
/// addition. Deterministic for a given RNG state.
Tree stepwise_addition_tree(const Alignment& alignment, Rng& rng,
                            const StepwiseOptions& options = {});

}  // namespace plfoc
