// Lazy SPR tree search (the RAxML search pattern the paper instruments).
//
// For every candidate subtree, the subtree is pruned, reinserted into each
// branch within a rearrangement radius of the pruning point, and each
// insertion is scored *lazily*: only the three branch lengths around the
// insertion point are (briefly) optimised before evaluating the likelihood
// (Sec. 4.2, "Lazy SPR technique"). This is what produces the high
// ancestral-vector access locality that makes out-of-core execution cheap.
#pragma once

#include <cstdint>

#include "likelihood/engine.hpp"

namespace plfoc {

struct SprOptions {
  int rounds = 1;              ///< full passes over all prune candidates
  unsigned radius_min = 1;     ///< min hops from the pruning point
  unsigned radius_max = 5;     ///< max hops (RAxML's initial default)
  int lazy_newton_iterations = 4;  ///< Newton steps per locally optimised branch
  double epsilon = 0.01;       ///< log-likelihood gain required to accept
  /// Evaluate every `prune_stride`-th prune candidate (1 = all). Benchmarks
  /// use > 1 to bound wall time; miss/read *rates* are unaffected.
  std::size_t prune_stride = 1;
  /// Branch-smoothing passes after each accepted move, around the insertion.
  int smooth_accepted_iterations = 16;
};

struct SprResult {
  double initial_log_likelihood = 0.0;
  double final_log_likelihood = 0.0;
  std::uint64_t prune_candidates = 0;
  std::uint64_t insertions_tried = 0;
  std::uint64_t moves_accepted = 0;
};

/// Run `options.rounds` lazy-SPR passes, applying improving moves greedily.
/// Deterministic. The engine's tree is modified in place.
SprResult spr_search(LikelihoodEngine& engine, const SprOptions& options = {});

}  // namespace plfoc
