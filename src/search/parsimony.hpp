// Fitch parsimony on state-set bitmasks.
//
// Used to build reasonable starting trees by stepwise addition (RAxML seeds
// its ML searches with randomised parsimony trees). Works on any data type:
// a site's state set is the encode-time ambiguity mask (DNA) or the
// code_state_mask (protein).
#pragma once

#include <cstdint>
#include <vector>

#include "msa/alignment.hpp"
#include "tree/tree.hpp"

namespace plfoc {

/// Per-taxon per-site state-set masks for Fitch.
std::vector<std::vector<std::uint32_t>> parsimony_masks(
    const Alignment& alignment);

/// Total (weighted) Fitch parsimony score of a fully connected tree. The
/// alignment binds to tree tips by taxon name.
double parsimony_score(const Tree& tree, const Alignment& alignment);

/// Directional Fitch sets and incremental insertion scoring over a partial
/// (or full) tree — the workhorse of stepwise addition.
class ParsimonyScorer {
 public:
  ParsimonyScorer(const Alignment& alignment, const Tree& tree);

  /// Recompute all directional sets for the current connected component that
  /// contains `any_node` (O(component * sites)). Must be called after every
  /// topology change.
  void refresh(NodeId any_node);

  /// (Weighted) score of the current component, rooted anywhere.
  double component_score() const { return component_score_; }

  /// Local estimate of the additional mutations incurred by attaching `tip`
  /// onto edge (a, b) of the refreshed component, from the two directional
  /// sets meeting at that edge. O(sites). This is the standard stepwise-
  /// addition scoring heuristic: an *upper bound* on the true score increase
  /// (exact when the insertion junction is taken as the Fitch root; rescoring
  /// from scratch can be cheaper because downstream set unions absorb part of
  /// the cost).
  double insertion_cost(NodeId tip, NodeId a, NodeId b) const;

 private:
  /// Fitch set of the subtree on `node`'s side of edge (node, towards).
  const std::uint32_t* directional(NodeId node, NodeId towards) const;

  const Alignment& alignment_;
  const Tree& tree_;
  std::vector<std::vector<std::uint32_t>> tip_masks_;  ///< per tree tip
  std::vector<double> weights_;
  // Directional sets keyed by (inner node, neighbour slot): 3 per inner node.
  std::vector<std::uint32_t> sets_;
  std::vector<std::uint8_t> set_valid_;
  std::size_t sites_;
  double component_score_ = 0.0;

  std::size_t set_offset(NodeId inner, int slot) const;
  int neighbor_slot(NodeId node, NodeId neighbor) const;
  void compute_upward(NodeId node, NodeId parent, std::vector<double>& cost);
};

}  // namespace plfoc
