#include "search/nni.hpp"

#include <limits>

#include "tree/topology_moves.hpp"
#include "util/checks.hpp"
#include "util/logging.hpp"

namespace plfoc {

NniResult nni_search(LikelihoodEngine& engine, const NniOptions& options) {
  PLFOC_CHECK(options.max_rounds >= 1);
  Tree& tree = engine.tree();
  Orientation& orientation = engine.orientation();

  NniResult result;
  double current_ll = engine.log_likelihood();
  result.initial_log_likelihood = current_ll;

  // Best-improvement steepest ascent: each round trials both variants of
  // every inner edge from the same tree state and applies only the single
  // best move. Greedier first-improvement variants are cheaper per round but
  // drift into worse local optima (they take the first uphill step even when
  // the reversal of a recent perturbation offers a far larger gain).
  std::vector<NodeId> journal;
  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds_run;

    double best_ll = current_ll;
    NniMove best_move{};
    bool have_best = false;

    std::vector<std::pair<NodeId, NodeId>> inner_edges;
    for (const auto& [a, b] : tree.edges())
      if (tree.is_inner(a) && tree.is_inner(b)) inner_edges.emplace_back(a, b);

    for (const auto& [a, b] : inner_edges) {
      const double len_ab = tree.branch_length(a, b);
      for (int variant = 0; variant < 2; ++variant) {
        ++result.variants_tried;
        journal.clear();
        engine.set_recompute_journal(&journal);
        const NniMove move = apply_nni(tree, a, b, variant);
        orientation.invalidate(a);
        orientation.invalidate(b);
        // Polish the central branch (the only length an NNI perturbs
        // first-order) and score.
        const double ll =
            engine.optimize_branch(a, b, options.newton_iterations, false);
        if (ll > best_ll) {
          best_ll = ll;
          best_move = move;  // the *physical* move; variant ids go stale
          have_best = true;
        }
        // Roll back: restore topology and length, invalidate exactly the
        // vectors the trial recomputed.
        undo_nni(tree, move);
        tree.set_branch_length(a, b, len_ab);
        engine.set_recompute_journal(nullptr);
        for (NodeId node : journal) orientation.invalidate(node);
        orientation.invalidate(a);
        orientation.invalidate(b);
      }
    }

    if (!have_best || best_ll <= current_ll + options.epsilon) break;
    redo_nni(tree, best_move);
    engine.invalidate_topology_change(best_move.a);
    engine.invalidate_topology_change(best_move.b);
    current_ll = engine.optimize_branch(best_move.a, best_move.b,
                                        2 * options.newton_iterations);
    ++result.moves_accepted;
    PLFOC_LOG(kInfo) << "NNI round " << (round + 1) << ": logL " << current_ll;
  }
  result.final_log_likelihood = current_ll;
  return result;
}

}  // namespace plfoc
