// High-level search orchestration: initial branch smoothing, model parameter
// optimisation, lazy-SPR rounds, final smoothing — the workload whose
// ancestral-vector access pattern the paper measures.
#pragma once

#include "likelihood/model_opt.hpp"
#include "search/nni.hpp"
#include "search/spr.hpp"

namespace plfoc {

struct SearchOptions {
  int initial_smoothing_passes = 1;
  bool optimize_model = true;
  ModelOptOptions model;
  SprOptions spr;
  /// Polish the SPR result with a best-improvement NNI climb.
  bool nni_polish = false;
  NniOptions nni;
  int final_smoothing_passes = 1;
};

struct SearchResult {
  double starting_log_likelihood = 0.0;
  double after_smoothing = 0.0;
  double after_model_opt = 0.0;
  SprResult spr;
  NniResult nni;
  double final_log_likelihood = 0.0;
};

/// Run the full search loop on an engine (tree modified in place).
/// Deterministic for a fixed starting tree and configuration — the paper's
/// correctness criterion is that this yields bit-identical log likelihoods
/// regardless of the storage backend and replacement strategy.
SearchResult run_search(LikelihoodEngine& engine,
                        const SearchOptions& options = {});

}  // namespace plfoc
