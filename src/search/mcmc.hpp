// Bayesian MCMC over trees — the paper's other workload class.
//
// Sec. 1/5: "The concepts developed here can be applied to all PLF-based
// programs (ML and Bayesian)". This module provides a compact
// Metropolis-Hastings sampler (exponential prior on branch lengths, uniform
// prior over topologies; multiplier proposals on branch lengths, NNI
// proposals on topology) whose ancestral-vector access pattern is the
// Bayesian counterpart of the lazy-SPR search: a branch-length proposal
// touches exactly the two vectors at the branch ends, an NNI proposal a
// small neighbourhood — ideal locality for the out-of-core layer.
#pragma once

#include <cstdint>
#include <vector>

#include "likelihood/engine.hpp"
#include "tree/compare.hpp"
#include "util/rng.hpp"

namespace plfoc {

struct McmcOptions {
  std::uint64_t iterations = 2000;
  /// Probability that a proposal is an NNI topology move (otherwise a
  /// branch-length multiplier move).
  double nni_probability = 0.2;
  /// Multiplier proposal window: t' = t * exp(lambda * (u - 1/2)).
  double multiplier_lambda = 1.0;
  /// Mean of the exponential branch-length prior.
  double branch_prior_mean = 0.1;
  /// Record the log posterior every `sample_every` iterations (0 = never).
  std::uint64_t sample_every = 20;
  /// Also record the sampled topologies (their non-trivial splits), enabling
  /// posterior split frequencies. Costs O(n) per sample.
  bool sample_topologies = false;
};

struct McmcResult {
  std::uint64_t branch_proposals = 0;
  std::uint64_t branch_accepts = 0;
  std::uint64_t nni_proposals = 0;
  std::uint64_t nni_accepts = 0;
  double initial_log_posterior = 0.0;
  double final_log_posterior = 0.0;
  double best_log_posterior = 0.0;
  std::vector<double> trace;  ///< sampled log posteriors
  /// When sample_topologies: per sample, the tree's sorted non-trivial
  /// splits (see tree/compare.hpp), over the tree's tip-id taxon order.
  std::vector<std::vector<Split>> sampled_splits;

  double branch_acceptance() const {
    return branch_proposals == 0
               ? 0.0
               : static_cast<double>(branch_accepts) / static_cast<double>(branch_proposals);
  }
  double nni_acceptance() const {
    return nni_proposals == 0
               ? 0.0
               : static_cast<double>(nni_accepts) / static_cast<double>(nni_proposals);
  }
};

/// Log of the joint prior: sum of exponential log densities over branches.
double log_branch_prior(const Tree& tree, double prior_mean);

/// Run the chain in place on the engine's tree. Deterministic for a given
/// RNG state; the resulting chain (every proposal, acceptance and sample) is
/// bit-identical across storage backends.
McmcResult run_mcmc(LikelihoodEngine& engine, Rng& rng,
                    const McmcOptions& options = {});

/// Posterior frequency of every split seen in the samples, as
/// (split, fraction-of-samples) pairs sorted by decreasing frequency.
std::vector<std::pair<Split, double>> split_frequencies(
    const std::vector<std::vector<Split>>& sampled_splits);

}  // namespace plfoc
