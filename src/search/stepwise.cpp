#include "search/stepwise.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "search/parsimony.hpp"
#include "util/checks.hpp"

namespace plfoc {
namespace {

double draw_length(Rng& rng, const StepwiseOptions& options) {
  return std::max(rng.exponential(1.0 / options.mean_branch_length),
                  options.min_branch_length);
}

/// All edges of the connected component containing `inside`.
std::vector<std::pair<NodeId, NodeId>> component_edges(const Tree& tree,
                                                       NodeId inside) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<bool> seen(tree.num_nodes(), false);
  std::vector<NodeId> queue{inside};
  seen[inside] = true;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId node = queue[head++];
    for (NodeId nbr : tree.neighbors(node)) {
      if (node < nbr) edges.emplace_back(node, nbr);
      if (!seen[nbr]) {
        seen[nbr] = true;
        queue.push_back(nbr);
      }
    }
  }
  return edges;
}

}  // namespace

Tree stepwise_addition_tree(const Alignment& alignment, Rng& rng,
                            const StepwiseOptions& options) {
  const std::size_t n = alignment.num_taxa();
  PLFOC_REQUIRE(n >= 3, "stepwise addition needs at least 3 taxa");
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back(alignment.name(i));
  Tree tree(std::move(names));

  // Random addition order.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  // Seed: first three taxa around the first inner node.
  const NodeId hub = tree.inner_node(0);
  for (int k = 0; k < 3; ++k)
    tree.connect(order[static_cast<std::size_t>(k)], hub,
                 draw_length(rng, options));

  ParsimonyScorer scorer(alignment, tree);

  for (std::size_t k = 3; k < n; ++k) {
    const NodeId tip = order[k];
    const NodeId fresh_inner =
        tree.inner_node(static_cast<std::uint32_t>(k) - 2);
    auto edges = component_edges(tree, hub);
    PLFOC_CHECK(!edges.empty());

    std::pair<NodeId, NodeId> best_edge;
    if (!options.use_parsimony) {
      best_edge = edges[rng.below(edges.size())];
    } else {
      // Sample candidate edges (all, if max_candidates covers them).
      if (options.max_candidates != 0 && edges.size() > options.max_candidates) {
        for (std::size_t i = 0; i < options.max_candidates; ++i) {
          const std::size_t j = i + rng.below(edges.size() - i);
          std::swap(edges[i], edges[j]);
        }
        edges.resize(options.max_candidates);
      }
      scorer.refresh(hub);
      double best_cost = std::numeric_limits<double>::infinity();
      best_edge = edges[0];
      for (const auto& [a, b] : edges) {
        const double cost = scorer.insertion_cost(tip, a, b);
        if (cost < best_cost) {
          best_cost = cost;
          best_edge = {a, b};
        }
      }
    }

    const auto [a, b] = best_edge;
    const double old_len = tree.branch_length(a, b);
    tree.disconnect(a, b);
    const double half = std::max(old_len * 0.5, options.min_branch_length);
    tree.connect(a, fresh_inner, half);
    tree.connect(fresh_inner, b, half);
    tree.connect(tip, fresh_inner, draw_length(rng, options));
  }
  tree.validate();
  return tree;
}

}  // namespace plfoc
