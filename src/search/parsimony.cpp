#include "search/parsimony.hpp"

#include <algorithm>

#include "util/checks.hpp"

namespace plfoc {
namespace {

/// Bind alignment rows to tree tips by name and expand to state-set masks.
std::vector<std::vector<std::uint32_t>> tip_masks_for(
    const Alignment& alignment, const Tree& tree) {
  std::vector<std::vector<std::uint32_t>> masks(tree.num_taxa());
  for (NodeId tip = 0; tip < tree.num_taxa(); ++tip) {
    const long row = alignment.find_taxon(tree.taxon_name(tip));
    PLFOC_REQUIRE(row >= 0, "tree taxon '" + tree.taxon_name(tip) +
                                "' not found in the alignment");
    const auto codes = alignment.row(static_cast<std::size_t>(row));
    masks[tip].resize(codes.size());
    for (std::size_t s = 0; s < codes.size(); ++s)
      masks[tip][s] = code_state_mask(alignment.data_type(), codes[s]);
  }
  return masks;
}

std::vector<double> site_weights(const Alignment& alignment) {
  if (!alignment.weights().empty()) return alignment.weights();
  return std::vector<double>(alignment.num_sites(), 1.0);
}

}  // namespace

std::vector<std::vector<std::uint32_t>> parsimony_masks(
    const Alignment& alignment) {
  std::vector<std::vector<std::uint32_t>> masks(alignment.num_taxa());
  for (std::size_t taxon = 0; taxon < alignment.num_taxa(); ++taxon) {
    const auto codes = alignment.row(taxon);
    masks[taxon].resize(codes.size());
    for (std::size_t s = 0; s < codes.size(); ++s)
      masks[taxon][s] = code_state_mask(alignment.data_type(), codes[s]);
  }
  return masks;
}

double parsimony_score(const Tree& tree, const Alignment& alignment) {
  PLFOC_CHECK(tree.is_fully_connected());
  const auto masks = tip_masks_for(alignment, tree);
  const auto weights = site_weights(alignment);
  const std::size_t sites = alignment.num_sites();

  // Root at tip 0; iterative post-order over (node, parent) frames.
  std::vector<std::vector<std::uint32_t>> sets(tree.num_nodes());
  double score = 0.0;
  struct Frame {
    NodeId node, parent;
    bool expanded;
  };
  const NodeId root_tip = 0;
  const NodeId top = tree.neighbors(root_tip)[0];
  std::vector<Frame> stack{{top, root_tip, false}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (tree.is_tip(frame.node)) continue;
    if (!frame.expanded) {
      stack.push_back({frame.node, frame.parent, true});
      for (NodeId nbr : tree.neighbors(frame.node))
        if (nbr != frame.parent) stack.push_back({nbr, frame.node, false});
    } else {
      NodeId children[2];
      int count = 0;
      for (NodeId nbr : tree.neighbors(frame.node))
        if (nbr != frame.parent) children[count++] = nbr;
      PLFOC_CHECK(count == 2);
      const auto& left =
          tree.is_tip(children[0]) ? masks[children[0]] : sets[children[0]];
      const auto& right =
          tree.is_tip(children[1]) ? masks[children[1]] : sets[children[1]];
      auto& out = sets[frame.node];
      out.resize(sites);
      for (std::size_t s = 0; s < sites; ++s) {
        const std::uint32_t x = left[s] & right[s];
        if (x != 0) {
          out[s] = x;
        } else {
          out[s] = left[s] | right[s];
          score += weights[s];
        }
      }
    }
  }
  // Final junction at the root tip.
  const auto& below = tree.is_tip(top) ? masks[top] : sets[top];
  for (std::size_t s = 0; s < sites; ++s)
    if ((below[s] & masks[root_tip][s]) == 0) score += weights[s];
  return score;
}

// --- ParsimonyScorer ---------------------------------------------------------

ParsimonyScorer::ParsimonyScorer(const Alignment& alignment, const Tree& tree)
    : alignment_(alignment),
      tree_(tree),
      tip_masks_(tip_masks_for(alignment, tree)),
      weights_(site_weights(alignment)),
      sites_(alignment.num_sites()) {
  sets_.assign(tree.num_inner() * 3 * sites_, 0);
  set_valid_.assign(tree.num_inner() * 3, 0);
}

std::size_t ParsimonyScorer::set_offset(NodeId inner, int slot) const {
  PLFOC_DCHECK(tree_.is_inner(inner) && slot >= 0 && slot < 3);
  return (static_cast<std::size_t>(tree_.inner_index(inner)) * 3 +
          static_cast<std::size_t>(slot)) *
         sites_;
}

int ParsimonyScorer::neighbor_slot(NodeId node, NodeId neighbor) const {
  const auto nbrs = tree_.neighbors(node);
  for (int i = 0; i < static_cast<int>(nbrs.size()); ++i)
    if (nbrs[static_cast<std::size_t>(i)] == neighbor) return i;
  PLFOC_CHECK(false);
  return -1;
}

const std::uint32_t* ParsimonyScorer::directional(NodeId node,
                                                  NodeId towards) const {
  if (tree_.is_tip(node)) return tip_masks_[node].data();
  const int slot = neighbor_slot(node, towards);
  PLFOC_CHECK(set_valid_[static_cast<std::size_t>(tree_.inner_index(node)) * 3 +
                         static_cast<std::size_t>(slot)] != 0);
  return sets_.data() + set_offset(node, slot);
}

void ParsimonyScorer::refresh(NodeId any_node) {
  // Collect the connected component and a BFS parent order from a tip root.
  std::vector<NodeId> order;          // BFS order, root first
  std::vector<NodeId> parent_of(tree_.num_nodes(), kNoNode);
  std::vector<bool> seen(tree_.num_nodes(), false);
  {
    std::vector<NodeId> queue{any_node};
    seen[any_node] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId node = queue[head++];
      for (NodeId nbr : tree_.neighbors(node))
        if (!seen[nbr]) {
          seen[nbr] = true;
          queue.push_back(nbr);
        }
    }
    // Re-run BFS from a tip in the component for clean parent structure.
    NodeId root_tip = kNoNode;
    for (NodeId node : queue)
      if (tree_.is_tip(node)) {
        root_tip = node;
        break;
      }
    PLFOC_CHECK(root_tip != kNoNode);
    std::fill(seen.begin(), seen.end(), false);
    order.clear();
    order.push_back(root_tip);
    seen[root_tip] = true;
    head = 0;
    while (head < order.size()) {
      const NodeId node = order[head++];
      for (NodeId nbr : tree_.neighbors(node))
        if (!seen[nbr]) {
          seen[nbr] = true;
          parent_of[nbr] = node;
          order.push_back(nbr);
        }
    }
  }
  std::fill(set_valid_.begin(), set_valid_.end(), 0);
  component_score_ = 0.0;

  // Upward pass (children before parents): D(u -> parent).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (tree_.is_tip(u)) continue;
    const NodeId p = parent_of[u];
    PLFOC_CHECK(p != kNoNode);
    NodeId children[2];
    int count = 0;
    for (NodeId nbr : tree_.neighbors(u))
      if (nbr != p) children[count++] = nbr;
    PLFOC_CHECK(count == 2);
    const std::uint32_t* left = directional(children[0], u);
    const std::uint32_t* right = directional(children[1], u);
    const int slot = neighbor_slot(u, p);
    std::uint32_t* out = sets_.data() + set_offset(u, slot);
    for (std::size_t s = 0; s < sites_; ++s) {
      const std::uint32_t x = left[s] & right[s];
      if (x != 0) {
        out[s] = x;
      } else {
        out[s] = left[s] | right[s];
        component_score_ += weights_[s];
      }
    }
    set_valid_[static_cast<std::size_t>(tree_.inner_index(u)) * 3 +
               static_cast<std::size_t>(slot)] = 1;
  }
  // Root-tip junction cost.
  const NodeId root_tip = order.front();
  if (tree_.degree(root_tip) == 1) {
    const NodeId below = tree_.neighbors(root_tip)[0];
    const std::uint32_t* set = directional(below, root_tip);
    const std::uint32_t* mask = tip_masks_[root_tip].data();
    for (std::size_t s = 0; s < sites_; ++s)
      if ((set[s] & mask[s]) == 0) component_score_ += weights_[s];
  }

  // Downward pass (parents before children): D(u -> child).
  for (NodeId u : order) {
    if (tree_.is_tip(u)) continue;
    const NodeId p = parent_of[u];
    NodeId children[2];
    int count = 0;
    for (NodeId nbr : tree_.neighbors(u))
      if (nbr != p) children[count++] = nbr;
    PLFOC_CHECK(count == 2);
    for (int c = 0; c < 2; ++c) {
      const NodeId child = children[c];
      const NodeId sibling = children[1 - c];
      const std::uint32_t* from_parent = directional(p, u);
      const std::uint32_t* from_sibling = directional(sibling, u);
      const int slot = neighbor_slot(u, child);
      std::uint32_t* out = sets_.data() + set_offset(u, slot);
      for (std::size_t s = 0; s < sites_; ++s) {
        const std::uint32_t x = from_parent[s] & from_sibling[s];
        out[s] = (x != 0) ? x : (from_parent[s] | from_sibling[s]);
      }
      set_valid_[static_cast<std::size_t>(tree_.inner_index(u)) * 3 +
                 static_cast<std::size_t>(slot)] = 1;
    }
  }
}

double ParsimonyScorer::insertion_cost(NodeId tip, NodeId a, NodeId b) const {
  PLFOC_CHECK(tree_.is_tip(tip));
  const std::uint32_t* da = directional(a, b);
  const std::uint32_t* db = directional(b, a);
  const std::uint32_t* t = tip_masks_[tip].data();
  double cost = 0.0;
  for (std::size_t s = 0; s < sites_; ++s) {
    std::uint32_t x = da[s] & db[s];
    if (x == 0) x = da[s] | db[s];
    if ((x & t[s]) == 0) cost += weights_[s];
  }
  return cost;
}

}  // namespace plfoc
