// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>

#include "msa/alignment.hpp"

namespace plfoc {

/// Parse a FASTA stream into an Alignment. All sequences must have equal
/// length (this is an *alignment* reader). Throws plfoc::Error on malformed
/// input.
Alignment read_fasta(std::istream& in, DataType type);

/// Convenience overload reading from a file path.
Alignment read_fasta_file(const std::string& path, DataType type);

/// Write an alignment in FASTA with `wrap` characters per line (0 = no wrap).
void write_fasta(std::ostream& out, const Alignment& alignment,
                 std::size_t wrap = 80);

void write_fasta_file(const std::string& path, const Alignment& alignment,
                      std::size_t wrap = 80);

}  // namespace plfoc
