#include "msa/phylip.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/checks.hpp"

namespace plfoc {

namespace {

struct RawAlignment {
  std::vector<std::string> names;
  std::vector<std::string> seqs;
};

/// Sequential layout: after the name, tokens accumulate until the row holds
/// exactly num_sites characters, then the next name follows. Returns false
/// (without throwing) when the token stream cannot be sequential — a row
/// overflows num_sites or the file ends early — so the caller can retry with
/// the interleaved interpretation.
bool try_sequential(const std::vector<std::string>& tokens,
                    std::size_t num_taxa, std::size_t num_sites,
                    RawAlignment& out) {
  out.names.assign(num_taxa, "");
  out.seqs.assign(num_taxa, "");
  std::size_t cursor = 0;
  for (std::size_t taxon = 0; taxon < num_taxa; ++taxon) {
    if (cursor >= tokens.size()) return false;
    out.names[taxon] = tokens[cursor++];
    while (out.seqs[taxon].size() < num_sites) {
      if (cursor >= tokens.size()) return false;
      out.seqs[taxon] += tokens[cursor++];
    }
    if (out.seqs[taxon].size() != num_sites) return false;  // overflow
  }
  return cursor == tokens.size();
}

/// Interleaved layout: the first num_taxa non-empty lines are
/// "name fragment...", subsequent non-empty lines are bare fragments cycling
/// through the taxa in order.
RawAlignment parse_interleaved(const std::vector<std::vector<std::string>>& lines,
                               std::size_t num_taxa, std::size_t num_sites) {
  PLFOC_REQUIRE(lines.size() >= num_taxa,
                "PHYLIP: fewer data lines than taxa");
  RawAlignment out;
  out.names.resize(num_taxa);
  out.seqs.resize(num_taxa);
  for (std::size_t taxon = 0; taxon < num_taxa; ++taxon) {
    const auto& line = lines[taxon];
    PLFOC_REQUIRE(!line.empty(), "PHYLIP: empty taxon line");
    out.names[taxon] = line[0];
    for (std::size_t k = 1; k < line.size(); ++k) out.seqs[taxon] += line[k];
  }
  std::size_t taxon = 0;
  for (std::size_t row = num_taxa; row < lines.size(); ++row) {
    // Skip taxa whose rows are already complete (tolerates ragged blocks).
    std::size_t guard = 0;
    while (out.seqs[taxon].size() >= num_sites && guard++ <= num_taxa)
      taxon = (taxon + 1) % num_taxa;
    for (const std::string& fragment : lines[row]) out.seqs[taxon] += fragment;
    taxon = (taxon + 1) % num_taxa;
  }
  return out;
}

}  // namespace

Alignment read_phylip(std::istream& in, DataType type) {
  std::size_t num_taxa = 0;
  std::size_t num_sites = 0;
  in >> num_taxa >> num_sites;
  PLFOC_REQUIRE(in.good() && num_taxa >= 2 && num_sites >= 1,
                "malformed PHYLIP header (expected '<taxa> <sites>')");
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');

  // Tokenise the body, remembering line structure (interleaved needs it).
  std::vector<std::vector<std::string>> lines;
  std::vector<std::string> tokens;
  std::string line_text;
  while (std::getline(in, line_text)) {
    std::istringstream line_stream(line_text);
    std::vector<std::string> line_tokens;
    std::string token;
    while (line_stream >> token) line_tokens.push_back(token);
    if (line_tokens.empty()) continue;
    tokens.insert(tokens.end(), line_tokens.begin(), line_tokens.end());
    lines.push_back(std::move(line_tokens));
  }

  RawAlignment raw;
  if (!try_sequential(tokens, num_taxa, num_sites, raw))
    raw = parse_interleaved(lines, num_taxa, num_sites);

  Alignment alignment(type, num_sites);
  for (std::size_t i = 0; i < num_taxa; ++i) {
    PLFOC_REQUIRE(raw.seqs[i].size() == num_sites,
                  "PHYLIP: sequence for taxon '" + raw.names[i] + "' has " +
                      std::to_string(raw.seqs[i].size()) + " sites, expected " +
                      std::to_string(num_sites));
    alignment.add_sequence(raw.names[i], raw.seqs[i]);
  }
  return alignment;
}

Alignment read_phylip_file(const std::string& path, DataType type) {
  std::ifstream in(path);
  PLFOC_REQUIRE(in.good(), "cannot open PHYLIP file '" + path + "'");
  return read_phylip(in, type);
}

void write_phylip(std::ostream& out, const Alignment& alignment) {
  out << alignment.num_taxa() << ' ' << alignment.num_sites() << '\n';
  for (std::size_t taxon = 0; taxon < alignment.num_taxa(); ++taxon)
    out << alignment.name(taxon) << ' ' << alignment.text(taxon) << '\n';
}

void write_phylip_file(const std::string& path, const Alignment& alignment) {
  std::ofstream out(path);
  PLFOC_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_phylip(out, alignment);
}

}  // namespace plfoc
