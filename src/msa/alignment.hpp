// Multiple sequence alignment container.
//
// Sequences are stored encoded (see msa/datatype.hpp) in one row per taxon.
// An Alignment may additionally carry per-site weights; pattern compression
// (msa/patterns.hpp) produces a smaller Alignment whose weights record how
// many original columns each unique pattern represents.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "msa/datatype.hpp"

namespace plfoc {

class Alignment {
 public:
  Alignment() = default;
  Alignment(DataType type, std::size_t num_sites)
      : type_(type), num_sites_(num_sites) {}

  DataType data_type() const { return type_; }
  std::size_t num_taxa() const { return names_.size(); }
  std::size_t num_sites() const { return num_sites_; }

  /// Append a taxon. The string is encoded and validated; its length must
  /// equal num_sites(). Taxon names must be unique and non-empty.
  void add_sequence(std::string name, std::string_view characters);

  /// Append a taxon from already-encoded codes.
  void add_encoded(std::string name, std::vector<std::uint8_t> codes);

  const std::string& name(std::size_t taxon) const { return names_[taxon]; }
  std::span<const std::uint8_t> row(std::size_t taxon) const {
    return {rows_[taxon].data(), rows_[taxon].size()};
  }

  /// Index of the taxon with the given name, or -1 if absent.
  long find_taxon(std::string_view name) const;

  /// Decoded character text of one row (for writers / debugging).
  std::string text(std::size_t taxon) const;

  /// Per-site multiplicities. Empty means "all weights are 1".
  const std::vector<double>& weights() const { return weights_; }
  void set_weights(std::vector<double> weights);

  /// Sum of site weights (== original alignment length after compression).
  double total_weight() const;

  /// Observed state frequencies across all sequences, ambiguity codes
  /// distributed uniformly over their compatible states. Size = num_states.
  std::vector<double> empirical_frequencies() const;

 private:
  DataType type_ = DataType::kDna;
  std::size_t num_sites_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<std::uint8_t>> rows_;
  std::vector<double> weights_;
};

}  // namespace plfoc
