// Molecular data types and their character encodings.
//
// The PLF never sees raw characters: every tip sequence is encoded once into
// small integer *codes*. A code indexes a per-code row in the precomputed tip
// lookup table (likelihood/tip_states); its *state mask* says which of the
// model's states the character is compatible with (IUPAC ambiguity codes,
// gaps and unknowns map to multi-bit masks). This mirrors the paper's note
// that one 32-bit integer can carry 8 ambiguity-coded nucleotides — tips are
// cheap, ancestral vectors are what dominates memory (Sec. 3.1).
#pragma once

#include <cstdint>
#include <string>

namespace plfoc {

enum class DataType : std::uint8_t {
  kDna,      ///< 4 states (A, C, G, T), 16 ambiguity codes.
  kProtein,  ///< 20 states, 24 codes (20 canonical + B, Z, J, X/gap).
};

/// Number of model states for a data type (4 or 20).
unsigned num_states(DataType type);

/// Number of distinct tip codes (tip lookup table rows): 16 or 24.
unsigned num_codes(DataType type);

/// Encode one sequence character; throws plfoc::Error on characters that are
/// not valid for the data type. Case-insensitive; '-', '?', '.', '~' and the
/// full-ambiguity letters (N / X) all map to the all-states code.
std::uint8_t encode_char(DataType type, char c);

/// Bitmask over model states compatible with `code` (bit i = state i).
std::uint32_t code_state_mask(DataType type, std::uint8_t code);

/// Canonical printable character for a code (upper case; all-states prints
/// as 'N' for DNA and 'X' for protein).
char decode_char(DataType type, std::uint8_t code);

/// Code representing full ambiguity (gap / unknown) for the data type.
std::uint8_t gap_code(DataType type);

/// True if `code` corresponds to exactly one model state.
bool is_unambiguous(DataType type, std::uint8_t code);

/// Index of the single state for an unambiguous code.
unsigned single_state(DataType type, std::uint8_t code);

/// Human-readable name ("DNA" / "Protein").
std::string datatype_name(DataType type);

}  // namespace plfoc
