#include "msa/patterns.hpp"

#include <string>
#include <unordered_map>

#include "util/checks.hpp"

namespace plfoc {

CompressionResult compress_patterns(const Alignment& alignment) {
  const std::size_t taxa = alignment.num_taxa();
  const std::size_t sites = alignment.num_sites();
  PLFOC_REQUIRE(taxa >= 1 && sites >= 1, "cannot compress an empty alignment");
  PLFOC_REQUIRE(alignment.weights().empty(),
                "alignment is already pattern-compressed");

  // Key each column by its raw code bytes.
  std::unordered_map<std::string, std::size_t> first_seen;
  first_seen.reserve(sites);
  std::vector<std::size_t> site_to_pattern(sites);
  std::vector<std::size_t> pattern_sites;  // representative site per pattern
  std::vector<double> weights;
  std::string key(taxa, '\0');
  for (std::size_t site = 0; site < sites; ++site) {
    for (std::size_t taxon = 0; taxon < taxa; ++taxon)
      key[taxon] = static_cast<char>(alignment.row(taxon)[site]);
    auto [it, inserted] = first_seen.emplace(key, pattern_sites.size());
    if (inserted) {
      pattern_sites.push_back(site);
      weights.push_back(1.0);
    } else {
      weights[it->second] += 1.0;
    }
    site_to_pattern[site] = it->second;
  }

  Alignment compressed(alignment.data_type(), pattern_sites.size());
  for (std::size_t taxon = 0; taxon < taxa; ++taxon) {
    std::vector<std::uint8_t> row;
    row.reserve(pattern_sites.size());
    for (std::size_t pattern_site : pattern_sites)
      row.push_back(alignment.row(taxon)[pattern_site]);
    compressed.add_encoded(alignment.name(taxon), std::move(row));
  }
  compressed.set_weights(std::move(weights));
  return {std::move(compressed), std::move(site_to_pattern)};
}

}  // namespace plfoc
