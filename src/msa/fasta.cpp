#include "msa/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/checks.hpp"

namespace plfoc {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

Alignment read_fasta(std::istream& in, DataType type) {
  std::vector<std::string> names;
  std::vector<std::string> seqs;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t[0] == '>') {
      // Header: taxon name is the first whitespace-delimited token.
      std::istringstream header(t.substr(1));
      std::string name;
      header >> name;
      PLFOC_REQUIRE(!name.empty(), "FASTA header with empty name");
      names.push_back(name);
      seqs.emplace_back();
    } else {
      PLFOC_REQUIRE(!names.empty(), "FASTA sequence data before first header");
      for (char c : t)
        if (!std::isspace(static_cast<unsigned char>(c))) seqs.back().push_back(c);
    }
  }
  PLFOC_REQUIRE(!names.empty(), "empty FASTA input");
  const std::size_t sites = seqs.front().size();
  PLFOC_REQUIRE(sites > 0, "first FASTA sequence is empty");
  Alignment alignment(type, sites);
  for (std::size_t i = 0; i < names.size(); ++i)
    alignment.add_sequence(names[i], seqs[i]);
  return alignment;
}

Alignment read_fasta_file(const std::string& path, DataType type) {
  std::ifstream in(path);
  PLFOC_REQUIRE(in.good(), "cannot open FASTA file '" + path + "'");
  return read_fasta(in, type);
}

void write_fasta(std::ostream& out, const Alignment& alignment,
                 std::size_t wrap) {
  for (std::size_t taxon = 0; taxon < alignment.num_taxa(); ++taxon) {
    out << '>' << alignment.name(taxon) << '\n';
    const std::string text = alignment.text(taxon);
    if (wrap == 0) {
      out << text << '\n';
    } else {
      for (std::size_t pos = 0; pos < text.size(); pos += wrap)
        out << text.substr(pos, wrap) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const Alignment& alignment,
                      std::size_t wrap) {
  std::ofstream out(path);
  PLFOC_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_fasta(out, alignment, wrap);
}

}  // namespace plfoc
