#include "msa/datatype.hpp"

#include <array>
#include <cctype>

#include "util/checks.hpp"

namespace plfoc {
namespace {

// --- DNA ------------------------------------------------------------------
// DNA codes are the IUPAC 4-bit masks themselves: bit0=A, bit1=C, bit2=G,
// bit3=T. Code 15 is full ambiguity (N / gap); code 0 is invalid.
constexpr unsigned kDnaStates = 4;
constexpr unsigned kDnaCodes = 16;

std::uint8_t dna_mask_for(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return 1;
    case 'C': return 2;
    case 'G': return 4;
    case 'T':
    case 'U': return 8;
    case 'R': return 1 | 4;          // puRine: A/G
    case 'Y': return 2 | 8;          // pYrimidine: C/T
    case 'S': return 2 | 4;          // Strong: C/G
    case 'W': return 1 | 8;          // Weak: A/T
    case 'K': return 4 | 8;          // Keto: G/T
    case 'M': return 1 | 2;          // aMino: A/C
    case 'B': return 2 | 4 | 8;      // not A
    case 'D': return 1 | 4 | 8;      // not C
    case 'H': return 1 | 2 | 8;      // not G
    case 'V': return 1 | 2 | 4;      // not T
    case 'N':
    case 'O':
    case 'X':
    case '-':
    case '?':
    case '.':
    case '~': return 15;
    default: return 0;
  }
}

constexpr char kDnaPrint[16] = {'?', 'A', 'C', 'M', 'G', 'R', 'S', 'V',
                                'T', 'W', 'Y', 'H', 'K', 'D', 'B', 'N'};

// --- Protein ----------------------------------------------------------------
// Canonical order ARNDCQEGHILKMFPSTWYV (RAxML / PAML convention). Codes 0..19
// are the amino acids; 20 = B (N|D), 21 = Z (Q|E), 22 = J (I|L),
// 23 = X / gap / unknown (all 20 states).
constexpr unsigned kAaStates = 20;
constexpr unsigned kAaCodes = 24;
constexpr char kAaLetters[20] = {'A', 'R', 'N', 'D', 'C', 'Q', 'E',
                                 'G', 'H', 'I', 'L', 'K', 'M', 'F',
                                 'P', 'S', 'T', 'W', 'Y', 'V'};

int aa_index(char upper) {
  for (unsigned i = 0; i < kAaStates; ++i)
    if (kAaLetters[i] == upper) return static_cast<int>(i);
  return -1;
}

std::uint32_t aa_mask_for_code(std::uint8_t code) {
  if (code < kAaStates) return 1u << code;
  switch (code) {
    case 20: return (1u << 2) | (1u << 3);    // B: Asn or Asp
    case 21: return (1u << 5) | (1u << 6);    // Z: Gln or Glu
    case 22: return (1u << 9) | (1u << 10);   // J: Ile or Leu
    case 23: return (1u << kAaStates) - 1;    // X / gap: anything
    default: return 0;
  }
}

}  // namespace

unsigned num_states(DataType type) {
  return type == DataType::kDna ? kDnaStates : kAaStates;
}

unsigned num_codes(DataType type) {
  return type == DataType::kDna ? kDnaCodes : kAaCodes;
}

std::uint8_t encode_char(DataType type, char c) {
  if (type == DataType::kDna) {
    const std::uint8_t mask = dna_mask_for(c);
    PLFOC_REQUIRE(mask != 0,
                  std::string("invalid DNA character '") + c + "'");
    return mask;
  }
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  const int idx = aa_index(upper);
  if (idx >= 0) return static_cast<std::uint8_t>(idx);
  switch (upper) {
    case 'B': return 20;
    case 'Z': return 21;
    case 'J': return 22;
    case 'X':
    case '-':
    case '?':
    case '.':
    case '~':
    case '*': return 23;
    default:
      throw Error(std::string("invalid protein character '") + c + "'");
  }
}

std::uint32_t code_state_mask(DataType type, std::uint8_t code) {
  if (type == DataType::kDna) {
    PLFOC_DCHECK(code >= 1 && code < kDnaCodes);
    return code;  // DNA codes are their own masks.
  }
  PLFOC_DCHECK(code < kAaCodes);
  return aa_mask_for_code(code);
}

char decode_char(DataType type, std::uint8_t code) {
  if (type == DataType::kDna) {
    PLFOC_DCHECK(code < kDnaCodes);
    return kDnaPrint[code];
  }
  PLFOC_DCHECK(code < kAaCodes);
  if (code < kAaStates) return kAaLetters[code];
  switch (code) {
    case 20: return 'B';
    case 21: return 'Z';
    case 22: return 'J';
    default: return 'X';
  }
}

std::uint8_t gap_code(DataType type) {
  return type == DataType::kDna ? std::uint8_t{15} : std::uint8_t{23};
}

bool is_unambiguous(DataType type, std::uint8_t code) {
  const std::uint32_t mask = code_state_mask(type, code);
  return mask != 0 && (mask & (mask - 1)) == 0;
}

unsigned single_state(DataType type, std::uint8_t code) {
  const std::uint32_t mask = code_state_mask(type, code);
  PLFOC_DCHECK(mask != 0 && (mask & (mask - 1)) == 0);
  unsigned state = 0;
  for (std::uint32_t m = mask; (m & 1u) == 0; m >>= 1) ++state;
  return state;
}

std::string datatype_name(DataType type) {
  return type == DataType::kDna ? "DNA" : "Protein";
}

}  // namespace plfoc
